//! Physical row expressions.
//!
//! These are the expressions the executor evaluates per row: column
//! references, constants, comparisons under three-valued logic, string
//! concatenation with NULL propagation (`||`), and SQL `LIKE` matching —
//! including the POSIX word-boundary markers (`[[:<:]]`, `[[:>:]]`) used by
//! the paper's multi-valued-attribute queries.

use crate::value::{Row, Value};
use std::cmp::Ordering;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn apply(self, o: Ordering) -> bool {
        match self {
            CmpOp::Eq => o == Ordering::Equal,
            CmpOp::Ne => o != Ordering::Equal,
            CmpOp::Lt => o == Ordering::Less,
            CmpOp::Le => o != Ordering::Greater,
            CmpOp::Gt => o == Ordering::Greater,
            CmpOp::Ge => o != Ordering::Less,
        }
    }
}

/// A physical expression over a row (or a pair of concatenated rows when
/// evaluated inside a join).
#[derive(Debug, Clone)]
pub enum PExpr {
    /// Column at position `usize`.
    Col(usize),
    /// Constant value.
    Const(Value),
    /// Comparison.
    Cmp(Box<PExpr>, CmpOp, Box<PExpr>),
    /// Logical AND (three-valued).
    And(Box<PExpr>, Box<PExpr>),
    /// Logical OR (three-valued).
    Or(Box<PExpr>, Box<PExpr>),
    /// Logical NOT (three-valued).
    Not(Box<PExpr>),
    /// `IS NULL` test.
    IsNull(Box<PExpr>),
    /// String concatenation (`||`). NULL-propagating: any NULL operand
    /// yields NULL — the Concatenate Nulls AP mechanism.
    Concat(Box<PExpr>, Box<PExpr>),
    /// `expr LIKE pattern`, pattern itself an expression (possibly built
    /// with `Concat` per row, as in the paper's Task #2 join).
    Like(Box<PExpr>, Box<PExpr>),
    /// Arithmetic addition (numeric).
    Add(Box<PExpr>, Box<PExpr>),
    /// `expr IN (values)`.
    InList(Box<PExpr>, Vec<Value>),
}

impl PExpr {
    /// Convenience: `Col(i) = const`.
    pub fn col_eq(col: usize, v: Value) -> PExpr {
        PExpr::Cmp(Box::new(PExpr::Col(col)), CmpOp::Eq, Box::new(PExpr::Const(v)))
    }

    /// Convenience: `Col(a) = Col(b)`.
    pub fn cols_eq(a: usize, b: usize) -> PExpr {
        PExpr::Cmp(Box::new(PExpr::Col(a)), CmpOp::Eq, Box::new(PExpr::Col(b)))
    }

    /// Evaluate to a value.
    pub fn eval(&self, row: &Row) -> Value {
        match self {
            PExpr::Col(i) => row.get(*i).cloned().unwrap_or(Value::Null),
            PExpr::Const(v) => v.clone(),
            PExpr::Cmp(l, op, r) => {
                let (lv, rv) = (l.eval(row), r.eval(row));
                match lv.sql_cmp(&rv) {
                    Some(o) => Value::Bool(op.apply(o)),
                    None => Value::Null,
                }
            }
            PExpr::And(l, r) => match (truth(&l.eval(row)), truth(&r.eval(row))) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            },
            PExpr::Or(l, r) => match (truth(&l.eval(row)), truth(&r.eval(row))) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            PExpr::Not(e) => match truth(&e.eval(row)) {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            PExpr::IsNull(e) => Value::Bool(e.eval(row).is_null()),
            PExpr::Concat(l, r) => {
                let (lv, rv) = (l.eval(row), r.eval(row));
                if lv.is_null() || rv.is_null() {
                    Value::Null
                } else {
                    Value::Text(format!("{lv}{rv}"))
                }
            }
            PExpr::Like(e, p) => {
                let (tv, pv) = (e.eval(row), p.eval(row));
                match (tv.as_str(), pv.as_str()) {
                    (Some(t), Some(p)) => Value::Bool(like_match(t, p)),
                    _ => Value::Null,
                }
            }
            PExpr::Add(l, r) => {
                let (lv, rv) = (l.eval(row), r.eval(row));
                match (&lv, &rv) {
                    (Value::Int(a), Value::Int(b)) => Value::Int(a + b),
                    _ => match (lv.as_f64(), rv.as_f64()) {
                        (Some(a), Some(b)) => Value::Float(a + b),
                        _ => Value::Null,
                    },
                }
            }
            PExpr::InList(e, values) => {
                let v = e.eval(row);
                if v.is_null() {
                    return Value::Null;
                }
                for candidate in values {
                    if v.sql_eq(candidate) == Some(true) {
                        return Value::Bool(true);
                    }
                }
                Value::Bool(false)
            }
        }
    }

    /// Evaluate as a predicate: true only when the expression evaluates to
    /// TRUE (UNKNOWN/NULL filters the row out — SQL semantics).
    pub fn eval_bool(&self, row: &Row) -> bool {
        truth(&self.eval(row)) == Some(true)
    }
}

fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        Value::Int(i) => Some(*i != 0),
        _ => None,
    }
}

/// SQL `LIKE` matching with `%` and `_` wildcards, extended with the POSIX
/// word-boundary markers `[[:<:]]` and `[[:>:]]` that appear in the
/// paper's multi-valued-attribute queries. Matching is case-sensitive.
///
/// A pattern without any leading/trailing `%` is anchored at both ends,
/// per the SQL standard.
pub fn like_match(text: &str, pattern: &str) -> bool {
    // Fast path for the word-boundary form: [[:<:]]WORD[[:>:]]
    if let Some(word) = pattern
        .strip_prefix("[[:<:]]")
        .and_then(|rest| rest.strip_suffix("[[:>:]]"))
    {
        return contains_word(text, word);
    }
    like_rec(text.as_bytes(), pattern.as_bytes())
}

fn like_rec(t: &[u8], p: &[u8]) -> bool {
    if p.is_empty() {
        return t.is_empty();
    }
    match p[0] {
        b'%' => {
            // collapse consecutive %
            let rest = &p[1..];
            if rest.is_empty() {
                return true;
            }
            for skip in 0..=t.len() {
                if like_rec(&t[skip..], rest) {
                    return true;
                }
            }
            false
        }
        b'_' => !t.is_empty() && like_rec(&t[1..], &p[1..]),
        b'\\' if p.len() > 1 => {
            !t.is_empty() && t[0] == p[1] && like_rec(&t[1..], &p[2..])
        }
        c => !t.is_empty() && t[0] == c && like_rec(&t[1..], &p[1..]),
    }
}

/// True when `word` occurs in `text` delimited by non-word characters —
/// the semantics of `[[:<:]]word[[:>:]]`.
pub fn contains_word(text: &str, word: &str) -> bool {
    if word.is_empty() {
        return false;
    }
    let tb = text.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = text[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_word_byte(tb[at - 1]);
        let end = at + word.len();
        let after_ok = end >= tb.len() || !is_word_byte(tb[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
        if start >= text.len() {
            break;
        }
    }
    false
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_basic() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_"));
        assert!(!like_match("hello", "world"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn like_anchoring() {
        assert!(!like_match("xhello", "hello"));
        assert!(!like_match("hellox", "hello"));
        assert!(like_match("xhellox", "%hello%"));
    }

    #[test]
    fn word_boundary_patterns() {
        // 'U1' must match in "U1,U2" but not inside "U11,U12".
        assert!(like_match("U1,U2", "[[:<:]]U1[[:>:]]"));
        assert!(!like_match("U11,U12", "[[:<:]]U1[[:>:]]"));
        assert!(like_match("U2;U1", "[[:<:]]U1[[:>:]]"));
        assert!(like_match("U1", "[[:<:]]U1[[:>:]]"));
        assert!(!like_match("XU1", "[[:<:]]U1[[:>:]]"));
    }

    #[test]
    fn three_valued_logic() {
        let t = PExpr::Const(Value::Bool(true));
        let f = PExpr::Const(Value::Bool(false));
        let n = PExpr::Const(Value::Null);
        let row: Row = vec![];
        // NULL AND FALSE = FALSE
        assert_eq!(
            PExpr::And(Box::new(n.clone()), Box::new(f.clone())).eval(&row),
            Value::Bool(false)
        );
        // NULL AND TRUE = NULL
        assert_eq!(PExpr::And(Box::new(n.clone()), Box::new(t.clone())).eval(&row), Value::Null);
        // NULL OR TRUE = TRUE
        assert_eq!(
            PExpr::Or(Box::new(n.clone()), Box::new(t.clone())).eval(&row),
            Value::Bool(true)
        );
        // NOT NULL = NULL
        assert_eq!(PExpr::Not(Box::new(n.clone())).eval(&row), Value::Null);
    }

    #[test]
    fn null_comparison_filters_rows() {
        let e = PExpr::col_eq(0, Value::Int(1));
        assert!(!e.eval_bool(&vec![Value::Null]), "NULL = 1 is UNKNOWN, row filtered");
        assert!(e.eval_bool(&vec![Value::Int(1)]));
    }

    #[test]
    fn concat_propagates_null() {
        let e = PExpr::Concat(
            Box::new(PExpr::Col(0)),
            Box::new(PExpr::Const(Value::text("x"))),
        );
        assert_eq!(e.eval(&vec![Value::Null]), Value::Null);
        assert_eq!(e.eval(&vec![Value::text("a")]), Value::text("ax"));
    }

    #[test]
    fn dynamic_like_pattern_from_row() {
        // ON t.User_IDs LIKE '[[:<:]]' || u.User_ID || '[[:>:]]'
        let pattern = PExpr::Concat(
            Box::new(PExpr::Concat(
                Box::new(PExpr::Const(Value::text("[[:<:]]"))),
                Box::new(PExpr::Col(1)),
            )),
            Box::new(PExpr::Const(Value::text("[[:>:]]"))),
        );
        let e = PExpr::Like(Box::new(PExpr::Col(0)), Box::new(pattern));
        assert!(e.eval_bool(&vec![Value::text("U1,U2"), Value::text("U2")]));
        assert!(!e.eval_bool(&vec![Value::text("U1,U2"), Value::text("U3")]));
    }

    #[test]
    fn in_list_three_valued() {
        let e = PExpr::InList(Box::new(PExpr::Col(0)), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(e.eval(&vec![Value::Int(2)]), Value::Bool(true));
        assert_eq!(e.eval(&vec![Value::Int(3)]), Value::Bool(false));
        assert_eq!(e.eval(&vec![Value::Null]), Value::Null);
    }

    #[test]
    fn add_mixes_types() {
        let e = PExpr::Add(Box::new(PExpr::Col(0)), Box::new(PExpr::Const(Value::Int(1))));
        assert_eq!(e.eval(&vec![Value::Int(2)]), Value::Int(3));
        assert_eq!(e.eval(&vec![Value::Float(2.5)]), Value::Float(3.5));
        assert_eq!(e.eval(&vec![Value::Null]), Value::Null);
    }

    #[test]
    fn escaped_like_wildcard() {
        assert!(like_match("100%", "100\\%"));
        assert!(!like_match("1000", "100\\%"));
    }
}
