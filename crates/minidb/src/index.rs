//! Ordered secondary indexes.
//!
//! Indexes are `BTreeMap`s from encoded key tuples to row-id postings.
//! They provide point and range lookups and — crucially for the paper's
//! Figure 8 experiments — they impose a maintenance cost on every INSERT,
//! UPDATE, and DELETE, which is exactly the mechanism behind the Index
//! Overuse AP.

use crate::value::{Row, RowId, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;

/// A key in an index: a tuple of values with a total order.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexKey(pub Vec<Value>);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            match a.total_cmp(b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

/// A secondary index over one or more columns.
#[derive(Debug, Clone)]
pub struct Index {
    /// Index name.
    pub name: String,
    /// Indexed column positions within the table schema.
    pub columns: Vec<usize>,
    /// Whether duplicate keys are rejected.
    pub unique: bool,
    map: BTreeMap<IndexKey, Vec<RowId>>,
    entries: usize,
}

/// Error returned when a unique index rejects a duplicate key.
#[derive(Debug, Clone, PartialEq)]
pub struct UniqueViolation {
    /// The violating index.
    pub index: String,
    /// Rendered key.
    pub key: String,
}

impl Index {
    /// Create an empty index.
    pub fn new(name: impl Into<String>, columns: Vec<usize>, unique: bool) -> Self {
        Index { name: name.into(), columns, unique, map: BTreeMap::new(), entries: 0 }
    }

    /// Extract this index's key from a row.
    pub fn key_of(&self, row: &Row) -> IndexKey {
        IndexKey(self.columns.iter().map(|&c| row[c].clone()).collect())
    }

    /// Insert a row's entry. Unique indexes reject duplicate non-NULL keys.
    pub fn insert(&mut self, row: &Row, rid: RowId) -> Result<(), UniqueViolation> {
        let key = self.key_of(row);
        let postings = self.map.entry(key.clone()).or_default();
        if self.unique && !postings.is_empty() && !key.0.iter().any(Value::is_null) {
            return Err(UniqueViolation {
                index: self.name.clone(),
                key: format!("{:?}", key.0),
            });
        }
        postings.push(rid);
        self.entries += 1;
        Ok(())
    }

    /// Remove a row's entry.
    pub fn remove(&mut self, row: &Row, rid: RowId) {
        let key = self.key_of(row);
        if let Some(postings) = self.map.get_mut(&key) {
            if let Some(p) = postings.iter().position(|&r| r == rid) {
                postings.swap_remove(p);
                self.entries -= 1;
            }
            if postings.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// Point lookup.
    pub fn lookup(&self, key: &IndexKey) -> &[RowId] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Point lookup by single value (for single-column indexes).
    pub fn lookup_value(&self, v: &Value) -> &[RowId] {
        self.map
            .get(&IndexKey(vec![v.clone()]))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Range scan over `[low, high]` (inclusive, either side optional).
    pub fn range(&self, low: Option<&IndexKey>, high: Option<&IndexKey>) -> Vec<RowId> {
        let lo = low.map(|k| Bound::Included(k.clone())).unwrap_or(Bound::Unbounded);
        let hi = high.map(|k| Bound::Included(k.clone())).unwrap_or(Bound::Unbounded);
        self.map.range((lo, hi)).flat_map(|(_, v)| v.iter().copied()).collect()
    }

    /// Iterate all row ids in key order — the mechanism behind
    /// index-assisted (sorted) grouped aggregation in Fig 8b.
    pub fn scan_ordered(&self) -> impl Iterator<Item = (&IndexKey, &[RowId])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_lookup_remove() {
        let mut idx = Index::new("i", vec![0], false);
        idx.insert(&row(&[5, 1]), 0).unwrap();
        idx.insert(&row(&[5, 2]), 1).unwrap();
        idx.insert(&row(&[7, 3]), 2).unwrap();
        assert_eq!(idx.lookup_value(&Value::Int(5)), &[0, 1]);
        idx.remove(&row(&[5, 1]), 0);
        assert_eq!(idx.lookup_value(&Value::Int(5)), &[1]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut idx = Index::new("u", vec![0], true);
        idx.insert(&row(&[1]), 0).unwrap();
        assert!(idx.insert(&row(&[1]), 1).is_err());
        // NULL keys do not collide
        let mut idx2 = Index::new("u2", vec![0], true);
        idx2.insert(&vec![Value::Null], 0).unwrap();
        idx2.insert(&vec![Value::Null], 1).unwrap();
    }

    #[test]
    fn range_scan_inclusive() {
        let mut idx = Index::new("i", vec![0], false);
        for (rid, v) in [2i64, 4, 6, 8].iter().enumerate() {
            idx.insert(&row(&[*v]), rid).unwrap();
        }
        let lo = IndexKey(vec![Value::Int(4)]);
        let hi = IndexKey(vec![Value::Int(6)]);
        assert_eq!(idx.range(Some(&lo), Some(&hi)), vec![1, 2]);
        assert_eq!(idx.range(None, Some(&lo)), vec![0, 1]);
        assert_eq!(idx.range(Some(&hi), None), vec![2, 3]);
    }

    #[test]
    fn composite_key_ordering() {
        let mut idx = Index::new("c", vec![0, 1], false);
        idx.insert(&row(&[1, 9]), 0).unwrap();
        idx.insert(&row(&[1, 2]), 1).unwrap();
        idx.insert(&row(&[0, 5]), 2).unwrap();
        let order: Vec<RowId> =
            idx.scan_ordered().flat_map(|(_, rids)| rids.to_vec()).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn distinct_keys_counts_groups() {
        let mut idx = Index::new("g", vec![0], false);
        for (rid, v) in [1i64, 1, 2, 2, 2, 3].iter().enumerate() {
            idx.insert(&row(&[*v]), rid).unwrap();
        }
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.len(), 6);
    }
}
