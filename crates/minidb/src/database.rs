//! The database catalog: tables plus cross-table (foreign key) enforcement.
//!
//! Foreign keys are enforced here rather than in [`Table`] because both
//! sides of the constraint must be visible:
//!
//! * on **insert/update** of a referencing row, the referenced table is
//!   probed — via its index when one exists, else by sequential scan;
//! * on **delete** from a referenced table, referencing tables are probed
//!   the same way (cascade or restrict). The probe strategy is exactly the
//!   mechanism behind the paper's Fig 8d–f: PostgreSQL does not create an
//!   index on the referencing column automatically, so FK maintenance is
//!   O(N) until the user creates one (the 142× speedup).

use crate::error::DbError;
use crate::expr::PExpr;
use crate::schema::TableSchema;
use crate::table::Table;
use crate::value::{Row, RowId, Value};
use std::collections::BTreeMap;

/// An in-memory database: a catalog of tables.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table from a schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), DbError> {
        let key = schema.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(DbError::DuplicateTable { table: schema.name });
        }
        self.tables.insert(key, Table::new(schema));
        Ok(())
    }

    /// Drop a table.
    pub fn drop_table(&mut self, name: &str) -> Result<(), DbError> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownTable { table: name.to_string() })
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable { table: name.to_string() })
    }

    /// Look up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable { table: name.to_string() })
    }

    /// Iterate over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Table names (as declared).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.schema.name.clone()).collect()
    }

    /// Insert a row, enforcing foreign keys.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<RowId, DbError> {
        self.check_foreign_keys(table, &row)?;
        self.table_mut(table)?.insert(row)
    }

    /// Insert many rows (bulk load helper used by the workload generators).
    pub fn insert_many(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<usize, DbError> {
        let mut n = 0;
        for row in rows {
            self.insert(table, row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Update rows matching `pred`, applying `assignments` (column index →
    /// new value). Returns the number of rows updated. Foreign keys on the
    /// updated columns are re-checked; every table index is maintained.
    pub fn update_where(
        &mut self,
        table: &str,
        pred: &PExpr,
        assignments: &[(usize, Value)],
    ) -> Result<usize, DbError> {
        let matching: Vec<(RowId, Row)> = {
            let t = self.table(table)?;
            t.scan()
                .filter(|(_, row)| pred.eval_bool(row))
                .map(|(rid, row)| (rid, row.clone()))
                .collect()
        };
        let mut updated = 0;
        for (rid, mut row) in matching {
            for (ci, v) in assignments {
                row[*ci] = v.clone();
            }
            self.check_foreign_keys(table, &row)?;
            self.table_mut(table)?.update_row(rid, row)?;
            updated += 1;
        }
        Ok(updated)
    }

    /// Delete rows matching `pred`, enforcing referential integrity:
    /// referencing rows are cascaded when the FK says so, otherwise the
    /// delete is rejected. Returns the number of rows deleted from `table`
    /// (cascaded deletions not included).
    pub fn delete_where(&mut self, table: &str, pred: &PExpr) -> Result<usize, DbError> {
        let victims: Vec<(RowId, Row)> = {
            let t = self.table(table)?;
            t.scan()
                .filter(|(_, row)| pred.eval_bool(row))
                .map(|(rid, row)| (rid, row.clone()))
                .collect()
        };
        // Collect referencing constraints pointing at `table`.
        let referencing: Vec<(String, crate::schema::ForeignKey)> = self
            .tables
            .values()
            .flat_map(|t| {
                t.schema
                    .foreign_keys
                    .iter()
                    .filter(|fk| fk.ref_table.eq_ignore_ascii_case(table))
                    .map(|fk| (t.schema.name.clone(), fk.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();

        for (rid, row) in &victims {
            for (ref_by, fk) in &referencing {
                let key_vals: Vec<Value> = {
                    let target = self.table(table)?;
                    fk.ref_columns
                        .iter()
                        .map(|c| {
                            target
                                .schema
                                .column_index(c)
                                .map(|i| row[i].clone())
                                .unwrap_or(Value::Null)
                        })
                        .collect()
                };
                let dependents = self.find_referencing_rows(ref_by, fk, &key_vals)?;
                if dependents.is_empty() {
                    continue;
                }
                if fk.on_delete_cascade {
                    let t = self.table_mut(ref_by)?;
                    for d in dependents {
                        // Row may already be gone via an earlier cascade.
                        let _ = t.delete_row(d);
                    }
                } else {
                    return Err(DbError::RestrictViolation {
                        table: table.to_string(),
                        referencing: ref_by.clone(),
                    });
                }
            }
            let _ = rid;
        }
        let t = self.table_mut(table)?;
        let mut deleted = 0;
        for (rid, _) in victims {
            if t.delete_row(rid).is_ok() {
                deleted += 1;
            }
        }
        Ok(deleted)
    }

    /// Probe `referencing` table for rows whose FK columns equal
    /// `key_vals`. Uses an index on the referencing column when available,
    /// otherwise a sequential scan.
    fn find_referencing_rows(
        &self,
        referencing: &str,
        fk: &crate::schema::ForeignKey,
        key_vals: &[Value],
    ) -> Result<Vec<RowId>, DbError> {
        let t = self.table(referencing)?;
        let fk_cols: Vec<usize> = fk
            .columns
            .iter()
            .map(|c| {
                t.schema.column_index(c).ok_or_else(|| DbError::UnknownColumn {
                    table: referencing.to_string(),
                    column: c.clone(),
                })
            })
            .collect::<Result<_, _>>()?;
        // Index probe when a single-column FK has an index.
        if fk_cols.len() == 1 {
            if let Some(idx) = t.index_on(fk_cols[0]) {
                if idx.columns.len() == 1 {
                    return Ok(idx.lookup_value(&key_vals[0]).to_vec());
                }
            }
        }
        // Sequential scan fallback — the expensive path of Fig 8d.
        Ok(t.scan()
            .filter(|(_, row)| {
                fk_cols
                    .iter()
                    .zip(key_vals)
                    .all(|(&ci, kv)| row[ci].sql_eq(kv) == Some(true))
            })
            .map(|(rid, _)| rid)
            .collect())
    }

    /// Enforce every FK declared on `table` for a candidate row.
    fn check_foreign_keys(&self, table: &str, row: &Row) -> Result<(), DbError> {
        let t = self.table(table)?;
        for fk in &t.schema.foreign_keys {
            let vals: Vec<Value> = fk
                .columns
                .iter()
                .map(|c| {
                    t.schema
                        .column_index(c)
                        .and_then(|i| row.get(i).cloned())
                        .unwrap_or(Value::Null)
                })
                .collect();
            // NULL FK values are permitted (MATCH SIMPLE).
            if vals.iter().any(Value::is_null) {
                continue;
            }
            let target = self.table(&fk.ref_table)?;
            let ref_cols: Vec<usize> = fk
                .ref_columns
                .iter()
                .map(|c| {
                    target.schema.column_index(c).ok_or_else(|| DbError::UnknownColumn {
                        table: fk.ref_table.clone(),
                        column: c.clone(),
                    })
                })
                .collect::<Result<_, _>>()?;
            // Index probe on the referenced side when possible.
            let found = if ref_cols.len() == 1 {
                match target.index_on(ref_cols[0]) {
                    Some(idx) if idx.columns.len() == 1 => {
                        !idx.lookup_value(&vals[0]).is_empty()
                    }
                    _ => target.scan().any(|(_, r)| r[ref_cols[0]].sql_eq(&vals[0]) == Some(true)),
                }
            } else {
                target.scan().any(|(_, r)| {
                    ref_cols
                        .iter()
                        .zip(&vals)
                        .all(|(&ci, v)| r[ci].sql_eq(v) == Some(true))
                })
            };
            if !found {
                return Err(DbError::ForeignKey {
                    table: table.to_string(),
                    constraint: fk.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Total live rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ForeignKey, TableSchema};
    use crate::value::DataType;

    fn db_with_fk(cascade: bool) -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("Tenant")
                .column(Column::new("Tenant_ID", DataType::Text).not_null())
                .column(Column::new("Zone_ID", DataType::Text))
                .primary_key(&["Tenant_ID"]),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("Questionnaire")
                .column(Column::new("Q_ID", DataType::Text).not_null())
                .column(Column::new("Tenant_ID", DataType::Text))
                .primary_key(&["Q_ID"])
                .foreign_key(ForeignKey {
                    name: "fk_tenant".into(),
                    columns: vec!["Tenant_ID".into()],
                    ref_table: "Tenant".into(),
                    ref_columns: vec!["Tenant_ID".into()],
                    on_delete_cascade: cascade,
                }),
        )
        .unwrap();
        db.insert("Tenant", vec![Value::text("T1"), Value::text("Z1")]).unwrap();
        db
    }

    #[test]
    fn fk_insert_enforced() {
        let mut db = db_with_fk(false);
        db.insert("Questionnaire", vec![Value::text("Q1"), Value::text("T1")]).unwrap();
        let err = db
            .insert("Questionnaire", vec![Value::text("Q2"), Value::text("T9")])
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKey { .. }));
    }

    #[test]
    fn fk_null_values_allowed() {
        let mut db = db_with_fk(false);
        db.insert("Questionnaire", vec![Value::text("Q1"), Value::Null]).unwrap();
    }

    #[test]
    fn delete_restrict() {
        let mut db = db_with_fk(false);
        db.insert("Questionnaire", vec![Value::text("Q1"), Value::text("T1")]).unwrap();
        let err = db
            .delete_where("Tenant", &PExpr::col_eq(0, Value::text("T1")))
            .unwrap_err();
        assert!(matches!(err, DbError::RestrictViolation { .. }));
    }

    #[test]
    fn delete_cascade() {
        let mut db = db_with_fk(true);
        db.insert("Questionnaire", vec![Value::text("Q1"), Value::text("T1")]).unwrap();
        db.insert("Questionnaire", vec![Value::text("Q2"), Value::text("T1")]).unwrap();
        let n = db.delete_where("Tenant", &PExpr::col_eq(0, Value::text("T1"))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.table("Questionnaire").unwrap().len(), 0, "cascade removed children");
    }

    #[test]
    fn update_where_applies_assignments() {
        let mut db = db_with_fk(false);
        db.insert("Tenant", vec![Value::text("T2"), Value::text("Z1")]).unwrap();
        let n = db
            .update_where(
                "Tenant",
                &PExpr::col_eq(1, Value::text("Z1")),
                &[(1, Value::text("Z9"))],
            )
            .unwrap();
        assert_eq!(n, 2);
        let t = db.table("Tenant").unwrap();
        assert!(t.scan().all(|(_, r)| r[1] == Value::text("Z9")));
    }

    #[test]
    fn update_rechecks_fk() {
        let mut db = db_with_fk(false);
        db.insert("Questionnaire", vec![Value::text("Q1"), Value::text("T1")]).unwrap();
        let err = db
            .update_where(
                "Questionnaire",
                &PExpr::col_eq(0, Value::text("Q1")),
                &[(1, Value::text("T404"))],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKey { .. }));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db_with_fk(false);
        let err = db.create_table(TableSchema::new("tenant")).unwrap_err();
        assert!(matches!(err, DbError::DuplicateTable { .. }));
    }

    #[test]
    fn no_fk_means_no_enforcement() {
        // The paper's No Foreign Key AP: without a declared FK, dangling
        // references are silently accepted.
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("A")
                .column(Column::new("id", DataType::Int))
                .primary_key(&["id"]),
        )
        .unwrap();
        db.create_table(
            TableSchema::new("B")
                .column(Column::new("a_id", DataType::Int)),
        )
        .unwrap();
        db.insert("B", vec![Value::Int(42)]).unwrap(); // dangling, accepted
        assert_eq!(db.table("B").unwrap().len(), 1);
    }
}
