//! Runtime values and SQL three-valued comparison semantics.

use std::cmp::Ordering;
use std::fmt;

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float — deliberately inexact, so the Rounding Errors AP
    /// can be demonstrated on real data.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
    /// Microseconds since the epoch. `with_timezone` records whether the
    /// schema declared a timezone (the Missing Timezone data AP).
    Timestamp,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Timestamp (epoch microseconds).
    Timestamp(i64),
}

impl Value {
    /// Shorthand text constructor.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value's runtime type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// Numeric view (ints and floats), used by arithmetic and aggregates.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison: returns `None` when either side is NULL (UNKNOWN) or
    /// the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Timestamp(a), Int(b)) | (Int(b), Timestamp(a)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality under three-valued logic: `None` for NULL operands.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Total order used for index keys and sorting (NULLs first, then by
    /// type discriminant, then by value; NaN sorts greatest among floats).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) | Timestamp(_) => 2,
                Text(_) => 3,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (a, b) => {
                // numeric family: compare as f64 with total order on NaN
                let fa = match a {
                    Int(i) => *i as f64,
                    Float(f) => *f,
                    Timestamp(t) => *t as f64,
                    _ => unreachable!(),
                };
                let fb = match b {
                    Int(i) => *i as f64,
                    Float(f) => *f,
                    Timestamp(t) => *t as f64,
                    _ => unreachable!(),
                };
                fa.total_cmp(&fb)
            }
        }
    }

    /// Coerce the value to `ty` if losslessly possible (used by INSERT
    /// validation and by the Incorrect Data Type detection rule).
    pub fn coerce(&self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (v, t) if v.data_type() == Some(t) => Some(v.clone()),
            (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
            (Value::Int(i), DataType::Timestamp) => Some(Value::Timestamp(*i)),
            (Value::Int(i), DataType::Bool) if *i == 0 || *i == 1 => {
                Some(Value::Bool(*i == 1))
            }
            (Value::Float(f), DataType::Int) if f.fract() == 0.0 => Some(Value::Int(*f as i64)),
            (Value::Text(s), DataType::Int) => s.trim().parse().ok().map(Value::Int),
            (Value::Text(s), DataType::Float) => s.trim().parse().ok().map(Value::Float),
            (Value::Text(s), DataType::Bool) => match s.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Some(Value::Bool(true)),
                "false" | "f" | "0" => Some(Value::Bool(false)),
                _ => None,
            },
            (v, DataType::Text) => Some(Value::Text(v.to_string())),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Timestamp(t) => write!(f, "ts:{t}"),
        }
    }
}

/// A table row: one value per column.
pub type Row = Vec<Value>;

/// Stable row identifier within a table.
pub type RowId = usize;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None, "NULL = NULL is UNKNOWN");
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Float(1.5).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::text("1")), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_puts_nulls_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn total_order_handles_nan() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(1.0);
        // must not panic, must be consistent
        let o1 = a.total_cmp(&b);
        let o2 = b.total_cmp(&a);
        assert_eq!(o1, o2.reverse());
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::text("42").coerce(DataType::Int), Some(Value::Int(42)));
        assert_eq!(Value::text("4.5").coerce(DataType::Float), Some(Value::Float(4.5)));
        assert_eq!(Value::text("abc").coerce(DataType::Int), None);
        assert_eq!(Value::Int(1).coerce(DataType::Bool), Some(Value::Bool(true)));
        assert_eq!(Value::Int(7).coerce(DataType::Text), Some(Value::text("7")));
        assert_eq!(Value::Null.coerce(DataType::Int), Some(Value::Null));
    }

    #[test]
    fn float_storage_is_inexact() {
        // The Rounding Errors AP mechanism: 0.1 + 0.2 != 0.3 in FLOAT.
        let sum = Value::Float(0.1 + 0.2);
        assert_eq!(sum.sql_eq(&Value::Float(0.3)), Some(false));
    }
}
