//! Table schemas and declarative constraints.

use crate::value::{DataType, Value};

/// One column in a table schema.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Data type.
    pub dtype: DataType,
    /// `NOT NULL` declared.
    pub not_null: bool,
    /// For [`DataType::Timestamp`]: whether the declaration carried a
    /// timezone (drives the Missing Timezone data rule).
    pub with_timezone: bool,
}

impl Column {
    /// Construct a nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column { name: name.into(), dtype, not_null: false, with_timezone: false }
    }

    /// Builder: mark NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    /// Builder: mark timestamp as timezone-aware.
    pub fn with_timezone(mut self) -> Self {
        self.with_timezone = true;
        self
    }
}

/// A CHECK constraint enforced on ingest.
#[derive(Debug, Clone)]
pub enum Check {
    /// `col IN (v1, v2, ...)` — the Enumerated Types AP's usual encoding.
    InList {
        /// Constraint name (needed for `ALTER TABLE ... DROP CONSTRAINT`).
        name: String,
        /// Constrained column.
        column: String,
        /// Permitted values.
        values: Vec<Value>,
    },
    /// `col BETWEEN min AND max` — a domain constraint.
    Range {
        /// Constraint name.
        name: String,
        /// Constrained column.
        column: String,
        /// Inclusive lower bound.
        min: Value,
        /// Inclusive upper bound.
        max: Value,
    },
}

impl Check {
    /// The constraint's name.
    pub fn name(&self) -> &str {
        match self {
            Check::InList { name, .. } | Check::Range { name, .. } => name,
        }
    }

    /// The constrained column.
    pub fn column(&self) -> &str {
        match self {
            Check::InList { column, .. } | Check::Range { column, .. } => column,
        }
    }

    /// Evaluate the check against a candidate value. NULL passes (SQL CHECK
    /// semantics: only FALSE rejects).
    pub fn passes(&self, v: &Value) -> bool {
        if v.is_null() {
            return true;
        }
        match self {
            Check::InList { values, .. } => {
                values.iter().any(|p| v.sql_eq(p) == Some(true))
            }
            Check::Range { min, max, .. } => {
                v.sql_cmp(min).map(|o| o != std::cmp::Ordering::Less).unwrap_or(false)
                    && v.sql_cmp(max).map(|o| o != std::cmp::Ordering::Greater).unwrap_or(false)
            }
        }
    }
}

/// A foreign key constraint.
#[derive(Debug, Clone)]
pub struct ForeignKey {
    /// Constraint name.
    pub name: String,
    /// Referencing columns in this table.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns.
    pub ref_columns: Vec<String>,
    /// Cascade deletes from the referenced table.
    pub on_delete_cascade: bool,
}

/// A table schema.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in order.
    pub columns: Vec<Column>,
    /// Primary key column names (empty ⇒ no PK — itself an AP).
    pub primary_key: Vec<String>,
    /// CHECK constraints.
    pub checks: Vec<Check>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Start building a schema.
    pub fn new(name: impl Into<String>) -> Self {
        TableSchema {
            name: name.into(),
            columns: Vec::new(),
            primary_key: Vec::new(),
            checks: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Builder: append a column.
    pub fn column(mut self, col: Column) -> Self {
        self.columns.push(col);
        self
    }

    /// Builder: set the primary key.
    pub fn primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Builder: add a CHECK constraint.
    pub fn check(mut self, check: Check) -> Self {
        self.checks.push(check);
        self
    }

    /// Builder: add a foreign key.
    pub fn foreign_key(mut self, fk: ForeignKey) -> Self {
        self.foreign_keys.push(fk);
        self
    }

    /// Index of a column by name (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column by name.
    pub fn get_column(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Indices of the primary key columns.
    pub fn primary_key_indices(&self) -> Vec<usize> {
        self.primary_key.iter().filter_map(|c| self.column_index(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::new("User")
            .column(Column::new("User_ID", DataType::Text).not_null())
            .column(Column::new("Name", DataType::Text))
            .column(Column::new("Role", DataType::Text))
            .primary_key(&["User_ID"])
            .check(Check::InList {
                name: "User_Role_Check".into(),
                column: "Role".into(),
                values: vec![Value::text("R1"), Value::text("R2"), Value::text("R3")],
            })
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.column_index("user_id"), Some(0));
        assert_eq!(s.column_index("ROLE"), Some(2));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn check_in_list() {
        let s = sample();
        let c = &s.checks[0];
        assert!(c.passes(&Value::text("R1")));
        assert!(!c.passes(&Value::text("R9")));
        assert!(c.passes(&Value::Null), "NULL passes CHECK");
    }

    #[test]
    fn check_range() {
        let c = Check::Range {
            name: "rating_range".into(),
            column: "rating".into(),
            min: Value::Int(1),
            max: Value::Int(5),
        };
        assert!(c.passes(&Value::Int(3)));
        assert!(!c.passes(&Value::Int(0)));
        assert!(!c.passes(&Value::Int(6)));
        assert!(!c.passes(&Value::text("x")), "incomparable fails the check");
    }

    #[test]
    fn pk_indices() {
        let s = sample();
        assert_eq!(s.primary_key_indices(), vec![0]);
    }
}
