//! Query execution operators.
//!
//! The operators are deliberately explicit — callers pick the physical
//! plan. That asymmetry is the point: the paper's performance experiments
//! compare *plans* (expression join vs index join, table scan vs index
//! scan, hash vs index-assisted aggregation), and the benchmark harness
//! needs to select each side of the comparison directly.

use crate::expr::PExpr;
use crate::index::IndexKey;
use crate::table::Table;
use crate::value::{Row, RowId, Value};
use std::collections::HashMap;

/// Sequential scan with a filter predicate. Returns matching rows.
pub fn seq_scan_filter(table: &Table, pred: &PExpr) -> Vec<Row> {
    table.scan().filter(|(_, r)| pred.eval_bool(r)).map(|(_, r)| r.clone()).collect()
}

/// Count matching rows without materialising them.
pub fn seq_scan_count(table: &Table, pred: &PExpr) -> usize {
    table.scan().filter(|(_, r)| pred.eval_bool(r)).count()
}

/// Index point lookup: rows whose indexed column equals `key`. The caller
/// may pass a residual predicate evaluated on the fetched rows.
pub fn index_scan_eq(
    table: &Table,
    index_name: &str,
    key: &Value,
    residual: Option<&PExpr>,
) -> Vec<Row> {
    let Some(idx) = table.index(index_name) else { return Vec::new() };
    idx.lookup_value(key)
        .iter()
        .filter_map(|&rid| table.get(rid))
        .filter(|r| residual.map(|p| p.eval_bool(r)).unwrap_or(true))
        .map(|r| r.to_vec())
        .collect()
}

/// Index range scan over `[low, high]` on a single-column index.
pub fn index_scan_range(
    table: &Table,
    index_name: &str,
    low: Option<&Value>,
    high: Option<&Value>,
) -> Vec<Row> {
    let Some(idx) = table.index(index_name) else { return Vec::new() };
    let lo = low.map(|v| IndexKey(vec![v.clone()]));
    let hi = high.map(|v| IndexKey(vec![v.clone()]));
    idx.range(lo.as_ref(), hi.as_ref())
        .into_iter()
        .filter_map(|rid| table.get(rid))
        .map(|r| r.to_vec())
        .collect()
}

/// Nested-loop join with an arbitrary ON expression evaluated over the
/// concatenated row `[left ++ right]`. This is the only plan available for
/// expression joins (e.g. the multi-valued-attribute LIKE join) — the
/// paper's Fig 3 slow path.
pub fn nested_loop_join(left: &Table, right: &Table, on: &PExpr) -> Vec<Row> {
    let mut out = Vec::new();
    for (_, l) in left.scan() {
        let mut combined = l.clone();
        let left_len = combined.len();
        for (_, r) in right.scan() {
            combined.truncate(left_len);
            combined.extend(r.iter().cloned());
            if on.eval_bool(&combined) {
                out.push(combined.clone());
            }
        }
    }
    out
}

/// Hash equi-join on `left.cols[left_col] = right.cols[right_col]`.
pub fn hash_join(left: &Table, left_col: usize, right: &Table, right_col: usize) -> Vec<Row> {
    // Build on the smaller side.
    let mut build: HashMap<String, Vec<RowId>> = HashMap::new();
    for (rid, r) in right.scan() {
        if r[right_col].is_null() {
            continue;
        }
        build.entry(hash_key(&r[right_col])).or_default().push(rid);
    }
    let mut out = Vec::new();
    for (_, l) in left.scan() {
        if l[left_col].is_null() {
            continue;
        }
        if let Some(rids) = build.get(&hash_key(&l[left_col])) {
            for &rid in rids {
                if let Some(r) = right.get(rid) {
                    if l[left_col].sql_eq(&r[right_col]) == Some(true) {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        out.push(row);
                    }
                }
            }
        }
    }
    out
}

/// Index nested-loop join: for each outer row, probe an index on the inner
/// table. `inner_index` must be a single-column index over the join column.
/// This is the fast path that replaces the LIKE join after the MVA fix.
pub fn index_nl_join(
    outer: &Table,
    outer_col: usize,
    inner: &Table,
    inner_index: &str,
) -> Vec<Row> {
    let Some(idx) = inner.index(inner_index) else { return Vec::new() };
    let mut out = Vec::new();
    for (_, o) in outer.scan() {
        if o[outer_col].is_null() {
            continue;
        }
        for &rid in idx.lookup_value(&o[outer_col]) {
            if let Some(r) = inner.get(rid) {
                let mut row = o.clone();
                row.extend(r.iter().cloned());
                out.push(row);
            }
        }
    }
    out
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`
    Count,
    /// `SUM(col)`
    Sum,
    /// `AVG(col)`
    Avg,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
}

/// Accumulator for one aggregate.
#[derive(Debug, Clone, Default)]
struct AggState {
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn feed(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(f) = v.as_f64() {
            self.sum += f;
        }
        match &self.min {
            Some(m) if v.total_cmp(m) != std::cmp::Ordering::Less => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v.total_cmp(m) != std::cmp::Ordering::Greater => {}
            _ => self.max = Some(v.clone()),
        }
    }

    fn finish(&self, f: AggFunc) -> Value {
        match f {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Ungrouped aggregate over a whole column.
pub fn aggregate(table: &Table, col: usize, func: AggFunc) -> Value {
    let mut st = AggState::default();
    for (_, r) in table.scan() {
        if func == AggFunc::Count {
            st.count += 1; // COUNT(*) counts rows, not non-null values
        } else {
            st.feed(&r[col]);
        }
    }
    st.finish(func)
}

/// Hash-based grouped aggregation: `SELECT group_col, f(agg_col) ... GROUP
/// BY group_col`. Output rows are `[group value, aggregate]`, unordered.
pub fn hash_group_aggregate(
    table: &Table,
    group_col: usize,
    agg_col: usize,
    func: AggFunc,
) -> Vec<Row> {
    let mut groups: HashMap<String, (Value, AggState)> = HashMap::new();
    for (_, r) in table.scan() {
        let key = hash_key(&r[group_col]);
        let entry = groups
            .entry(key)
            .or_insert_with(|| (r[group_col].clone(), AggState::default()));
        if func == AggFunc::Count {
            entry.1.count += 1;
        } else {
            entry.1.feed(&r[agg_col]);
        }
    }
    groups
        .into_values()
        .map(|(g, st)| vec![g, st.finish(func)])
        .collect()
}

/// Index-assisted grouped aggregation: walks an index on the group column
/// in key order, so groups arrive pre-clustered (the fix side of Fig 8b).
pub fn sorted_group_aggregate(
    table: &Table,
    index_name: &str,
    agg_col: usize,
    func: AggFunc,
) -> Vec<Row> {
    let Some(idx) = table.index(index_name) else { return Vec::new() };
    let mut out = Vec::new();
    for (key, rids) in idx.scan_ordered() {
        let mut st = AggState::default();
        for &rid in rids {
            if let Some(r) = table.get(rid) {
                if func == AggFunc::Count {
                    st.count += 1;
                } else {
                    st.feed(&r[agg_col]);
                }
            }
        }
        out.push(vec![key.0[0].clone(), st.finish(func)]);
    }
    out
}

/// Remove duplicate rows (the executor behind `SELECT DISTINCT`).
pub fn distinct(rows: Vec<Row>) -> Vec<Row> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for r in rows {
        let key: String = r.iter().map(hash_key).collect::<Vec<_>>().join("\u{1}");
        if seen.insert(key) {
            out.push(r);
        }
    }
    out
}

/// Sort rows by a column (total order).
pub fn sort_by_column(mut rows: Vec<Row>, col: usize, asc: bool) -> Vec<Row> {
    rows.sort_by(|a, b| {
        let o = a[col].total_cmp(&b[col]);
        if asc {
            o
        } else {
            o.reverse()
        }
    });
    rows
}

fn hash_key(v: &Value) -> String {
    match v {
        Value::Null => "\u{0}N".into(),
        Value::Int(i) => format!("i{i}"),
        Value::Float(f) => format!("f{}", f.to_bits()),
        Value::Text(s) => format!("t{s}"),
        Value::Bool(b) => format!("b{b}"),
        Value::Timestamp(t) => format!("s{t}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::schema::{Column, TableSchema};
    use crate::value::DataType;

    fn orders() -> Table {
        let mut t = Table::new(
            TableSchema::new("orders")
                .column(Column::new("id", DataType::Int).not_null())
                .column(Column::new("cust", DataType::Text))
                .column(Column::new("amount", DataType::Float))
                .primary_key(&["id"]),
        );
        let rows = [
            (1, "a", 10.0),
            (2, "b", 20.0),
            (3, "a", 30.0),
            (4, "c", 5.0),
            (5, "b", 15.0),
        ];
        for (id, c, amt) in rows {
            t.insert(vec![Value::Int(id), Value::text(c), Value::Float(amt)]).unwrap();
        }
        t
    }

    fn customers() -> Table {
        let mut t = Table::new(
            TableSchema::new("cust")
                .column(Column::new("name", DataType::Text).not_null())
                .column(Column::new("city", DataType::Text))
                .primary_key(&["name"]),
        );
        for (n, city) in [("a", "x"), ("b", "y"), ("c", "z")] {
            t.insert(vec![Value::text(n), Value::text(city)]).unwrap();
        }
        t
    }

    #[test]
    fn seq_scan_and_index_scan_agree() {
        let mut t = orders();
        t.create_index("idx_cust", &["cust"], false).unwrap();
        let pred = PExpr::col_eq(1, Value::text("a"));
        let mut via_scan = seq_scan_filter(&t, &pred);
        let mut via_index = index_scan_eq(&t, "idx_cust", &Value::text("a"), None);
        via_scan.sort_by(|x, y| x[0].total_cmp(&y[0]));
        via_index.sort_by(|x, y| x[0].total_cmp(&y[0]));
        assert_eq!(via_scan, via_index);
        assert_eq!(via_scan.len(), 2);
    }

    #[test]
    fn index_range_scan() {
        let t = orders();
        let rows = index_scan_range(&t, "orders_pkey", Some(&Value::Int(2)), Some(&Value::Int(4)));
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn join_plans_agree() {
        let o = orders();
        let c = customers();
        // customers joined to orders on name = cust
        let on = PExpr::Cmp(
            Box::new(PExpr::Col(1)),       // orders.cust in combined row
            CmpOp::Eq,
            Box::new(PExpr::Col(3)),       // cust.name at offset 3
        );
        let mut nl = nested_loop_join(&o, &c, &on);
        let mut hj = hash_join(&o, 1, &c, 0);
        let mut inl = index_nl_join(&o, 1, &c, "cust_pkey");
        for v in [&mut nl, &mut hj, &mut inl] {
            v.sort_by(|a, b| {
                a[0].total_cmp(&b[0]).then(a[3].total_cmp(&b[3]))
            });
        }
        assert_eq!(nl, hj);
        assert_eq!(hj, inl);
        assert_eq!(nl.len(), 5);
    }

    #[test]
    fn aggregates() {
        let t = orders();
        assert_eq!(aggregate(&t, 2, AggFunc::Sum), Value::Float(80.0));
        assert_eq!(aggregate(&t, 0, AggFunc::Count), Value::Int(5));
        assert_eq!(aggregate(&t, 2, AggFunc::Min), Value::Float(5.0));
        assert_eq!(aggregate(&t, 2, AggFunc::Max), Value::Float(30.0));
        assert_eq!(aggregate(&t, 2, AggFunc::Avg), Value::Float(16.0));
    }

    #[test]
    fn grouped_aggregation_hash_vs_sorted() {
        let mut t = orders();
        t.create_index("idx_cust", &["cust"], false).unwrap();
        let mut h = hash_group_aggregate(&t, 1, 2, AggFunc::Sum);
        let s = sorted_group_aggregate(&t, "idx_cust", 2, AggFunc::Sum);
        h = sort_by_column(h, 0, true);
        assert_eq!(h, s, "hash and index-assisted aggregation agree");
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], vec![Value::text("a"), Value::Float(40.0)]);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Null],
            vec![Value::Null],
        ];
        assert_eq!(distinct(rows).len(), 3);
    }

    #[test]
    fn count_star_counts_null_rows() {
        let mut t = Table::new(
            TableSchema::new("n").column(Column::new("x", DataType::Int)),
        );
        t.insert(vec![Value::Null]).unwrap();
        t.insert(vec![Value::Int(1)]).unwrap();
        assert_eq!(aggregate(&t, 0, AggFunc::Count), Value::Int(2));
        // but SUM skips NULLs
        assert_eq!(aggregate(&t, 0, AggFunc::Sum), Value::Float(1.0));
    }

    #[test]
    fn sort_desc() {
        let t = orders();
        let rows = sort_by_column(seq_scan_filter(&t, &PExpr::Const(Value::Bool(true))), 2, false);
        assert_eq!(rows[0][2], Value::Float(30.0));
    }

    #[test]
    fn float_aggregation_rounding_error_is_observable() {
        // Rounding Errors AP: summing many 0.1s in FLOAT drifts.
        let mut t = Table::new(
            TableSchema::new("f").column(Column::new("x", DataType::Float)),
        );
        for _ in 0..1000 {
            t.insert(vec![Value::Float(0.1)]).unwrap();
        }
        let Value::Float(sum) = aggregate(&t, 0, AggFunc::Sum) else { panic!() };
        assert!((sum - 100.0).abs() > 0.0, "IEEE drift expected: {sum}");
    }
}
