//! Row storage with index maintenance.
//!
//! A [`Table`] owns its rows (slotted storage with tombstones, so row ids
//! stay stable) and its secondary indexes. Every mutation maintains every
//! index — which is the mechanism behind the Index Overuse AP measured in
//! the paper's Figure 8a.

use crate::error::DbError;
use crate::index::Index;
use crate::schema::TableSchema;
use crate::value::{Row, RowId, Value};

/// A stored table.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    rows: Vec<Option<Row>>,
    live: usize,
    indexes: Vec<Index>,
}

impl Table {
    /// Create an empty table. A unique index named `<table>_pkey` is
    /// created automatically when the schema declares a primary key
    /// (mirroring PostgreSQL).
    pub fn new(schema: TableSchema) -> Self {
        let mut t = Table { schema, rows: Vec::new(), live: 0, indexes: Vec::new() };
        let pk = t.schema.primary_key_indices();
        if !pk.is_empty() {
            let name = format!("{}_pkey", t.schema.name);
            t.indexes.push(Index::new(name, pk, true));
        }
        t
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The table's indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Find an index by name.
    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes.iter().find(|i| i.name.eq_ignore_ascii_case(name))
    }

    /// Find an index whose leading column is `col` (by schema position).
    pub fn index_on(&self, col: usize) -> Option<&Index> {
        self.indexes.iter().find(|i| i.columns.first() == Some(&col))
    }

    /// Access a live row.
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.rows.get(rid).and_then(Option::as_ref)
    }

    /// Iterate live rows with their ids (sequential scan).
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().enumerate().filter_map(|(i, r)| r.as_ref().map(|row| (i, row)))
    }

    /// Validate a row against the schema: arity, type coercion, NOT NULL,
    /// CHECK constraints. Returns the (possibly coerced) row.
    pub fn validate(&self, row: Row) -> Result<Row, DbError> {
        if row.len() != self.schema.arity() {
            return Err(DbError::Arity {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(&self.schema.columns) {
            if v.is_null() {
                if col.not_null {
                    return Err(DbError::NotNull {
                        table: self.schema.name.clone(),
                        column: col.name.clone(),
                    });
                }
                out.push(Value::Null);
                continue;
            }
            let coerced = v.coerce(col.dtype).ok_or_else(|| DbError::TypeMismatch {
                table: self.schema.name.clone(),
                column: col.name.clone(),
                expected: col.dtype,
            })?;
            out.push(coerced);
        }
        for check in &self.schema.checks {
            let Some(ci) = self.schema.column_index(check.column()) else { continue };
            if !check.passes(&out[ci]) {
                return Err(DbError::CheckViolation {
                    table: self.schema.name.clone(),
                    constraint: check.name().to_string(),
                });
            }
        }
        Ok(out)
    }

    /// Insert a validated row, maintaining all indexes. (Foreign keys are
    /// enforced at the [`crate::database::Database`] level because they
    /// need access to other tables.)
    pub fn insert(&mut self, row: Row) -> Result<RowId, DbError> {
        let row = self.validate(row)?;
        let rid = self.rows.len();
        for idx in &mut self.indexes {
            if let Err(v) = idx.insert(&row, rid) {
                // roll back entries added to earlier indexes
                let name = v.index.clone();
                for prev in &mut self.indexes {
                    if prev.name == name {
                        break;
                    }
                    prev.remove(&row, rid);
                }
                return Err(DbError::Unique { table: self.schema.name.clone(), index: v.index });
            }
        }
        self.rows.push(Some(row));
        self.live += 1;
        Ok(rid)
    }

    /// Replace the row at `rid` with `new_row` (validated), maintaining
    /// every index.
    pub fn update_row(&mut self, rid: RowId, new_row: Row) -> Result<(), DbError> {
        let new_row = self.validate(new_row)?;
        let old = self
            .rows
            .get(rid)
            .and_then(Option::as_ref)
            .cloned()
            .ok_or(DbError::NoSuchRow { rid })?;
        for idx in &mut self.indexes {
            idx.remove(&old, rid);
        }
        for idx in &mut self.indexes {
            if let Err(v) = idx.insert(&new_row, rid) {
                // restore old entries on failure
                let failed = v.index.clone();
                for prev in &mut self.indexes {
                    if prev.name == failed {
                        break;
                    }
                    prev.remove(&new_row, rid);
                }
                for idx2 in &mut self.indexes {
                    // re-add old row entries
                    let _ = idx2.insert(&old, rid);
                }
                return Err(DbError::Unique { table: self.schema.name.clone(), index: v.index });
            }
        }
        self.rows[rid] = Some(new_row);
        Ok(())
    }

    /// Delete the row at `rid`, maintaining every index.
    pub fn delete_row(&mut self, rid: RowId) -> Result<Row, DbError> {
        let old = self
            .rows
            .get_mut(rid)
            .and_then(Option::take)
            .ok_or(DbError::NoSuchRow { rid })?;
        for idx in &mut self.indexes {
            idx.remove(&old, rid);
        }
        self.live -= 1;
        Ok(old)
    }

    /// Create a secondary index, backfilling from existing rows.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        columns: &[&str],
        unique: bool,
    ) -> Result<(), DbError> {
        let name = name.into();
        if self.index(&name).is_some() {
            return Err(DbError::DuplicateIndex { index: name });
        }
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema.column_index(c).ok_or_else(|| DbError::UnknownColumn {
                    table: self.schema.name.clone(),
                    column: c.to_string(),
                })
            })
            .collect::<Result<_, _>>()?;
        let mut idx = Index::new(name, cols, unique);
        for (rid, row) in self.scan() {
            idx.insert(row, rid).map_err(|v| DbError::Unique {
                table: self.schema.name.clone(),
                index: v.index,
            })?;
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// Drop an index by name.
    pub fn drop_index(&mut self, name: &str) -> Result<(), DbError> {
        let pos = self
            .indexes
            .iter()
            .position(|i| i.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::UnknownIndex { index: name.to_string() })?;
        self.indexes.remove(pos);
        Ok(())
    }

    /// Add a CHECK constraint, validating all existing rows (a full table
    /// scan — the cost measured in Fig 8g when the constraint is re-added).
    pub fn add_check(&mut self, check: crate::schema::Check) -> Result<(), DbError> {
        let Some(ci) = self.schema.column_index(check.column()) else {
            return Err(DbError::UnknownColumn {
                table: self.schema.name.clone(),
                column: check.column().to_string(),
            });
        };
        for (_, row) in self.scan() {
            if !check.passes(&row[ci]) {
                return Err(DbError::CheckViolation {
                    table: self.schema.name.clone(),
                    constraint: check.name().to_string(),
                });
            }
        }
        self.schema.checks.push(check);
        Ok(())
    }

    /// Drop a CHECK constraint by name. Missing constraints are ignored
    /// (`IF EXISTS` semantics).
    pub fn drop_check(&mut self, name: &str) {
        self.schema.checks.retain(|c| !c.name().eq_ignore_ascii_case(name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Check, Column, TableSchema};
    use crate::value::DataType;

    fn users() -> Table {
        Table::new(
            TableSchema::new("User")
                .column(Column::new("User_ID", DataType::Text).not_null())
                .column(Column::new("Role", DataType::Text))
                .primary_key(&["User_ID"]),
        )
    }

    #[test]
    fn pk_index_auto_created() {
        let t = users();
        assert_eq!(t.indexes().len(), 1);
        assert_eq!(t.indexes()[0].name, "User_pkey");
        assert!(t.indexes()[0].unique);
    }

    #[test]
    fn insert_scan_delete() {
        let mut t = users();
        let r0 = t.insert(vec![Value::text("U1"), Value::text("R1")]).unwrap();
        let r1 = t.insert(vec![Value::text("U2"), Value::text("R2")]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.scan().count(), 2);
        t.delete_row(r0).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.get(r0).is_none());
        assert!(t.get(r1).is_some());
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut t = users();
        t.insert(vec![Value::text("U1"), Value::text("R1")]).unwrap();
        let err = t.insert(vec![Value::text("U1"), Value::text("R2")]).unwrap_err();
        assert!(matches!(err, DbError::Unique { .. }));
        assert_eq!(t.len(), 1, "failed insert must not leak");
    }

    #[test]
    fn not_null_enforced() {
        let mut t = users();
        let err = t.insert(vec![Value::Null, Value::text("R1")]).unwrap_err();
        assert!(matches!(err, DbError::NotNull { .. }));
    }

    #[test]
    fn arity_enforced() {
        let mut t = users();
        assert!(matches!(
            t.insert(vec![Value::text("U1")]),
            Err(DbError::Arity { expected: 2, got: 1, .. })
        ));
    }

    #[test]
    fn type_coercion_on_insert() {
        let mut t = Table::new(
            TableSchema::new("n").column(Column::new("x", DataType::Int)),
        );
        let rid = t.insert(vec![Value::text("42")]).unwrap();
        assert_eq!(t.get(rid).unwrap()[0], Value::Int(42));
        assert!(matches!(
            t.insert(vec![Value::text("nope")]),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = users();
        t.create_index("idx_role", &["Role"], false).unwrap();
        let rid = t.insert(vec![Value::text("U1"), Value::text("R1")]).unwrap();
        t.update_row(rid, vec![Value::text("U1"), Value::text("R9")]).unwrap();
        let idx = t.index("idx_role").unwrap();
        assert!(idx.lookup_value(&Value::text("R1")).is_empty());
        assert_eq!(idx.lookup_value(&Value::text("R9")), &[rid]);
    }

    #[test]
    fn check_constraint_lifecycle() {
        let mut t = users();
        t.insert(vec![Value::text("U1"), Value::text("R1")]).unwrap();
        t.add_check(Check::InList {
            name: "role_check".into(),
            column: "Role".into(),
            values: vec![Value::text("R1"), Value::text("R2")],
        })
        .unwrap();
        // now R9 is rejected
        assert!(matches!(
            t.insert(vec![Value::text("U2"), Value::text("R9")]),
            Err(DbError::CheckViolation { .. })
        ));
        t.drop_check("role_check");
        t.insert(vec![Value::text("U2"), Value::text("R9")]).unwrap();
        // re-adding must now fail validation against existing data
        let err = t
            .add_check(Check::InList {
                name: "role_check".into(),
                column: "Role".into(),
                values: vec![Value::text("R1"), Value::text("R2")],
            })
            .unwrap_err();
        assert!(matches!(err, DbError::CheckViolation { .. }));
    }

    #[test]
    fn create_index_backfills() {
        let mut t = users();
        t.insert(vec![Value::text("U1"), Value::text("R1")]).unwrap();
        t.insert(vec![Value::text("U2"), Value::text("R1")]).unwrap();
        t.create_index("idx_role", &["Role"], false).unwrap();
        assert_eq!(t.index("idx_role").unwrap().lookup_value(&Value::text("R1")).len(), 2);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = users();
        t.create_index("i", &["Role"], false).unwrap();
        assert!(matches!(
            t.create_index("i", &["Role"], false),
            Err(DbError::DuplicateIndex { .. })
        ));
    }

    #[test]
    fn row_ids_stable_across_deletes() {
        let mut t = users();
        let r0 = t.insert(vec![Value::text("U1"), Value::text("R1")]).unwrap();
        let r1 = t.insert(vec![Value::text("U2"), Value::text("R2")]).unwrap();
        t.delete_row(r0).unwrap();
        assert_eq!(t.get(r1).unwrap()[0], Value::text("U2"));
    }
}
