//! Column statistics and sampling — the engine half of the paper's data
//! analyzer (§4.2): *"The data analyzer first scans the database to
//! collect (1) the schemata of the component tables, and (2) the
//! distribution of the data in the component columns (e.g., unique values,
//! mean, median, etc.). It then collects samples from each table."*

use crate::table::Table;
use crate::value::Value;
use std::collections::HashSet;

/// Profile of one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Live row count at profiling time.
    pub row_count: usize,
    /// Number of NULLs.
    pub null_count: usize,
    /// Number of distinct non-NULL values.
    pub distinct_count: usize,
    /// Minimum (total order), ignoring NULLs.
    pub min: Option<Value>,
    /// Maximum (total order), ignoring NULLs.
    pub max: Option<Value>,
    /// Mean of numeric values.
    pub mean: Option<f64>,
    /// Median of numeric values.
    pub median: Option<f64>,
    /// A reservoir sample of non-NULL values.
    pub sample: Vec<Value>,
}

impl ColumnStats {
    /// NULL fraction in `[0, 1]`.
    pub fn null_fraction(&self) -> f64 {
        if self.row_count == 0 {
            0.0
        } else {
            self.null_count as f64 / self.row_count as f64
        }
    }

    /// Distinct-to-rows ratio in `[0, 1]` (cardinality). Low values flag
    /// enum-like columns and useless low-cardinality indexes.
    pub fn distinct_ratio(&self) -> f64 {
        let non_null = self.row_count - self.null_count;
        if non_null == 0 {
            0.0
        } else {
            self.distinct_count as f64 / non_null as f64
        }
    }

    /// True when every non-NULL value is identical (Redundant Column AP).
    pub fn is_constant(&self) -> bool {
        self.row_count > self.null_count && self.distinct_count == 1
    }
}

/// Deterministic xorshift64* PRNG for reservoir sampling. A tiny local
/// generator keeps `minidb` dependency-free and the profiles reproducible.
#[derive(Debug, Clone)]
pub struct SmallRng(u64);

impl SmallRng {
    /// Seeded constructor (seed 0 is remapped).
    pub fn new(seed: u64) -> Self {
        SmallRng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, n)`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Profile one column of a table: full pass for counts/min/max/mean plus a
/// seeded reservoir sample of at most `sample_size` values.
pub fn profile_column(table: &Table, col: usize, sample_size: usize, seed: u64) -> ColumnStats {
    let name = table.schema.columns[col].name.clone();
    let mut rng = SmallRng::new(seed ^ col as u64 ^ 0xA5A5_5A5A);
    let mut null_count = 0usize;
    let mut row_count = 0usize;
    let mut distinct: HashSet<String> = HashSet::new();
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    let mut numeric: Vec<f64> = Vec::new();
    let mut sample: Vec<Value> = Vec::with_capacity(sample_size);
    let mut seen_non_null = 0usize;

    for (_, row) in table.scan() {
        row_count += 1;
        let v = &row[col];
        if v.is_null() {
            null_count += 1;
            continue;
        }
        seen_non_null += 1;
        distinct.insert(format!("{v:?}"));
        if min.as_ref().map(|m| v.total_cmp(m) == std::cmp::Ordering::Less).unwrap_or(true) {
            min = Some(v.clone());
        }
        if max.as_ref().map(|m| v.total_cmp(m) == std::cmp::Ordering::Greater).unwrap_or(true) {
            max = Some(v.clone());
        }
        if let Some(f) = v.as_f64() {
            numeric.push(f);
        }
        // Reservoir sampling (Algorithm R).
        if sample.len() < sample_size {
            sample.push(v.clone());
        } else if sample_size > 0 {
            let j = rng.gen_range(seen_non_null);
            if j < sample_size {
                sample[j] = v.clone();
            }
        }
    }

    let mean = if numeric.is_empty() {
        None
    } else {
        Some(numeric.iter().sum::<f64>() / numeric.len() as f64)
    };
    let median = if numeric.is_empty() {
        None
    } else {
        let mut sorted = numeric.clone();
        sorted.sort_by(f64::total_cmp);
        Some(sorted[sorted.len() / 2])
    };

    ColumnStats {
        name,
        row_count,
        null_count,
        distinct_count: distinct.len(),
        min,
        max,
        mean,
        median,
        sample,
    }
}

/// Profile every column of a table.
pub fn profile_table(table: &Table, sample_size: usize, seed: u64) -> Vec<ColumnStats> {
    (0..table.schema.arity())
        .map(|c| profile_column(table, c, sample_size, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::DataType;

    fn table_with(vals: Vec<Value>) -> Table {
        let mut t = Table::new(
            TableSchema::new("t").column(Column::new("x", DataType::Text)),
        );
        // Use a second loosely-typed column? keep single text column; coerce
        for v in vals {
            let v = match v {
                Value::Int(i) => Value::text(i.to_string()),
                other => other,
            };
            t.insert(vec![v]).unwrap();
        }
        t
    }

    #[test]
    fn counts_and_ratios() {
        let t = table_with(vec![
            Value::text("a"),
            Value::text("a"),
            Value::text("b"),
            Value::Null,
        ]);
        let s = profile_column(&t, 0, 10, 42);
        assert_eq!(s.row_count, 4);
        assert_eq!(s.null_count, 1);
        assert_eq!(s.distinct_count, 2);
        assert!((s.null_fraction() - 0.25).abs() < 1e-9);
        assert!((s.distinct_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn constant_column_detected() {
        let t = table_with(vec![Value::text("en-us"); 5]);
        let s = profile_column(&t, 0, 10, 1);
        assert!(s.is_constant());
    }

    #[test]
    fn numeric_stats() {
        let mut t = Table::new(
            TableSchema::new("n").column(Column::new("x", DataType::Int)),
        );
        for i in 1..=5 {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        let s = profile_column(&t, 0, 10, 7);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(5)));
        assert_eq!(s.mean, Some(3.0));
        assert_eq!(s.median, Some(3.0));
    }

    #[test]
    fn reservoir_sample_is_bounded_and_deterministic() {
        let mut t = Table::new(
            TableSchema::new("n").column(Column::new("x", DataType::Int)),
        );
        for i in 0..1000 {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        let s1 = profile_column(&t, 0, 32, 99);
        let s2 = profile_column(&t, 0, 32, 99);
        assert_eq!(s1.sample.len(), 32);
        assert_eq!(s1.sample, s2.sample, "same seed → same sample");
        let s3 = profile_column(&t, 0, 32, 100);
        assert_ne!(s1.sample, s3.sample, "different seed → different sample");
    }

    #[test]
    fn empty_table_profile() {
        let t = table_with(vec![]);
        let s = profile_column(&t, 0, 8, 5);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.distinct_ratio(), 0.0);
        assert!(s.sample.is_empty());
        assert!(!s.is_constant());
    }
}
