//! Timing harness over the engine.
//!
//! The paper's ranking metrics (RP/WP) come from measuring query execution
//! time "in the presence and absence of each AP" (§5.1). [`timed`] and
//! [`Timings`] provide the measurement plumbing used by `ap-rank`'s
//! calibration and by the benchmark harness.

use std::time::{Duration, Instant};

/// Run `f` and return its result with the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Run `f` `runs` times and return the mean duration of the results (the
/// paper reports "the average execution time of five runs").
pub fn timed_mean<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(runs > 0);
    let mut total = Duration::ZERO;
    let mut last = None;
    for _ in 0..runs {
        let (out, d) = timed(&mut f);
        total += d;
        last = Some(out);
    }
    (last.unwrap(), total / runs as u32)
}

/// Run `f` `runs` times and return the **minimum** duration. The minimum
/// is the noise-robust estimator of a task's intrinsic cost: scheduler
/// preemption and (on virtualised CI) hypervisor steal time only ever
/// *add* to a run, so the fastest observation is the closest to the
/// truth. On quiet hardware min ≈ mean.
pub fn timed_min<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(runs > 0);
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..runs {
        let (out, d) = timed(&mut f);
        best = best.min(d);
        last = Some(out);
    }
    (last.unwrap(), best)
}

/// A labelled pair of measurements: with the anti-pattern present and with
/// it fixed — the unit of every Fig 3 / Fig 8 panel.
#[derive(Debug, Clone)]
pub struct ApComparison {
    /// Panel label (e.g. `"Index Overuse: Update"`).
    pub label: String,
    /// Mean execution time with the AP present.
    pub with_ap: Duration,
    /// Mean execution time with the AP fixed.
    pub without_ap: Duration,
}

impl ApComparison {
    /// Speedup factor obtained by fixing the AP (>1 means the fix wins).
    pub fn speedup(&self) -> f64 {
        let fixed = self.without_ap.as_secs_f64();
        if fixed == 0.0 {
            f64::INFINITY
        } else {
            self.with_ap.as_secs_f64() / fixed
        }
    }

    /// One formatted row, matching the paper's figure captions.
    pub fn row(&self) -> String {
        format!(
            "{:<45} AP: {:>10.6}s   no-AP: {:>10.6}s   speedup: {:>8.1}x",
            self.label,
            self.with_ap.as_secs_f64(),
            self.without_ap.as_secs_f64(),
            self.speedup()
        )
    }
}

/// Collected comparisons for a whole experiment (one figure).
#[derive(Debug, Default, Clone)]
pub struct Timings {
    /// All comparisons in presentation order.
    pub comparisons: Vec<ApComparison>,
}

impl Timings {
    /// Measure one panel: run both closures `runs` times and record the
    /// best (minimum) observation of each. Min-of-N rather than mean
    /// keeps speedup ratios stable on noisy/virtualised machines, where
    /// steal-time spikes would otherwise poison an average.
    pub fn measure<T, U>(
        &mut self,
        label: &str,
        runs: usize,
        mut with_ap: impl FnMut() -> T,
        mut without_ap: impl FnMut() -> U,
    ) {
        let (_, d_ap) = timed_min(runs, &mut with_ap);
        let (_, d_fixed) = timed_min(runs, &mut without_ap);
        self.comparisons.push(ApComparison {
            label: label.to_string(),
            with_ap: d_ap,
            without_ap: d_fixed,
        });
    }

    /// Render all rows.
    pub fn report(&self) -> String {
        self.comparisons.iter().map(ApComparison::row).collect::<Vec<_>>().join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn timed_mean_runs_n_times() {
        let mut calls = 0;
        let (_, _) = timed_mean(5, || calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    fn speedup_math() {
        let c = ApComparison {
            label: "x".into(),
            with_ap: Duration::from_millis(100),
            without_ap: Duration::from_millis(10),
        };
        assert!((c.speedup() - 10.0).abs() < 0.01);
    }

    #[test]
    fn measure_records_comparison() {
        let mut t = Timings::default();
        t.measure("demo", 2, || std::hint::black_box(1 + 1), || std::hint::black_box(2 + 2));
        assert_eq!(t.comparisons.len(), 1);
        assert!(t.report().contains("demo"));
    }
}
