//! # sqlcheck-minidb
//!
//! An embedded relational engine built as the **evaluation substrate** for
//! the SQLCheck reproduction. The paper ran its performance experiments on
//! PostgreSQL v11.2 with a 10M-row GlobaLeaks dataset; this crate provides
//! the same *physical mechanisms* at laptop scale so the experiments keep
//! their shape:
//!
//! * **Typed row storage** with NOT NULL / CHECK / UNIQUE enforcement and
//!   stable row ids ([`table::Table`]).
//! * **Ordered secondary indexes** with point/range lookups and per-DML
//!   maintenance cost ([`index::Index`]) — the Index Overuse mechanism.
//! * **Foreign keys enforced at the catalog level** with index-or-scan
//!   probes ([`database::Database`]) — the Fig 8d–f mechanism.
//! * **Explicit physical operators** (seq/index scans, nested-loop /
//!   hash / index joins, hash and index-assisted aggregation) so benchmarks
//!   can pit plans against each other ([`exec`]).
//! * **Three-valued logic and SQL LIKE matching** including the POSIX word
//!   boundary form used by the paper's multi-valued-attribute queries
//!   ([`expr`]).
//! * **Column profiling with reservoir sampling** backing the paper's data
//!   analyzer ([`stats`]).
//! * **A timing harness** for AP-present vs AP-fixed comparisons
//!   ([`engine`]).
//!
//! ```
//! use sqlcheck_minidb::prelude::*;
//!
//! let mut db = Database::new();
//! db.create_table(
//!     TableSchema::new("Users")
//!         .column(Column::new("User_ID", DataType::Text).not_null())
//!         .column(Column::new("Name", DataType::Text))
//!         .primary_key(&["User_ID"]),
//! ).unwrap();
//! db.insert("Users", vec![Value::text("U1"), Value::text("N1")]).unwrap();
//! assert_eq!(db.table("Users").unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod database;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

/// Convenient glob import for applications and benchmarks.
pub mod prelude {
    pub use crate::database::Database;
    pub use crate::engine::{timed, timed_mean, timed_min, ApComparison, Timings};
    pub use crate::error::DbError;
    pub use crate::exec::{
        aggregate, distinct, hash_group_aggregate, hash_join, index_nl_join, index_scan_eq,
        index_scan_range, nested_loop_join, seq_scan_count, seq_scan_filter,
        sort_by_column, sorted_group_aggregate, AggFunc,
    };
    pub use crate::expr::{like_match, CmpOp, PExpr};
    pub use crate::index::{Index, IndexKey};
    pub use crate::schema::{Check, Column, ForeignKey, TableSchema};
    pub use crate::stats::{profile_column, profile_table, ColumnStats, SmallRng};
    pub use crate::table::Table;
    pub use crate::value::{DataType, Row, RowId, Value};
}
