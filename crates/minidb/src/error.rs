//! Engine error types.

use crate::value::DataType;
use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Row arity does not match the schema.
    Arity {
        /// Table name.
        table: String,
        /// Expected number of columns.
        expected: usize,
        /// Provided number of values.
        got: usize,
    },
    /// NULL in a NOT NULL column.
    NotNull {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// A value could not be coerced to the column type.
    TypeMismatch {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// Declared type.
        expected: DataType,
    },
    /// A CHECK constraint rejected a value.
    CheckViolation {
        /// Table name.
        table: String,
        /// Constraint name.
        constraint: String,
    },
    /// A unique index rejected a duplicate key.
    Unique {
        /// Table name.
        table: String,
        /// Index name.
        index: String,
    },
    /// A foreign key reference has no matching row.
    ForeignKey {
        /// Referencing table.
        table: String,
        /// Constraint name.
        constraint: String,
    },
    /// Deleting a row still referenced by another table (RESTRICT).
    RestrictViolation {
        /// Referenced table.
        table: String,
        /// Referencing table.
        referencing: String,
    },
    /// Unknown table.
    UnknownTable {
        /// The missing table name.
        table: String,
    },
    /// Unknown column.
    UnknownColumn {
        /// Table name.
        table: String,
        /// The missing column name.
        column: String,
    },
    /// Unknown index.
    UnknownIndex {
        /// The missing index name.
        index: String,
    },
    /// Index name already in use.
    DuplicateIndex {
        /// The duplicate name.
        index: String,
    },
    /// Table name already in use.
    DuplicateTable {
        /// The duplicate name.
        table: String,
    },
    /// Row id does not refer to a live row.
    NoSuchRow {
        /// The offending row id.
        rid: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Arity { table, expected, got } => {
                write!(f, "table {table}: expected {expected} values, got {got}")
            }
            DbError::NotNull { table, column } => {
                write!(f, "NOT NULL violation on {table}.{column}")
            }
            DbError::TypeMismatch { table, column, expected } => {
                write!(f, "type mismatch on {table}.{column}: expected {expected}")
            }
            DbError::CheckViolation { table, constraint } => {
                write!(f, "CHECK constraint {constraint} violated on {table}")
            }
            DbError::Unique { table, index } => {
                write!(f, "unique index {index} violated on {table}")
            }
            DbError::ForeignKey { table, constraint } => {
                write!(f, "foreign key {constraint} violated on {table}")
            }
            DbError::RestrictViolation { table, referencing } => {
                write!(f, "row in {table} is still referenced by {referencing}")
            }
            DbError::UnknownTable { table } => write!(f, "unknown table {table}"),
            DbError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            DbError::UnknownIndex { index } => write!(f, "unknown index {index}"),
            DbError::DuplicateIndex { index } => write!(f, "index {index} already exists"),
            DbError::DuplicateTable { table } => write!(f, "table {table} already exists"),
            DbError::NoSuchRow { rid } => write!(f, "no such row id {rid}"),
        }
    }
}

impl std::error::Error for DbError {}
