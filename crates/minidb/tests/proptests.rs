//! Property-based tests for engine invariants.
//!
//! The build environment has no access to the `proptest` crate, so these
//! properties run over deterministically generated random cases (the
//! engine's own `SmallRng`): same seeds, same cases, every run.

use sqlcheck_minidb::prelude::*;

const CASES: usize = 128;

fn int_table() -> Table {
    Table::new(
        TableSchema::new("t")
            .column(Column::new("k", DataType::Int))
            .column(Column::new("v", DataType::Int)),
    )
}

fn gen_rows(rng: &mut SmallRng, max_len: usize, k_range: usize, v_range: usize) -> Vec<(i64, i64)> {
    let len = rng.gen_range(max_len + 1);
    (0..len)
        .map(|_| (rng.gen_range(k_range) as i64, rng.gen_range(v_range) as i64))
        .collect()
}

/// Index scans must return exactly the rows a filtered sequential scan
/// returns, for any data set and probe key.
#[test]
fn index_scan_equals_seq_scan() {
    let mut rng = SmallRng::new(0x1D5);
    for case in 0..CASES {
        let rows = gen_rows(&mut rng, 200, 20, 1000);
        let probe = rng.gen_range(20) as i64;
        let mut t = int_table();
        for (k, v) in &rows {
            t.insert(vec![Value::Int(*k), Value::Int(*v)]).unwrap();
        }
        t.create_index("idx_k", &["k"], false).unwrap();
        let pred = PExpr::col_eq(0, Value::Int(probe));
        let mut a = seq_scan_filter(&t, &pred);
        let mut b = index_scan_eq(&t, "idx_k", &Value::Int(probe), None);
        a.sort_by(|x, y| x[1].total_cmp(&y[1]));
        b.sort_by(|x, y| x[1].total_cmp(&y[1]));
        assert_eq!(a, b, "case {case}");
    }
}

/// Insert + delete round-trips preserve the surviving row multiset and
/// the index stays consistent with storage.
#[test]
fn delete_preserves_survivors() {
    let mut rng = SmallRng::new(0xDE1);
    for case in 0..CASES {
        let mut rows = gen_rows(&mut rng, 99, 10, 100);
        if rows.is_empty() {
            rows.push((1, 1));
        }
        let victim = rng.gen_range(10) as i64;
        let mut t = int_table();
        t.create_index("idx_k", &["k"], false).unwrap();
        for (k, v) in &rows {
            t.insert(vec![Value::Int(*k), Value::Int(*v)]).unwrap();
        }
        let expected_survivors = rows.iter().filter(|(k, _)| *k != victim).count();
        let rids: Vec<_> = t
            .scan()
            .filter(|(_, r)| r[0] == Value::Int(victim))
            .map(|(rid, _)| rid)
            .collect();
        for rid in rids {
            t.delete_row(rid).unwrap();
        }
        assert_eq!(t.len(), expected_survivors, "case {case}");
        assert!(t.index("idx_k").unwrap().lookup_value(&Value::Int(victim)).is_empty());
        assert_eq!(t.index("idx_k").unwrap().len(), expected_survivors, "case {case}");
    }
}

/// Hash join agrees with nested-loop join on any pair of tables.
#[test]
fn hash_join_equals_nested_loop() {
    let mut rng = SmallRng::new(0x10B);
    for case in 0..CASES {
        let left: Vec<i64> =
            (0..rng.gen_range(40)).map(|_| rng.gen_range(8) as i64).collect();
        let right: Vec<i64> =
            (0..rng.gen_range(40)).map(|_| rng.gen_range(8) as i64).collect();
        let mk = |vals: &[i64]| {
            let mut t =
                Table::new(TableSchema::new("x").column(Column::new("k", DataType::Int)));
            for v in vals {
                t.insert(vec![Value::Int(*v)]).unwrap();
            }
            t
        };
        let lt = mk(&left);
        let rt = mk(&right);
        let on = PExpr::cols_eq(0, 1);
        let mut nl = nested_loop_join(&lt, &rt, &on);
        let mut hj = hash_join(&lt, 0, &rt, 0);
        let key = |r: &Row| format!("{r:?}");
        nl.sort_by_key(key);
        hj.sort_by_key(key);
        assert_eq!(nl, hj, "case {case}");
    }
}

/// Grouped aggregation via hash and via index produce identical groups.
#[test]
fn group_aggregation_plans_agree() {
    let mut rng = SmallRng::new(0xA66);
    for case in 0..CASES {
        let rows = gen_rows(&mut rng, 100, 6, 50);
        let mut t = int_table();
        for (k, v) in &rows {
            t.insert(vec![Value::Int(*k), Value::Int(*v)]).unwrap();
        }
        t.create_index("idx_k", &["k"], false).unwrap();
        let h = sort_by_column(hash_group_aggregate(&t, 0, 1, AggFunc::Sum), 0, true);
        let s = sorted_group_aggregate(&t, "idx_k", 1, AggFunc::Sum);
        assert_eq!(h, s, "case {case}");
    }
}

fn rand_lower(rng: &mut SmallRng, max_len: usize) -> String {
    let len = rng.gen_range(max_len + 1);
    (0..len).map(|_| (b'a' + rng.gen_range(26) as u8) as char).collect()
}

/// LIKE with only literal characters is exact equality.
#[test]
fn literal_like_is_equality() {
    let mut rng = SmallRng::new(0x11E);
    for case in 0..CASES {
        let s = rand_lower(&mut rng, 12);
        let t = rand_lower(&mut rng, 12);
        assert_eq!(like_match(&s, &t), s == t, "case {case}: {s:?} LIKE {t:?}");
    }
}

/// `%pattern%` is substring containment.
#[test]
fn contains_like() {
    let mut rng = SmallRng::new(0xC047);
    for case in 0..CASES {
        let hay = rand_lower(&mut rng, 16);
        let needle = rand_lower(&mut rng, 4);
        let pat = format!("%{needle}%");
        assert_eq!(like_match(&hay, &pat), hay.contains(&needle), "case {case}");
    }
}

/// Word-boundary containment never yields false positives inside words.
#[test]
fn word_boundary_semantics() {
    let mut rng = SmallRng::new(0x30B);
    for case in 0..CASES {
        let ids: Vec<u32> =
            (0..1 + rng.gen_range(9)).map(|_| 1 + rng.gen_range(299) as u32).collect();
        let probe = 1 + rng.gen_range(299) as u32;
        let joined = ids.iter().map(|i| format!("U{i}")).collect::<Vec<_>>().join(",");
        let pat = format!("[[:<:]]U{probe}[[:>:]]");
        let expected = ids.contains(&probe);
        assert_eq!(
            like_match(&joined, &pat),
            expected,
            "case {case}: text={joined} probe=U{probe}"
        );
    }
}

/// update_where touches exactly the matching rows.
#[test]
fn update_where_is_exact() {
    let mut rng = SmallRng::new(0x0DD);
    for case in 0..CASES {
        let rows = gen_rows(&mut rng, 60, 5, 50);
        let target = rng.gen_range(5) as i64;
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("t")
                .column(Column::new("k", DataType::Int))
                .column(Column::new("v", DataType::Int)),
        )
        .unwrap();
        for (k, v) in &rows {
            db.insert("t", vec![Value::Int(*k), Value::Int(*v)]).unwrap();
        }
        let n = db
            .update_where("t", &PExpr::col_eq(0, Value::Int(target)), &[(1, Value::Int(-1))])
            .unwrap();
        let expect = rows.iter().filter(|(k, _)| *k == target).count();
        assert_eq!(n, expect, "case {case}");
        let t = db.table("t").unwrap();
        let minus_ones = t.scan().filter(|(_, r)| r[1] == Value::Int(-1)).count();
        // every matching row is -1 now; rows that already had v == -1 are impossible (v >= 0)
        assert_eq!(minus_ones, expect, "case {case}");
    }
}
