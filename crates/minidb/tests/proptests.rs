//! Property-based tests for engine invariants.

use proptest::prelude::*;
use sqlcheck_minidb::prelude::*;

fn int_table() -> Table {
    Table::new(
        TableSchema::new("t")
            .column(Column::new("k", DataType::Int))
            .column(Column::new("v", DataType::Int)),
    )
}

proptest! {
    /// Index scans must return exactly the rows a filtered sequential scan
    /// returns, for any data set and probe key.
    #[test]
    fn index_scan_equals_seq_scan(
        rows in prop::collection::vec((0i64..20, 0i64..1000), 0..200),
        probe in 0i64..20,
    ) {
        let mut t = int_table();
        for (k, v) in &rows {
            t.insert(vec![Value::Int(*k), Value::Int(*v)]).unwrap();
        }
        t.create_index("idx_k", &["k"], false).unwrap();
        let pred = PExpr::col_eq(0, Value::Int(probe));
        let mut a = seq_scan_filter(&t, &pred);
        let mut b = index_scan_eq(&t, "idx_k", &Value::Int(probe), None);
        a.sort_by(|x, y| x[1].total_cmp(&y[1]));
        b.sort_by(|x, y| x[1].total_cmp(&y[1]));
        prop_assert_eq!(a, b);
    }

    /// Insert + delete round-trips preserve the surviving row multiset and
    /// the index stays consistent with storage.
    #[test]
    fn delete_preserves_survivors(
        rows in prop::collection::vec((0i64..10, 0i64..100), 1..100),
        victim in 0i64..10,
    ) {
        let mut t = int_table();
        t.create_index("idx_k", &["k"], false).unwrap();
        for (k, v) in &rows {
            t.insert(vec![Value::Int(*k), Value::Int(*v)]).unwrap();
        }
        let expected_survivors =
            rows.iter().filter(|(k, _)| *k != victim).count();
        let rids: Vec<_> = t
            .scan()
            .filter(|(_, r)| r[0] == Value::Int(victim))
            .map(|(rid, _)| rid)
            .collect();
        for rid in rids {
            t.delete_row(rid).unwrap();
        }
        prop_assert_eq!(t.len(), expected_survivors);
        prop_assert!(t.index("idx_k").unwrap().lookup_value(&Value::Int(victim)).is_empty());
        prop_assert_eq!(t.index("idx_k").unwrap().len(), expected_survivors);
    }

    /// Hash join agrees with nested-loop join on any pair of tables.
    #[test]
    fn hash_join_equals_nested_loop(
        left in prop::collection::vec(0i64..8, 0..40),
        right in prop::collection::vec(0i64..8, 0..40),
    ) {
        let mk = |vals: &[i64]| {
            let mut t = Table::new(
                TableSchema::new("x").column(Column::new("k", DataType::Int)),
            );
            for v in vals {
                t.insert(vec![Value::Int(*v)]).unwrap();
            }
            t
        };
        let lt = mk(&left);
        let rt = mk(&right);
        let on = PExpr::cols_eq(0, 1);
        let mut nl = nested_loop_join(&lt, &rt, &on);
        let mut hj = hash_join(&lt, 0, &rt, 0);
        let key = |r: &Row| (format!("{:?}", r));
        nl.sort_by_key(key);
        hj.sort_by_key(key);
        prop_assert_eq!(nl, hj);
    }

    /// Grouped aggregation via hash and via index produce identical groups.
    #[test]
    fn group_aggregation_plans_agree(
        rows in prop::collection::vec((0i64..6, 0i64..50), 0..100),
    ) {
        let mut t = int_table();
        for (k, v) in &rows {
            t.insert(vec![Value::Int(*k), Value::Int(*v)]).unwrap();
        }
        t.create_index("idx_k", &["k"], false).unwrap();
        let h = sort_by_column(hash_group_aggregate(&t, 0, 1, AggFunc::Sum), 0, true);
        let s = sorted_group_aggregate(&t, "idx_k", 1, AggFunc::Sum);
        prop_assert_eq!(h, s);
    }

    /// LIKE with only literal characters is exact equality.
    #[test]
    fn literal_like_is_equality(s in "[a-z0-9]{0,12}", t in "[a-z0-9]{0,12}") {
        prop_assert_eq!(like_match(&s, &t), s == t);
    }

    /// `%pattern%` is substring containment.
    #[test]
    fn contains_like(hay in "[a-z]{0,16}", needle in "[a-z]{0,4}") {
        let pat = format!("%{needle}%");
        prop_assert_eq!(like_match(&hay, &pat), hay.contains(&needle));
    }

    /// Word-boundary containment never yields false positives inside words.
    #[test]
    fn word_boundary_semantics(ids in prop::collection::vec(1u32..300, 1..10), probe in 1u32..300) {
        let joined = ids.iter().map(|i| format!("U{i}")).collect::<Vec<_>>().join(",");
        let pat = format!("[[:<:]]U{probe}[[:>:]]");
        let expected = ids.contains(&probe);
        prop_assert_eq!(like_match(&joined, &pat), expected, "text={} probe=U{}", joined, probe);
    }

    /// update_where touches exactly the matching rows.
    #[test]
    fn update_where_is_exact(
        rows in prop::collection::vec((0i64..5, 0i64..50), 0..60),
        target in 0i64..5,
    ) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("t")
                .column(Column::new("k", DataType::Int))
                .column(Column::new("v", DataType::Int)),
        ).unwrap();
        for (k, v) in &rows {
            db.insert("t", vec![Value::Int(*k), Value::Int(*v)]).unwrap();
        }
        let n = db
            .update_where("t", &PExpr::col_eq(0, Value::Int(target)), &[(1, Value::Int(-1))])
            .unwrap();
        let expect = rows.iter().filter(|(k, _)| *k == target).count();
        prop_assert_eq!(n, expect);
        let t = db.table("t").unwrap();
        let minus_ones = t.scan().filter(|(_, r)| r[1] == Value::Int(-1)).count();
        // every matching row is -1 now; rows that already had v == -1 are impossible (v >= 0)
        prop_assert_eq!(minus_ones, expect);
    }
}
