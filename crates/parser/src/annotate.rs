//! Annotation layer over the loose parse tree.
//!
//! The paper (§4.1): *"unlike a typical DBMS parser, [the non-validating
//! parser] does not generate a semantically-rich parse tree. We address
//! this limitation by annotating the parse tree returned by sqlparse."*
//!
//! [`Annotations`] is that enrichment: a per-statement digest of table
//! references, column references, predicates, join conditions, pattern
//! predicates, and function calls, computed once and shared by the
//! detection rules and the context builder.

use crate::ast::*;

/// The role in which a column is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnRole {
    /// In the select list.
    Projected,
    /// In a WHERE/HAVING predicate.
    Filtered,
    /// In a JOIN ON condition.
    Joined,
    /// In GROUP BY.
    Grouped,
    /// In ORDER BY.
    Ordered,
    /// Assigned by UPDATE SET or INSERT column list.
    Written,
}

/// One annotated column reference.
#[derive(Debug, Clone)]
pub struct ColumnRef {
    /// Table qualifier or alias, when written (`t` in `t.a`).
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
    /// Where the reference occurred.
    pub role: ColumnRole,
}

/// A predicate of the shape `column <op> value-ish`, extracted from WHERE
/// clauses for workload analysis (index advisor rules).
#[derive(Debug, Clone)]
pub struct SimplePredicate {
    /// Qualifier, if any.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
    /// Operator text (`=`, `<`, `LIKE`, `IN`, ...).
    pub op: String,
}

/// A join condition of the shape `a.x = b.y` (equi) or an expression join
/// (the Multi-Valued Attribute smell when it is a LIKE over `||`).
#[derive(Debug, Clone)]
pub struct JoinCondition {
    /// Left side `(qualifier, column)`.
    pub left: (Option<String>, String),
    /// Right side `(qualifier, column)`; `None` when the right side is an
    /// expression rather than a bare column.
    pub right: Option<(Option<String>, String)>,
    /// True when the condition uses LIKE/REGEXP instead of equality.
    pub is_pattern: bool,
}

/// Statement annotations.
#[derive(Debug, Clone, Default)]
pub struct Annotations {
    /// Every table referenced (FROM, JOIN, INSERT INTO, UPDATE, DELETE).
    pub tables: Vec<String>,
    /// Every column reference with its role.
    pub columns: Vec<ColumnRef>,
    /// Simple WHERE predicates (for index-usage analysis).
    pub predicates: Vec<SimplePredicate>,
    /// Join conditions.
    pub join_conditions: Vec<JoinCondition>,
    /// Uppercased names of all functions called anywhere in the statement.
    pub functions: Vec<String>,
    /// Pattern operators appearing in WHERE/ON (`LIKE`, `REGEXP`, ...).
    pub pattern_ops: Vec<LikeOp>,
    /// Number of JOIN clauses (comma joins included).
    pub join_count: usize,
    /// DISTINCT present on the (outer) SELECT.
    pub distinct: bool,
    /// A wildcard `*` appears in the select list.
    pub wildcard: bool,
    /// String-literal values appearing in comparisons (for data-in-metadata
    /// and MVA heuristics).
    pub compared_strings: Vec<String>,
}

/// Compute annotations for one statement.
pub fn annotate(stmt: &Statement) -> Annotations {
    let mut a = Annotations::default();
    match stmt {
        Statement::Select(s) => annotate_select(s, &mut a),
        Statement::Insert(i) => {
            a.tables.push(i.table.name().to_string());
            for c in &i.columns {
                a.columns.push(ColumnRef {
                    qualifier: None,
                    column: c.clone(),
                    role: ColumnRole::Written,
                });
            }
            if let InsertSource::Select(s) = &i.source {
                annotate_select(s, &mut a);
            }
            if let InsertSource::Values(rows) = &i.source {
                for row in rows {
                    for e in row {
                        collect_functions(e, &mut a);
                    }
                }
            }
        }
        Statement::Update(u) => {
            a.tables.push(u.table.name().to_string());
            for (col, e) in &u.assignments {
                a.columns.push(ColumnRef {
                    qualifier: None,
                    column: col.clone(),
                    role: ColumnRole::Written,
                });
                collect_functions(e, &mut a);
            }
            if let Some(w) = &u.where_clause {
                annotate_where(w, &mut a);
            }
        }
        Statement::Delete(d) => {
            a.tables.push(d.table.name().to_string());
            if let Some(w) = &d.where_clause {
                annotate_where(w, &mut a);
            }
        }
        Statement::CreateTable(c) => {
            a.tables.push(c.name.name().to_string());
        }
        Statement::CreateIndex(i) => {
            a.tables.push(i.table.name().to_string());
        }
        Statement::CreateTrigger(t) => {
            a.tables.push(t.table.name().to_string());
            annotate_body(&t.body, &mut a);
        }
        Statement::CreateRoutine(r) => {
            annotate_body(&r.body, &mut a);
        }
        Statement::AlterTable(t) => {
            a.tables.push(t.table.name().to_string());
        }
        Statement::Drop(d) => {
            a.tables.push(d.name.name().to_string());
        }
        Statement::Other(_) => {}
    }
    a
}

/// Fold the annotations of a compound statement's body sub-statements
/// into the enclosing statement's digest: a trigger whose body writes
/// `u` and deletes from `v` *references* `u` and `v` — the per-table
/// incremental-cache invalidation and the inter-query rules depend on
/// body tables being surfaced here.
fn annotate_body(body: &[BodyStatement], a: &mut Annotations) {
    for b in body {
        let sub = annotate(&b.stmt);
        a.tables.extend(sub.tables);
        a.columns.extend(sub.columns);
        a.predicates.extend(sub.predicates);
        a.join_conditions.extend(sub.join_conditions);
        a.functions.extend(sub.functions);
        a.pattern_ops.extend(sub.pattern_ops);
        a.join_count += sub.join_count;
        a.distinct |= sub.distinct;
        a.wildcard |= sub.wildcard;
        a.compared_strings.extend(sub.compared_strings);
    }
}

fn annotate_select(s: &Select, a: &mut Annotations) {
    a.distinct |= s.distinct;
    a.wildcard |= s.has_wildcard();
    a.join_count += s.join_count();
    for t in s.tables() {
        if t.subquery.is_some() {
            if let Some(sub) = &t.subquery {
                annotate_select(sub, a);
            }
        } else {
            a.tables.push(t.name.name().to_string());
        }
    }
    for item in &s.items {
        if let SelectItem::Expr { expr, .. } = item {
            for (q, c) in expr.column_refs() {
                a.columns.push(ColumnRef { qualifier: q, column: c, role: ColumnRole::Projected });
            }
            collect_functions(expr, a);
        }
    }
    for j in &s.joins {
        if let Some(on) = &j.on {
            annotate_join_condition(on, a);
            collect_functions(on, a);
            collect_patterns(on, a);
            for (q, c) in on.column_refs() {
                a.columns.push(ColumnRef { qualifier: q, column: c, role: ColumnRole::Joined });
            }
        }
        for u in &j.using {
            a.columns.push(ColumnRef {
                qualifier: None,
                column: u.clone(),
                role: ColumnRole::Joined,
            });
        }
    }
    if let Some(w) = &s.where_clause {
        annotate_where(w, a);
    }
    for g in &s.group_by {
        for (q, c) in g.column_refs() {
            a.columns.push(ColumnRef { qualifier: q, column: c, role: ColumnRole::Grouped });
        }
    }
    if let Some(h) = &s.having {
        annotate_where(h, a);
    }
    for o in &s.order_by {
        for (q, c) in o.expr.column_refs() {
            a.columns.push(ColumnRef { qualifier: q, column: c, role: ColumnRole::Ordered });
        }
        collect_functions(&o.expr, a);
    }
}

fn annotate_where(e: &Expr, a: &mut Annotations) {
    collect_functions(e, a);
    collect_patterns(e, a);
    collect_predicates(e, a);
    for (q, c) in e.column_refs() {
        a.columns.push(ColumnRef { qualifier: q, column: c, role: ColumnRole::Filtered });
    }
    // subqueries
    e.walk(&mut |node| {
        if let Expr::Subquery(sub) = node {
            annotate_select(sub, a);
        }
    });
}

fn collect_functions(e: &Expr, a: &mut Annotations) {
    a.functions.extend(e.function_calls());
}

fn collect_patterns(e: &Expr, a: &mut Annotations) {
    e.walk(&mut |node| {
        if let Expr::Like { op, pattern, .. } = node {
            a.pattern_ops.push(*op);
            if let Expr::StringLit(s) = pattern.as_ref() {
                a.compared_strings.push(s.clone());
            }
        }
    });
}

fn collect_predicates(e: &Expr, a: &mut Annotations) {
    e.walk(&mut |node| match node {
        Expr::Binary { left, op, right } if is_comparison(op) => {
            if let Expr::Ident(parts) = left.as_ref() {
                push_pred(a, parts, op);
                if let Expr::StringLit(s) = right.as_ref() {
                    a.compared_strings.push(s.clone());
                }
            } else if let Expr::Ident(parts) = right.as_ref() {
                push_pred(a, parts, op);
                if let Expr::StringLit(s) = left.as_ref() {
                    a.compared_strings.push(s.clone());
                }
            }
        }
        Expr::Like { expr, op, .. } => {
            if let Expr::Ident(parts) = expr.as_ref() {
                push_pred_str(a, parts, op.sql());
            }
        }
        Expr::InList { expr, .. } => {
            if let Expr::Ident(parts) = expr.as_ref() {
                push_pred_str(a, parts, "IN");
            }
        }
        Expr::Between { expr, .. } => {
            if let Expr::Ident(parts) = expr.as_ref() {
                push_pred_str(a, parts, "BETWEEN");
            }
        }
        Expr::IsNull { expr, .. } => {
            if let Expr::Ident(parts) = expr.as_ref() {
                push_pred_str(a, parts, "IS NULL");
            }
        }
        _ => {}
    });
}

fn is_comparison(op: &str) -> bool {
    matches!(op, "=" | "==" | "<>" | "!=" | "<" | "<=" | ">" | ">=" | "<=>")
}

fn push_pred(a: &mut Annotations, parts: &[String], op: &str) {
    push_pred_str(a, parts, op)
}

fn push_pred_str(a: &mut Annotations, parts: &[String], op: &str) {
    let (q, c) = match parts.len() {
        1 => (None, parts[0].clone()),
        2 => (Some(parts[0].clone()), parts[1].clone()),
        _ => return,
    };
    a.predicates.push(SimplePredicate { qualifier: q, column: c, op: op.to_string() });
}

fn annotate_join_condition(on: &Expr, a: &mut Annotations) {
    // Unwrap parens.
    let mut e = on;
    while let Expr::Paren(inner) = e {
        e = inner;
    }
    match e {
        Expr::Binary { left, op, right } if is_comparison(op) => {
            let l = ident_parts(left);
            let r = ident_parts(right);
            if let Some(l) = l {
                a.join_conditions.push(JoinCondition {
                    left: l,
                    right: r,
                    is_pattern: false,
                });
            }
        }
        Expr::Binary { left, op, right } if op == "AND" => {
            annotate_join_condition(left, a);
            annotate_join_condition(right, a);
        }
        Expr::Like { expr, .. } => {
            if let Some(l) = ident_parts(expr) {
                a.join_conditions.push(JoinCondition { left: l, right: None, is_pattern: true });
            }
        }
        _ => {}
    }
}

fn ident_parts(e: &Expr) -> Option<(Option<String>, String)> {
    if let Expr::Ident(parts) = e {
        match parts.len() {
            1 => Some((None, parts[0].clone())),
            2 => Some((Some(parts[0].clone()), parts[1].clone())),
            _ => None,
        }
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_one;

    fn ann(sql: &str) -> Annotations {
        annotate(&parse_one(sql).stmt)
    }

    #[test]
    fn select_annotations() {
        let a = ann("SELECT t.a, b FROM t JOIN u ON t.id = u.tid WHERE t.c = 'x' GROUP BY t.a ORDER BY b");
        assert_eq!(a.tables, vec!["t", "u"]);
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Projected && c.column == "a"));
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Joined && c.column == "tid"));
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Filtered && c.column == "c"));
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Grouped));
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Ordered));
        assert_eq!(a.join_count, 1);
        assert_eq!(a.join_conditions.len(), 1);
        assert!(!a.join_conditions[0].is_pattern);
        assert_eq!(a.compared_strings, vec!["x"]);
    }

    #[test]
    fn pattern_join_is_flagged() {
        let a = ann("SELECT * FROM t JOIN u ON t.ids LIKE '%' || u.id || '%'");
        assert_eq!(a.join_conditions.len(), 1);
        assert!(a.join_conditions[0].is_pattern);
        assert!(a.wildcard);
        assert!(a.pattern_ops.contains(&LikeOp::Like));
    }

    #[test]
    fn update_annotations() {
        let a = ann("UPDATE u SET r = LOWER('R5') WHERE r = 'R2'");
        assert_eq!(a.tables, vec!["u"]);
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Written && c.column == "r"));
        assert!(a.functions.contains(&"LOWER".to_string()));
        assert_eq!(a.predicates.len(), 1);
        assert_eq!(a.predicates[0].op, "=");
    }

    #[test]
    fn insert_annotations() {
        let a = ann("INSERT INTO t (a, b) VALUES (1, NOW())");
        assert_eq!(a.tables, vec!["t"]);
        assert_eq!(
            a.columns.iter().filter(|c| c.role == ColumnRole::Written).count(),
            2
        );
        assert!(a.functions.contains(&"NOW".to_string()));
    }

    #[test]
    fn predicates_from_in_between_null() {
        let a = ann("SELECT * FROM t WHERE a IN (1,2) AND b BETWEEN 1 AND 2 AND c IS NULL AND d LIKE 'x%'");
        let ops: Vec<&str> = a.predicates.iter().map(|p| p.op.as_str()).collect();
        assert!(ops.contains(&"IN"));
        assert!(ops.contains(&"BETWEEN"));
        assert!(ops.contains(&"IS NULL"));
        assert!(ops.contains(&"LIKE"));
    }

    #[test]
    fn trigger_body_tables_are_surfaced() {
        // The acceptance repro: the trigger's annotations must include
        // both body-referenced tables (u, v) plus the attached table (t),
        // so per-table cache invalidation evicts on a DDL edit to `v`.
        let a = ann(
            "CREATE TRIGGER trg AFTER INSERT ON t FOR EACH ROW \
             BEGIN UPDATE u SET a = 1; DELETE FROM v; END",
        );
        assert_eq!(a.tables, vec!["t", "u", "v"]);
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Written && c.column == "a"));
    }

    #[test]
    fn dollar_function_body_tables_are_surfaced() {
        let a = ann(
            "CREATE FUNCTION bump() RETURNS trigger AS $fn$ \
             BEGIN UPDATE counters SET n = n + 1; DELETE FROM stale WHERE ts < now(); END \
             $fn$ LANGUAGE plpgsql",
        );
        assert_eq!(a.tables, vec!["counters", "stale"]);
        assert!(a.functions.contains(&"NOW".to_string()));
    }

    #[test]
    fn subquery_tables_are_collected() {
        let a = ann("SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)");
        assert!(a.tables.contains(&"u".to_string()));
    }

    #[test]
    fn distinct_and_join_count() {
        let a = ann("SELECT DISTINCT a FROM t JOIN u ON t.x = u.x JOIN v ON u.y = v.y");
        assert!(a.distinct);
        assert_eq!(a.join_count, 2);
        assert_eq!(a.join_conditions.len(), 2);
    }
}
