//! Annotation layer over the loose parse tree.
//!
//! The paper (§4.1): *"unlike a typical DBMS parser, [the non-validating
//! parser] does not generate a semantically-rich parse tree. We address
//! this limitation by annotating the parse tree returned by sqlparse."*
//!
//! [`Annotations`] is that enrichment: a per-statement digest of table
//! references, column references, predicates, join conditions, pattern
//! predicates, and function calls, computed once and shared by the
//! detection rules and the context builder.
//!
//! Expression nodes live in the statement's [`ExprArena`], so [`annotate`]
//! takes the arena alongside the statement shape; compound bodies share
//! the enclosing statement's arena.

use crate::arena::{ExprArena, ExprId};
use crate::ast::*;
use crate::istr::IStr;

/// The role in which a column is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnRole {
    /// In the select list.
    Projected,
    /// In a WHERE/HAVING predicate.
    Filtered,
    /// In a JOIN ON condition.
    Joined,
    /// In GROUP BY.
    Grouped,
    /// In ORDER BY.
    Ordered,
    /// Assigned by UPDATE SET or INSERT column list.
    Written,
}

/// One annotated column reference.
#[derive(Debug, Clone)]
pub struct ColumnRef {
    /// Table qualifier or alias, when written (`t` in `t.a`).
    pub qualifier: Option<IStr>,
    /// Column name.
    pub column: IStr,
    /// Where the reference occurred.
    pub role: ColumnRole,
}

/// A predicate of the shape `column <op> value-ish`, extracted from WHERE
/// clauses for workload analysis (index advisor rules).
#[derive(Debug, Clone)]
pub struct SimplePredicate {
    /// Qualifier, if any.
    pub qualifier: Option<IStr>,
    /// Column name.
    pub column: IStr,
    /// Operator text (`=`, `<`, `LIKE`, `IN`, ...).
    pub op: IStr,
}

/// A join condition of the shape `a.x = b.y` (equi) or an expression join
/// (the Multi-Valued Attribute smell when it is a LIKE over `||`).
#[derive(Debug, Clone)]
pub struct JoinCondition {
    /// Left side `(qualifier, column)`.
    pub left: (Option<IStr>, IStr),
    /// Right side `(qualifier, column)`; `None` when the right side is an
    /// expression rather than a bare column.
    pub right: Option<(Option<IStr>, IStr)>,
    /// True when the condition uses LIKE/REGEXP instead of equality.
    pub is_pattern: bool,
}

/// Statement annotations.
#[derive(Debug, Clone, Default)]
pub struct Annotations {
    /// Every table referenced (FROM, JOIN, INSERT INTO, UPDATE, DELETE).
    pub tables: Vec<IStr>,
    /// Every column reference with its role.
    pub columns: Vec<ColumnRef>,
    /// Simple WHERE predicates (for index-usage analysis).
    pub predicates: Vec<SimplePredicate>,
    /// Join conditions.
    pub join_conditions: Vec<JoinCondition>,
    /// Uppercased names of all functions called anywhere in the statement.
    pub functions: Vec<IStr>,
    /// Pattern operators appearing in WHERE/ON (`LIKE`, `REGEXP`, ...).
    pub pattern_ops: Vec<LikeOp>,
    /// Number of JOIN clauses (comma joins included).
    pub join_count: usize,
    /// DISTINCT present on the (outer) SELECT.
    pub distinct: bool,
    /// A wildcard `*` appears in the select list.
    pub wildcard: bool,
    /// String-literal values appearing in comparisons (for data-in-metadata
    /// and MVA heuristics).
    pub compared_strings: Vec<IStr>,
}

/// Compute annotations for one statement. `arena` is the statement's
/// [`ExprArena`] ([`crate::ast::ParsedStatement::arena`]); compound-body
/// sub-statements resolve against the same arena.
pub fn annotate(stmt: &Statement, arena: &ExprArena) -> Annotations {
    let mut a = Annotations::default();
    match stmt {
        Statement::Select(s) => annotate_select(s, arena, &mut a),
        Statement::Insert(i) => {
            a.tables.push(i.table.name().into());
            for c in &i.columns {
                a.columns.push(ColumnRef {
                    qualifier: None,
                    column: c.clone(),
                    role: ColumnRole::Written,
                });
            }
            if let InsertSource::Select(s) = &i.source {
                annotate_select(s, arena, &mut a);
            }
            if let InsertSource::Values(rows) = &i.source {
                for row in rows {
                    for e in row.iter() {
                        collect_functions(e, arena, &mut a);
                    }
                }
            }
        }
        Statement::Update(u) => {
            a.tables.push(u.table.name().into());
            for (col, e) in &u.assignments {
                a.columns.push(ColumnRef {
                    qualifier: None,
                    column: col.clone(),
                    role: ColumnRole::Written,
                });
                collect_functions(*e, arena, &mut a);
            }
            if let Some(w) = u.where_clause {
                annotate_where(w, arena, &mut a);
            }
        }
        Statement::Delete(d) => {
            a.tables.push(d.table.name().into());
            if let Some(w) = d.where_clause {
                annotate_where(w, arena, &mut a);
            }
        }
        Statement::CreateTable(c) => {
            a.tables.push(c.name.name().into());
        }
        Statement::CreateIndex(i) => {
            a.tables.push(i.table.name().into());
        }
        Statement::CreateTrigger(t) => {
            a.tables.push(t.table.name().into());
            annotate_body(&t.body, arena, &mut a);
        }
        Statement::CreateRoutine(r) => {
            annotate_body(&r.body, arena, &mut a);
        }
        Statement::AlterTable(t) => {
            a.tables.push(t.table.name().into());
        }
        Statement::Drop(d) => {
            a.tables.push(d.name.name().into());
        }
        Statement::Other(_) => {}
    }
    a
}

/// Fold the annotations of a compound statement's body sub-statements
/// into the enclosing statement's digest: a trigger whose body writes
/// `u` and deletes from `v` *references* `u` and `v` — the per-table
/// incremental-cache invalidation and the inter-query rules depend on
/// body tables being surfaced here.
fn annotate_body(body: &[BodyStatement], arena: &ExprArena, a: &mut Annotations) {
    for b in body {
        let sub = annotate(&b.stmt, arena);
        a.tables.extend(sub.tables);
        a.columns.extend(sub.columns);
        a.predicates.extend(sub.predicates);
        a.join_conditions.extend(sub.join_conditions);
        a.functions.extend(sub.functions);
        a.pattern_ops.extend(sub.pattern_ops);
        a.join_count += sub.join_count;
        a.distinct |= sub.distinct;
        a.wildcard |= sub.wildcard;
        a.compared_strings.extend(sub.compared_strings);
    }
}

fn annotate_select(s: &Select, arena: &ExprArena, a: &mut Annotations) {
    a.distinct |= s.distinct;
    a.wildcard |= s.has_wildcard();
    a.join_count += s.join_count();
    for t in s.tables() {
        if t.subquery.is_some() {
            if let Some(sub) = &t.subquery {
                annotate_select(sub, arena, a);
            }
        } else {
            a.tables.push(t.name.name().into());
        }
    }
    for item in &s.items {
        if let SelectItem::Expr { expr, .. } = item {
            for (q, c) in arena.column_refs(*expr) {
                a.columns.push(ColumnRef { qualifier: q, column: c, role: ColumnRole::Projected });
            }
            collect_functions(*expr, arena, a);
        }
    }
    for j in &s.joins {
        if let Some(on) = j.on {
            annotate_join_condition(on, arena, a);
            collect_functions(on, arena, a);
            collect_patterns(on, arena, a);
            for (q, c) in arena.column_refs(on) {
                a.columns.push(ColumnRef { qualifier: q, column: c, role: ColumnRole::Joined });
            }
        }
        for u in &j.using {
            a.columns.push(ColumnRef {
                qualifier: None,
                column: u.clone(),
                role: ColumnRole::Joined,
            });
        }
    }
    if let Some(w) = s.where_clause {
        annotate_where(w, arena, a);
    }
    for g in s.group_by.iter() {
        for (q, c) in arena.column_refs(g) {
            a.columns.push(ColumnRef { qualifier: q, column: c, role: ColumnRole::Grouped });
        }
    }
    if let Some(h) = s.having {
        annotate_where(h, arena, a);
    }
    for o in &s.order_by {
        for (q, c) in arena.column_refs(o.expr) {
            a.columns.push(ColumnRef { qualifier: q, column: c, role: ColumnRole::Ordered });
        }
        collect_functions(o.expr, arena, a);
    }
}

fn annotate_where(e: ExprId, arena: &ExprArena, a: &mut Annotations) {
    collect_functions(e, arena, a);
    collect_patterns(e, arena, a);
    collect_predicates(e, arena, a);
    for (q, c) in arena.column_refs(e) {
        a.columns.push(ColumnRef { qualifier: q, column: c, role: ColumnRole::Filtered });
    }
    // subqueries
    let mut subs: Vec<&Select> = Vec::new();
    arena.walk(e, &mut |node| {
        if let Expr::Subquery(sub) = node {
            subs.push(sub);
        }
    });
    for sub in subs {
        annotate_select(sub, arena, a);
    }
}

fn collect_functions(e: ExprId, arena: &ExprArena, a: &mut Annotations) {
    a.functions.extend(arena.function_calls(e));
}

fn collect_patterns(e: ExprId, arena: &ExprArena, a: &mut Annotations) {
    let mut ops = Vec::new();
    let mut strings = Vec::new();
    arena.walk(e, &mut |node| {
        if let Expr::Like { op, pattern, .. } = node {
            ops.push(*op);
            if let Expr::StringLit(s) = arena.node(*pattern) {
                strings.push(s.clone());
            }
        }
    });
    a.pattern_ops.extend(ops);
    a.compared_strings.extend(strings);
}

fn collect_predicates(e: ExprId, arena: &ExprArena, a: &mut Annotations) {
    let mut preds: Vec<(Vec<IStr>, IStr)> = Vec::new();
    let mut strings = Vec::new();
    arena.walk(e, &mut |node| match node {
        Expr::Binary { left, op, right } if is_comparison(op) => {
            if let Expr::Ident(parts) = arena.node(*left) {
                preds.push((parts.clone(), op.clone()));
                if let Expr::StringLit(s) = arena.node(*right) {
                    strings.push(s.clone());
                }
            } else if let Expr::Ident(parts) = arena.node(*right) {
                preds.push((parts.clone(), op.clone()));
                if let Expr::StringLit(s) = arena.node(*left) {
                    strings.push(s.clone());
                }
            }
        }
        Expr::Like { expr, op, .. } => {
            if let Expr::Ident(parts) = arena.node(*expr) {
                preds.push((parts.clone(), op.sql().into()));
            }
        }
        Expr::InList { expr, .. } => {
            if let Expr::Ident(parts) = arena.node(*expr) {
                preds.push((parts.clone(), "IN".into()));
            }
        }
        Expr::Between { expr, .. } => {
            if let Expr::Ident(parts) = arena.node(*expr) {
                preds.push((parts.clone(), "BETWEEN".into()));
            }
        }
        Expr::IsNull { expr, .. } => {
            if let Expr::Ident(parts) = arena.node(*expr) {
                preds.push((parts.clone(), "IS NULL".into()));
            }
        }
        _ => {}
    });
    for (parts, op) in preds {
        push_pred_str(a, &parts, op);
    }
    a.compared_strings.extend(strings);
}

fn is_comparison(op: &str) -> bool {
    matches!(op, "=" | "==" | "<>" | "!=" | "<" | "<=" | ">" | ">=" | "<=>")
}

fn push_pred_str(a: &mut Annotations, parts: &[IStr], op: IStr) {
    let (q, c) = match parts.len() {
        1 => (None, parts[0].clone()),
        2 => (Some(parts[0].clone()), parts[1].clone()),
        _ => return,
    };
    a.predicates.push(SimplePredicate { qualifier: q, column: c, op });
}

fn annotate_join_condition(on: ExprId, arena: &ExprArena, a: &mut Annotations) {
    // Unwrap parens.
    let mut e = arena.node(on);
    while let Expr::Paren(inner) = e {
        e = arena.node(*inner);
    }
    match e {
        Expr::Binary { left, op, right } if is_comparison(op) => {
            let l = ident_parts(arena.node(*left));
            let r = ident_parts(arena.node(*right));
            if let Some(l) = l {
                a.join_conditions.push(JoinCondition {
                    left: l,
                    right: r,
                    is_pattern: false,
                });
            }
        }
        Expr::Binary { left, op, right } if op == "AND" => {
            annotate_join_condition(*left, arena, a);
            annotate_join_condition(*right, arena, a);
        }
        Expr::Like { expr, .. } => {
            if let Some(l) = ident_parts(arena.node(*expr)) {
                a.join_conditions.push(JoinCondition { left: l, right: None, is_pattern: true });
            }
        }
        _ => {}
    }
}

fn ident_parts(e: &Expr) -> Option<(Option<IStr>, IStr)> {
    if let Expr::Ident(parts) = e {
        match parts.len() {
            1 => Some((None, parts[0].clone())),
            2 => Some((Some(parts[0].clone()), parts[1].clone())),
            _ => None,
        }
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_one;

    fn ann(sql: &str) -> Annotations {
        let p = parse_one(sql);
        annotate(&p.stmt, &p.arena)
    }

    #[test]
    fn select_annotations() {
        let a = ann("SELECT t.a, b FROM t JOIN u ON t.id = u.tid WHERE t.c = 'x' GROUP BY t.a ORDER BY b");
        assert_eq!(a.tables, vec!["t", "u"]);
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Projected && c.column == "a"));
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Joined && c.column == "tid"));
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Filtered && c.column == "c"));
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Grouped));
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Ordered));
        assert_eq!(a.join_count, 1);
        assert_eq!(a.join_conditions.len(), 1);
        assert!(!a.join_conditions[0].is_pattern);
        assert_eq!(a.compared_strings, vec!["x"]);
    }

    #[test]
    fn pattern_join_is_flagged() {
        let a = ann("SELECT * FROM t JOIN u ON t.ids LIKE '%' || u.id || '%'");
        assert_eq!(a.join_conditions.len(), 1);
        assert!(a.join_conditions[0].is_pattern);
        assert!(a.wildcard);
        assert!(a.pattern_ops.contains(&LikeOp::Like));
    }

    #[test]
    fn update_annotations() {
        let a = ann("UPDATE u SET r = LOWER('R5') WHERE r = 'R2'");
        assert_eq!(a.tables, vec!["u"]);
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Written && c.column == "r"));
        assert!(a.functions.iter().any(|f| f == "LOWER"));
        assert_eq!(a.predicates.len(), 1);
        assert_eq!(a.predicates[0].op, "=");
    }

    #[test]
    fn insert_annotations() {
        let a = ann("INSERT INTO t (a, b) VALUES (1, NOW())");
        assert_eq!(a.tables, vec!["t"]);
        assert_eq!(
            a.columns.iter().filter(|c| c.role == ColumnRole::Written).count(),
            2
        );
        assert!(a.functions.iter().any(|f| f == "NOW"));
    }

    #[test]
    fn predicates_from_in_between_null() {
        let a = ann("SELECT * FROM t WHERE a IN (1,2) AND b BETWEEN 1 AND 2 AND c IS NULL AND d LIKE 'x%'");
        let ops: Vec<&str> = a.predicates.iter().map(|p| p.op.as_str()).collect();
        assert!(ops.contains(&"IN"));
        assert!(ops.contains(&"BETWEEN"));
        assert!(ops.contains(&"IS NULL"));
        assert!(ops.contains(&"LIKE"));
    }

    #[test]
    fn trigger_body_tables_are_surfaced() {
        // The acceptance repro: the trigger's annotations must include
        // both body-referenced tables (u, v) plus the attached table (t),
        // so per-table cache invalidation evicts on a DDL edit to `v`.
        let a = ann(
            "CREATE TRIGGER trg AFTER INSERT ON t FOR EACH ROW \
             BEGIN UPDATE u SET a = 1; DELETE FROM v; END",
        );
        assert_eq!(a.tables, vec!["t", "u", "v"]);
        assert!(a.columns.iter().any(|c| c.role == ColumnRole::Written && c.column == "a"));
    }

    #[test]
    fn dollar_function_body_tables_are_surfaced() {
        let a = ann(
            "CREATE FUNCTION bump() RETURNS trigger AS $fn$ \
             BEGIN UPDATE counters SET n = n + 1; DELETE FROM stale WHERE ts < now(); END \
             $fn$ LANGUAGE plpgsql",
        );
        assert_eq!(a.tables, vec!["counters", "stale"]);
        assert!(a.functions.iter().any(|f| f == "NOW"));
    }

    #[test]
    fn subquery_tables_are_collected() {
        let a = ann("SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)");
        assert!(a.tables.iter().any(|t| t == "u"));
    }

    #[test]
    fn distinct_and_join_count() {
        let a = ann("SELECT DISTINCT a FROM t JOIN u ON t.x = u.x JOIN v ON u.y = v.y");
        assert!(a.distinct);
        assert_eq!(a.join_count, 2);
        assert_eq!(a.join_conditions.len(), 2);
    }
}
