//! Statement fingerprinting: literal-insensitive query templates.
//!
//! Real application logs contain millions of statements drawn from a few
//! hundred *templates* — the same query shape re-issued with different
//! bind values. The fingerprint collapses each statement onto its
//! template so batch analysis (`sqlcheck::Detector::detect_batch`) can
//! group duplicate shapes, and workload statistics can report unique
//! template counts.
//!
//! ## What normalizes
//!
//! * **Literals** — string, numeric, and bind-parameter tokens all become
//!   the placeholder `?`;
//! * **Literal lists** — runs of comma-separated placeholders collapse to
//!   one `?`, so `IN (1, 2, 3)` and `IN (?)` share a template;
//! * **Case** — keywords uppercase, bare identifiers lowercase;
//! * **Whitespace & comments** — dropped entirely (atoms are re-joined
//!   with single spaces);
//! * **Trailing semicolons** — dropped.
//!
//! ## What does *not* normalize
//!
//! * **Quoted identifiers** keep their exact case (`"User"` ≠ `"user"`,
//!   per SQL semantics);
//! * **Structure** — any difference in keywords, identifiers, operators,
//!   or punctuation yields a different template;
//! * **Literal *content*** is erased, which means two statements with the
//!   same fingerprint can still behave differently under rules that
//!   inspect literal values (e.g. leading-wildcard `LIKE` detection).
//!   Consumers that need byte-identical analysis results must therefore
//!   key their caches on the exact statement text *within* a fingerprint
//!   group — which is exactly what `detect_batch` does.

use crate::ast::ParsedStatement;
use crate::token::{Token, TokenKind};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash arbitrary bytes with FNV-1a (64-bit). Deterministic across
/// processes and platforms, unlike `DefaultHasher`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Render the normalized template of a token stream (see the module docs
/// for the normalization rules).
pub fn template_of(tokens: &[Token]) -> String {
    let mut atoms: Vec<String> = Vec::with_capacity(tokens.len());
    for t in tokens {
        if t.is_trivia() {
            continue;
        }
        let atom = match t.kind {
            TokenKind::StringLit | TokenKind::NumberLit | TokenKind::Param => "?".to_string(),
            TokenKind::Keyword => t.text.to_ascii_uppercase(),
            TokenKind::Ident => t.text.to_ascii_lowercase(),
            TokenKind::QuotedIdent => t.ident_value().to_string(),
            _ => t.text.clone(),
        };
        if atom == "?" {
            // Collapse `?, ?` into `?` so variable-length literal lists
            // (IN lists, VALUES rows) share one template.
            let n = atoms.len();
            if n >= 2 && atoms[n - 1] == "," && atoms[n - 2] == "?" {
                atoms.pop();
                continue;
            }
        }
        atoms.push(atom);
    }
    while atoms.last().map(String::as_str) == Some(";") {
        atoms.pop();
    }
    atoms.join(" ")
}

/// Fingerprint of a token stream: the FNV-1a hash of its template.
pub fn fingerprint_of(tokens: &[Token]) -> u64 {
    fnv1a(template_of(tokens).as_bytes())
}

/// FNV-1a 128-bit offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Content hash of a token stream: a 128-bit FNV-1a over every token's
/// kind and exact text (spans excluded, so duplicate statements at
/// different script offsets collide — by design). Unlike the fingerprint,
/// this is **literal-sensitive**: it identifies statements whose analysis
/// results are interchangeable. 128 bits make accidental collisions
/// negligible, which lets batch analysis use the hash alone as a
/// result-cache key.
pub fn content_hash_of(tokens: &[Token]) -> u128 {
    let mut h = FNV128_OFFSET;
    let mut eat = |b: u8| {
        h ^= b as u128;
        h = h.wrapping_mul(FNV128_PRIME);
    };
    for t in tokens {
        eat(t.kind as u8);
        for b in t.text.as_bytes() {
            eat(*b);
        }
        eat(0xFF); // token separator: ["ab"] must not collide with ["a","b"]
    }
    h
}

impl ParsedStatement {
    /// The statement's normalized template (literals → `?`, case and
    /// whitespace folded — see [`crate::fingerprint`] for exact
    /// semantics).
    pub fn template(&self) -> String {
        template_of(&self.tokens)
    }

    /// The statement's template fingerprint: a deterministic 64-bit hash
    /// of [`ParsedStatement::template`]. Statements that differ only in
    /// literal values, literal-list lengths, keyword/identifier case, or
    /// whitespace share a fingerprint.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_of(&self.tokens)
    }

    /// The statement's literal-sensitive content hash (see
    /// [`content_hash_of`]).
    pub fn content_hash(&self) -> u128 {
        content_hash_of(&self.tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_one;

    fn fp(sql: &str) -> u64 {
        parse_one(sql).fingerprint()
    }

    #[test]
    fn literals_fold_to_placeholders() {
        assert_eq!(
            fp("SELECT * FROM t WHERE a = 1"),
            fp("SELECT * FROM t WHERE a = 42")
        );
        assert_eq!(
            fp("SELECT * FROM t WHERE a = 'x'"),
            fp("SELECT * FROM t WHERE a = 'other value'")
        );
        assert_eq!(
            fp("SELECT * FROM t WHERE a = ?"),
            fp("SELECT * FROM t WHERE a = 7")
        );
    }

    #[test]
    fn case_and_whitespace_fold() {
        assert_eq!(
            fp("select  *\nfrom T where A = 1"),
            fp("SELECT * FROM t WHERE a = 2")
        );
        // comments are trivia
        assert_eq!(
            fp("SELECT * FROM t -- pick all\nWHERE a = 1"),
            fp("SELECT * FROM t WHERE a = 1")
        );
    }

    #[test]
    fn in_lists_collapse() {
        assert_eq!(
            fp("SELECT * FROM t WHERE a IN (1, 2, 3)"),
            fp("SELECT * FROM t WHERE a IN (4)")
        );
        assert_eq!(
            fp("INSERT INTO t (a, b) VALUES (1, 'x')"),
            fp("INSERT INTO t (a, b) VALUES (2, 'y')")
        );
    }

    #[test]
    fn trailing_semicolon_folds() {
        assert_eq!(fp("SELECT 1"), fp("SELECT 1;"));
    }

    #[test]
    fn structure_distinguishes() {
        assert_ne!(fp("SELECT a FROM t"), fp("SELECT b FROM t"));
        assert_ne!(fp("SELECT a FROM t"), fp("SELECT a FROM u"));
        assert_ne!(
            fp("SELECT * FROM t WHERE a = 1"),
            fp("SELECT * FROM t WHERE a > 1")
        );
        assert_ne!(fp("DELETE FROM t"), fp("SELECT * FROM t"));
    }

    #[test]
    fn quoted_identifiers_keep_case() {
        assert_ne!(fp("SELECT \"A\" FROM t"), fp("SELECT \"a\" FROM t"));
        // ...while bare identifiers fold
        assert_eq!(fp("SELECT A FROM t"), fp("SELECT a FROM t"));
    }

    #[test]
    fn template_text_is_readable() {
        let t = parse_one("SELECT  *  FROM Users WHERE Name = 'N' AND id IN (1,2,3);").template();
        assert_eq!(t, "SELECT * FROM users WHERE name = ? AND id IN ( ? )");
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: the fingerprint must not drift between releases,
        // it is used as a cross-run cache key.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
