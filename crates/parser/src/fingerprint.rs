//! Statement fingerprinting: literal-insensitive query templates.
//!
//! Real application logs contain millions of statements drawn from a few
//! hundred *templates* — the same query shape re-issued with different
//! bind values. The fingerprint collapses each statement onto its
//! template so batch analysis (`sqlcheck::Detector::detect_batch`) can
//! group duplicate shapes, and workload statistics can report unique
//! template counts.
//!
//! ## What normalizes
//!
//! * **Literals** — string, numeric, and bind-parameter tokens all become
//!   the placeholder `?`;
//! * **Literal lists** — runs of comma-separated placeholders collapse to
//!   one `?`, so `IN (1, 2, 3)` and `IN (?)` share a template;
//! * **Case** — keywords uppercase, bare identifiers lowercase;
//! * **Whitespace & comments** — dropped entirely (atoms are re-joined
//!   with single spaces);
//! * **Trailing semicolons** — dropped.
//!
//! ## What does *not* normalize
//!
//! * **Quoted identifiers** keep their exact case (`"User"` ≠ `"user"`,
//!   per SQL semantics);
//! * **Structure** — any difference in keywords, identifiers, operators,
//!   or punctuation yields a different template;
//! * **Literal *content*** is erased, which means two statements with the
//!   same fingerprint can still behave differently under rules that
//!   inspect literal values (e.g. leading-wildcard `LIKE` detection).
//!   Consumers that need byte-identical analysis results must therefore
//!   key their caches on the exact statement text *within* a fingerprint
//!   group — which is exactly what `detect_batch` does.

use crate::ast::ParsedStatement;
use crate::token::{Token, TokenKind};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash arbitrary bytes with FNV-1a (64-bit). Deterministic across
/// processes and platforms, unlike `DefaultHasher`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Render the normalized template of a token stream (see the module docs
/// for the normalization rules).
pub fn template_of(tokens: &[Token]) -> String {
    let mut atoms: Vec<String> = Vec::with_capacity(tokens.len());
    for t in tokens {
        if t.is_trivia() {
            continue;
        }
        let atom = match t.kind {
            TokenKind::StringLit | TokenKind::NumberLit | TokenKind::Param => "?".to_string(),
            TokenKind::Keyword => t.text.to_ascii_uppercase(),
            TokenKind::Ident => t.text.to_ascii_lowercase(),
            TokenKind::QuotedIdent => t.ident_value().to_string(),
            _ => t.text.to_string(),
        };
        if atom == "?" {
            // Collapse `?, ?` into `?` so variable-length literal lists
            // (IN lists, VALUES rows) share one template.
            let n = atoms.len();
            if n >= 2 && atoms[n - 1] == "," && atoms[n - 2] == "?" {
                atoms.pop();
                continue;
            }
        }
        atoms.push(atom);
    }
    while atoms.last().map(String::as_str) == Some(";") {
        atoms.pop();
    }
    atoms.join(" ")
}

/// How one template atom's bytes are folded before hashing.
#[derive(Clone, Copy)]
enum Fold {
    /// Hash bytes as-is.
    None,
    /// ASCII-uppercase every byte (keywords).
    Upper,
    /// ASCII-lowercase every byte (bare identifiers).
    Lower,
}

/// Streaming template hasher: produces exactly
/// `fnv1a(template_of(tokens))` without building the template string (or
/// any other allocation). The normalization rules live here once; the
/// string renderer [`template_of`] is the readable counterpart and the
/// equivalence is pinned by tests.
struct TemplateHasher {
    h: u64,
    emitted_any: bool,
    /// Last committed atom was the `?` placeholder.
    last_q: bool,
    /// A `,` atom is buffered, awaiting the next atom (placeholder-list
    /// collapse needs one atom of lookahead).
    pending_comma: bool,
}

impl Default for TemplateHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl TemplateHasher {
    fn new() -> Self {
        TemplateHasher { h: FNV_OFFSET, emitted_any: false, last_q: false, pending_comma: false }
    }

    fn eat(&mut self, b: u8) {
        self.h ^= b as u64;
        self.h = self.h.wrapping_mul(FNV_PRIME);
    }

    /// Commit one atom to the hash (joined by single spaces). The fold
    /// dispatch happens once per atom, not once per byte: each arm is a
    /// tight xor-multiply loop the hot path stays in.
    fn commit(&mut self, text: &str, fold: Fold) {
        if self.emitted_any {
            self.eat(b' ');
        }
        self.emitted_any = true;
        let mut h = self.h;
        match fold {
            Fold::None => {
                for b in text.bytes() {
                    h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
                }
            }
            Fold::Upper => {
                for b in text.bytes() {
                    h = (h ^ b.to_ascii_uppercase() as u64).wrapping_mul(FNV_PRIME);
                }
            }
            Fold::Lower => {
                for b in text.bytes() {
                    h = (h ^ b.to_ascii_lowercase() as u64).wrapping_mul(FNV_PRIME);
                }
            }
        }
        self.h = h;
    }

    /// Commit an atom whose fingerprint fold is already applied (the
    /// interner stores keyword text uppercased, identifier text
    /// lowercased): a pure xor-multiply loop, no case work at all.
    fn commit_folded(&mut self, bytes: &[u8]) {
        if self.emitted_any {
            self.eat(b' ');
        }
        self.emitted_any = true;
        let mut h = self.h;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.h = h;
    }

    /// Feed one word token (keyword or identifier) as prefolded bytes.
    /// Words are never `?`, `,`, or `;` atoms (those characters are not
    /// word-class bytes), so the placeholder/list/semicolon dispatch of
    /// [`TemplateHasher::token`] reduces to the plain-atom arm.
    fn word_folded(&mut self, folded: &[u8]) {
        self.flush_comma();
        self.commit_folded(folded);
        self.last_q = false;
    }

    fn flush_comma(&mut self) {
        if self.pending_comma {
            self.pending_comma = false;
            self.commit(",", Fold::None);
            self.last_q = false;
        }
    }

    fn placeholder(&mut self) {
        if self.pending_comma && self.last_q {
            // `?, ?` collapses to `?`: drop the comma and this
            // placeholder; the previously committed `?` stands.
            self.pending_comma = false;
        } else {
            self.flush_comma();
            self.commit("?", Fold::None);
            self.last_q = true;
        }
    }

    /// Feed one significant token (trivia and trailing semicolons are the
    /// caller's responsibility).
    fn token(&mut self, kind: TokenKind, text: &str) {
        let (value, fold) = match kind {
            TokenKind::StringLit | TokenKind::NumberLit | TokenKind::Param => {
                self.placeholder();
                return;
            }
            TokenKind::Keyword => (text, Fold::Upper),
            TokenKind::Ident => (text, Fold::Lower),
            TokenKind::QuotedIdent => (atom_value(kind, text), Fold::None),
            _ => (text, Fold::None),
        };
        // The rendered template dispatches on the *atom string*, so an
        // atom that happens to read `?` or `,` (e.g. a quoted identifier
        // named `"?"`) participates in placeholder/list folding exactly
        // as a literal's placeholder would. Case folds never produce
        // these single-char atoms from anything else, so comparing the
        // unfolded value is equivalent.
        match value {
            "?" => self.placeholder(),
            "," => {
                self.flush_comma();
                self.pending_comma = true;
            }
            _ => {
                self.flush_comma();
                self.commit(value, fold);
                self.last_q = false;
            }
        }
    }

    fn finish(mut self) -> u64 {
        self.flush_comma();
        self.h
    }
}

/// The template atom string a non-literal token renders to (quoted
/// identifiers lose their delimiters; everything else is the raw text).
fn atom_value(kind: TokenKind, text: &str) -> &str {
    // The boundary check matters only for *unterminated* quoted
    // identifiers: the lexer consumes to end-of-input, so the final byte
    // can sit in the middle of a multi-byte character and slicing would
    // panic — render such a token as raw text instead. (A terminated
    // identifier always ends with its ASCII delimiter, a char boundary.
    // Must stay in lockstep with `Token::ident_value`.)
    if kind == TokenKind::QuotedIdent && text.len() >= 2 && text.is_char_boundary(text.len() - 1)
    {
        &text[1..text.len() - 1]
    } else {
        text
    }
}

/// Whether a token renders to the `;` atom (the trailing-semicolon fold
/// operates on atoms: a quoted identifier named `";"` counts, a literal
/// never does — it renders to `?`).
fn atom_is_semi(kind: TokenKind, text: &str) -> bool {
    match kind {
        TokenKind::StringLit | TokenKind::NumberLit | TokenKind::Param => false,
        _ => atom_value(kind, text) == ";",
    }
}

/// One-token-at-a-time template fingerprint — the push-style counterpart
/// of [`fingerprint_parts`], used by the fused splitter where tokens are
/// consumed as the lexer produces them and no token stream ever exists to
/// iterate twice.
///
/// The trailing-semicolon fold needs lookahead ([`fingerprint_parts`]
/// takes a second pass to find the last non-`;` atom); here `;` atoms are
/// instead *deferred* — committed only once a later non-semicolon atom
/// proves they are not trailing, and dropped at [`finish`] otherwise.
/// Produces exactly `fingerprint_parts(tokens)` for any token sequence
/// (equivalence pinned by tests).
///
/// [`finish`]: StreamingFingerprint::finish
#[derive(Default)]
pub struct StreamingFingerprint {
    hasher: TemplateHasher,
    /// `;` atoms seen but not yet proven non-trailing.
    pending_semis: u32,
}

impl StreamingFingerprint {
    /// Fresh hasher (empty template).
    pub fn new() -> Self {
        StreamingFingerprint { hasher: TemplateHasher::new(), pending_semis: 0 }
    }

    /// Feed one token. Trivia is skipped here, so the caller may push the
    /// raw lexer stream.
    #[inline]
    pub fn push(&mut self, kind: TokenKind, text: &str) {
        if matches!(kind, TokenKind::Whitespace | TokenKind::Comment) {
            return;
        }
        if atom_is_semi(kind, text) {
            self.pending_semis += 1;
            return;
        }
        for _ in 0..self.pending_semis {
            self.hasher.token(TokenKind::Punct, ";");
        }
        self.pending_semis = 0;
        self.hasher.token(kind, text);
    }

    /// Feed one word token whose fingerprint fold was precomputed —
    /// uppercase bytes for a keyword, lowercase for an identifier, which
    /// is exactly the form [`crate::intern::Interner::folded`] stores.
    /// Equivalent to `push(kind, text)` for any word token (pinned by
    /// tests); the win is that the fold ran once per *unique* word at
    /// intern time instead of once per occurrence here.
    #[inline]
    pub fn push_folded_word(&mut self, folded: &[u8]) {
        for _ in 0..self.pending_semis {
            self.hasher.token(TokenKind::Punct, ";");
        }
        self.pending_semis = 0;
        self.hasher.word_folded(folded);
    }

    /// The fingerprint of everything pushed so far (trailing `;` atoms
    /// folded away), resetting the hasher for the next statement.
    pub fn finish(&mut self) -> u64 {
        self.pending_semis = 0;
        std::mem::take(&mut self.hasher).finish()
    }
}

/// Murmur3-x64-128-style block constants for the content hash.
const MM_C1: u64 = 0x87c3_7b91_1142_53d5;
const MM_C2: u64 = 0x4cf5_ad43_2745_937f;

/// Murmur3 64-bit finaliser: full avalanche over one word.
#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// Streaming content hash — a Murmur3-x64-128-style hash over raw
/// statement bytes, two 64-bit lanes and 16 input bytes per mixing step
/// (the per-byte FNV-128 multiply chain this replaced was the fused
/// splitter's single largest cost).
///
/// The content hash is defined over a statement's **source bytes**, not
/// its token structure: the lexer is deterministic, so equal bytes lex
/// to equal tokens and unequal bytes differ somewhere the 128-bit hash
/// will see — token kinds add no discriminating power. Feeding each
/// token's exact text in order is therefore identical to hashing the
/// statement slice in one shot ([`content_hash_bytes`]), which is what
/// the fused splitter does at statement flush.
///
/// The struct is `Copy`, so a caller can snapshot the state before
/// feeding tokens that may turn out to be excluded (trailing trivia) and
/// keep the snapshot in O(1) instead of buffering tokens.
#[derive(Debug, Clone, Copy)]
pub struct ContentHasher {
    h1: u64,
    h2: u64,
    /// Partial block awaiting 16 buffered bytes.
    buf: [u8; 16],
    buf_len: u8,
    /// Total bytes fed (folded into the finaliser).
    total: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentHasher {
    /// Fresh hasher (empty byte stream).
    pub fn new() -> Self {
        ContentHasher { h1: 0, h2: 0, buf: [0; 16], buf_len: 0, total: 0 }
    }

    #[inline]
    fn mix_block(&mut self, k1: u64, k2: u64) {
        let k1 = k1.wrapping_mul(MM_C1).rotate_left(31).wrapping_mul(MM_C2);
        self.h1 ^= k1;
        self.h1 = self
            .h1
            .rotate_left(27)
            .wrapping_add(self.h2)
            .wrapping_mul(5)
            .wrapping_add(0x52dc_e729);
        let k2 = k2.wrapping_mul(MM_C2).rotate_left(33).wrapping_mul(MM_C1);
        self.h2 ^= k2;
        self.h2 = self
            .h2
            .rotate_left(31)
            .wrapping_add(self.h1)
            .wrapping_mul(5)
            .wrapping_add(0x3849_5ab5);
    }

    /// Feed raw bytes. Chunking is irrelevant: any sequence of pushes
    /// whose concatenation is equal yields the same hash.
    #[inline]
    pub fn push_bytes(&mut self, mut bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        let bl = self.buf_len as usize;
        if bl > 0 {
            let need = 16 - bl;
            if bytes.len() < need {
                self.buf[bl..bl + bytes.len()].copy_from_slice(bytes);
                self.buf_len += bytes.len() as u8;
                return;
            }
            self.buf[bl..].copy_from_slice(&bytes[..need]);
            bytes = &bytes[need..];
            let k1 = u64::from_le_bytes(self.buf[..8].try_into().expect("8 bytes"));
            let k2 = u64::from_le_bytes(self.buf[8..].try_into().expect("8 bytes"));
            self.mix_block(k1, k2);
            self.buf_len = 0;
        }
        let mut chunks = bytes.chunks_exact(16);
        for c in &mut chunks {
            let k1 = u64::from_le_bytes(c[..8].try_into().expect("8 bytes"));
            let k2 = u64::from_le_bytes(c[8..].try_into().expect("8 bytes"));
            self.mix_block(k1, k2);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len() as u8;
    }

    /// Feed one token's exact text (`kind` carries no information — see
    /// the type docs; the parameter is kept so push sites read uniformly
    /// with [`StreamingFingerprint::push`]).
    #[inline]
    pub fn push(&mut self, kind: TokenKind, text: &str) {
        let _ = kind;
        self.push_bytes(text.as_bytes());
    }

    /// The hash of everything pushed so far. Identical to
    /// [`content_hash_bytes`] over the concatenated pushed bytes.
    pub fn finish(&self) -> u128 {
        let tail_len = self.buf_len as usize;
        let (mut h1, mut h2) = (self.h1, self.h2);
        if tail_len > 8 {
            let mut b = [0u8; 8];
            b[..tail_len - 8].copy_from_slice(&self.buf[8..tail_len]);
            let k2 = u64::from_le_bytes(b)
                .wrapping_mul(MM_C2)
                .rotate_left(33)
                .wrapping_mul(MM_C1);
            h2 ^= k2;
        }
        if tail_len > 0 {
            let n = tail_len.min(8);
            let mut b = [0u8; 8];
            b[..n].copy_from_slice(&self.buf[..n]);
            let k1 = u64::from_le_bytes(b)
                .wrapping_mul(MM_C1)
                .rotate_left(31)
                .wrapping_mul(MM_C2);
            h1 ^= k1;
        }
        h1 ^= self.total;
        h2 ^= self.total;
        h1 = h1.wrapping_add(h2);
        h2 = h2.wrapping_add(h1);
        h1 = fmix64(h1);
        h2 = fmix64(h2);
        h1 = h1.wrapping_add(h2);
        h2 = h2.wrapping_add(h1);
        (h1 as u128) | ((h2 as u128) << 64)
    }
}

/// One-shot content hash of raw bytes — the core the fused splitter
/// calls once per statement span at flush (no per-token work at all).
pub fn content_hash_bytes(bytes: &[u8]) -> u128 {
    let mut h = ContentHasher::new();
    h.push_bytes(bytes);
    h.finish()
}

/// Streaming fingerprint over `(kind, text)` pairs — the allocation-free
/// core shared by [`fingerprint_of`] and the span-level front-end. The
/// caller supplies significant *and* trivia tokens in order; trivia is
/// skipped here.
pub fn fingerprint_parts<'t>(parts: impl Iterator<Item = (TokenKind, &'t str)> + Clone) -> u64 {
    // Trailing-semicolon fold: count trailing significant `;` atoms so
    // the streaming pass can stop before them.
    let mut significant = 0usize;
    let mut last_non_semi = 0usize;
    for (kind, text) in parts.clone() {
        if matches!(kind, TokenKind::Whitespace | TokenKind::Comment) {
            continue;
        }
        significant += 1;
        if !atom_is_semi(kind, text) {
            last_non_semi = significant;
        }
    }
    let mut hasher = TemplateHasher::new();
    let mut seen = 0usize;
    for (kind, text) in parts {
        if matches!(kind, TokenKind::Whitespace | TokenKind::Comment) {
            continue;
        }
        seen += 1;
        if seen > last_non_semi {
            break;
        }
        hasher.token(kind, text);
    }
    hasher.finish()
}

/// Fingerprint of a token stream: the FNV-1a hash of its template.
pub fn fingerprint_of(tokens: &[Token]) -> u64 {
    fingerprint_parts(tokens.iter().map(|t| (t.kind, t.text.as_str())))
}

/// Content hash of a token stream: the 128-bit byte hash
/// ([`content_hash_bytes`]) of the concatenated token texts — for a
/// statement's token stream, exactly its source bytes (spans excluded,
/// so duplicate statements at different script offsets collide — by
/// design). Unlike the fingerprint, this is **literal-sensitive**: it
/// identifies statements whose analysis results are interchangeable.
/// 128 bits make accidental collisions negligible, which lets batch
/// analysis use the hash alone as a result-cache key.
pub fn content_hash_of(tokens: &[Token]) -> u128 {
    content_hash_parts(tokens.iter().map(|t| (t.kind, t.text.as_str())))
}

/// Streaming content hash over `(kind, text)` pairs — the core shared by
/// [`content_hash_of`] and the span-level front-end. Hashes the
/// concatenated texts; kinds carry no extra information (equal bytes lex
/// to equal kinds — see [`ContentHasher`]).
pub fn content_hash_parts<'t>(parts: impl Iterator<Item = (TokenKind, &'t str)>) -> u128 {
    let mut h = ContentHasher::new();
    for (_, text) in parts {
        h.push_bytes(text.as_bytes());
    }
    h.finish()
}

/// Content hash of span-level tokens (no text materialisation).
/// Identical to [`content_hash_of`] over the materialised tokens.
pub fn content_hash_spanned(src: &str, tokens: &[crate::lexer::SpannedToken]) -> u128 {
    content_hash_parts(tokens.iter().map(|t| (t.kind, t.text(src))))
}

/// Template fingerprint of span-level tokens (no text materialisation).
/// Identical to [`fingerprint_of`] over the materialised tokens.
pub fn fingerprint_spanned(src: &str, tokens: &[crate::lexer::SpannedToken]) -> u64 {
    fingerprint_parts(tokens.iter().map(|t| (t.kind, t.text(src))))
}

impl ParsedStatement {
    /// The statement's normalized template (literals → `?`, case and
    /// whitespace folded — see [`crate::fingerprint`] for exact
    /// semantics).
    pub fn template(&self) -> String {
        template_of(&self.tokens)
    }

    /// The statement's template fingerprint: a deterministic 64-bit hash
    /// of [`ParsedStatement::template`]. Statements that differ only in
    /// literal values, literal-list lengths, keyword/identifier case, or
    /// whitespace share a fingerprint.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_of(&self.tokens)
    }

    /// The statement's literal-sensitive content hash (see
    /// [`content_hash_of`]).
    pub fn content_hash(&self) -> u128 {
        content_hash_of(&self.tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_one;

    fn fp(sql: &str) -> u64 {
        parse_one(sql).fingerprint()
    }

    #[test]
    fn literals_fold_to_placeholders() {
        assert_eq!(
            fp("SELECT * FROM t WHERE a = 1"),
            fp("SELECT * FROM t WHERE a = 42")
        );
        assert_eq!(
            fp("SELECT * FROM t WHERE a = 'x'"),
            fp("SELECT * FROM t WHERE a = 'other value'")
        );
        assert_eq!(
            fp("SELECT * FROM t WHERE a = ?"),
            fp("SELECT * FROM t WHERE a = 7")
        );
    }

    #[test]
    fn case_and_whitespace_fold() {
        assert_eq!(
            fp("select  *\nfrom T where A = 1"),
            fp("SELECT * FROM t WHERE a = 2")
        );
        // comments are trivia
        assert_eq!(
            fp("SELECT * FROM t -- pick all\nWHERE a = 1"),
            fp("SELECT * FROM t WHERE a = 1")
        );
    }

    #[test]
    fn in_lists_collapse() {
        assert_eq!(
            fp("SELECT * FROM t WHERE a IN (1, 2, 3)"),
            fp("SELECT * FROM t WHERE a IN (4)")
        );
        assert_eq!(
            fp("INSERT INTO t (a, b) VALUES (1, 'x')"),
            fp("INSERT INTO t (a, b) VALUES (2, 'y')")
        );
    }

    #[test]
    fn trailing_semicolon_folds() {
        assert_eq!(fp("SELECT 1"), fp("SELECT 1;"));
    }

    #[test]
    fn structure_distinguishes() {
        assert_ne!(fp("SELECT a FROM t"), fp("SELECT b FROM t"));
        assert_ne!(fp("SELECT a FROM t"), fp("SELECT a FROM u"));
        assert_ne!(
            fp("SELECT * FROM t WHERE a = 1"),
            fp("SELECT * FROM t WHERE a > 1")
        );
        assert_ne!(fp("DELETE FROM t"), fp("SELECT * FROM t"));
    }

    #[test]
    fn quoted_identifiers_keep_case() {
        assert_ne!(fp("SELECT \"A\" FROM t"), fp("SELECT \"a\" FROM t"));
        // ...while bare identifiers fold
        assert_eq!(fp("SELECT A FROM t"), fp("SELECT a FROM t"));
    }

    #[test]
    fn template_text_is_readable() {
        let t = parse_one("SELECT  *  FROM Users WHERE Name = 'N' AND id IN (1,2,3);").template();
        assert_eq!(t, "SELECT * FROM users WHERE name = ? AND id IN ( ? )");
    }

    #[test]
    fn streaming_fingerprint_equals_template_hash() {
        // The streaming hasher must agree byte-for-byte with hashing the
        // rendered template string, across every normalization rule:
        // literal folds, list collapses, case folds, quoted identifiers,
        // comments, trailing semicolons, pathological comma runs.
        let corpus = [
            "SELECT * FROM t WHERE a = 1",
            "select a, b from T where A = 'x' and b in (1, 2, 3);",
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y');;",
            "SELECT \"Weird\" FROM `t2` WHERE x LIKE '%v%' -- c\n;",
            "UPDATE t SET a = ?, b = :name WHERE id = $1",
            "SELECT 1,2,3,4",
            "SELECT f(1 , 2 , 3), g( )",
            "SELECT ',' , ';' ; ;",
            "",
            ";;;",
            "SELECT a ,",
            "SELECT * FROM t WHERE a IN (?, ?, ?) AND b IN (1)",
            "/* only a comment */",
            // Pathological quoted identifiers whose *atom* collides with
            // structural characters: the rendered template dispatches on
            // the atom string, so these must fold identically.
            "SELECT \"?\", 1 FROM t",
            "SELECT 1, \"?\" FROM t",
            "SELECT a, \";\"",
            "SELECT a \";\" ;",
            "SELECT \",\" FROM t",
            "SELECT 1 \",\" 2 FROM t",
            "SELECT \"\" FROM t",
        ];
        for sql in corpus {
            let p = parse_one(sql);
            assert_eq!(
                p.fingerprint(),
                fnv1a(p.template().as_bytes()),
                "streaming vs rendered template diverged on {sql:?} (template {:?})",
                p.template()
            );
        }
    }

    #[test]
    fn spanned_hashes_equal_materialized_hashes() {
        let sql = "SELECT a, \"B\" FROM t WHERE x = 'v' AND y IN (1,2); DELETE FROM t;";
        let toks = crate::lexer::lex_spans(sql);
        let owned = crate::lexer::tokenize(sql);
        assert_eq!(content_hash_spanned(sql, &toks), content_hash_of(&owned));
        assert_eq!(fingerprint_spanned(sql, &toks), fingerprint_of(&owned));
    }

    #[test]
    fn push_hashers_equal_pull_hashers() {
        // The push-style hashers the fused splitter feeds token-by-token
        // must agree with the iterator-based ones on any token stream —
        // including streams whose trailing atoms exercise the deferred
        // `;` fold (quoted identifiers named `";"`, trailing semicolon
        // runs, comma/semicolon interleavings).
        let corpus = [
            "SELECT * FROM t WHERE a = 1",
            "select a, b from T where A = 'x' and b in (1, 2, 3);",
            "SELECT a \";\"",
            "SELECT a \";\" ;",
            "SELECT a, \";\" ; ;",
            "SELECT \";\" , \";\"",
            "SELECT ',' , ';' ; ;",
            "SELECT 1,2,3,4",
            "",
            ";;;",
            "-- only trivia\n/* here */",
            "SELECT \"?\", 1 FROM t ;",
        ];
        for sql in corpus {
            let toks = crate::lexer::lex_spans(sql);
            let mut fp = StreamingFingerprint::new();
            let mut ch = ContentHasher::new();
            for t in &toks {
                fp.push(t.kind, t.text(sql));
                ch.push(t.kind, t.text(sql));
            }
            assert_eq!(
                fp.finish(),
                fingerprint_spanned(sql, &toks),
                "streaming fingerprint diverged on {sql:?}"
            );
            assert_eq!(
                ch.finish(),
                content_hash_spanned(sql, &toks),
                "streaming content hash diverged on {sql:?}"
            );
        }
    }

    #[test]
    fn content_hash_is_a_byte_hash() {
        // Chunking invariance: any split of the byte stream into pushes
        // yields the one-shot hash (the fused splitter relies on this —
        // it hashes the whole statement slice at flush, while the
        // token-stream front-ends push text-by-text).
        let data =
            b"SELECT * FROM t WHERE a = 'long literal body spanning blocks' AND b IN (1,2,3)";
        let oneshot = content_hash_bytes(data);
        for chunk in [1usize, 2, 3, 7, 8, 15, 16, 17, 64] {
            let mut h = ContentHasher::new();
            for c in data.chunks(chunk) {
                h.push_bytes(c);
            }
            assert_eq!(h.finish(), oneshot, "chunk size {chunk}");
        }
        assert_ne!(content_hash_bytes(b"a"), content_hash_bytes(b"b"));
        assert_ne!(content_hash_bytes(b""), content_hash_bytes(b"\0"));
        // A statement's content hash is the hash of its source slice.
        let sql = "SELECT a /* t */ , b FROM t";
        let toks = crate::lexer::lex_spans(sql);
        assert_eq!(content_hash_spanned(sql, &toks), content_hash_bytes(sql.as_bytes()));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: the fingerprint must not drift between releases,
        // it is used as a cross-run cache key.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
