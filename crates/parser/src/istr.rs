//! Inline small string — the allocation-free carrier for token texts and
//! AST name fields.
//!
//! Nearly every string the parser materialises is a short SQL lexeme: an
//! identifier, an operator spelling, a literal. Storing each one in a
//! heap `String` made allocation count scale with token count (~1 alloc
//! per token, measured). [`IStr`] stores texts up to [`IStr::INLINE_CAP`]
//! bytes inline — same 24-byte footprint as `String`, zero heap traffic —
//! and spills longer texts to a `Box<str>`.
//!
//! The type derefs to `str`, so read sites (`.as_str()`, comparisons,
//! `starts_with`, slice `join`) compile unchanged; only sites that *move*
//! an `IStr` into a `String` context need an explicit `.to_string()`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;

/// A short-string-optimised immutable string.
#[derive(Clone)]
pub struct IStr(Repr);

#[derive(Clone)]
enum Repr {
    /// Texts up to `INLINE_CAP` bytes, stored in place.
    Inline { len: u8, buf: [u8; IStr::INLINE_CAP] },
    /// Longer texts, spilled to the heap.
    Heap(Box<str>),
}

impl IStr {
    /// Longest text stored without heap allocation. Chosen so the whole
    /// type is 24 bytes — the same size as `String`.
    pub const INLINE_CAP: usize = 22;

    /// Create from a string slice; allocates only beyond
    /// [`IStr::INLINE_CAP`] bytes.
    #[inline]
    pub fn new(s: &str) -> IStr {
        if s.len() <= Self::INLINE_CAP {
            let mut buf = [0u8; Self::INLINE_CAP];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            IStr(Repr::Inline { len: s.len() as u8, buf })
        } else {
            IStr(Repr::Heap(s.into()))
        }
    }

    /// Create the ASCII-uppercased copy of `s` — inline when it fits, so
    /// the common `to_ascii_uppercase()` at AST construction sites stops
    /// allocating.
    pub fn new_upper(s: &str) -> IStr {
        let mut out = IStr::new(s);
        match &mut out.0 {
            Repr::Inline { len, buf } => buf[..*len as usize].make_ascii_uppercase(),
            Repr::Heap(b) => b.make_ascii_uppercase(),
        }
        out
    }

    /// The empty string (inline; never allocates).
    #[inline]
    pub const fn empty() -> IStr {
        IStr(Repr::Inline { len: 0, buf: [0u8; Self::INLINE_CAP] })
    }

    /// View as `&str`.
    #[inline]
    pub fn as_str(&self) -> &str {
        match &self.0 {
            // SAFETY: the inline buffer is only ever filled from a valid
            // `&str` prefix (whole string, ≤ INLINE_CAP bytes), so the
            // `len` prefix is valid UTF-8.
            Repr::Inline { len, buf } => unsafe {
                std::str::from_utf8_unchecked(&buf[..*len as usize])
            },
            Repr::Heap(b) => b,
        }
    }
}

impl Default for IStr {
    fn default() -> IStr {
        IStr::empty()
    }
}

impl Deref for IStr {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for IStr {
    #[inline]
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for IStr {
    #[inline]
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for IStr {
    #[inline]
    fn from(s: &str) -> IStr {
        IStr::new(s)
    }
}

impl From<&String> for IStr {
    #[inline]
    fn from(s: &String) -> IStr {
        IStr::new(s)
    }
}

impl From<String> for IStr {
    #[inline]
    fn from(s: String) -> IStr {
        if s.len() <= Self::INLINE_CAP {
            IStr::new(&s)
        } else {
            IStr(Repr::Heap(s.into_boxed_str()))
        }
    }
}

impl From<&IStr> for IStr {
    #[inline]
    fn from(s: &IStr) -> IStr {
        s.clone()
    }
}

impl From<IStr> for String {
    #[inline]
    fn from(s: IStr) -> String {
        match s.0 {
            Repr::Inline { .. } => s.as_str().to_string(),
            Repr::Heap(b) => b.into_string(),
        }
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// Equality/ordering/hashing delegate to the text, so inline and heap
// representations of the same text are indistinguishable.
impl PartialEq for IStr {
    #[inline]
    fn eq(&self, other: &IStr) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for IStr {}

impl PartialOrd for IStr {
    #[inline]
    fn partial_cmp(&self, other: &IStr) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for IStr {
    #[inline]
    fn cmp(&self, other: &IStr) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl Hash for IStr {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl PartialEq<str> for IStr {
    #[inline]
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}
impl PartialEq<&str> for IStr {
    #[inline]
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}
impl PartialEq<String> for IStr {
    #[inline]
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}
impl PartialEq<IStr> for str {
    #[inline]
    fn eq(&self, other: &IStr) -> bool {
        self == other.as_str()
    }
}
impl PartialEq<IStr> for &str {
    #[inline]
    fn eq(&self, other: &IStr) -> bool {
        *self == other.as_str()
    }
}
impl PartialEq<IStr> for String {
    #[inline]
    fn eq(&self, other: &IStr) -> bool {
        self.as_str() == other.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_size_as_string() {
        assert_eq!(std::mem::size_of::<IStr>(), std::mem::size_of::<String>());
    }

    #[test]
    fn inline_and_heap_round_trip() {
        let short = IStr::new("id");
        assert_eq!(short, "id");
        assert!(matches!(short.0, Repr::Inline { .. }));
        let exactly = IStr::new("abcdefghijklmnopqrstuv"); // 22 bytes
        assert!(matches!(exactly.0, Repr::Inline { .. }));
        assert_eq!(exactly.len(), 22);
        let long = IStr::new("a_rather_long_identifier_name");
        assert!(matches!(long.0, Repr::Heap(_)));
        assert_eq!(long, "a_rather_long_identifier_name");
    }

    #[test]
    fn eq_hash_ord_cross_repr() {
        use std::collections::HashSet;
        let a = IStr::new("tenant");
        let b = IStr::from("tenant".to_string());
        assert_eq!(a, b);
        assert_eq!(a, "tenant");
        assert_eq!("tenant", a);
        assert_eq!(a, "tenant".to_string());
        let mut set = HashSet::new();
        set.insert(a.clone());
        // Borrow<str> lets lookups use &str keys.
        assert!(set.contains("tenant"));
        assert!(IStr::new("a") < IStr::new("b"));
    }

    #[test]
    fn upper_constructor() {
        assert_eq!(IStr::new_upper("varchar"), "VARCHAR");
        assert_eq!(IStr::new_upper("a_rather_long_identifier_name"), "A_RATHER_LONG_IDENTIFIER_NAME");
    }

    #[test]
    fn deref_and_join() {
        let parts = [IStr::new("t"), IStr::new("a")];
        assert_eq!(parts.join("."), "t.a");
        let s = IStr::new("LIKE");
        assert!(s.starts_with("LI"));
        assert_eq!(s.to_ascii_lowercase(), "like");
    }

    #[test]
    fn utf8_multibyte_safe() {
        let s = IStr::new("héllo_wörld");
        assert_eq!(s.as_str(), "héllo_wörld");
        let boundary = "ééééééééééé"; // 22 bytes of 2-byte chars
        assert_eq!(boundary.len(), 22);
        assert!(matches!(IStr::new(boundary).0, Repr::Inline { .. }));
        assert_eq!(IStr::new(boundary), boundary);
    }
}
