//! Loose (non-validating) statement model.
//!
//! The parser shapes statements *best-effort*: everything it understands is
//! represented structurally; everything else is preserved verbatim as raw
//! token sequences ([`Expr::Raw`], [`Statement::Other`]). This mirrors the
//! annotated-parse-tree design the paper builds on top of `sqlparse` — the
//! detection rules need structure where available but must never reject a
//! statement from an unsupported dialect.

use crate::arena::{ExprArena, ExprId, ExprRange};
use crate::istr::IStr;
use crate::token::{Span, Token};

/// A parsed statement together with the raw tokens it came from.
#[derive(Debug, Clone)]
pub struct ParsedStatement {
    /// Structural interpretation of the statement.
    pub stmt: Statement,
    /// The original token stream (trivia included) — the fallback
    /// representation used when a fix cannot be expressed structurally.
    pub tokens: Vec<Token>,
    /// Arena owning every expression node of `stmt`, including compound
    /// body sub-statements. All `ExprId`/`ExprRange` indices in the tree
    /// resolve here.
    pub arena: ExprArena,
}

impl ParsedStatement {
    /// Original statement text.
    pub fn text(&self) -> String {
        self.tokens.iter().map(|t| t.text.as_str()).collect()
    }
}

/// Top-level statement classification.
#[derive(Debug, Clone)]
pub enum Statement {
    /// `CREATE TABLE ...`
    CreateTable(CreateTable),
    /// `CREATE [UNIQUE] INDEX ...`
    CreateIndex(CreateIndex),
    /// `CREATE TRIGGER ... BEGIN ... END` (or Postgres `EXECUTE
    /// FUNCTION` form) — the body is parsed sub-statements.
    CreateTrigger(CreateTrigger),
    /// `CREATE PROCEDURE|FUNCTION ...` with a `BEGIN…END` or
    /// dollar-quoted body of parsed sub-statements.
    CreateRoutine(CreateRoutine),
    /// `ALTER TABLE ...`
    AlterTable(AlterTable),
    /// `SELECT ...` (including set operations, loosely)
    Select(Select),
    /// `INSERT INTO ...`
    Insert(Insert),
    /// `UPDATE ...`
    Update(Update),
    /// `DELETE FROM ...`
    Delete(Delete),
    /// `DROP TABLE|INDEX ...`
    Drop(Drop),
    /// Any statement the parser does not model structurally.
    Other(OtherStatement),
}

impl Statement {
    /// Short uppercase tag naming the statement type (for reports).
    pub fn tag(&self) -> &'static str {
        match self {
            Statement::CreateTable(_) => "CREATE TABLE",
            Statement::CreateIndex(_) => "CREATE INDEX",
            Statement::CreateTrigger(_) => "CREATE TRIGGER",
            Statement::CreateRoutine(r) => match r.kind {
                RoutineKind::Procedure => "CREATE PROCEDURE",
                RoutineKind::Function => "CREATE FUNCTION",
            },
            Statement::AlterTable(_) => "ALTER TABLE",
            Statement::Select(_) => "SELECT",
            Statement::Insert(_) => "INSERT",
            Statement::Update(_) => "UPDATE",
            Statement::Delete(_) => "DELETE",
            Statement::Drop(_) => "DROP",
            Statement::Other(_) => "OTHER",
        }
    }

    /// Whether this is a DDL statement.
    pub fn is_ddl(&self) -> bool {
        matches!(
            self,
            Statement::CreateTable(_)
                | Statement::CreateIndex(_)
                | Statement::CreateTrigger(_)
                | Statement::CreateRoutine(_)
                | Statement::AlterTable(_)
                | Statement::Drop(_)
        )
    }

    /// The parsed body sub-statements, when this is compound DDL
    /// (trigger/procedure/function); empty otherwise.
    pub fn body(&self) -> &[BodyStatement] {
        match self {
            Statement::CreateTrigger(t) => &t.body,
            Statement::CreateRoutine(r) => &r.body,
            _ => &[],
        }
    }
}

/// An unmodelled statement: first significant keyword plus all tokens.
#[derive(Debug, Clone)]
pub struct OtherStatement {
    /// The leading keyword (uppercased), e.g. `PRAGMA`, `GRANT`; empty when
    /// the statement does not start with a keyword.
    pub leading_keyword: IStr,
}

/// A (possibly qualified) object name such as `schema.table`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ObjectName(pub Vec<IStr>);

impl ObjectName {
    /// Single-part name.
    pub fn simple(name: impl Into<IStr>) -> Self {
        ObjectName(vec![name.into()])
    }

    /// The final path component (the object's own name).
    pub fn name(&self) -> &str {
        self.0.last().map(IStr::as_str).unwrap_or("")
    }

    /// Case-insensitive comparison on the final component.
    pub fn name_eq(&self, other: &str) -> bool {
        self.name().eq_ignore_ascii_case(other)
    }
}

impl std::fmt::Display for ObjectName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0.join("."))
    }
}

/// A SQL type name with optional arguments and modifiers, e.g.
/// `VARCHAR(30)`, `DECIMAL(10, 2)`, `ENUM('a','b')`, `INT UNSIGNED`,
/// `TIMESTAMP WITH TIME ZONE`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypeName {
    /// Uppercased base name (`VARCHAR`, `ENUM`, `TIMESTAMP`, ...).
    pub name: IStr,
    /// Raw argument texts inside parentheses (numbers or quoted strings).
    pub args: Vec<IStr>,
    /// Trailing modifiers, uppercased (`UNSIGNED`, `WITH TIME ZONE`, ...).
    pub modifiers: Vec<IStr>,
}

impl TypeName {
    /// Construct a simple type without args.
    pub fn simple(name: &str) -> Self {
        TypeName { name: IStr::new_upper(name), ..Default::default() }
    }

    /// True for textual types (`CHAR`, `VARCHAR`, `TEXT`, ...).
    pub fn is_textual(&self) -> bool {
        matches!(self.name.as_str(), "CHAR" | "VARCHAR" | "TEXT" | "CHARACTER" | "CLOB" | "STRING" | "NVARCHAR")
    }

    /// True for binary floating point types (the Rounding Errors AP).
    pub fn is_inexact_fractional(&self) -> bool {
        matches!(self.name.as_str(), "FLOAT" | "REAL" | "DOUBLE")
    }

    /// True for integer types.
    pub fn is_integral(&self) -> bool {
        matches!(
            self.name.as_str(),
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" | "MEDIUMINT" | "SERIAL"
        )
    }

    /// True for date/time types.
    pub fn is_temporal(&self) -> bool {
        matches!(self.name.as_str(), "DATE" | "TIME" | "DATETIME" | "TIMESTAMP" | "TIMESTAMPTZ")
    }

    /// True when the type carries timezone information.
    pub fn has_timezone(&self) -> bool {
        self.name == "TIMESTAMPTZ"
            || self.modifiers.iter().any(|m| m == "WITH TIME ZONE")
    }
}

/// One column definition in `CREATE TABLE`.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name (quoting stripped).
    pub name: IStr,
    /// Declared type; `None` when omitted (SQLite allows this).
    pub data_type: Option<TypeName>,
    /// Column-level constraints in declaration order.
    pub constraints: Vec<ColumnConstraint>,
}

impl ColumnDef {
    /// Whether the column is declared PRIMARY KEY at column level.
    pub fn is_primary_key(&self) -> bool {
        self.constraints.iter().any(|c| matches!(c, ColumnConstraint::PrimaryKey))
    }

    /// The referenced table if the column carries a `REFERENCES` clause.
    pub fn references(&self) -> Option<&ForeignKeyRef> {
        self.constraints.iter().find_map(|c| match c {
            ColumnConstraint::References(r) => Some(r),
            _ => None,
        })
    }
}

/// Column-level constraint.
#[derive(Debug, Clone)]
pub enum ColumnConstraint {
    /// `PRIMARY KEY`
    PrimaryKey,
    /// `NOT NULL`
    NotNull,
    /// `NULL`
    Null,
    /// `UNIQUE`
    Unique,
    /// `AUTO_INCREMENT` / `AUTOINCREMENT` / `SERIAL`-like
    AutoIncrement,
    /// `DEFAULT <expr>` (expression kept raw).
    Default(String),
    /// `CHECK (<expr>)`
    Check(CheckConstraint),
    /// `REFERENCES table (cols)`
    References(ForeignKeyRef),
    /// Anything else (`COLLATE`, dialect-specific), preserved as text.
    Other(String),
}

/// The target of a foreign key reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKeyRef {
    /// Referenced table.
    pub table: ObjectName,
    /// Referenced columns (may be empty → the table's PK).
    pub columns: Vec<IStr>,
    /// Referential actions (e.g. `ON DELETE CASCADE`), raw text.
    pub actions: Vec<String>,
}

/// A CHECK constraint body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckConstraint {
    /// Raw text of the check expression (inside the parentheses).
    pub expr_text: String,
    /// When the check has the shape `col IN ('a','b',...)` — the paper's
    /// Enumerated Types AP — the column and the permitted values.
    pub in_list: Option<(IStr, Vec<IStr>)>,
}

/// Table-level constraint.
#[derive(Debug, Clone)]
pub struct TableConstraint {
    /// Optional constraint name (`CONSTRAINT name ...`).
    pub name: Option<IStr>,
    /// The constraint body.
    pub kind: TableConstraintKind,
}

/// Table-level constraint body.
#[derive(Debug, Clone)]
pub enum TableConstraintKind {
    /// `PRIMARY KEY (cols)`
    PrimaryKey(Vec<IStr>),
    /// `UNIQUE (cols)`
    Unique(Vec<IStr>),
    /// `FOREIGN KEY (cols) REFERENCES table (cols)`
    ForeignKey {
        /// Referencing columns.
        columns: Vec<IStr>,
        /// The reference target.
        reference: ForeignKeyRef,
    },
    /// `CHECK (expr)`
    Check(CheckConstraint),
    /// Unrecognised constraint, preserved as text.
    Other(String),
}

/// `CREATE TABLE` statement.
#[derive(Debug, Clone)]
pub struct CreateTable {
    /// Table name.
    pub name: ObjectName,
    /// `IF NOT EXISTS` present.
    pub if_not_exists: bool,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
    /// Table-level constraints.
    pub constraints: Vec<TableConstraint>,
    /// Trailing table options (engine, charset...), raw text.
    pub options: String,
}

impl CreateTable {
    /// The set of primary-key columns, from either a column-level or a
    /// table-level declaration.
    pub fn primary_key_columns(&self) -> Vec<IStr> {
        for tc in &self.constraints {
            if let TableConstraintKind::PrimaryKey(cols) = &tc.kind {
                return cols.clone();
            }
        }
        self.columns
            .iter()
            .filter(|c| c.is_primary_key())
            .map(|c| c.name.clone())
            .collect()
    }

    /// True if the table declares any primary key.
    pub fn has_primary_key(&self) -> bool {
        !self.primary_key_columns().is_empty()
    }

    /// All foreign key references declared in this table (column level and
    /// table level), as `(local columns, reference)` pairs.
    pub fn foreign_keys(&self) -> Vec<(Vec<IStr>, ForeignKeyRef)> {
        let mut out = Vec::new();
        for col in &self.columns {
            if let Some(r) = col.references() {
                out.push((vec![col.name.clone()], r.clone()));
            }
        }
        for tc in &self.constraints {
            if let TableConstraintKind::ForeignKey { columns, reference } = &tc.kind {
                out.push((columns.clone(), reference.clone()));
            }
        }
        out
    }

    /// Find a column by name (case-insensitive).
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// One parsed statement inside a compound-statement body (`BEGIN … END`
/// block or dollar-quoted routine body).
#[derive(Debug, Clone)]
pub struct BodyStatement {
    /// The parsed sub-statement (recursively shaped; constructs the
    /// parser cannot model become [`Statement::Other`], like any other
    /// statement).
    pub stmt: Statement,
    /// Byte range of the sub-statement **relative to the enclosing
    /// statement's start**. Relative spans are occurrence-independent:
    /// duplicate texts share one parse tree, and a consumer rebases
    /// against the occurrence's own span to point into the source.
    pub span: Span,
}

/// `CREATE TRIGGER` statement with a parsed body.
#[derive(Debug, Clone)]
pub struct CreateTrigger {
    /// Trigger name.
    pub name: ObjectName,
    /// `BEFORE` / `AFTER` / `INSTEAD OF`, uppercased, when present.
    pub timing: Option<String>,
    /// Triggering events (`INSERT`, `UPDATE`, `DELETE`, `TRUNCATE`),
    /// uppercased.
    pub events: Vec<String>,
    /// The table the trigger is attached to (`ON <table>`).
    pub table: ObjectName,
    /// `FOR EACH ROW` present.
    pub for_each_row: bool,
    /// `WHEN <condition>` raw text, when present (SQLite/Postgres).
    pub when: Option<String>,
    /// Parsed body sub-statements (from `BEGIN…END`, or the single
    /// `EXECUTE FUNCTION …` statement in the Postgres form).
    pub body: Vec<BodyStatement>,
}

/// Which kind of routine a [`CreateRoutine`] declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutineKind {
    /// `CREATE PROCEDURE`
    Procedure,
    /// `CREATE FUNCTION`
    Function,
}

/// `CREATE PROCEDURE` / `CREATE FUNCTION` statement with a parsed body.
#[derive(Debug, Clone)]
pub struct CreateRoutine {
    /// Procedure or function.
    pub kind: RoutineKind,
    /// Routine name.
    pub name: ObjectName,
    /// Raw parameter-list text (inside the parentheses), when present.
    pub params: Option<String>,
    /// `LANGUAGE <name>`, when declared (Postgres).
    pub language: Option<String>,
    /// Parsed body sub-statements — from a `BEGIN…END` block, a
    /// dollar-quoted PL/pgSQL or SQL body (the splitter-level lexer keeps
    /// the body opaque; the parser re-lexes it here), or a single
    /// statement body.
    pub body: Vec<BodyStatement>,
}

/// `CREATE INDEX` statement.
#[derive(Debug, Clone)]
pub struct CreateIndex {
    /// Index name (may be empty for anonymous dialect forms).
    pub name: IStr,
    /// Indexed table.
    pub table: ObjectName,
    /// Indexed columns, in order.
    pub columns: Vec<IStr>,
    /// `UNIQUE` index.
    pub unique: bool,
}

/// `ALTER TABLE` statement.
#[derive(Debug, Clone)]
pub struct AlterTable {
    /// Target table.
    pub table: ObjectName,
    /// The action performed.
    pub action: AlterAction,
}

/// Recognised `ALTER TABLE` actions.
#[derive(Debug, Clone)]
pub enum AlterAction {
    /// `ADD [COLUMN] <def>`
    AddColumn(ColumnDef),
    /// `DROP [COLUMN] <name>`
    DropColumn(IStr),
    /// `ADD CONSTRAINT ...`
    AddConstraint(TableConstraint),
    /// `DROP CONSTRAINT [IF EXISTS] <name>`
    DropConstraint(IStr),
    /// Anything else, preserved as text.
    Other(String),
}

/// One item of a `SELECT` list.
#[derive(Debug, Clone)]
pub enum SelectItem {
    /// `*` or `t.*`
    Wildcard {
        /// Optional table qualifier (`t` in `t.*`).
        qualifier: Option<IStr>,
    },
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: ExprId,
        /// `AS alias` (or bare alias).
        alias: Option<IStr>,
    },
}

/// A table reference in `FROM`, with optional alias. Subqueries in FROM are
/// kept raw in `Expr::Raw` via `subquery`.
#[derive(Debug, Clone)]
pub struct TableRef {
    /// Table name; empty when the source is a subquery.
    pub name: ObjectName,
    /// Alias, if any.
    pub alias: Option<IStr>,
    /// A derived table `( SELECT ... )`, boxed to keep the struct small.
    pub subquery: Option<Box<Select>>,
}

impl TableRef {
    /// Name bound in the query scope: alias if present, else the table name.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or_else(|| self.name.name())
    }
}

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    Left,
    /// `RIGHT [OUTER] JOIN`
    Right,
    /// `FULL [OUTER] JOIN`
    Full,
    /// `CROSS JOIN`
    Cross,
    /// comma-join in FROM
    Comma,
}

/// One JOIN clause.
#[derive(Debug, Clone)]
pub struct Join {
    /// Join type.
    pub join_type: JoinType,
    /// Joined table.
    pub table: TableRef,
    /// `ON <expr>`, if present.
    pub on: Option<ExprId>,
    /// `USING (cols)`, if present.
    pub using: Vec<IStr>,
}

/// `SELECT` statement (loosely parsed).
#[derive(Debug, Clone)]
pub struct Select {
    /// `DISTINCT` present.
    pub distinct: bool,
    /// Select list.
    pub items: Vec<SelectItem>,
    /// First FROM table (additional comma tables appear as `Comma` joins).
    pub from: Option<TableRef>,
    /// JOIN clauses in order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<ExprId>,
    /// GROUP BY expressions.
    pub group_by: ExprRange,
    /// HAVING predicate.
    pub having: Option<ExprId>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT expression text.
    pub limit: Option<String>,
    /// Trailing set-operation text (`UNION SELECT ...`), preserved raw.
    pub set_op_tail: Option<String>,
}

impl Select {
    /// All table references in scope (FROM plus all JOINs).
    pub fn tables(&self) -> Vec<&TableRef> {
        let mut v: Vec<&TableRef> = Vec::new();
        if let Some(f) = &self.from {
            v.push(f);
        }
        v.extend(self.joins.iter().map(|j| &j.table));
        v
    }

    /// Number of join clauses (comma joins included).
    pub fn join_count(&self) -> usize {
        self.joins.len()
    }

    /// True if any select item is a wildcard.
    pub fn has_wildcard(&self) -> bool {
        self.items.iter().any(|i| matches!(i, SelectItem::Wildcard { .. }))
    }
}

/// One `ORDER BY` item.
#[derive(Debug, Clone)]
pub struct OrderItem {
    /// Ordering expression.
    pub expr: ExprId,
    /// `true` for ASC (default), `false` for DESC.
    pub asc: bool,
}

/// `INSERT` statement.
#[derive(Debug, Clone)]
pub struct Insert {
    /// Target table.
    pub table: ObjectName,
    /// Explicit column list; empty ⇒ implicit columns (the Implicit
    /// Columns AP).
    pub columns: Vec<IStr>,
    /// The row source.
    pub source: InsertSource,
}

/// Source of inserted rows.
#[derive(Debug, Clone)]
pub enum InsertSource {
    /// `VALUES (..), (..)` — one arena range per row.
    Values(Vec<ExprRange>),
    /// `INSERT ... SELECT`
    Select(Box<Select>),
    /// Unparsed source text.
    Raw(String),
}

/// `UPDATE` statement.
#[derive(Debug, Clone)]
pub struct Update {
    /// Target table.
    pub table: ObjectName,
    /// `SET col = expr` assignments.
    pub assignments: Vec<(IStr, ExprId)>,
    /// WHERE predicate.
    pub where_clause: Option<ExprId>,
}

/// `DELETE` statement.
#[derive(Debug, Clone)]
pub struct Delete {
    /// Target table.
    pub table: ObjectName,
    /// WHERE predicate.
    pub where_clause: Option<ExprId>,
}

/// `DROP TABLE|INDEX` statement.
#[derive(Debug, Clone)]
pub struct Drop {
    /// What is dropped: `TABLE`, `INDEX`, `VIEW`, ... (uppercased).
    pub object_kind: IStr,
    /// Object name.
    pub name: ObjectName,
    /// `IF EXISTS` present.
    pub if_exists: bool,
}

/// The comparison-like operator used in pattern predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LikeOp {
    /// `LIKE`
    Like,
    /// `ILIKE`
    ILike,
    /// `REGEXP` / `RLIKE`
    Regexp,
    /// `GLOB`
    Glob,
    /// `SIMILAR TO`
    Similar,
}

impl LikeOp {
    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            LikeOp::Like => "LIKE",
            LikeOp::ILike => "ILIKE",
            LikeOp::Regexp => "REGEXP",
            LikeOp::Glob => "GLOB",
            LikeOp::Similar => "SIMILAR TO",
        }
    }
}

/// Expression tree node. Child edges are typed indices into the
/// statement's [`ExprArena`] ([`ExprId`] for single children,
/// [`ExprRange`] for lists) — no per-node heap allocation. Constructs the
/// parser cannot shape fall back to [`Expr::Raw`]; every variant can be
/// rendered back to SQL. Traversal helpers (`walk`, `column_refs`,
/// `function_calls`) live on [`ExprArena`], which owns the nodes.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Possibly-qualified identifier (`a`, `t.a`).
    Ident(Vec<IStr>),
    /// String literal (unescaped value).
    StringLit(IStr),
    /// Numeric literal (original text).
    NumberLit(IStr),
    /// `TRUE` / `FALSE`
    BoolLit(bool),
    /// `NULL`
    Null,
    /// Bind parameter (original text, e.g. `?`, `$1`, `%s`).
    Param(IStr),
    /// Unary operator (`NOT`, `-`).
    Unary {
        /// Operator spelling (uppercased for word operators).
        op: IStr,
        /// Operand.
        expr: ExprId,
    },
    /// Binary operator.
    Binary {
        /// Left operand.
        left: ExprId,
        /// Operator spelling (uppercased for word operators like `AND`).
        op: IStr,
        /// Right operand.
        right: ExprId,
    },
    /// Function call.
    Function {
        /// Function name (original case).
        name: IStr,
        /// Arguments; a lone `*` argument is `Expr::Ident(vec!["*"])`.
        args: ExprRange,
        /// `DISTINCT` inside the call.
        distinct: bool,
    },
    /// Parenthesised expression.
    Paren(ExprId),
    /// `expr [NOT] IN (list)` — subquery forms fall back to Raw.
    InList {
        /// Tested expression.
        expr: ExprId,
        /// List elements.
        list: ExprRange,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        /// Tested expression.
        expr: ExprId,
        /// Lower bound.
        low: ExprId,
        /// Upper bound.
        high: ExprId,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE|REGEXP|... pattern`
    Like {
        /// Tested expression.
        expr: ExprId,
        /// The pattern operator.
        op: LikeOp,
        /// Pattern expression.
        pattern: ExprId,
        /// Negated form.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: ExprId,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// A scalar subquery or `EXISTS (...)` body, parsed recursively.
    Subquery(Box<Select>),
    /// Fallback: the raw token texts joined (significant tokens only).
    Raw(String),
}

impl Expr {
    /// Convenience constructor for an unqualified identifier.
    pub fn ident(name: impl Into<IStr>) -> Expr {
        Expr::Ident(vec![name.into()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_name_display_and_eq() {
        let n = ObjectName(vec!["public".into(), "Tenant".into()]);
        assert_eq!(n.to_string(), "public.Tenant");
        assert!(n.name_eq("tenant"));
    }

    #[test]
    fn type_name_classifiers() {
        assert!(TypeName::simple("VARCHAR").is_textual());
        assert!(TypeName::simple("FLOAT").is_inexact_fractional());
        assert!(TypeName::simple("BIGINT").is_integral());
        assert!(TypeName::simple("TIMESTAMPTZ").has_timezone());
        let mut t = TypeName::simple("TIMESTAMP");
        assert!(!t.has_timezone());
        t.modifiers.push("WITH TIME ZONE".into());
        assert!(t.has_timezone());
    }

    #[test]
    fn expr_walk_collects_columns_and_functions() {
        let mut arena = ExprArena::new();
        let left = arena.alloc(Expr::Ident(vec!["t".into(), "a".into()]));
        let args = arena.alloc_range([Expr::ident("b")]);
        let right = arena.alloc(Expr::Function { name: "lower".into(), args, distinct: false });
        let e = arena.alloc(Expr::Binary { left, op: "=".into(), right });
        let cols = arena.column_refs(e);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], (Some("t".into()), "a".into()));
        assert_eq!(arena.function_calls(e), vec!["LOWER".to_string()]);
    }

    #[test]
    fn create_table_pk_helpers() {
        let ct = CreateTable {
            name: ObjectName::simple("t"),
            if_not_exists: false,
            columns: vec![ColumnDef {
                name: "id".into(),
                data_type: Some(TypeName::simple("INT")),
                constraints: vec![ColumnConstraint::PrimaryKey],
            }],
            constraints: vec![],
            options: String::new(),
        };
        assert!(ct.has_primary_key());
        assert_eq!(ct.primary_key_columns(), vec!["id".to_string()]);
    }
}
