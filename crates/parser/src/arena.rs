//! Typed bump arena for parse output.
//!
//! The legacy AST heap-allocated every edge: each child expression was a
//! `Box<Expr>` and every argument list a `Vec<Expr>`, so a single
//! statement's tree cost one allocation per node plus growth churn per
//! list. The arena replaces all of that with **one contiguous node
//! buffer per statement**: nodes are pushed in parse order and referenced
//! by typed indices ([`ExprId`]) or contiguous runs ([`ExprRange`]).
//! Allocation cost per statement is the node vector's amortised doubling
//! — a handful of allocations regardless of tree size — and dropping a
//! statement frees the whole tree in one `Vec` drop instead of a
//! recursive `Box` walk.
//!
//! Index stability: ids are positions in the push order and are never
//! invalidated (the arena is append-only until dropped). A node's
//! children always have **smaller** indices than the node itself —
//! children are allocated before their parent is pushed — which makes
//! exhaustive traversal by index order a valid post-order walk.

use crate::ast::Expr;
use crate::istr::IStr;

/// Typed index of one [`Expr`] node in an [`ExprArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprId(u32);

impl ExprId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A contiguous run of nodes in an [`ExprArena`] — the arena's
/// replacement for `Vec<Expr>` child lists (function arguments, `IN`
/// lists, `GROUP BY` expressions, `VALUES` rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ExprRange {
    start: u32,
    len: u32,
}

impl ExprRange {
    /// The empty range.
    pub const EMPTY: ExprRange = ExprRange { start: 0, len: 0 };

    /// Number of nodes in the range.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Whether the range is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Iterate the ids in the range.
    #[inline]
    pub fn iter(self) -> impl ExactSizeIterator<Item = ExprId> {
        (self.start..self.start + self.len).map(ExprId)
    }
}

/// Bump arena owning every expression node of one parsed statement (and
/// its compound-body sub-statements — the whole [`crate::ast::ParsedStatement`]
/// shares one arena).
#[derive(Debug, Clone, Default)]
pub struct ExprArena {
    nodes: Vec<Expr>,
}

impl ExprArena {
    /// An empty arena.
    pub fn new() -> Self {
        ExprArena { nodes: Vec::new() }
    }

    /// Pre-reserve room for `n` more nodes — one up-front allocation
    /// instead of amortised doubling during the parse.
    pub fn reserve(&mut self, n: usize) {
        self.nodes.reserve(n);
    }

    /// Number of nodes allocated.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Allocate one node.
    #[inline]
    pub fn alloc(&mut self, expr: Expr) -> ExprId {
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(expr);
        id
    }

    /// Allocate a contiguous run of nodes from an iterator.
    pub fn alloc_range(&mut self, exprs: impl IntoIterator<Item = Expr>) -> ExprRange {
        let start = self.nodes.len() as u32;
        self.nodes.extend(exprs);
        ExprRange { start, len: self.nodes.len() as u32 - start }
    }

    /// The node behind `id`.
    #[inline]
    pub fn node(&self, id: ExprId) -> &Expr {
        &self.nodes[id.0 as usize]
    }

    /// The nodes behind a range.
    #[inline]
    pub fn range(&self, r: ExprRange) -> &[Expr] {
        &self.nodes[r.start as usize..(r.start + r.len) as usize]
    }

    /// Walk the subtree rooted at `id` pre-order, calling `f` on every
    /// node. The arena-level replacement for the legacy `Expr::walk`.
    /// Node references borrow from the arena itself, so callers may
    /// collect them past the walk.
    pub fn walk<'a>(&'a self, id: ExprId, f: &mut dyn FnMut(&'a Expr)) {
        let e = self.node(id);
        f(e);
        match e {
            Expr::Unary { expr, .. } | Expr::Paren(expr) | Expr::IsNull { expr, .. } => {
                self.walk(*expr, f);
            }
            Expr::Binary { left, right, .. } => {
                self.walk(*left, f);
                self.walk(*right, f);
            }
            Expr::Function { args, .. } => {
                for a in args.iter() {
                    self.walk(a, f);
                }
            }
            Expr::InList { expr, list, .. } => {
                self.walk(*expr, f);
                for e in list.iter() {
                    self.walk(e, f);
                }
            }
            Expr::Between { expr, low, high, .. } => {
                self.walk(*expr, f);
                self.walk(*low, f);
                self.walk(*high, f);
            }
            Expr::Like { expr, pattern, .. } => {
                self.walk(*expr, f);
                self.walk(*pattern, f);
            }
            Expr::Subquery(_) => {}
            _ => {}
        }
    }

    /// Collect every column reference `(qualifier, column)` in the
    /// subtree rooted at `id`.
    pub fn column_refs(&self, id: ExprId) -> Vec<(Option<IStr>, IStr)> {
        let mut out = Vec::new();
        self.walk(id, &mut |e| {
            if let Expr::Ident(parts) = e {
                match parts.len() {
                    1 if parts[0] != "*" => out.push((None, parts[0].clone())),
                    2 => out.push((Some(parts[0].clone()), parts[1].clone())),
                    _ => {}
                }
            }
        });
        out
    }

    /// Collect every function name called in the subtree (uppercased).
    pub fn function_calls(&self, id: ExprId) -> Vec<IStr> {
        let mut out = Vec::new();
        self.walk(id, &mut |e| {
            if let Expr::Function { name, .. } = e {
                out.push(IStr::new_upper(name));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_walk() {
        let mut a = ExprArena::new();
        let l = a.alloc(Expr::Ident(vec!["t".into(), "a".into()]));
        let arg = a.alloc(Expr::ident("b"));
        let args = ExprRange { start: arg.0, len: 1 };
        let f = a.alloc(Expr::Function { name: "lower".into(), args, distinct: false });
        let root = a.alloc(Expr::Binary { left: l, op: "=".into(), right: f });

        let cols = a.column_refs(root);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], (Some("t".into()), "a".into()));
        assert_eq!(a.function_calls(root), vec!["LOWER".to_string()]);

        // Children precede parents in index order.
        let mut seen = 0;
        a.walk(root, &mut |_| seen += 1);
        assert_eq!(seen, 4);
        assert!(l.index() < root.index() && f.index() < root.index());
    }

    #[test]
    fn ranges_are_contiguous() {
        let mut a = ExprArena::new();
        let r = a.alloc_range([Expr::ident("x"), Expr::ident("y")]);
        assert_eq!(r.len(), 2);
        let ids: Vec<_> = r.iter().collect();
        assert_eq!(a.range(r).len(), 2);
        assert!(matches!(a.node(ids[0]), Expr::Ident(p) if p[0] == "x"));
        assert!(matches!(a.node(ids[1]), Expr::Ident(p) if p[0] == "y"));
    }
}
