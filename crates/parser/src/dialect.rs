//! SQL dialect selection.
//!
//! The front door (lexer → splitter → parser) historically accepted a
//! *tolerant union* of dialects: backticks, brackets, dollar-quoting,
//! nested comments, and `DELIMITER` directives were all always on. That
//! union is a good default for mixed corpora, but it bakes in real
//! conflicts — a MySQL `$$` custom delimiter collides with Postgres
//! dollar-quoting, and `#` comments cannot be honoured at all because
//! `#` is an operator elsewhere. [`Dialect`] makes the choice explicit:
//! every layer consults the active dialect's capability methods instead
//! of hard-coding one syntax.
//!
//! [`Dialect::Generic`] preserves the historical union **byte for
//! byte** — every capability that was previously unconditional answers
//! `true` for it (and `#` comments, the one capability the union never
//! had, answers `false`). All pre-dialect entry points delegate to
//! `Generic`, so existing callers and cached results are unaffected.

use crate::token::{Kw, TokenKind};

/// The SQL dialect the front door should apply.
///
/// Capabilities are *syntactic*: they decide how bytes lex and where
/// statements end. Keyword admissibility ([`Dialect::admits_keyword`])
/// additionally gates a few dialect-specific operators in the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dialect {
    /// The historical tolerant union: backticks, brackets, and `"…"` all
    /// quote identifiers, dollar-quoting and `DELIMITER` directives are
    /// both honoured, block comments nest. Byte-identical to the
    /// pre-dialect behaviour.
    #[default]
    Generic,
    /// PostgreSQL: dollar-quoting, nested block comments, `"…"`
    /// identifiers; no backticks, brackets, `#` comments, or
    /// `DELIMITER` directives.
    Postgres,
    /// MySQL / MariaDB: backtick identifiers, `"…"` **strings**, `#`
    /// line comments, `DELIMITER` directives; block comments do not
    /// nest and `$` is an ordinary identifier character (so `DELIMITER
    /// $$` works instead of colliding with dollar-quoting).
    MySql,
    /// SQLite: backtick, bracket, and `"…"` identifiers; no
    /// dollar-quoting, `#` comments, nested comments, or `DELIMITER`
    /// directives.
    Sqlite,
}

impl Dialect {
    /// All dialects, in stable order.
    pub const ALL: [Dialect; 4] =
        [Dialect::Generic, Dialect::Postgres, Dialect::MySql, Dialect::Sqlite];

    /// Stable machine-readable name (accepted back by [`Dialect::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Dialect::Generic => "generic",
            Dialect::Postgres => "postgres",
            Dialect::MySql => "mysql",
            Dialect::Sqlite => "sqlite",
        }
    }

    /// Parse a dialect name (case-insensitive; common aliases accepted).
    pub fn parse(s: &str) -> Option<Dialect> {
        match s.to_ascii_lowercase().as_str() {
            "generic" | "ansi" | "" => Some(Dialect::Generic),
            "postgres" | "postgresql" | "pg" | "plpgsql" => Some(Dialect::Postgres),
            "mysql" | "mariadb" => Some(Dialect::MySql),
            "sqlite" | "sqlite3" => Some(Dialect::Sqlite),
            _ => None,
        }
    }

    /// `` `name` `` lexes as a quoted identifier.
    pub fn backtick_idents(self) -> bool {
        matches!(self, Dialect::Generic | Dialect::MySql | Dialect::Sqlite)
    }

    /// `[name]` lexes as a quoted identifier (T-SQL style, accepted by
    /// SQLite).
    pub fn bracket_idents(self) -> bool {
        matches!(self, Dialect::Generic | Dialect::Sqlite)
    }

    /// `"…"` lexes as a **string literal** instead of a quoted
    /// identifier (MySQL without `ANSI_QUOTES`).
    pub fn double_quote_strings(self) -> bool {
        matches!(self, Dialect::MySql)
    }

    /// `$tag$ … $tag$` lexes as a dollar-quoted string and `$1` as a
    /// positional parameter. When off, `$` is an ordinary word byte —
    /// which is what lets a MySQL `DELIMITER $$` terminator match as a
    /// plain word token.
    pub fn dollar_quoting(self) -> bool {
        matches!(self, Dialect::Generic | Dialect::Postgres)
    }

    /// `#` starts a line comment (MySQL).
    pub fn hash_comments(self) -> bool {
        matches!(self, Dialect::MySql)
    }

    /// `/* … /* … */ … */` block comments nest (SQL standard,
    /// Postgres). When off, the first `*/` closes the comment (MySQL,
    /// SQLite).
    pub fn nested_block_comments(self) -> bool {
        matches!(self, Dialect::Generic | Dialect::Postgres)
    }

    /// `DELIMITER xx` lines are script-level directives that switch the
    /// statement terminator (mysqldump). When off, `DELIMITER` is an
    /// ordinary word — Postgres scripts keep chunk-parallel splitting
    /// even when the word appears in them.
    pub fn delimiter_directives(self) -> bool {
        matches!(self, Dialect::Generic | Dialect::MySql)
    }

    /// A statement-initial `BEGIN ATOMIC` opens a compound block (SQL
    /// standard, accepted by Postgres 14+ for SQL-body routines).
    pub fn begin_atomic(self) -> bool {
        matches!(self, Dialect::Generic | Dialect::Postgres)
    }

    /// Is this keyword admissible as a dialect-specific operator? Gates
    /// the `LIKE`-family operators in the parser: a keyword another
    /// dialect owns falls through to the total `Raw` path instead of
    /// shaping a node the active dialect has no semantics for.
    /// Everything not listed is admissible everywhere.
    pub fn admits_keyword(self, kw: Kw) -> bool {
        match kw {
            Kw::ILIKE | Kw::SIMILAR => matches!(self, Dialect::Generic | Dialect::Postgres),
            Kw::REGEXP | Kw::RLIKE => {
                matches!(self, Dialect::Generic | Dialect::MySql | Dialect::Sqlite)
            }
            Kw::GLOB => matches!(self, Dialect::Generic | Dialect::Sqlite),
            _ => true,
        }
    }

    /// Guess the dialect from script contents — the auto-detection
    /// heuristic behind the CLI's default (no `--dialect`) mode.
    ///
    /// Signals, checked over the significant tokens of the first 64 KiB
    /// (lexed under [`Dialect::Generic`], so matches inside string
    /// literals or comments never count):
    ///
    /// * a `DELIMITER` directive at a statement start, or a
    ///   backtick-quoted identifier → [`Dialect::MySql`];
    /// * a dollar-quoted (`$tag$ … $tag$`) body → [`Dialect::Postgres`].
    ///
    /// The first signal in script order wins. `None` means no signal —
    /// the caller should stay on [`Dialect::Generic`].
    pub fn detect(script: &str) -> Option<Dialect> {
        const DETECT_BYTES: usize = 64 * 1024;
        let mut end = script.len().min(DETECT_BYTES);
        while end < script.len() && !script.is_char_boundary(end) {
            end -= 1;
        }
        let prefix = &script[..end];
        let bytes = prefix.as_bytes();
        let mut stmt_start = true;
        for t in crate::lexer::lex_spans(prefix) {
            if t.is_trivia() {
                continue;
            }
            match t.kind {
                TokenKind::QuotedIdent if bytes[t.span.start] == b'`' => {
                    return Some(Dialect::MySql)
                }
                TokenKind::StringLit if bytes[t.span.start] == b'$' => {
                    return Some(Dialect::Postgres)
                }
                TokenKind::Ident | TokenKind::Keyword
                    if stmt_start
                        && prefix[t.span.start..t.span.end].eq_ignore_ascii_case("DELIMITER") =>
                {
                    return Some(Dialect::MySql)
                }
                _ => {}
            }
            stmt_start = t.kind == TokenKind::Punct
                && t.span.end - t.span.start == 1
                && bytes[t.span.start] == b';';
        }
        None
    }
}

impl std::fmt::Display for Dialect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_is_the_historical_union() {
        let g = Dialect::Generic;
        assert!(g.backtick_idents());
        assert!(g.bracket_idents());
        assert!(g.dollar_quoting());
        assert!(g.nested_block_comments());
        assert!(g.delimiter_directives());
        assert!(!g.hash_comments());
        assert!(!g.double_quote_strings());
        for kw in [Kw::ILIKE, Kw::REGEXP, Kw::RLIKE, Kw::GLOB, Kw::SIMILAR, Kw::LIKE] {
            assert!(g.admits_keyword(kw), "{kw:?}");
        }
    }

    #[test]
    fn parse_roundtrips_names_and_aliases() {
        for d in Dialect::ALL {
            assert_eq!(Dialect::parse(d.name()), Some(d));
        }
        assert_eq!(Dialect::parse("PostgreSQL"), Some(Dialect::Postgres));
        assert_eq!(Dialect::parse("MariaDB"), Some(Dialect::MySql));
        assert_eq!(Dialect::parse("SQLite3"), Some(Dialect::Sqlite));
        assert_eq!(Dialect::parse("oracle"), None);
    }

    #[test]
    fn detect_mysql_from_delimiter_and_backticks() {
        assert_eq!(
            Dialect::detect("DELIMITER ;;\nSELECT 1 ;;\n"),
            Some(Dialect::MySql)
        );
        assert_eq!(
            Dialect::detect("SELECT `a` FROM `t`;"),
            Some(Dialect::MySql)
        );
        // DELIMITER mid-statement is not a directive signal.
        assert_eq!(Dialect::detect("SELECT delimiter FROM t;"), None);
    }

    #[test]
    fn detect_postgres_from_dollar_bodies() {
        assert_eq!(
            Dialect::detect("CREATE FUNCTION f() RETURNS int AS $$ SELECT 1; $$ LANGUAGE sql;"),
            Some(Dialect::Postgres)
        );
    }

    #[test]
    fn detect_ignores_signals_inside_strings_and_comments() {
        assert_eq!(Dialect::detect("SELECT '`not a backtick ident`';"), None);
        assert_eq!(Dialect::detect("-- $tag$ not a body $tag$\nSELECT 1;"), None);
        assert_eq!(Dialect::detect("SELECT 1; /* `x` */ SELECT 2;"), None);
    }

    #[test]
    fn detect_returns_none_on_plain_sql() {
        assert_eq!(Dialect::detect("SELECT a, b FROM t WHERE a = 1;"), None);
        assert_eq!(Dialect::detect(""), None);
    }
}
