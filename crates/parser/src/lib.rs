//! # sqlcheck-parser
//!
//! A from-scratch, **non-validating** SQL lexer and parser — the Rust
//! analogue of the Python `sqlparse` library that the SQLCheck paper
//! (SIGMOD 2020) builds on.
//!
//! Design contract (what "non-validating" means here):
//!
//! 1. **Total**: [`parser::parse`] never fails. Unrecognised statements
//!    become [`ast::Statement::Other`]; unrecognised sub-expressions become
//!    [`ast::Expr::Raw`]. Arbitrary bytes never panic the lexer.
//! 2. **Lossless at the token level**: concatenating the lexed token texts
//!    reproduces the input exactly, so the original statement can always be
//!    recovered (used by the repair engine's textual-fix fallback).
//! 3. **Dialect-tolerant**: quoting styles of PostgreSQL / MySQL / SQLite /
//!    T-SQL, dollar-quoting, several bind-parameter styles, and a broad
//!    keyword set are all accepted.
//!
//! The [`annotate`] module layers a semantically-richer digest on top of the
//! loose tree (table/column references, predicates, join conditions), which
//! is what the paper means by *annotating the parse tree* (§4.1).
//!
//! ## Quick example
//!
//! ```
//! use sqlcheck_parser::parser::parse_one;
//! use sqlcheck_parser::ast::Statement;
//!
//! let p = parse_one("SELECT * FROM Tenants WHERE User_IDs LIKE '%U1%'");
//! let Statement::Select(sel) = &p.stmt else { unreachable!() };
//! assert!(sel.has_wildcard());
//! ```

#![warn(missing_docs)]

pub mod annotate;
pub mod arena;
pub mod ast;
mod block;
pub mod diag;
pub mod dialect;
pub mod fingerprint;
pub mod intern;
pub mod istr;
pub mod lexer;
pub mod parser;
pub mod render;
mod scan;
pub mod splitter;
pub mod token;

pub use annotate::{annotate, Annotations};
pub use arena::{ExprArena, ExprId, ExprRange};
pub use ast::{ParsedStatement, Statement};
pub use diag::{DiagKind, Diagnostic, Limits};
pub use dialect::Dialect;
pub use intern::{Interner, Symbol};
pub use istr::IStr;
pub use parser::{parse, parse_one, parse_raw, parse_raw_limited};
pub use render::ToSql;
pub use token::{Kw, Span, Token, TokenKind};
pub use lexer::{lex_spans, SpannedToken};
pub use splitter::{
    split_deduped, split_fingerprinted, split_spanned, split_stream, split_stream_parallel,
    DedupedSplit, FingerprintedStatement, SpannedStatement, SplitStatement,
};
