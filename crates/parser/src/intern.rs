//! Per-script string interning for word tokens.
//!
//! The lexer's hottest classification decision — is this word a keyword,
//! and how does it case-fold for the template fingerprint — is answered
//! here exactly once per *unique* word. Real scripts draw their words
//! from a tiny vocabulary (a few dozen keywords plus the schema's
//! identifiers), so after the first occurrence every repeat resolves to a
//! [`Symbol`] with one hash-and-probe: no keyword binary search, no
//! re-folding, no re-hashing of the slice.
//!
//! Symbols are **per script**: an [`Interner`] is created fresh for each
//! script (or parallel-split chunk) and its symbols are meaningless
//! outside it. The keyword range is the exception — symbols
//! `0..KEYWORDS.len()` are pre-assigned to [`KEYWORDS`] in table order,
//! identical in every interner, which is what lets a `Symbol` answer
//! "is this a keyword" as a single integer compare.
//!
//! Interning is **ASCII-case-insensitive**: `Users`, `users`, and
//! `USERS` share a symbol. That is precisely the identity the consumers
//! want — keyword recognition is case-insensitive, and the template
//! fingerprint folds word case anyway. Consumers needing exact case
//! (e.g. quoted-identifier semantics) keep using the token's span; quoted
//! identifiers are not word tokens and never reach the interner.

use crate::token::KEYWORDS;

/// A word token's interned identity within one [`Interner`].
///
/// Values `0..KEYWORDS.len()` are keywords (index into [`KEYWORDS`]);
/// higher values are per-script identifiers in first-occurrence order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Whether this symbol is a SQL keyword — one integer compare.
    #[inline]
    pub fn is_keyword(self) -> bool {
        (self.0 as usize) < KEYWORDS.len()
    }

    /// Index into [`KEYWORDS`] if this symbol is a keyword.
    #[inline]
    pub fn keyword_index(self) -> Option<usize> {
        if self.is_keyword() {
            Some(self.0 as usize)
        } else {
            None
        }
    }

    /// The raw symbol value (keyword range first, then identifiers in
    /// first-occurrence order).
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// FxHash-style multiplier (same constant as the splitter's dedup map).
const HASH_K: u64 = 0x517c_c1b7_2722_0a95;

/// Hash already-lowercased bytes, 8 at a time.
#[inline]
fn hash_folded(bytes: &[u8]) -> u64 {
    let mut h = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h.rotate_left(5) ^ w).wrapping_mul(HASH_K);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h.rotate_left(5) ^ u64::from_le_bytes(tail)).wrapping_mul(HASH_K);
    }
    // Fold the length in so `"a"` and `"a\0"`-style tails cannot collide
    // structurally (the tail zero-pad above erases the distinction).
    (h.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(HASH_K)
}

/// The static keyword side of every interner: an open-addressed probe
/// table over the lower-folded keyword texts, built once per process.
struct KwTable {
    /// Power-of-two slot array holding `keyword_index + 1` (0 = empty).
    slots: Box<[u16]>,
    /// Lower-folded keyword texts, concatenated; `offsets[i]..offsets[i+1]`
    /// is keyword `i`.
    lower: Box<str>,
    offsets: Box<[u32]>,
}

/// Slot count for the keyword table: 512 slots for ~150 keywords keeps
/// probe chains short (load factor < 0.3).
const KW_SLOTS: usize = 512;

fn build_kw_table() -> KwTable {
    let mut slots = vec![0u16; KW_SLOTS].into_boxed_slice();
    let mut lower = String::new();
    let mut offsets = Vec::with_capacity(KEYWORDS.len() + 1);
    offsets.push(0u32);
    for (i, kw) in KEYWORDS.iter().enumerate() {
        lower.push_str(&kw.to_ascii_lowercase());
        offsets.push(lower.len() as u32);
        let h = hash_folded(&lower.as_bytes()[offsets[i] as usize..]);
        let mut slot = h as usize & (KW_SLOTS - 1);
        while slots[slot] != 0 {
            slot = (slot + 1) & (KW_SLOTS - 1);
        }
        slots[slot] = (i + 1) as u16;
    }
    KwTable { slots, lower: lower.into_boxed_str(), offsets: offsets.into_boxed_slice() }
}

impl KwTable {
    #[inline]
    fn lower_of(&self, idx: usize) -> &[u8] {
        &self.lower.as_bytes()[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }

    /// Look up a lower-folded word; returns the keyword index.
    #[inline]
    fn lookup(&self, folded: &[u8], hash: u64) -> Option<usize> {
        let mut slot = hash as usize & (KW_SLOTS - 1);
        loop {
            let e = self.slots[slot];
            if e == 0 {
                return None;
            }
            let idx = (e - 1) as usize;
            if self.lower_of(idx) == folded {
                return Some(idx);
            }
            slot = (slot + 1) & (KW_SLOTS - 1);
        }
    }
}

static KW_TABLE: std::sync::OnceLock<KwTable> = std::sync::OnceLock::new();

/// One interned identifier: its hash plus the lower-folded text's range
/// in the interner's arena.
struct Entry {
    hash: u64,
    start: u32,
    end: u32,
}

/// Per-script word interner. See the module docs for the identity
/// contract (ASCII-case-insensitive, keyword symbols pre-assigned and
/// stable, identifier symbols per script in first-occurrence order).
pub struct Interner {
    kw: &'static KwTable,
    /// Open-addressed identifier slots holding `entry_index + 1`.
    slots: Vec<u32>,
    entries: Vec<Entry>,
    /// Lower-folded identifier texts, concatenated.
    arena: String,
    /// Scratch buffer the case fold writes into (reused across words).
    scratch: Vec<u8>,
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

impl Interner {
    /// Fresh interner: keywords pre-interned, no identifiers.
    pub fn new() -> Self {
        Interner {
            kw: KW_TABLE.get_or_init(build_kw_table),
            slots: vec![0u32; 64],
            entries: Vec::new(),
            arena: String::new(),
            scratch: Vec::with_capacity(32),
        }
    }

    /// Number of distinct identifiers interned so far (keywords are not
    /// counted — they are pre-interned in every interner).
    pub fn ident_count(&self) -> usize {
        self.entries.len()
    }

    /// Intern one word token (identifier-class bytes as produced by the
    /// lexer). Returns the same symbol for every ASCII-case-insensitive
    /// spelling of the same word, within this interner.
    pub fn intern(&mut self, word: &str) -> Symbol {
        self.scratch.clear();
        self.scratch.extend(word.bytes().map(|b| b.to_ascii_lowercase()));
        let hash = hash_folded(&self.scratch);
        // Keyword range first: static table, shared by all interners.
        if let Some(idx) = self.kw.lookup(&self.scratch, hash) {
            return Symbol(idx as u32);
        }
        let mask = self.slots.len() - 1;
        let mut slot = hash as usize & mask;
        loop {
            let e = self.slots[slot];
            if e == 0 {
                break;
            }
            let entry = &self.entries[(e - 1) as usize];
            if entry.hash == hash
                && &self.arena.as_bytes()[entry.start as usize..entry.end as usize]
                    == self.scratch.as_slice()
            {
                return Symbol(KEYWORDS.len() as u32 + e - 1);
            }
            slot = (slot + 1) & mask;
        }
        let start = self.arena.len() as u32;
        // The fold maps ASCII bytes to ASCII and leaves non-ASCII bytes
        // untouched, so the scratch is valid UTF-8 whenever the input was.
        self.arena.push_str(
            std::str::from_utf8(&self.scratch).expect("case fold preserves UTF-8"),
        );
        let entry_idx = self.entries.len() as u32;
        self.entries.push(Entry { hash, start, end: self.arena.len() as u32 });
        self.slots[slot] = entry_idx + 1;
        if (self.entries.len() + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        Symbol(KEYWORDS.len() as u32 + entry_idx)
    }

    #[cold]
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mask = new_len - 1;
        let mut slots = vec![0u32; new_len];
        for (i, e) in self.entries.iter().enumerate() {
            let mut slot = e.hash as usize & mask;
            while slots[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            slots[slot] = i as u32 + 1;
        }
        self.slots = slots;
    }

    /// The symbol's **fingerprint-folded** text: uppercase for keywords,
    /// lowercase for identifiers — exactly the byte sequence the template
    /// fingerprint hashes for this word (see
    /// [`crate::fingerprint::StreamingFingerprint::push_folded_word`]).
    ///
    /// # Panics
    /// If `sym` was produced by a different interner and is out of range
    /// here (keyword symbols are shared and always valid).
    #[inline]
    pub fn folded(&self, sym: Symbol) -> &str {
        match sym.keyword_index() {
            Some(idx) => KEYWORDS[idx],
            None => {
                let e = &self.entries[sym.0 as usize - KEYWORDS.len()];
                &self.arena[e.start as usize..e.end as usize]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::is_keyword;

    #[test]
    fn keyword_symbols_match_static_classifier() {
        // The interner's keyword decision must agree with `is_keyword`
        // for every keyword spelling and for near-miss identifiers.
        let mut i = Interner::new();
        for (idx, kw) in KEYWORDS.iter().enumerate() {
            let s = i.intern(kw);
            assert_eq!(s, Symbol(idx as u32), "{kw}");
            assert!(s.is_keyword());
            let lower = kw.to_ascii_lowercase();
            assert_eq!(i.intern(&lower), s, "case-insensitive {kw}");
            assert_eq!(i.folded(s), *kw, "folded form of a keyword is its table text");
        }
        for w in ["tenant", "selec", "selectx", "x", "_", "users", "from_id"] {
            let s = i.intern(w);
            assert!(!s.is_keyword(), "{w}");
            assert!(!is_keyword(w), "{w}");
            assert_eq!(i.folded(s), w.to_ascii_lowercase());
        }
    }

    /// Deterministic pseudo-random identifier stream for the property
    /// tests below (no RNG dependency).
    fn pseudo_words(seed: u64, n: usize) -> Vec<String> {
        let mut x = seed | 1;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let len = 1 + (x % 11) as usize;
            let mut w = String::new();
            for k in 0..len {
                let c = b'a' + ((x >> (k * 5)) % 26) as u8;
                // Mix cases so interning exercises the fold.
                w.push(if (x >> k) & 1 == 0 { c as char } else { c.to_ascii_uppercase() as char });
            }
            out.push(w);
        }
        out
    }

    #[test]
    fn symbol_stability_property() {
        // Property: within one interner, two words get the same symbol
        // iff they are ASCII-case-insensitively equal; re-interning any
        // word returns its original symbol.
        let words = pseudo_words(0xD1CE, 4000);
        let mut i = Interner::new();
        let mut by_folded: std::collections::HashMap<String, Symbol> =
            std::collections::HashMap::new();
        for w in &words {
            let sym = i.intern(w);
            let folded = w.to_ascii_lowercase();
            match by_folded.get(&folded) {
                Some(&prev) => assert_eq!(sym, prev, "symbol drifted for {w:?}"),
                None => {
                    by_folded.insert(folded.clone(), sym);
                }
            }
            assert_eq!(i.intern(w), sym, "re-intern of {w:?} not stable");
            if sym.is_keyword() {
                assert!(i.folded(sym).eq_ignore_ascii_case(&folded));
            } else {
                assert_eq!(i.folded(sym), folded);
            }
        }
        // Distinct folded words must have distinct symbols.
        let symbols: std::collections::HashSet<_> = by_folded.values().copied().collect();
        assert_eq!(symbols.len(), by_folded.len(), "two distinct words shared a symbol");
    }

    #[test]
    fn no_cross_script_leakage_property() {
        // Property: a fresh interner starts empty and assigns identifier
        // symbols densely in first-occurrence order — symbols from a
        // previous script's interner have no influence.
        let a_words = pseudo_words(0xAAAA, 1000);
        let mut a = Interner::new();
        for w in &a_words {
            a.intern(w);
        }
        assert!(a.ident_count() > 0);
        let mut b = Interner::new();
        assert_eq!(b.ident_count(), 0, "fresh interner must start empty");
        // First identifier in any fresh interner gets the first
        // identifier symbol, regardless of what other interners hold.
        let first = b.intern("zz_first_ident");
        assert_eq!(first.index() as usize, KEYWORDS.len());
        // Interleaving more interns never reuses an existing symbol for
        // a new word.
        let mut seen = std::collections::HashSet::new();
        seen.insert(first.index());
        for w in pseudo_words(0xBBBB, 1000) {
            let s = b.intern(&w);
            if !s.is_keyword() {
                seen.insert(s.index());
            }
        }
        assert_eq!(seen.len(), b.ident_count(), "identifier symbols must be dense and unique");
    }

    #[test]
    fn folded_form_is_the_fingerprint_fold() {
        let mut i = Interner::new();
        let s = i.intern("SeLeCt");
        assert_eq!(i.folded(s), "SELECT", "keywords fold upper");
        let s = i.intern("UserName");
        assert_eq!(i.folded(s), "username", "identifiers fold lower");
    }
}
