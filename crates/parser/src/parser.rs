//! Best-effort, non-validating SQL parser.
//!
//! The parser is **total**: it never returns an error. Statements it can
//! shape structurally become typed [`Statement`] values; anything else is
//! preserved as [`Statement::Other`] (and sub-expressions it cannot shape
//! become [`Expr::Raw`]). This is the same contract as the `sqlparse`
//! library used by the paper, and it is what gives sqlcheck its dialect
//! coverage (§4.1 of the paper).

use crate::arena::{ExprArena, ExprId, ExprRange};
use crate::ast::*;
use crate::block::{BlockTracker, SplitAction};
use crate::diag::{DiagKind, Diagnostic, Limits};
use crate::dialect::Dialect;
use crate::istr::IStr;
use crate::lexer::SpannedToken;
use crate::splitter::{split, RawStatement};
use crate::token::{Kw, Token, TokenKind};
use std::cell::Cell;

/// Parse a script into statements.
pub fn parse(script: &str) -> Vec<ParsedStatement> {
    split(script).into_iter().map(parse_raw).collect()
}

/// Parse a single statement. If the input contains several statements the
/// first one is returned; an all-trivia input yields `Statement::Other`.
///
/// The input is lexed exactly once: the token-level split below reuses
/// the same token stream for the all-trivia fallback instead of running
/// a second tokenize pass.
pub fn parse_one(sql: &str) -> ParsedStatement {
    parse_one_dialect(sql, Dialect::Generic)
}

/// [`parse_one`] under an explicit [`Dialect`].
pub fn parse_one_dialect(sql: &str, dialect: Dialect) -> ParsedStatement {
    let tokens = crate::lexer::lex_spans_dialect(sql, dialect);
    let bytes = sql.as_bytes();
    let mut tracker = BlockTracker::with_dialect(dialect);
    let mut start = 0usize;
    let parse = |raw| parse_raw_limited_dialect(raw, &Limits::default(), dialect).0;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.is_trivia() {
            continue;
        }
        match tracker.offer(bytes, tok.kind, tok.span.start, tok.span.end) {
            SplitAction::Token => {}
            SplitAction::Terminator | SplitAction::Directive => {
                if tokens[start..i].iter().any(|t| !t.is_trivia()) {
                    return parse(materialize_slice(sql, &tokens[start..i]));
                }
                start = i + 1;
            }
        }
    }
    if tokens[start..].iter().any(|t| !t.is_trivia()) {
        return parse(materialize_slice(sql, &tokens[start..]));
    }
    // All-trivia input: no statement to parse; the already-lexed token
    // stream is preserved as-is.
    ParsedStatement {
        stmt: Statement::Other(OtherStatement { leading_keyword: IStr::empty() }),
        tokens: tokens.iter().map(|t| t.materialize(sql)).collect(),
        arena: ExprArena::new(),
    }
}

/// Build a [`RawStatement`] from a span-token slice holding at least one
/// significant token (leading/trailing trivia trimmed, interior kept).
fn materialize_slice(script: &str, tokens: &[SpannedToken]) -> RawStatement {
    let first = tokens.iter().position(|t| !t.is_trivia()).unwrap_or(0);
    let last = tokens.iter().rposition(|t| !t.is_trivia()).unwrap_or(0);
    let trimmed = &tokens[first..=last];
    let span = trimmed[0].span.merge(trimmed[trimmed.len() - 1].span);
    RawStatement {
        tokens: trimmed.iter().map(|t| t.materialize(script)).collect(),
        span,
        source: script[span.start..span.end].into(),
    }
}

/// Parse one pre-split raw statement.
pub fn parse_statement(raw: &RawStatement) -> ParsedStatement {
    parse_raw(raw.clone())
}

/// Parse one pre-split raw statement, consuming it. The statement's token
/// stream moves into the result instead of being cloned — the hot variant
/// used by the parse-once front-end, where every unique statement text is
/// parsed exactly once. Default [`Limits`] apply; diagnostics are
/// discarded (use [`parse_raw_limited`] to observe them).
pub fn parse_raw(raw: RawStatement) -> ParsedStatement {
    parse_raw_limited(raw, &Limits::default()).0
}

// ---------------------------------------------------------------------------
// Budgeted parsing + degradation diagnostics
// ---------------------------------------------------------------------------

// Per-statement parse state lives in thread-locals rather than being
// threaded through every mutually-recursive parse function: the state is
// armed/cleared at each statement's parse entry (`parse_raw_limited`), so
// results stay deterministic regardless of which worker thread parses
// which unique statement.
thread_local! {
    /// Arena collecting every expression node of the statement being
    /// parsed (including compound-body sub-statements). Armed empty at
    /// each statement's parse entry and moved into the resulting
    /// [`ParsedStatement`]; kept thread-local like the rest of the parse
    /// state so the mutually-recursive parse functions need no threading.
    static ARENA: std::cell::RefCell<ExprArena> = std::cell::RefCell::new(ExprArena::new());
    /// Current expression/subquery recursion depth.
    static EXPR_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Active `Limits::max_expr_depth`.
    static EXPR_DEPTH_LIMIT: Cell<u32> = const { Cell::new(128) };
    /// Current nested-`BEGIN` flattening depth inside a compound body.
    static BLOCK_NEST: Cell<u32> = const { Cell::new(0) };
    /// Active `Limits::max_block_depth`.
    static BLOCK_NEST_LIMIT: Cell<u32> = const { Cell::new(64) };
    /// A sub-expression fell back to `Expr::Raw`.
    static EXPR_DEGRADED: Cell<bool> = const { Cell::new(false) };
    /// A recursion budget was exhausted (expression or block depth).
    static DEPTH_HIT: Cell<bool> = const { Cell::new(false) };
    /// A compound body's `BEGIN` block never closed before end of input.
    static UNTERMINATED: Cell<bool> = const { Cell::new(false) };
    /// Dialect of the statement being parsed: gates dialect-specific
    /// keyword admissibility and internal re-lexes (expression strings,
    /// dollar-quoted bodies). Armed at each statement's parse entry.
    static DIALECT: Cell<Dialect> = const { Cell::new(Dialect::Generic) };
}

/// The dialect armed for the statement currently being parsed.
#[inline]
fn active_dialect() -> Dialect {
    DIALECT.with(Cell::get)
}

/// RAII recursion ticket: holding one means a depth slot was acquired;
/// dropping it releases the slot. `None` means the budget is exhausted —
/// the caller falls back to its total `Raw`/`Other` path.
struct DepthTicket(&'static std::thread::LocalKey<Cell<u32>>);

impl std::ops::Drop for DepthTicket {
    fn drop(&mut self) {
        self.0.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

fn enter(
    depth: &'static std::thread::LocalKey<Cell<u32>>,
    limit: &'static std::thread::LocalKey<Cell<u32>>,
) -> Option<DepthTicket> {
    let cur = depth.with(Cell::get);
    if cur >= limit.with(Cell::get) {
        DEPTH_HIT.with(|f| f.set(true));
        return None;
    }
    depth.with(|d| d.set(cur + 1));
    Some(DepthTicket(depth))
}

fn enter_expr() -> Option<DepthTicket> {
    enter(&EXPR_DEPTH, &EXPR_DEPTH_LIMIT)
}

fn enter_block() -> Option<DepthTicket> {
    enter(&BLOCK_NEST, &BLOCK_NEST_LIMIT)
}

/// Parse one pre-split raw statement under explicit resource budgets,
/// reporting every degradation the parse suffered.
///
/// The parse is still **total** — budgets never produce errors. A
/// statement over the byte/token budget skips the structural parse
/// entirely (degrading to [`Statement::Other`] with an
/// [`DiagKind::OverLimit`] diagnostic); recursion budgets flatten the
/// offending sub-tree to `Expr::Raw` / a flat body piece. Diagnostics
/// carry no statement index — callers that know the statement's position
/// attach it via [`Diagnostic::at`].
pub fn parse_raw_limited(raw: RawStatement, limits: &Limits) -> (ParsedStatement, Vec<Diagnostic>) {
    parse_raw_limited_dialect(raw, limits, Dialect::Generic)
}

/// [`parse_raw_limited`] under an explicit [`Dialect`]: dialect-specific
/// operators another dialect owns (`ILIKE`, `GLOB`, …) fall through to
/// the total `Raw` path instead of shaping nodes the active dialect has
/// no semantics for, and internal re-lexes use the dialect's rules.
pub fn parse_raw_limited_dialect(
    raw: RawStatement,
    limits: &Limits,
    dialect: Dialect,
) -> (ParsedStatement, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let mut sig: Vec<Token> = Vec::with_capacity(raw.tokens.len());
    sig.extend(raw.tokens.iter().filter(|t| !t.is_trivia()).cloned());
    if raw.source.len() > limits.max_statement_bytes || raw.tokens.len() > limits.max_tokens {
        let leading = sig.first().map(|t| t.upper()).unwrap_or_default();
        diags.push(Diagnostic::new(
            DiagKind::OverLimit,
            format!(
                "statement skipped structural parse: {} bytes / {} tokens exceeds budget \
                 ({} bytes / {} tokens)",
                raw.source.len(),
                raw.tokens.len(),
                limits.max_statement_bytes,
                limits.max_tokens,
            ),
        ));
        let stmt = Statement::Other(OtherStatement { leading_keyword: leading });
        return (ParsedStatement { stmt, tokens: raw.tokens, arena: ExprArena::new() }, diags);
    }

    // Arm the recursion budgets and clear the degradation flags. Depth
    // counters are reset defensively: tickets rebalance them on every
    // normal path, but a caller-side `catch_unwind` must not leak depth
    // into the next statement parsed on this thread.
    DIALECT.with(|d| d.set(dialect));
    EXPR_DEPTH_LIMIT.with(|l| l.set(limits.max_expr_depth));
    BLOCK_NEST_LIMIT.with(|l| l.set(limits.max_block_depth));
    EXPR_DEPTH.with(|d| d.set(0));
    BLOCK_NEST.with(|d| d.set(0));
    EXPR_DEGRADED.with(|f| f.set(false));
    DEPTH_HIT.with(|f| f.set(false));
    UNTERMINATED.with(|f| f.set(false));
    // Pre-size the arena: expression nodes are bounded by (and usually a
    // small fraction of) the significant token count, so one up-front
    // reservation replaces the per-statement doubling churn.
    ARENA.with(|a| a.borrow_mut().reserve(sig.len() / 2 + 4));

    let stmt = parse_tokens(&sig);

    let expr_degraded = EXPR_DEGRADED.with(Cell::get);
    let depth_hit = DEPTH_HIT.with(Cell::get);
    let unterminated = UNTERMINATED.with(Cell::get);
    let is_other = matches!(stmt, Statement::Other(_));
    let leading = sig.first().map(|t| t.upper()).unwrap_or_default();
    let orphan_end = is_other && leading == "END";
    if orphan_end {
        diags.push(Diagnostic::new(
            DiagKind::OrphanEnd,
            "statement begins with END matching no open block",
        ));
    }
    if unterminated {
        diags.push(Diagnostic::new(
            DiagKind::UnterminatedBlock,
            "compound body opened a block that never closed; trailing piece kept",
        ));
    }
    if depth_hit {
        diags.push(Diagnostic::new(
            DiagKind::OverLimit,
            format!(
                "recursion budget exhausted (max expression depth {}, max block depth {}); \
                 sub-tree flattened",
                limits.max_expr_depth, limits.max_block_depth,
            ),
        ));
    }
    if is_other && !sig.is_empty() && !orphan_end {
        diags.push(Diagnostic::new(
            DiagKind::ParseDegraded,
            format!("statement fell back to Other (leading keyword {leading:?})"),
        ));
    } else if expr_degraded {
        diags.push(Diagnostic::new(
            DiagKind::ParseDegraded,
            "sub-expression fell back to Raw",
        ));
    }
    (ParsedStatement { stmt, tokens: raw.tokens, arena: take_arena() }, diags)
}

/// Re-derive the statement-level diagnostics of an already-parsed
/// statement (no parse flags available — used for pre-parsed intake
/// paths). Sub-expression degradation is not re-detected here.
pub fn diagnose_parsed(p: &ParsedStatement) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if let Statement::Other(o) = &p.stmt {
        if o.leading_keyword == "END" {
            diags.push(Diagnostic::new(
                DiagKind::OrphanEnd,
                "statement begins with END matching no open block",
            ));
        } else if !o.leading_keyword.is_empty() {
            diags.push(Diagnostic::new(
                DiagKind::ParseDegraded,
                format!(
                    "statement fell back to Other (leading keyword {:?})",
                    o.leading_keyword
                ),
            ));
        }
    }
    diags
}

fn parse_tokens(sig: &[Token]) -> Statement {
    let cur = Cursor::new(sig);
    let Some(first) = cur.peek() else {
        return Statement::Other(OtherStatement { leading_keyword: IStr::empty() });
    };
    let leading = first.upper();
    let parsed = match leading.as_str() {
        "SELECT" => parse_select(&mut Cursor::new(sig)).map(Statement::Select),
        "CREATE" => parse_create(&mut Cursor::new(sig)),
        "ALTER" => parse_alter(&mut Cursor::new(sig)).map(Statement::AlterTable),
        "INSERT" | "REPLACE" => parse_insert(&mut Cursor::new(sig)).map(Statement::Insert),
        "UPDATE" => parse_update(&mut Cursor::new(sig)).map(Statement::Update),
        "DELETE" => parse_delete(&mut Cursor::new(sig)).map(Statement::Delete),
        "DROP" => parse_drop(&mut Cursor::new(sig)).map(Statement::Drop),
        _ => None,
    };
    parsed.unwrap_or(Statement::Other(OtherStatement { leading_keyword: leading }))
}

/// Allocate one expression node in the current statement's arena.
fn alloc(e: Expr) -> ExprId {
    ARENA.with(|a| a.borrow_mut().alloc(e))
}

/// Allocate a contiguous child list in the current statement's arena.
fn alloc_range(exprs: Vec<Expr>) -> ExprRange {
    ARENA.with(|a| a.borrow_mut().alloc_range(exprs))
}

/// Move the accumulated arena out (end of one statement's parse).
fn take_arena() -> ExprArena {
    ARENA.with(|a| std::mem::take(&mut *a.borrow_mut()))
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(toks: &'a [Token]) -> Self {
        Cursor { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, ahead: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + ahead)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn eat_keyword(&mut self, kw: Kw) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keywords(&mut self, kws: &[Kw]) -> bool {
        let save = self.pos;
        for &kw in kws {
            if !self.eat_keyword(kw) {
                self.pos = save;
                return false;
            }
        }
        true
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if self.peek().map(|t| t.is_punct(ch)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_keyword(&self, kw: Kw) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    /// Consume an identifier-like token (identifier, quoted identifier, or —
    /// tolerantly — a keyword used as a name).
    fn eat_name(&mut self) -> Option<IStr> {
        let t = self.peek()?;
        match t.kind {
            TokenKind::Ident | TokenKind::QuotedIdent | TokenKind::Keyword => {
                self.pos += 1;
                Some(t.ident_value().into())
            }
            _ => None,
        }
    }

    /// Consume a possibly-qualified object name (`a.b.c`).
    fn eat_object_name(&mut self) -> Option<ObjectName> {
        let mut parts = vec![self.eat_name()?];
        while self.peek().map(|t| t.is_punct('.')).unwrap_or(false)
            && self
                .peek_at(1)
                .map(|t| {
                    matches!(t.kind, TokenKind::Ident | TokenKind::QuotedIdent | TokenKind::Keyword)
                })
                .unwrap_or(false)
        {
            self.pos += 1; // '.'
            parts.push(self.eat_name()?);
        }
        Some(ObjectName(parts))
    }

    /// Collect the token range until the cursor reaches (at paren depth 0)
    /// one of the stop conditions, returning the sub-slice.
    fn take_until(&mut self, stop: impl Fn(&Token) -> bool) -> &'a [Token] {
        let start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if depth == 0 && stop(t) {
                break;
            }
            self.pos += 1;
        }
        &self.toks[start..self.pos]
    }

    /// Take a balanced `( ... )` group, returning the inner tokens.
    fn take_paren_group(&mut self) -> Option<&'a [Token]> {
        if !self.peek().map(|t| t.is_punct('(')).unwrap_or(false) {
            return None;
        }
        let mut depth = 0i32;
        let start = self.pos + 1;
        let mut i = self.pos;
        while i < self.toks.len() {
            if self.toks[i].is_punct('(') {
                depth += 1;
            } else if self.toks[i].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    let inner = &self.toks[start..i];
                    self.pos = i + 1;
                    return Some(inner);
                }
            }
            i += 1;
        }
        // Unbalanced: consume the rest.
        let inner = &self.toks[start..];
        self.pos = self.toks.len();
        Some(inner)
    }

    /// Remaining tokens as text.
    fn rest_text(&self) -> String {
        join_tokens(&self.toks[self.pos.min(self.toks.len())..])
    }
}

/// Join significant tokens with single spaces (except around `.`, `(`/`)`
/// and before commas) — a readable raw form.
pub(crate) fn join_tokens(toks: &[Token]) -> String {
    let mut out = String::new();
    for (i, t) in toks.iter().enumerate() {
        if i > 0 {
            let prev = &toks[i - 1];
            let no_space = prev.is_punct('(')
                || prev.is_punct('.')
                || t.is_punct('.')
                || t.is_punct(')')
                || t.is_punct(',')
                || (prev.kind == TokenKind::Ident && t.is_punct('('));
            if !no_space {
                out.push(' ');
            }
        }
        out.push_str(&t.text);
    }
    out
}

/// Split a token slice on top-level commas.
fn split_on_commas(toks: &[Token]) -> Vec<&[Token]> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(',') {
            out.push(&toks[start..i]);
            start = i + 1;
        }
    }
    out.push(&toks[start..]);
    out.retain(|s| !s.is_empty());
    out
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

const CLAUSE_STARTERS: &[Kw] = &[
    Kw::FROM, Kw::WHERE, Kw::GROUP, Kw::HAVING, Kw::ORDER, Kw::LIMIT, Kw::OFFSET,
    Kw::UNION, Kw::EXCEPT, Kw::INTERSECT,
];
const JOIN_STARTERS: &[Kw] =
    &[Kw::JOIN, Kw::INNER, Kw::LEFT, Kw::RIGHT, Kw::FULL, Kw::CROSS, Kw::NATURAL];

fn is_clause_boundary(t: &Token) -> bool {
    t.kw.is_some_and(|k| CLAUSE_STARTERS.contains(&k))
}

fn is_join_or_clause_boundary(t: &Token) -> bool {
    is_clause_boundary(t)
        || t.kw.is_some_and(|k| JOIN_STARTERS.contains(&k))
        || t.is_punct(',')
}

fn parse_select(cur: &mut Cursor) -> Option<Select> {
    // Depth guard: derived tables (`FROM (SELECT …)`) recurse here
    // without passing through `parse_prefix`.
    let _depth = enter_expr()?;
    if !cur.eat_keyword(Kw::SELECT) {
        return None;
    }
    let distinct = cur.eat_keyword(Kw::DISTINCT);
    let _ = cur.eat_keyword(Kw::ALL);

    let item_toks = cur.take_until(is_clause_boundary);
    let items = split_on_commas(item_toks)
        .into_iter()
        .map(parse_select_item)
        .collect::<Vec<_>>();

    let mut select = Select {
        distinct,
        items,
        from: None,
        joins: Vec::new(),
        where_clause: None,
        group_by: ExprRange::EMPTY,
        having: None,
        order_by: Vec::new(),
        limit: None,
        set_op_tail: None,
    };

    if cur.eat_keyword(Kw::FROM) {
        select.from = parse_table_ref(cur);
        loop {
            if cur.eat_punct(',') {
                if let Some(table) = parse_table_ref(cur) {
                    select.joins.push(Join {
                        join_type: JoinType::Comma,
                        table,
                        on: None,
                        using: Vec::new(),
                    });
                    continue;
                }
                break;
            }
            let Some(jt) = parse_join_type(cur) else { break };
            let Some(table) = parse_table_ref(cur) else { break };
            let mut join = Join { join_type: jt, table, on: None, using: Vec::new() };
            if cur.eat_keyword(Kw::ON) {
                let on_toks = cur.take_until(is_join_or_clause_boundary);
                join.on = Some(alloc(parse_expr_tokens(on_toks)));
            } else if cur.eat_keyword(Kw::USING) {
                if let Some(inner) = cur.take_paren_group() {
                    join.using = split_on_commas(inner)
                        .into_iter()
                        .filter_map(|s| s.first().map(|t| IStr::new(t.ident_value())))
                        .collect();
                }
            }
            select.joins.push(join);
        }
    }

    if cur.eat_keyword(Kw::WHERE) {
        let toks = cur.take_until(is_clause_boundary);
        select.where_clause = Some(alloc(parse_expr_tokens(toks)));
    }
    if cur.eat_keywords(&[Kw::GROUP, Kw::BY]) {
        let toks = cur.take_until(is_clause_boundary);
        select.group_by = alloc_range(
            split_on_commas(toks).into_iter().map(parse_expr_tokens).collect::<Vec<_>>(),
        );
    }
    if cur.eat_keyword(Kw::HAVING) {
        let toks = cur.take_until(is_clause_boundary);
        select.having = Some(alloc(parse_expr_tokens(toks)));
    }
    if cur.eat_keywords(&[Kw::ORDER, Kw::BY]) {
        let toks = cur.take_until(is_clause_boundary);
        for part in split_on_commas(toks) {
            let (part, asc) = match part.last() {
                Some(t) if t.is_kw(Kw::DESC) => (&part[..part.len() - 1], false),
                Some(t) if t.is_kw(Kw::ASC) => (&part[..part.len() - 1], true),
                _ => (part, true),
            };
            select.order_by.push(OrderItem { expr: alloc(parse_expr_tokens(part)), asc });
        }
    }
    if cur.eat_keyword(Kw::LIMIT) {
        let toks = cur.take_until(|t| {
            t.is_kw(Kw::UNION) || t.is_kw(Kw::EXCEPT) || t.is_kw(Kw::INTERSECT)
                || t.is_kw(Kw::OFFSET)
        });
        select.limit = Some(join_tokens(toks));
        if cur.eat_keyword(Kw::OFFSET) {
            let off = cur.take_until(|t| {
                t.is_kw(Kw::UNION) || t.is_kw(Kw::EXCEPT) || t.is_kw(Kw::INTERSECT)
            });
            if let Some(l) = &mut select.limit {
                l.push_str(" OFFSET ");
                l.push_str(&join_tokens(off));
            }
        }
    }
    if !cur.at_end() {
        select.set_op_tail = Some(cur.rest_text());
    }
    Some(select)
}

fn parse_select_item(toks: &[Token]) -> SelectItem {
    // `*`
    if toks.len() == 1 && toks[0].is_operator("*") {
        return SelectItem::Wildcard { qualifier: None };
    }
    // `t.*`
    if toks.len() == 3 && toks[1].is_punct('.') && toks[2].is_operator("*") {
        return SelectItem::Wildcard { qualifier: Some(toks[0].ident_value().into()) };
    }
    // Trailing `AS alias` or bare alias.
    let (expr_toks, alias) = detach_alias(toks);
    SelectItem::Expr { expr: alloc(parse_expr_tokens(expr_toks)), alias }
}

/// Split `expr [AS] alias` — the alias must be a lone trailing identifier.
fn detach_alias(toks: &[Token]) -> (&[Token], Option<IStr>) {
    if toks.len() >= 3 && toks[toks.len() - 2].is_kw(Kw::AS) {
        let alias_tok = &toks[toks.len() - 1];
        if matches!(alias_tok.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
            return (&toks[..toks.len() - 2], Some(alias_tok.ident_value().into()));
        }
    }
    if toks.len() >= 2 {
        let last = &toks[toks.len() - 1];
        let prev = &toks[toks.len() - 2];
        let prev_ends_expr = matches!(
            prev.kind,
            TokenKind::Ident
                | TokenKind::QuotedIdent
                | TokenKind::NumberLit
                | TokenKind::StringLit
        ) || prev.is_punct(')');
        if matches!(last.kind, TokenKind::Ident | TokenKind::QuotedIdent) && prev_ends_expr {
            // Heuristic bare alias: `expr alias` where both sides are atoms
            // and the pair is not a qualified name (no dot between).
            return (&toks[..toks.len() - 1], Some(last.ident_value().into()));
        }
    }
    (toks, None)
}

fn parse_join_type(cur: &mut Cursor) -> Option<JoinType> {
    let _natural = cur.eat_keyword(Kw::NATURAL);
    if cur.eat_keyword(Kw::JOIN) {
        return Some(JoinType::Inner);
    }
    if cur.eat_keyword(Kw::INNER) {
        cur.eat_keyword(Kw::JOIN);
        return Some(JoinType::Inner);
    }
    if cur.eat_keyword(Kw::LEFT) {
        cur.eat_keyword(Kw::OUTER);
        cur.eat_keyword(Kw::JOIN);
        return Some(JoinType::Left);
    }
    if cur.eat_keyword(Kw::RIGHT) {
        cur.eat_keyword(Kw::OUTER);
        cur.eat_keyword(Kw::JOIN);
        return Some(JoinType::Right);
    }
    if cur.eat_keyword(Kw::FULL) {
        cur.eat_keyword(Kw::OUTER);
        cur.eat_keyword(Kw::JOIN);
        return Some(JoinType::Full);
    }
    if cur.eat_keyword(Kw::CROSS) {
        cur.eat_keyword(Kw::JOIN);
        return Some(JoinType::Cross);
    }
    None
}

fn parse_table_ref(cur: &mut Cursor) -> Option<TableRef> {
    // Derived table: ( SELECT ... ) [AS] alias
    if cur.peek().map(|t| t.is_punct('(')).unwrap_or(false) {
        let inner = cur.take_paren_group()?;
        let sub = parse_select(&mut Cursor::new(inner));
        let alias = parse_optional_alias(cur);
        return Some(TableRef {
            name: ObjectName::default(),
            alias,
            subquery: sub.map(Box::new),
        });
    }
    let name = cur.eat_object_name()?;
    let alias = parse_optional_alias(cur);
    Some(TableRef { name, alias, subquery: None })
}

fn parse_optional_alias(cur: &mut Cursor) -> Option<IStr> {
    if cur.eat_keyword(Kw::AS) {
        return cur.eat_name();
    }
    // Bare alias: an identifier that is not a clause/join keyword.
    if let Some(t) = cur.peek() {
        if matches!(t.kind, TokenKind::Ident | TokenKind::QuotedIdent) {
            cur.pos += 1;
            return Some(t.ident_value().into());
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Expressions (Pratt parser, total via Raw fallback)
// ---------------------------------------------------------------------------

/// Parse a token slice into an expression. If the slice cannot be fully
/// consumed, the whole slice is preserved as [`Expr::Raw`].
pub fn parse_expr_tokens(toks: &[Token]) -> Expr {
    if toks.is_empty() {
        return Expr::Raw(String::new());
    }
    let mut cur = Cursor::new(toks);
    match parse_expr_bp(&mut cur, 0) {
        Some(e) if cur.at_end() => e,
        _ => {
            EXPR_DEGRADED.with(|f| f.set(true));
            Expr::Raw(join_tokens(toks))
        }
    }
}

/// Parse an expression string (helper for tests and the fix engine).
/// Returns the root node by value plus the arena its children live in.
pub fn parse_expr_str(sql: &str) -> (ExprArena, Expr) {
    let toks = crate::lexer::tokenize_significant_dialect(sql, active_dialect());
    let root = parse_expr_tokens(&toks);
    (take_arena(), root)
}

fn binding_power(tok: &Token) -> Option<(u8, &'static str)> {
    // (left binding power, canonical op). Right bp = lbp + 1 (left assoc).
    if tok.kind == TokenKind::Keyword {
        let u = tok.upper();
        return match u.as_str() {
            "OR" => Some((1, "OR")),
            "AND" => Some((3, "AND")),
            _ => None,
        };
    }
    if tok.kind == TokenKind::Operator {
        return match tok.text.as_str() {
            "=" | "==" | "<>" | "!=" | "<" | "<=" | ">" | ">=" | "<=>" => Some((7, "cmp")),
            "||" => Some((9, "||")),
            "+" | "-" => Some((9, "add")),
            "*" | "/" | "%" => Some((11, "mul")),
            _ => None,
        };
    }
    None
}

fn parse_expr_bp(cur: &mut Cursor, min_bp: u8) -> Option<Expr> {
    let mut lhs = parse_prefix(cur)?;

    while let Some(tok) = cur.peek() {

        // Postfix-ish keyword operators: IS [NOT] NULL, [NOT] IN, [NOT]
        // BETWEEN, [NOT] LIKE/ILIKE/REGEXP/RLIKE/GLOB/SIMILAR TO.
        if tok.kind == TokenKind::Keyword && min_bp <= 5 {
            let u = tok.upper();
            match u.as_str() {
                "IS" => {
                    cur.pos += 1;
                    let negated = cur.eat_keyword(Kw::NOT);
                    if cur.eat_keyword(Kw::NULL) {
                        lhs = Expr::IsNull { expr: alloc(lhs), negated };
                        continue;
                    }
                    // IS TRUE / IS FALSE / IS DISTINCT FROM ... — raw-ish
                    let rhs = parse_prefix(cur)?;
                    lhs = Expr::Binary {
                        left: alloc(lhs),
                        op: if negated { "IS NOT".into() } else { "IS".into() },
                        right: alloc(rhs),
                    };
                    continue;
                }
                "NOT" | "IN" | "BETWEEN" | "LIKE" | "ILIKE" | "REGEXP" | "RLIKE" | "GLOB"
                | "SIMILAR" => {
                    let save = cur.pos;
                    let negated = cur.eat_keyword(Kw::NOT);
                    if let Some(e) = parse_like_in_between(cur, lhs.clone(), negated) {
                        lhs = e;
                        continue;
                    }
                    cur.pos = save;
                }
                _ => {}
            }
        }

        let Some((lbp, class)) = binding_power(tok) else { break };
        if lbp < min_bp {
            break;
        }
        let op_text = if tok.kind == TokenKind::Keyword { tok.upper() } else { tok.text.clone() };
        let _ = class;
        cur.pos += 1;
        let rhs = parse_expr_bp(cur, lbp + 1)?;
        lhs = Expr::Binary { left: alloc(lhs), op: op_text, right: alloc(rhs) };
    }
    Some(lhs)
}

fn parse_like_in_between(cur: &mut Cursor, lhs: Expr, negated: bool) -> Option<Expr> {
    if cur.eat_keyword(Kw::IN) {
        let inner = cur.take_paren_group()?;
        // Subquery IN — keep raw to stay total.
        if inner.first().map(|t| t.is_kw(Kw::SELECT)).unwrap_or(false) {
            let sub = parse_select(&mut Cursor::new(inner))?;
            return Some(Expr::InList {
                expr: alloc(lhs),
                list: alloc_range(vec![Expr::Subquery(Box::new(sub))]),
                negated,
            });
        }
        let list = split_on_commas(inner).into_iter().map(parse_expr_tokens).collect();
        return Some(Expr::InList { expr: alloc(lhs), list: alloc_range(list), negated });
    }
    if cur.eat_keyword(Kw::BETWEEN) {
        let low = parse_expr_bp(cur, 8)?;
        if !cur.eat_keyword(Kw::AND) {
            return None;
        }
        let high = parse_expr_bp(cur, 8)?;
        return Some(Expr::Between {
            expr: alloc(lhs),
            low: alloc(low),
            high: alloc(high),
            negated,
        });
    }
    // Dialect-specific LIKE-family operators only shape nodes where the
    // active dialect admits them; elsewhere the keyword is left uneaten
    // and the caller's save/restore sends the expression to `Raw`.
    let d = active_dialect();
    let admits = |kw: Kw| d.admits_keyword(kw);
    let op = if cur.eat_keyword(Kw::LIKE) {
        LikeOp::Like
    } else if admits(Kw::ILIKE) && cur.eat_keyword(Kw::ILIKE) {
        LikeOp::ILike
    } else if (admits(Kw::REGEXP) && cur.eat_keyword(Kw::REGEXP))
        || (admits(Kw::RLIKE) && cur.eat_keyword(Kw::RLIKE))
    {
        LikeOp::Regexp
    } else if admits(Kw::GLOB) && cur.eat_keyword(Kw::GLOB) {
        LikeOp::Glob
    } else if admits(Kw::SIMILAR) && cur.eat_keywords(&[Kw::SIMILAR, Kw::TO]) {
        LikeOp::Similar
    } else {
        return None;
    };
    let pattern = parse_expr_bp(cur, 8)?;
    Some(Expr::Like { expr: alloc(lhs), op, pattern: alloc(pattern), negated })
}

fn parse_prefix(cur: &mut Cursor) -> Option<Expr> {
    // Depth guard: every expression recursion path passes through here
    // (unary chains, nested parens, subqueries via the paren branch), so
    // one ticket bounds the stack for the whole expression grammar.
    let _depth = enter_expr()?;
    let tok = cur.peek()?;
    match tok.kind {
        TokenKind::Keyword => {
            let u = tok.upper();
            match u.as_str() {
                "NOT" => {
                    cur.pos += 1;
                    let e = parse_expr_bp(cur, 5)?;
                    Some(Expr::Unary { op: "NOT".into(), expr: alloc(e) })
                }
                "NULL" => {
                    cur.pos += 1;
                    Some(Expr::Null)
                }
                "TRUE" => {
                    cur.pos += 1;
                    Some(Expr::BoolLit(true))
                }
                "FALSE" => {
                    cur.pos += 1;
                    Some(Expr::BoolLit(false))
                }
                "EXISTS" => {
                    cur.pos += 1;
                    let inner = cur.take_paren_group()?;
                    let sub = parse_select(&mut Cursor::new(inner))?;
                    Some(Expr::Unary {
                        op: "EXISTS".into(),
                        expr: alloc(Expr::Subquery(Box::new(sub))),
                    })
                }
                "CASE" => parse_case_raw(cur),
                "CAST" => {
                    cur.pos += 1;
                    let inner = cur.take_paren_group()?;
                    Some(Expr::Function {
                        name: "CAST".into(),
                        args: alloc_range(vec![Expr::Raw(join_tokens(inner))]),
                        distinct: false,
                    })
                }
                "INTERVAL" => {
                    cur.pos += 1;
                    let arg = parse_prefix(cur)?;
                    Some(Expr::Unary { op: "INTERVAL".into(), expr: alloc(arg) })
                }
                // Keyword used as function (REPLACE(...), RAND(), etc.) or
                // bare keyword-ish identifier (dialect-tolerant).
                _ => {
                    if cur.peek_at(1).map(|t| t.is_punct('(')).unwrap_or(false) {
                        parse_function(cur)
                    } else if matches!(
                        u.as_str(),
                        "CURRENT_TIMESTAMP" | "CURRENT_DATE" | "CURRENT_TIME"
                    ) {
                        cur.pos += 1;
                        Some(Expr::Function { name: u, args: ExprRange::EMPTY, distinct: false })
                    } else {
                        cur.pos += 1;
                        Some(Expr::ident(tok.ident_value()))
                    }
                }
            }
        }
        TokenKind::Ident | TokenKind::QuotedIdent => {
            if cur.peek_at(1).map(|t| t.is_punct('(')).unwrap_or(false) {
                return parse_function(cur);
            }
            // qualified identifier chain, possibly ending in `.*`
            let mut parts = vec![IStr::new(tok.ident_value())];
            cur.pos += 1;
            while cur.peek().map(|t| t.is_punct('.')).unwrap_or(false) {
                if let Some(nxt) = cur.peek_at(1) {
                    if nxt.is_operator("*") {
                        cur.pos += 2;
                        parts.push("*".into());
                        break;
                    }
                    if matches!(
                        nxt.kind,
                        TokenKind::Ident | TokenKind::QuotedIdent | TokenKind::Keyword
                    ) {
                        cur.pos += 2;
                        parts.push(nxt.ident_value().into());
                        continue;
                    }
                }
                break;
            }
            Some(Expr::Ident(parts))
        }
        TokenKind::StringLit => {
            cur.pos += 1;
            Some(Expr::StringLit(tok.string_value().unwrap_or_default()))
        }
        TokenKind::NumberLit => {
            cur.pos += 1;
            Some(Expr::NumberLit(tok.text.clone()))
        }
        TokenKind::Param => {
            cur.pos += 1;
            Some(Expr::Param(tok.text.clone()))
        }
        TokenKind::Operator => {
            let t = tok.text.clone();
            if t == "-" || t == "+" || t == "~" {
                cur.pos += 1;
                let e = parse_expr_bp(cur, 13)?;
                return Some(Expr::Unary { op: t, expr: alloc(e) });
            }
            if t == "*" {
                cur.pos += 1;
                return Some(Expr::ident("*"));
            }
            None
        }
        TokenKind::Punct => {
            if tok.is_punct('(') {
                let inner = cur.take_paren_group()?;
                if inner.first().map(|t| t.is_kw(Kw::SELECT)).unwrap_or(false) {
                    let sub = parse_select(&mut Cursor::new(inner))?;
                    return Some(Expr::Subquery(Box::new(sub)));
                }
                let e = parse_expr_tokens(inner);
                return Some(Expr::Paren(alloc(e)));
            }
            None
        }
        _ => None,
    }
}

fn parse_case_raw(cur: &mut Cursor) -> Option<Expr> {
    // CASE ... END preserved raw (detection rules don't descend into CASE).
    let start = cur.pos;
    let mut depth = 0i32;
    while let Some(t) = cur.next() {
        if t.is_kw(Kw::CASE) {
            depth += 1;
        } else if t.is_kw(Kw::END) {
            depth -= 1;
            if depth == 0 {
                return Some(Expr::Raw(join_tokens(&cur.toks[start..cur.pos])));
            }
        }
    }
    Some(Expr::Raw(join_tokens(&cur.toks[start..])))
}

fn parse_function(cur: &mut Cursor) -> Option<Expr> {
    let name_tok = cur.next()?;
    let name: IStr = name_tok.ident_value().into();
    let inner = cur.take_paren_group()?;
    let mut distinct = false;
    let arg_toks: &[Token] = if inner.first().map(|t| t.is_kw(Kw::DISTINCT)).unwrap_or(false) {
        distinct = true;
        &inner[1..]
    } else {
        inner
    };
    let args = if arg_toks.is_empty() {
        Vec::new()
    } else {
        split_on_commas(arg_toks).into_iter().map(parse_expr_tokens).collect()
    };
    Some(Expr::Function { name, args: alloc_range(args), distinct })
}

// ---------------------------------------------------------------------------
// CREATE TABLE / CREATE INDEX
// ---------------------------------------------------------------------------

fn parse_create(cur: &mut Cursor) -> Option<Statement> {
    if !cur.eat_keyword(Kw::CREATE) {
        return None;
    }
    let _ = cur.eat_keywords(&[Kw::OR, Kw::REPLACE]);
    let unique = cur.eat_keyword(Kw::UNIQUE);
    let _ = cur.eat_keyword(Kw::TEMP) || cur.eat_keyword(Kw::TEMPORARY);
    // MySQL `DEFINER = user@host` (also quoted forms): skip up to the
    // object kind — DEFINER only precedes routine-ish objects.
    if cur.eat_name_if("DEFINER") {
        let _ = cur.take_until(|t| {
            t.is_kw(Kw::TRIGGER) || t.is_kw(Kw::PROCEDURE) || t.is_kw(Kw::FUNCTION)
        });
    }
    if cur.eat_keyword(Kw::TABLE) {
        return parse_create_table(cur).map(Statement::CreateTable);
    }
    if cur.eat_keyword(Kw::INDEX) {
        return parse_create_index(cur, unique).map(Statement::CreateIndex);
    }
    if cur.eat_keyword(Kw::TRIGGER) {
        return parse_create_trigger(cur).map(Statement::CreateTrigger);
    }
    if cur.eat_keyword(Kw::PROCEDURE) {
        return parse_create_routine(cur, RoutineKind::Procedure).map(Statement::CreateRoutine);
    }
    if cur.eat_keyword(Kw::FUNCTION) {
        return parse_create_routine(cur, RoutineKind::Function).map(Statement::CreateRoutine);
    }
    None
}

// ---------------------------------------------------------------------------
// CREATE TRIGGER / PROCEDURE / FUNCTION (compound statements)
// ---------------------------------------------------------------------------

/// Base offset for body-statement spans: sub-statement spans are stored
/// relative to the enclosing statement's first significant token, so they
/// stay valid for every occurrence of a duplicated text.
fn stmt_base(cur: &Cursor) -> usize {
    cur.toks.first().map(|t| t.span.start).unwrap_or(0)
}

/// Parse one body piece (a token slice of a compound body) into
/// [`BodyStatement`]s with statement-relative spans. Control-flow
/// headers (`IF <cond> THEN`, `ELSEIF … THEN`, `ELSE`, `WHILE … DO`,
/// `LOOP`, `REPEAT`) are stripped so the *executable* statement inside
/// the construct surfaces — a `SELECT *` behind `IF … THEN` is still a
/// statement detection rules must see — and nested `BEGIN…END` pieces
/// recurse into their interior statements.
fn push_body(out: &mut Vec<BodyStatement>, toks: &[Token], base: usize) {
    let toks = strip_construct_header(toks);
    if toks.is_empty() {
        return;
    }
    if toks[0].is_kw(Kw::BEGIN) {
        // Nested block: flatten its interior statements (token spans are
        // statement-absolute, so recursion keeps spans correct). Past the
        // nesting budget the block is kept as one flat `Other` piece
        // instead of recursing further.
        if let Some(_nest) = enter_block() {
            let mut cur = Cursor::new(&toks[1..]);
            out.extend(collect_body(&mut cur, base, true));
            return;
        }
    }
    let start = toks[0].span.start.saturating_sub(base);
    let end = toks[toks.len() - 1].span.end.saturating_sub(base);
    out.push(BodyStatement { stmt: parse_tokens(toks), span: crate::token::Span::new(start, end) });
}

/// Strip leading control-flow construct headers from a body piece, so
/// the piece parses as the executable statement it guards:
///
/// * `IF <cond> THEN stmt` / `ELSEIF <cond> THEN stmt` → `stmt`
/// * `WHILE <cond> DO stmt` → `stmt`
/// * `ELSE stmt` / `LOOP stmt` / `REPEAT stmt` → `stmt`
/// * `END IF|LOOP|WHILE|REPEAT` and `UNTIL <cond> END REPEAT` → nothing
///
/// Headers nest (`IF a THEN IF b THEN stmt`), so stripping loops.
/// `IF(` (the MySQL function) and `IF [NOT] EXISTS` never reach here as
/// piece heads, and a headless piece is returned unchanged.
fn strip_construct_header(mut toks: &[Token]) -> &[Token] {
    loop {
        let Some(first) = toks.first() else { return toks };
        let word = |w: Kw| first.is_kw(w);
        if word(Kw::IF) || word(Kw::ELSEIF) {
            match find_marker(&toks[1..], "THEN") {
                Some(i) => toks = &toks[i + 2..],
                None => return toks, // no THEN: not a construct header
            }
        } else if word(Kw::WHILE) {
            match find_marker(&toks[1..], "DO") {
                Some(i) => toks = &toks[i + 2..],
                None => return toks,
            }
        } else if word(Kw::ELSE) || word(Kw::LOOP) || word(Kw::REPEAT) || word(Kw::THEN) {
            toks = &toks[1..];
        } else if word(Kw::END)
            && toks.get(1).map(|n| {
                ["IF", "LOOP", "WHILE", "REPEAT"]
                    .iter()
                    .any(|w| n.text.eq_ignore_ascii_case(w))
            }).unwrap_or(false)
        {
            return &[]; // `END IF;` pieces carry no statement
        } else if first.text.eq_ignore_ascii_case("UNTIL") {
            return &[]; // `UNTIL <cond> END REPEAT` carries no statement
        } else {
            return toks;
        }
    }
}

/// Index of the first `marker` word at paren/CASE depth 0 (the `THEN`
/// of an `IF` condition or the `DO` of a `WHILE` — a `CASE … THEN …
/// END` inside the condition must not end it).
fn find_marker(toks: &[Token], marker: &str) -> Option<usize> {
    let mut paren = 0i32;
    let mut case = 0i32;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_kw(Kw::CASE) {
            case += 1;
        } else if t.is_kw(Kw::END) {
            case -= 1;
        } else if paren == 0
            && case == 0
            && (t.kind == TokenKind::Keyword || t.kind == TokenKind::Ident)
            && t.text.eq_ignore_ascii_case(marker)
        {
            return Some(i);
        }
    }
    None
}

/// True when `t` closes a control-flow construct after `END` (`END IF`,
/// `END LOOP`, `END WHILE`, `END REPEAT`).
fn ends_construct(t: &Token) -> bool {
    ["IF", "LOOP", "WHILE", "REPEAT"].iter().any(|w| {
        (t.kind == TokenKind::Keyword || t.kind == TokenKind::Ident)
            && t.text.eq_ignore_ascii_case(w)
    })
}

/// Split the statements of a compound body, honouring nested
/// `BEGIN…END` blocks and `CASE…END` expressions — the token-level twin
/// of the splitter's block tracker (same `BEGIN`/`CASE`/`END` accounting
/// and `END` lookahead; control-flow constructs are not depth-counted in
/// either, their pieces are header-stripped by [`push_body`] instead).
/// When `in_block` is true the cursor stands right after a `BEGIN` and
/// parsing stops at (and consumes) the matching `END`; otherwise the
/// whole remaining stream is body text (dollar-quoted `LANGUAGE sql`
/// bodies).
fn collect_body(cur: &mut Cursor, base: usize, in_block: bool) -> Vec<BodyStatement> {
    let mut depth: u32 = u32::from(in_block);
    let mut case_depth: u32 = 0;
    let mut body = Vec::new();
    let mut piece = cur.pos;
    while let Some(t) = cur.peek() {
        if t.is_kw(Kw::BEGIN) {
            depth += 1;
        } else if t.is_kw(Kw::CASE) {
            case_depth += 1;
        } else if t.is_kw(Kw::END) {
            if cur.peek_at(1).map(ends_construct).unwrap_or(false) {
                cur.pos += 2; // END IF & friends: no depth change
                continue;
            }
            if cur.peek_at(1).map(|n| n.is_kw(Kw::CASE)).unwrap_or(false) {
                case_depth = case_depth.saturating_sub(1);
                cur.pos += 2;
                continue;
            }
            if case_depth > 0 {
                case_depth -= 1;
            } else if depth > 0 {
                depth -= 1;
                if in_block && depth == 0 {
                    push_body(&mut body, &cur.toks[piece..cur.pos], base);
                    cur.pos += 1; // consume the closing END
                    return body;
                }
            }
        } else if t.is_punct(';') && case_depth == 0 && depth == u32::from(in_block) {
            push_body(&mut body, &cur.toks[piece..cur.pos], base);
            cur.pos += 1;
            piece = cur.pos;
            continue;
        }
        cur.pos += 1;
    }
    // Unterminated block (or plain script body): keep the trailing piece.
    if in_block {
        // The matching END is only ever consumed by the early return
        // above, so falling through with `in_block` means the block ran
        // to end of input unclosed.
        UNTERMINATED.with(|f| f.set(true));
    }
    push_body(&mut body, &cur.toks[piece..cur.pos], base);
    body
}

fn parse_create_trigger(cur: &mut Cursor) -> Option<CreateTrigger> {
    let base = stmt_base(cur);
    let _ = cur.eat_keywords(&[Kw::IF, Kw::NOT, Kw::EXISTS]);
    let name = cur.eat_object_name()?;
    let timing = if cur.eat_keyword(Kw::BEFORE) {
        Some("BEFORE".to_string())
    } else if cur.eat_keyword(Kw::AFTER) {
        Some("AFTER".to_string())
    } else if cur.eat_name_if("INSTEAD") {
        let _ = cur.eat_name_if("OF");
        Some("INSTEAD OF".to_string())
    } else {
        None
    };
    // Events up to ON: `INSERT OR UPDATE OF col, col2 OR DELETE` etc.
    let ev_toks = cur.take_until(|t| t.is_kw(Kw::ON));
    let events: Vec<String> = ev_toks
        .iter()
        .filter(|t| {
            t.is_kw(Kw::INSERT)
                || t.is_kw(Kw::UPDATE)
                || t.is_kw(Kw::DELETE)
                || t.is_kw(Kw::TRUNCATE)
        })
        .map(|t| t.upper().to_string())
        .collect();
    if !cur.eat_keyword(Kw::ON) {
        return None;
    }
    let table = cur.eat_object_name()?;
    let for_each_row = cur.eat_keywords(&[Kw::FOR, Kw::EACH, Kw::ROW]);
    // `FOR EACH STATEMENT` is not consumed here: STATEMENT is not in the
    // keyword table (it lexes as an identifier), so the phrase never
    // matched a keyword sequence; the body collector tolerates it.
    let when = if cur.eat_keyword(Kw::WHEN) {
        let toks = cur
            .take_until(|t| t.is_kw(Kw::BEGIN) || t.text.eq_ignore_ascii_case("EXECUTE"));
        Some(join_tokens(toks))
    } else {
        None
    };
    let mut body = Vec::new();
    if cur.eat_keyword(Kw::BEGIN) {
        body = collect_body(cur, base, true);
    } else if !cur.at_end() {
        // Postgres form: `EXECUTE FUNCTION f(...)` — a one-statement body.
        push_body(&mut body, &cur.toks[cur.pos..], base);
        cur.pos = cur.toks.len();
    }
    Some(CreateTrigger { name, timing, events, table, for_each_row, when, body })
}

fn parse_create_routine(cur: &mut Cursor, kind: RoutineKind) -> Option<CreateRoutine> {
    let base = stmt_base(cur);
    let _ = cur.eat_keywords(&[Kw::IF, Kw::NOT, Kw::EXISTS]);
    let name = cur.eat_object_name()?;
    let params = cur.take_paren_group().map(join_tokens);
    let mut language = None;
    let mut body = Vec::new();
    // Scan header characteristics (RETURNS type, DETERMINISTIC, AS, …)
    // until the body: a BEGIN…END block, a dollar-quoted string, or a
    // bare single-statement body (MySQL `CREATE PROCEDURE p() SELECT 1`).
    while let Some(t) = cur.peek() {
        if t.is_kw(Kw::BEGIN) {
            cur.pos += 1;
            // SQL-standard `BEGIN ATOMIC` body (Postgres 14+ SQL-body
            // routines): ATOMIC is part of the opener, not the first
            // body statement. Not a [`Kw`] — it is an ordinary word
            // everywhere else.
            if active_dialect().begin_atomic() {
                if let Some(n) = cur.peek() {
                    if n.kind == TokenKind::Ident && n.text.eq_ignore_ascii_case("ATOMIC") {
                        cur.pos += 1;
                    }
                }
            }
            body = collect_body(cur, base, true);
            continue;
        }
        if t.kind == TokenKind::StringLit && t.text.starts_with('$') && body.is_empty() {
            body = parse_dollar_body(t, base);
            cur.pos += 1;
            continue;
        }
        if t.is_kw(Kw::LANGUAGE) {
            cur.pos += 1;
            language = cur.eat_name().map(String::from);
            continue;
        }
        if body.is_empty()
            && (t.is_kw(Kw::SELECT)
                || t.is_kw(Kw::INSERT)
                || t.is_kw(Kw::UPDATE)
                || t.is_kw(Kw::DELETE)
                || t.is_kw(Kw::SET)
                || t.is_kw(Kw::RETURN))
        {
            push_body(&mut body, &cur.toks[cur.pos..], base);
            cur.pos = cur.toks.len();
            break;
        }
        cur.pos += 1;
    }
    Some(CreateRoutine { kind, name, params, language, body })
}

/// Re-lex and parse a dollar-quoted routine body (`$tag$ … $tag$`): the
/// splitter keeps the body opaque (one string token), so compound
/// statements inside it are parsed here, with spans rebased into the
/// enclosing statement.
fn parse_dollar_body(tok: &Token, base: usize) -> Vec<BodyStatement> {
    let text = tok.text.as_str();
    let tag_len = match text[1..].find('$') {
        Some(i) => i + 2,
        None => return Vec::new(),
    };
    let inner_end = if text.len() >= 2 * tag_len && text.ends_with(&text[..tag_len]) {
        text.len() - tag_len
    } else {
        text.len() // unterminated dollar quote: take everything
    };
    let inner = &text[tag_len..inner_end];
    // Rebase inner offsets: absolute position of the body text, then
    // relative to the statement base (like every body span).
    let shift = tok.span.start + tag_len;
    let toks: Vec<Token> = crate::lexer::tokenize_significant_dialect(inner, active_dialect())
        .into_iter()
        .map(|t| {
            Token::new(
                t.kind,
                t.text,
                crate::token::Span::new(t.span.start + shift, t.span.end + shift),
            )
        })
        .collect();
    let mut cur = Cursor::new(&toks);
    // PL/pgSQL shape: optional DECLARE section, then BEGIN … END.
    if cur.peek_keyword(Kw::DECLARE) {
        let _ = cur.take_until(|t| t.is_kw(Kw::BEGIN));
    }
    if cur.eat_keyword(Kw::BEGIN) {
        collect_body(&mut cur, base, true)
    } else {
        // LANGUAGE sql body: a plain `;`-separated script.
        collect_body(&mut cur, base, false)
    }
}

fn parse_create_table(cur: &mut Cursor) -> Option<CreateTable> {
    let if_not_exists = cur.eat_keywords(&[Kw::IF, Kw::NOT, Kw::EXISTS]);
    let name = cur.eat_object_name()?;
    let body = cur.take_paren_group()?;
    let mut columns = Vec::new();
    let mut constraints = Vec::new();
    for element in split_on_commas(body) {
        let mut ec = Cursor::new(element);
        if let Some(tc) = try_parse_table_constraint(&mut ec) {
            constraints.push(tc);
        } else if let Some(cd) = parse_column_def(&mut Cursor::new(element)) {
            columns.push(cd);
        }
        // Unparseable elements are dropped from the structure but remain in
        // the raw tokens of the statement.
    }
    let options = cur.rest_text();
    Some(CreateTable { name, if_not_exists, columns, constraints, options })
}

fn try_parse_table_constraint(cur: &mut Cursor) -> Option<TableConstraint> {
    let mut name = None;
    if cur.peek_keyword(Kw::CONSTRAINT) {
        cur.pos += 1;
        name = cur.eat_name();
    }
    let kind = if cur.eat_keywords(&[Kw::PRIMARY, Kw::KEY]) {
        let cols = cur.take_paren_group().map(parse_name_list).unwrap_or_default();
        TableConstraintKind::PrimaryKey(cols)
    } else if cur.eat_keyword(Kw::UNIQUE) {
        let cols = cur.take_paren_group().map(parse_name_list)?;
        TableConstraintKind::Unique(cols)
    } else if cur.eat_keywords(&[Kw::FOREIGN, Kw::KEY]) {
        let cols = cur.take_paren_group().map(parse_name_list).unwrap_or_default();
        if !cur.eat_keyword(Kw::REFERENCES) {
            return Some(TableConstraint {
                name,
                kind: TableConstraintKind::Other(cur.rest_text()),
            });
        }
        let reference = parse_fk_ref(cur)?;
        TableConstraintKind::ForeignKey { columns: cols, reference }
    } else if cur.eat_keyword(Kw::CHECK) {
        let inner = cur.take_paren_group()?;
        TableConstraintKind::Check(parse_check(inner))
    } else {
        return None;
    };
    Some(TableConstraint { name, kind })
}

fn parse_name_list(toks: &[Token]) -> Vec<IStr> {
    split_on_commas(toks)
        .into_iter()
        .filter_map(|s| s.first().map(|t| IStr::new(t.ident_value())))
        .collect()
}

fn parse_fk_ref(cur: &mut Cursor) -> Option<ForeignKeyRef> {
    let table = cur.eat_object_name()?;
    let columns = if cur.peek().map(|t| t.is_punct('(')).unwrap_or(false) {
        cur.take_paren_group().map(parse_name_list).unwrap_or_default()
    } else {
        Vec::new()
    };
    let mut actions = Vec::new();
    while cur.peek_keyword(Kw::ON) {
        let start = cur.pos;
        cur.pos += 1; // ON
        let evt = cur.eat_name(); // DELETE / UPDATE
        let act1 = cur.eat_name(); // CASCADE / SET / RESTRICT / NO
        let act2 = if matches!(act1.as_deref().map(str::to_ascii_uppercase).as_deref(), Some("SET") | Some("NO"))
        {
            cur.eat_name()
        } else {
            None
        };
        if evt.is_none() || act1.is_none() {
            cur.pos = start;
            break;
        }
        let mut s = format!("ON {}", evt.unwrap().to_ascii_uppercase());
        s.push(' ');
        s.push_str(&act1.unwrap().to_ascii_uppercase());
        if let Some(a2) = act2 {
            s.push(' ');
            s.push_str(&a2.to_ascii_uppercase());
        }
        actions.push(s);
    }
    Some(ForeignKeyRef { table, columns, actions })
}

fn parse_check(inner: &[Token]) -> CheckConstraint {
    let expr_text = join_tokens(inner);
    // Recognise `col IN ('a', 'b', ...)` — the Enumerated Types AP shape.
    let mut cur = Cursor::new(inner);
    let in_list = (|| {
        let col = cur.eat_name()?;
        if !cur.eat_keyword(Kw::IN) {
            return None;
        }
        let list = cur.take_paren_group()?;
        if !cur.at_end() {
            return None;
        }
        let values: Vec<IStr> = split_on_commas(list)
            .iter()
            .filter_map(|s| s.first())
            .filter(|t| t.kind == TokenKind::StringLit || t.kind == TokenKind::NumberLit)
            .map(|t| t.string_value().unwrap_or_else(|| t.text.clone()))
            .collect();
        if values.is_empty() {
            None
        } else {
            Some((col, values))
        }
    })();
    CheckConstraint { expr_text, in_list }
}

const COLUMN_CONSTRAINT_STARTERS: &[Kw] = &[
    Kw::PRIMARY, Kw::NOT, Kw::NULL, Kw::UNIQUE, Kw::DEFAULT, Kw::CHECK, Kw::REFERENCES,
    Kw::AUTO_INCREMENT, Kw::AUTOINCREMENT, Kw::COLLATE, Kw::CONSTRAINT,
];

fn parse_column_def(cur: &mut Cursor) -> Option<ColumnDef> {
    let name = match cur.peek()?.kind {
        TokenKind::Ident | TokenKind::QuotedIdent => cur.eat_name()?,
        // Tolerate keywords as column names (e.g. `key`, `order` in sloppy
        // schemas) unless it *starts* a constraint.
        TokenKind::Keyword
            if !cur.peek().unwrap().kw.is_some_and(|k| COLUMN_CONSTRAINT_STARTERS.contains(&k)) =>
        {
            cur.eat_name()?
        }
        _ => return None,
    };
    let data_type = parse_type_name(cur);
    let mut constraints = Vec::new();
    while !cur.at_end() {
        if cur.eat_keywords(&[Kw::PRIMARY, Kw::KEY]) {
            constraints.push(ColumnConstraint::PrimaryKey);
        } else if cur.eat_keywords(&[Kw::NOT, Kw::NULL]) {
            constraints.push(ColumnConstraint::NotNull);
        } else if cur.eat_keyword(Kw::NULL) {
            constraints.push(ColumnConstraint::Null);
        } else if cur.eat_keyword(Kw::UNIQUE) {
            constraints.push(ColumnConstraint::Unique);
        } else if cur.eat_keyword(Kw::AUTO_INCREMENT) || cur.eat_keyword(Kw::AUTOINCREMENT) {
            constraints.push(ColumnConstraint::AutoIncrement);
        } else if cur.eat_keyword(Kw::DEFAULT) {
            let toks = cur.take_until(|t| {
                t.kw.is_some_and(|k| COLUMN_CONSTRAINT_STARTERS.contains(&k))
            });
            constraints.push(ColumnConstraint::Default(join_tokens(toks)));
        } else if cur.eat_keyword(Kw::CHECK) {
            if let Some(inner) = cur.take_paren_group() {
                constraints.push(ColumnConstraint::Check(parse_check(inner)));
            }
        } else if cur.eat_keyword(Kw::REFERENCES) {
            if let Some(r) = parse_fk_ref(cur) {
                constraints.push(ColumnConstraint::References(r));
            }
        } else {
            // Preserve whatever is left (COLLATE ..., dialect noise).
            let rest = cur.rest_text();
            cur.pos = cur.toks.len();
            if !rest.is_empty() {
                constraints.push(ColumnConstraint::Other(rest));
            }
        }
    }
    Some(ColumnDef { name, data_type, constraints })
}

fn parse_type_name(cur: &mut Cursor) -> Option<TypeName> {
    let tok = cur.peek()?;
    let is_type_word = matches!(tok.kind, TokenKind::Keyword | TokenKind::Ident);
    if !is_type_word {
        return None;
    }
    // Words that start a constraint cannot be a type.
    if tok.kw.is_some_and(|k| COLUMN_CONSTRAINT_STARTERS.contains(&k)) {
        return None;
    }
    let mut name = tok.upper();
    cur.pos += 1;
    // Two-word types: DOUBLE PRECISION, CHARACTER VARYING.
    if name == "DOUBLE" && cur.eat_keyword(Kw::PRECISION) {
        name = "DOUBLE".into();
    } else if name == "CHARACTER" && cur.eat_keyword(Kw::VARYING) {
        name = "VARCHAR".into();
    }
    let mut ty = TypeName { name, args: Vec::new(), modifiers: Vec::new() };
    if cur.peek().map(|t| t.is_punct('(')).unwrap_or(false) {
        if let Some(inner) = cur.take_paren_group() {
            ty.args = split_on_commas(inner).iter().map(|s| join_tokens(s).into()).collect();
        }
    }
    if cur.eat_keyword(Kw::UNSIGNED) {
        ty.modifiers.push("UNSIGNED".into());
    }
    if cur.eat_keywords(&[Kw::WITH, Kw::TIME, Kw::ZONE]) {
        ty.modifiers.push("WITH TIME ZONE".into());
    } else if cur.eat_keywords(&[Kw::WITHOUT, Kw::TIME, Kw::ZONE]) {
        ty.modifiers.push("WITHOUT TIME ZONE".into());
    }
    Some(ty)
}

fn parse_create_index(cur: &mut Cursor, unique: bool) -> Option<CreateIndex> {
    let _ = cur.eat_keywords(&[Kw::IF, Kw::NOT, Kw::EXISTS]);
    let name = cur.eat_name().unwrap_or_default();
    if !cur.eat_keyword(Kw::ON) {
        return None;
    }
    let table = cur.eat_object_name()?;
    let columns = cur.take_paren_group().map(parse_name_list).unwrap_or_default();
    Some(CreateIndex { name, table, columns, unique })
}

// ---------------------------------------------------------------------------
// ALTER / INSERT / UPDATE / DELETE / DROP
// ---------------------------------------------------------------------------

fn parse_alter(cur: &mut Cursor) -> Option<AlterTable> {
    if !cur.eat_keyword(Kw::ALTER) || !cur.eat_keyword(Kw::TABLE) {
        return None;
    }
    let _ = cur.eat_keywords(&[Kw::IF, Kw::EXISTS]);
    let table = cur.eat_object_name()?;
    let action = if cur.eat_keyword(Kw::ADD) {
        if cur.peek_keyword(Kw::CONSTRAINT)
            || cur.peek_keyword(Kw::PRIMARY)
            || cur.peek_keyword(Kw::FOREIGN)
            || cur.peek_keyword(Kw::UNIQUE)
            || cur.peek_keyword(Kw::CHECK)
        {
            match try_parse_table_constraint(cur) {
                Some(tc) => AlterAction::AddConstraint(tc),
                None => AlterAction::Other(cur.rest_text()),
            }
        } else {
            let _ = cur.eat_keyword(Kw::COLUMN);
            match parse_column_def(cur) {
                Some(cd) => AlterAction::AddColumn(cd),
                None => AlterAction::Other(cur.rest_text()),
            }
        }
    } else if cur.eat_keyword(Kw::DROP) {
        if cur.eat_keyword(Kw::CONSTRAINT) {
            let _ = cur.eat_keywords(&[Kw::IF, Kw::EXISTS]);
            match cur.eat_name() {
                Some(n) => AlterAction::DropConstraint(n),
                None => AlterAction::Other(cur.rest_text()),
            }
        } else {
            let _ = cur.eat_keyword(Kw::COLUMN);
            match cur.eat_name() {
                Some(n) => AlterAction::DropColumn(n),
                None => AlterAction::Other(cur.rest_text()),
            }
        }
    } else {
        AlterAction::Other(cur.rest_text())
    };
    Some(AlterTable { table, action })
}

fn parse_insert(cur: &mut Cursor) -> Option<Insert> {
    let _ = cur.eat_keyword(Kw::INSERT) || cur.eat_keyword(Kw::REPLACE);
    let _ = cur.eat_keyword(Kw::OR); // INSERT OR REPLACE / IGNORE (SQLite)
    let _ = cur.eat_keyword(Kw::REPLACE);
    let _ = cur.eat_name_if("IGNORE");
    cur.eat_keyword(Kw::INTO);
    let table = cur.eat_object_name()?;
    let mut columns = Vec::new();
    if cur.peek().map(|t| t.is_punct('(')).unwrap_or(false) && !cur.peek_paren_is_select() {
        columns = cur.take_paren_group().map(parse_name_list).unwrap_or_default();
    }
    let source = if cur.eat_keyword(Kw::VALUES) {
        let mut rows = Vec::new();
        while let Some(inner) = cur.take_paren_group() {
            rows.push(alloc_range(
                split_on_commas(inner).into_iter().map(parse_expr_tokens).collect::<Vec<_>>(),
            ));
            if !cur.eat_punct(',') {
                break;
            }
        }
        InsertSource::Values(rows)
    } else if cur.peek_keyword(Kw::SELECT) {
        match parse_select(cur) {
            Some(s) => InsertSource::Select(Box::new(s)),
            None => InsertSource::Raw(cur.rest_text()),
        }
    } else {
        InsertSource::Raw(cur.rest_text())
    };
    Some(Insert { table, columns, source })
}

impl<'a> Cursor<'a> {
    fn eat_name_if(&mut self, word: &str) -> bool {
        if let Some(t) = self.peek() {
            if t.text.eq_ignore_ascii_case(word) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_paren_is_select(&self) -> bool {
        if !self.peek().map(|t| t.is_punct('(')).unwrap_or(false) {
            return false;
        }
        self.peek_at(1).map(|t| t.is_kw(Kw::SELECT)).unwrap_or(false)
    }
}

fn parse_update(cur: &mut Cursor) -> Option<Update> {
    if !cur.eat_keyword(Kw::UPDATE) {
        return None;
    }
    let table = cur.eat_object_name()?;
    let _alias = parse_optional_alias(cur);
    if !cur.eat_keyword(Kw::SET) {
        return None;
    }
    let set_toks = cur.take_until(|t| t.is_kw(Kw::WHERE));
    let mut assignments = Vec::new();
    for part in split_on_commas(set_toks) {
        // col = expr   (col may be qualified)
        let eq = part.iter().position(|t| t.is_operator("="))?;
        let col_toks = &part[..eq];
        let col: IStr = col_toks.last()?.ident_value().into();
        let val = alloc(parse_expr_tokens(&part[eq + 1..]));
        assignments.push((col, val));
    }
    let where_clause = if cur.eat_keyword(Kw::WHERE) {
        let toks = cur.take_until(|_| false);
        Some(alloc(parse_expr_tokens(toks)))
    } else {
        None
    };
    Some(Update { table, assignments, where_clause })
}

fn parse_delete(cur: &mut Cursor) -> Option<Delete> {
    if !cur.eat_keyword(Kw::DELETE) || !cur.eat_keyword(Kw::FROM) {
        return None;
    }
    let table = cur.eat_object_name()?;
    let _alias = parse_optional_alias(cur);
    let where_clause = if cur.eat_keyword(Kw::WHERE) {
        let toks = cur.take_until(|_| false);
        Some(alloc(parse_expr_tokens(toks)))
    } else {
        None
    };
    Some(Delete { table, where_clause })
}

fn parse_drop(cur: &mut Cursor) -> Option<Drop> {
    if !cur.eat_keyword(Kw::DROP) {
        return None;
    }
    let kind_tok = cur.next()?;
    let object_kind = kind_tok.upper();
    if !matches!(object_kind.as_str(), "TABLE" | "INDEX" | "VIEW" | "TRIGGER" | "DATABASE") {
        return None;
    }
    let if_exists = cur.eat_keywords(&[Kw::IF, Kw::EXISTS]);
    let name = cur.eat_object_name()?;
    Some(Drop { object_kind, name, if_exists })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Select {
        sela(sql).0
    }

    /// Like [`sel`] but also hands back the arena for expr traversal.
    fn sela(sql: &str) -> (Select, ExprArena) {
        let p = parse_one(sql);
        match p.stmt {
            Statement::Select(s) => (s, p.arena),
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    fn ct(sql: &str) -> CreateTable {
        match parse_one(sql).stmt {
            Statement::CreateTable(c) => c,
            other => panic!("expected CREATE TABLE, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b FROM t WHERE a = 1");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.as_ref().unwrap().name.name(), "t");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn select_wildcard_and_qualified_wildcard() {
        let s = sel("SELECT *, t.* FROM t");
        assert!(matches!(s.items[0], SelectItem::Wildcard { qualifier: None }));
        assert!(
            matches!(&s.items[1], SelectItem::Wildcard { qualifier: Some(q) } if q == "t")
        );
    }

    #[test]
    fn select_with_join_on() {
        let (s, a) = sela(
            "SELECT q.Name FROM Questionnaire q JOIN Tenant t ON t.Tenant_ID = q.Tenant_ID \
             WHERE q.Editable = true",
        );
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table.name.name(), "Tenant");
        assert_eq!(s.joins[0].table.alias.as_deref(), Some("t"));
        let on = s.joins[0].on.unwrap();
        assert_eq!(a.column_refs(on).len(), 2);
    }

    #[test]
    fn join_with_like_expression_on_clause() {
        // The paper's Task #2 query: expression join via LIKE.
        let (s, a) = sela(
            "SELECT * FROM Tenants AS t JOIN Users AS u \
             ON t.User_IDs LIKE '%' || u.User_ID || '%' WHERE t.Tenant_ID = 'T1'",
        );
        assert_eq!(s.joins.len(), 1);
        let on = s.joins[0].on.unwrap();
        let mut saw_like = false;
        a.walk(on, &mut |e| {
            if matches!(e, Expr::Like { .. }) {
                saw_like = true;
            }
        });
        assert!(saw_like, "LIKE in ON clause must be shaped: {on:?}");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn group_order_limit() {
        let s = sel("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 10");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].asc);
        assert_eq!(s.limit.as_deref(), Some("10"));
    }

    #[test]
    fn order_by_rand() {
        let (s, a) = sela("SELECT * FROM t ORDER BY RAND()");
        let fns = a.function_calls(s.order_by[0].expr);
        assert_eq!(fns, vec!["RAND".to_string()]);
    }

    #[test]
    fn comma_join() {
        let s = sel("SELECT * FROM a, b WHERE a.id = b.id");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].join_type, JoinType::Comma);
    }

    #[test]
    fn union_tail_preserved() {
        let s = sel("SELECT a FROM t UNION SELECT b FROM u");
        assert!(s.set_op_tail.as_deref().unwrap().contains("UNION"));
    }

    #[test]
    fn create_table_with_constraints() {
        let c = ct(
            "CREATE TABLE Hosting (\
               User_ID VARCHAR(10) REFERENCES Users(User_ID),\
               Tenant_ID VARCHAR(10) REFERENCES Tenants(Tenant_ID),\
               PRIMARY KEY (User_ID, Tenant_ID))",
        );
        assert_eq!(c.columns.len(), 2);
        assert_eq!(c.primary_key_columns(), vec!["User_ID", "Tenant_ID"]);
        let fks = c.foreign_keys();
        assert_eq!(fks.len(), 2);
        assert!(fks[0].1.table.name_eq("Users"));
    }

    #[test]
    fn create_table_column_types() {
        let c = ct(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, price FLOAT, name VARCHAR(30) NOT NULL, \
             role ENUM('a','b'), created TIMESTAMP WITH TIME ZONE, big DOUBLE PRECISION)",
        );
        assert!(c.column("price").unwrap().data_type.as_ref().unwrap().is_inexact_fractional());
        let role = c.column("role").unwrap().data_type.as_ref().unwrap();
        assert_eq!(role.name, "ENUM");
        assert_eq!(role.args.len(), 2);
        assert!(c.column("created").unwrap().data_type.as_ref().unwrap().has_timezone());
        assert_eq!(c.column("big").unwrap().data_type.as_ref().unwrap().name, "DOUBLE");
    }

    #[test]
    fn create_table_check_in_list() {
        let c = ct("CREATE TABLE u (role VARCHAR(5), CHECK (role IN ('R1','R2','R3')))");
        let check = c
            .constraints
            .iter()
            .find_map(|tc| match &tc.kind {
                TableConstraintKind::Check(ch) => Some(ch),
                _ => None,
            })
            .unwrap();
        let (col, vals) = check.in_list.as_ref().unwrap();
        assert_eq!(col, "role");
        assert_eq!(vals, &vec!["R1".to_string(), "R2".into(), "R3".into()]);
    }

    #[test]
    fn alter_add_check_constraint() {
        let p = parse_one(
            "ALTER TABLE User ADD CONSTRAINT User_Role_Check CHECK (ROLE IN ('R1','R2','R3'))",
        );
        let Statement::AlterTable(a) = p.stmt else { panic!() };
        assert!(a.table.name_eq("User"));
        let AlterAction::AddConstraint(tc) = a.action else { panic!() };
        assert_eq!(tc.name.as_deref(), Some("User_Role_Check"));
        assert!(matches!(tc.kind, TableConstraintKind::Check(_)));
    }

    #[test]
    fn alter_drop_constraint_if_exists() {
        let p = parse_one("ALTER TABLE User DROP CONSTRAINT IF EXISTS User_Role_Check");
        let Statement::AlterTable(a) = p.stmt else { panic!() };
        assert!(matches!(a.action, AlterAction::DropConstraint(ref n) if n == "User_Role_Check"));
    }

    #[test]
    fn alter_drop_column() {
        let p = parse_one("ALTER TABLE Tenants DROP COLUMN User_IDs");
        let Statement::AlterTable(a) = p.stmt else { panic!() };
        assert!(matches!(a.action, AlterAction::DropColumn(ref n) if n == "User_IDs"));
    }

    #[test]
    fn insert_without_columns() {
        let p = parse_one("INSERT INTO Tenant VALUES ('T1', 'Z1', True, 'U1,U2')");
        let Statement::Insert(i) = p.stmt else { panic!() };
        assert!(i.columns.is_empty());
        let InsertSource::Values(rows) = i.source else { panic!() };
        assert_eq!(rows[0].len(), 4);
    }

    #[test]
    fn insert_with_columns_multi_row() {
        let p = parse_one("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)");
        let Statement::Insert(i) = p.stmt else { panic!() };
        assert_eq!(i.columns, vec!["a", "b"]);
        let InsertSource::Values(rows) = i.source else { panic!() };
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn insert_select() {
        let p = parse_one("INSERT INTO t (a) SELECT x FROM u");
        let Statement::Insert(i) = p.stmt else { panic!() };
        assert!(matches!(i.source, InsertSource::Select(_)));
    }

    #[test]
    fn update_statement() {
        let p = parse_one("UPDATE User SET Role = 'R5', active = TRUE WHERE Role = 'R2'");
        let Statement::Update(u) = p.stmt else { panic!() };
        assert_eq!(u.assignments.len(), 2);
        assert_eq!(u.assignments[0].0, "Role");
        assert!(u.where_clause.is_some());
    }

    #[test]
    fn delete_statement() {
        let p = parse_one("DELETE FROM Users WHERE User_ID = 'U1'");
        let Statement::Delete(d) = p.stmt else { panic!() };
        assert!(d.table.name_eq("Users"));
        assert!(d.where_clause.is_some());
    }

    #[test]
    fn drop_statements() {
        let p = parse_one("DROP TABLE IF EXISTS t");
        let Statement::Drop(d) = p.stmt else { panic!() };
        assert_eq!(d.object_kind, "TABLE");
        assert!(d.if_exists);
    }

    #[test]
    fn create_index_statement() {
        let p = parse_one("CREATE UNIQUE INDEX idx_zone ON Tenant (Zone_ID, Active)");
        let Statement::CreateIndex(i) = p.stmt else { panic!() };
        assert!(i.unique);
        assert_eq!(i.name, "idx_zone");
        assert_eq!(i.columns, vec!["Zone_ID", "Active"]);
    }

    #[test]
    fn create_trigger_parses_body_substatements() {
        // The ISSUE 5 repro trigger: a real AST node, body statements
        // parsed, spans relative to the statement start.
        let sql = "CREATE TRIGGER trg AFTER INSERT ON t FOR EACH ROW \
                   BEGIN UPDATE u SET a = 1; DELETE FROM v; END";
        let p = parse_one(sql);
        let Statement::CreateTrigger(tg) = &p.stmt else { panic!("got {:?}", p.stmt) };
        assert!(tg.name.name_eq("trg"));
        assert_eq!(tg.timing.as_deref(), Some("AFTER"));
        assert_eq!(tg.events, vec!["INSERT"]);
        assert!(tg.table.name_eq("t"));
        assert!(tg.for_each_row);
        assert_eq!(tg.body.len(), 2);
        let Statement::Update(u) = &tg.body[0].stmt else { panic!() };
        assert!(u.table.name_eq("u"));
        let Statement::Delete(d) = &tg.body[1].stmt else { panic!() };
        assert!(d.table.name_eq("v"));
        // Relative spans slice the statement text at the sub-statement.
        for (b, text) in tg.body.iter().zip(["UPDATE u SET a = 1", "DELETE FROM v"]) {
            assert_eq!(&sql[b.span.start..b.span.end], text);
        }
    }

    #[test]
    fn create_trigger_with_nested_constructs() {
        let sql = "CREATE TRIGGER t2 BEFORE UPDATE ON x FOR EACH ROW \
                   BEGIN IF NEW.a > 0 THEN UPDATE u SET b = 1; END IF; \
                   SELECT CASE WHEN a THEN 1 ELSE 2 END; \
                   BEGIN DELETE FROM w; END; END";
        let p = parse_one(sql);
        let Statement::CreateTrigger(tg) = &p.stmt else { panic!("got {:?}", p.stmt) };
        assert_eq!(tg.timing.as_deref(), Some("BEFORE"));
        // Three executable body statements: the UPDATE guarded by the IF
        // (header stripped), the SELECT, and the DELETE inside the
        // nested block (flattened).
        assert_eq!(tg.body.len(), 3, "{:?}", tg.body);
        assert_eq!(tg.body[0].stmt.tag(), "UPDATE");
        assert_eq!(tg.body[1].stmt.tag(), "SELECT");
        assert_eq!(tg.body[2].stmt.tag(), "DELETE");
    }

    #[test]
    fn construct_headers_are_stripped_to_executable_statements() {
        let sql = "CREATE TRIGGER t3 AFTER INSERT ON t FOR EACH ROW BEGIN \
                   IF NEW.a > 0 THEN SELECT * FROM big ORDER BY RAND(); END IF; \
                   WHILE NEW.b > 0 DO INSERT INTO log VALUES (1); END WHILE; \
                   IF CASE WHEN NEW.c THEN 1 ELSE 0 END = 1 THEN DELETE FROM d; END IF; \
                   END";
        let p = parse_one(sql);
        let Statement::CreateTrigger(tg) = &p.stmt else { panic!("got {:?}", p.stmt) };
        let tags: Vec<&str> = tg.body.iter().map(|b| b.stmt.tag()).collect();
        assert_eq!(tags, vec!["SELECT", "INSERT", "DELETE"], "{:?}", tg.body);
        // The stripped statement's span still slices the source exactly.
        assert_eq!(
            &sql[tg.body[0].span.start..tg.body[0].span.end],
            "SELECT * FROM big ORDER BY RAND()"
        );
    }

    #[test]
    fn create_procedure_and_function_parse() {
        let p = parse_one(
            "CREATE PROCEDURE audit(IN uid INT) BEGIN INSERT INTO log VALUES (uid); END",
        );
        let Statement::CreateRoutine(r) = &p.stmt else { panic!("got {:?}", p.stmt) };
        assert_eq!(r.kind, RoutineKind::Procedure);
        assert!(r.name.name_eq("audit"));
        assert!(r.params.as_deref().unwrap().contains("uid"));
        assert_eq!(r.body.len(), 1);
        assert_eq!(r.body[0].stmt.tag(), "INSERT");

        let p = parse_one("CREATE OR REPLACE FUNCTION f() RETURNS INT RETURN 1");
        let Statement::CreateRoutine(r) = &p.stmt else { panic!("got {:?}", p.stmt) };
        assert_eq!(r.kind, RoutineKind::Function);
    }

    #[test]
    fn dollar_quoted_plpgsql_body_is_subparsed() {
        let sql = "CREATE FUNCTION bump() RETURNS trigger AS $fn$\n\
                   BEGIN UPDATE counters SET n = n + 1; DELETE FROM stale; END\n\
                   $fn$ LANGUAGE plpgsql";
        let p = parse_one(sql);
        let Statement::CreateRoutine(r) = &p.stmt else { panic!("got {:?}", p.stmt) };
        assert_eq!(r.language.as_deref(), Some("plpgsql"));
        assert_eq!(r.body.len(), 2, "{:?}", r.body);
        assert_eq!(r.body[0].stmt.tag(), "UPDATE");
        assert_eq!(r.body[1].stmt.tag(), "DELETE");
        // Body spans point inside the dollar-quoted region of the source.
        for (b, text) in
            r.body.iter().zip(["UPDATE counters SET n = n + 1", "DELETE FROM stale"])
        {
            assert_eq!(&sql[b.span.start..b.span.end], text);
        }
    }

    #[test]
    fn dollar_quoted_sql_body_splits_statements() {
        let p = parse_one(
            "CREATE FUNCTION two() RETURNS void AS $$ SELECT 1; SELECT 2; $$ LANGUAGE sql",
        );
        let Statement::CreateRoutine(r) = &p.stmt else { panic!("got {:?}", p.stmt) };
        assert_eq!(r.body.len(), 2);
        assert!(r.body.iter().all(|b| b.stmt.tag() == "SELECT"));
    }

    #[test]
    fn mysql_definer_trigger_parses() {
        let p = parse_one(
            "CREATE DEFINER = `root`@`localhost` TRIGGER trg BEFORE DELETE ON t \
             FOR EACH ROW BEGIN SET @n = @n - 1; END",
        );
        let Statement::CreateTrigger(tg) = &p.stmt else { panic!("got {:?}", p.stmt) };
        assert_eq!(tg.events, vec!["DELETE"]);
        assert_eq!(tg.body.len(), 1);
    }

    #[test]
    fn postgres_execute_function_trigger_body() {
        let p = parse_one(
            "CREATE TRIGGER trg AFTER UPDATE ON t FOR EACH ROW EXECUTE FUNCTION audit()",
        );
        let Statement::CreateTrigger(tg) = &p.stmt else { panic!("got {:?}", p.stmt) };
        assert_eq!(tg.body.len(), 1, "{:?}", tg.body);
        assert_eq!(tg.body[0].stmt.tag(), "OTHER");
    }

    #[test]
    fn unterminated_trigger_body_is_tolerated() {
        let p = parse_one("CREATE TRIGGER t1 BEFORE INSERT ON x FOR EACH ROW BEGIN SELECT 1;");
        let Statement::CreateTrigger(tg) = &p.stmt else { panic!("got {:?}", p.stmt) };
        assert_eq!(tg.body.len(), 1);
        assert_eq!(tg.body[0].stmt.tag(), "SELECT");
    }

    #[test]
    fn unknown_statement_is_other() {
        let p = parse_one("PRAGMA journal_mode = WAL");
        let Statement::Other(o) = p.stmt else { panic!() };
        assert_eq!(o.leading_keyword, "PRAGMA");
    }

    #[test]
    fn garbage_never_panics() {
        for sql in ["", ";;;", "SELECT FROM WHERE", "CREATE TABLE", ")(", "INSERT INTO"] {
            let _ = parse(sql);
        }
    }

    #[test]
    fn expr_in_list() {
        let (_a, e) = parse_expr_str("role IN ('R1', 'R2')");
        let Expr::InList { list, negated, .. } = e else { panic!() };
        assert!(!negated);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn expr_not_in_and_between() {
        let (a, e) = parse_expr_str("a NOT IN (1,2) AND b BETWEEN 1 AND 10");
        let Expr::Binary { left, op, right } = e else { panic!() };
        assert_eq!(op, "AND");
        assert!(matches!(a.node(left), Expr::InList { negated: true, .. }));
        assert!(matches!(a.node(right), Expr::Between { negated: false, .. }));
    }

    #[test]
    fn expr_is_null() {
        let (_a, e) = parse_expr_str("a IS NOT NULL");
        assert!(matches!(e, Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn expr_concat_operator() {
        let (_a, e) = parse_expr_str("first_name || ' ' || last_name");
        let Expr::Binary { op, .. } = &e else { panic!() };
        assert_eq!(op, "||");
    }

    #[test]
    fn expr_precedence_and_or() {
        // a = 1 OR b = 2 AND c = 3  →  OR(a=1, AND(b=2, c=3))
        let (a, e) = parse_expr_str("a = 1 OR b = 2 AND c = 3");
        let Expr::Binary { op, right, .. } = &e else { panic!() };
        assert_eq!(op, "OR");
        let Expr::Binary { op: rop, .. } = a.node(*right) else { panic!() };
        assert_eq!(rop, "AND");
    }

    #[test]
    fn expr_exists_subquery() {
        let (a, e) = parse_expr_str("EXISTS (SELECT 1 FROM t WHERE t.id = u.id)");
        let Expr::Unary { op, expr } = e else { panic!() };
        assert_eq!(op, "EXISTS");
        assert!(matches!(a.node(expr), Expr::Subquery(_)));
    }

    #[test]
    fn expr_unparseable_falls_back_to_raw() {
        let (_a, e) = parse_expr_str("a = = = b ~~~");
        assert!(matches!(e, Expr::Raw(_)));
    }

    #[test]
    fn derived_table_in_from() {
        let s = sel("SELECT x FROM (SELECT a AS x FROM t) d WHERE x > 1");
        let f = s.from.as_ref().unwrap();
        assert!(f.subquery.is_some());
        assert_eq!(f.alias.as_deref(), Some("d"));
    }

    #[test]
    fn distinct_flag() {
        assert!(sel("SELECT DISTINCT a FROM t").distinct);
        assert!(!sel("SELECT a FROM t").distinct);
    }
}
