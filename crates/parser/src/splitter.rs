//! Statement splitter — the fused front door of the analysis pipeline.
//!
//! Splits a SQL script into individual statements on top of the token
//! stream, so that semicolons inside string literals, comments,
//! dollar-quoted bodies, or `BEGIN…END` compound-statement bodies
//! (trigger/procedure/function DDL — see the `block` tracker module for
//! the state machine) never split a statement. MySQL dump `DELIMITER` directives are honoured as
//! script-level directives: the directive line belongs to no statement
//! and switches the active terminator.
//!
//! The production path is **streaming and fused**: [`split_stream`] runs
//! the lexer once and feeds every token straight into per-statement
//! state — span bounds, the 128-bit content hash, and the template
//! fingerprint are all computed *as the bytes are lexed*. No whole-script
//! token buffer is ever built and no token is walked twice; per-statement
//! token vectors exist only for the **unique** texts a consumer actually
//! [materialises](SplitStatement::materialize) for parsing
//! ([`split_deduped`] performs that grouping here, in the splitter).
//! [`split_stream_parallel`] additionally chunks the script at safe
//! statement boundaries (found by a quote/comment/dollar-quote-aware
//! pre-scan) and lexes the chunks on scoped worker threads, merging
//! deterministically — byte-identical output to the sequential pass.
//!
//! The original two-pass splitter ([`split_spanned`]) is kept as the
//! readable reference implementation; property tests pin the fused path
//! to it.

use crate::block::{BlockTracker, SplitAction};
use crate::dialect::Dialect;
use crate::fingerprint::{
    content_hash_bytes, content_hash_spanned, fingerprint_spanned, StreamingFingerprint,
};
use crate::intern::Interner;
use crate::lexer::{lex_into, lex_spans_dialect, SpannedToken, TokenSink};
use crate::token::{Span, Token, TokenKind};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// One raw statement: its tokens (trivia included), overall span, and
/// source text.
#[derive(Debug, Clone)]
pub struct RawStatement {
    /// All tokens of the statement, excluding the terminating semicolon.
    pub tokens: Vec<Token>,
    /// Span covering the statement in the original script.
    pub span: Span,
    /// The statement's source text, sliced from the original script at
    /// materialisation time (trivia is kept inside statements, so the
    /// span is one contiguous slice).
    pub source: Box<str>,
}

impl RawStatement {
    /// The statement's source text — the script slice covered by
    /// [`RawStatement::span`], captured at materialisation (not rebuilt
    /// by concatenating per-token strings).
    pub fn text(&self) -> &str {
        &self.source
    }

    /// Significant (non-trivia) tokens.
    pub fn significant(&self) -> Vec<&Token> {
        self.tokens.iter().filter(|t| !t.is_trivia()).collect()
    }

    /// True if the statement has no significant tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.iter().all(|t| t.is_trivia())
    }
}

/// Split a script into statements. Empty statements (runs of trivia between
/// semicolons) are dropped.
///
/// ```
/// use sqlcheck_parser::splitter::split;
/// let stmts = split("SELECT 1; SELECT ';'; -- done");
/// assert_eq!(stmts.len(), 2);
/// assert_eq!(stmts[1].text().trim(), "SELECT ';'");
/// ```
pub fn split(script: &str) -> Vec<RawStatement> {
    split_dialect(script, Dialect::Generic)
}

/// [`split`] under an explicit [`Dialect`].
pub fn split_dialect(script: &str, dialect: Dialect) -> Vec<RawStatement> {
    split_stream_dialect(script, dialect)
        .into_iter()
        .map(|s| s.materialize_dialect(script, dialect))
        .collect()
}

/// One split-off statement chunk with its fingerprints computed **before
/// any parsing happens**. This is the front door of the parse-once
/// pipeline: chunks are independently parseable (each carries its own
/// token stream), and the two hashes let a consumer group duplicate
/// statement texts and parse each unique text exactly once.
#[derive(Debug, Clone)]
pub struct FingerprintedStatement {
    /// The raw statement chunk (tokens + span).
    pub raw: RawStatement,
    /// Literal-insensitive template fingerprint
    /// ([`crate::fingerprint::fingerprint_of`]).
    pub fingerprint: u64,
    /// Literal-sensitive, span-insensitive 128-bit content hash
    /// ([`crate::fingerprint::content_hash_of`]). Equal hashes identify
    /// statements whose parse trees and annotations are interchangeable.
    pub content_hash: u128,
}

/// Split a script and fingerprint every chunk, without parsing anything.
///
/// ```
/// use sqlcheck_parser::splitter::split_fingerprinted;
/// let chunks = split_fingerprinted("SELECT 1; SELECT 1 ; SELECT 2;");
/// assert_eq!(chunks.len(), 3);
/// // Same text → same content hash; different literal → different hash
/// // but (literals fold) the same template fingerprint.
/// assert_eq!(chunks[0].content_hash, chunks[1].content_hash);
/// assert_ne!(chunks[0].content_hash, chunks[2].content_hash);
/// assert_eq!(chunks[0].fingerprint, chunks[2].fingerprint);
/// ```
pub fn split_fingerprinted(script: &str) -> Vec<FingerprintedStatement> {
    split_stream(script)
        .into_iter()
        .map(|s| FingerprintedStatement {
            fingerprint: s.fingerprint,
            content_hash: s.content_hash,
            raw: s.materialize(script),
        })
        .collect()
}

/// One statement as emitted by the fused streaming splitter: its span and
/// both hashes, computed in the same pass that lexed the bytes — **no
/// tokens**. Token vectors are built only when a consumer
/// [materialises](SplitStatement::materialize) a unique text for parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitStatement {
    /// Span covering the statement (leading/trailing trivia trimmed) in
    /// the original script.
    pub span: Span,
    /// Literal-sensitive 128-bit content hash
    /// ([`crate::fingerprint::content_hash_of`] of the statement's
    /// trimmed token stream).
    pub content_hash: u128,
    /// Literal-insensitive template fingerprint
    /// ([`crate::fingerprint::fingerprint_of`] of the same stream).
    pub fingerprint: u64,
}

impl SplitStatement {
    /// Build the statement's owned token stream by re-lexing its span
    /// (the span starts at a token boundary, so the re-lex reproduces the
    /// original tokens exactly; spans stay script-absolute).
    pub fn materialize(&self, script: &str) -> RawStatement {
        materialize_span(script, self.span)
    }

    /// [`SplitStatement::materialize`] under an explicit [`Dialect`] —
    /// must match the dialect the statement was split under, so the
    /// re-lex reproduces the original tokens.
    pub fn materialize_dialect(&self, script: &str, dialect: Dialect) -> RawStatement {
        materialize_span_dialect(script, self.span, dialect)
    }
}

/// Materialise the statement covering `span` of `script`: re-lex the
/// slice into owned tokens (script-absolute spans) and capture the source
/// text. `span` must be a statement span produced by this module's
/// splitters — it begins and ends on significant-token boundaries.
pub fn materialize_span(script: &str, span: Span) -> RawStatement {
    materialize_span_dialect(script, span, Dialect::Generic)
}

/// [`materialize_span`] under an explicit [`Dialect`].
pub fn materialize_span_dialect(script: &str, span: Span, dialect: Dialect) -> RawStatement {
    let slice = &script[span.start..span.end];
    let mut sink = MaterializeSink { src: slice, base: span.start, out: Vec::new() };
    lex_into(slice, dialect, &mut sink);
    RawStatement { tokens: sink.out, span, source: slice.into() }
}

/// Sink building owned tokens with spans rebased to the original script.
struct MaterializeSink<'a> {
    src: &'a str,
    base: usize,
    out: Vec<Token>,
}

impl TokenSink for MaterializeSink<'_> {
    #[inline]
    fn token(&mut self, kind: TokenKind, start: usize, end: usize) {
        self.out.push(Token::new(
            kind,
            &self.src[start..end],
            Span::new(self.base + start, self.base + end),
        ));
    }
}

/// Pass-through hasher for keys that are already uniform hashes (the
/// memo map below keys by the 128-bit content hash).
#[derive(Default)]
struct HashIdentity(u64);

impl Hasher for HashIdentity {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Called once with the u128 key's native bytes; the low half is
        // already a full-avalanche Murmur lane.
        let mut b = [0u8; 8];
        let n = bytes.len().min(8);
        b[..n].copy_from_slice(&bytes[..n]);
        self.0 = u64::from_le_bytes(b);
    }
    fn write_u128(&mut self, i: u128) {
        self.0 = i as u64;
    }
}

/// Eager single-statement fingerprint sink: classifies, folds, and
/// hashes in one lex pass over a statement slice. This is where the
/// fingerprint work actually happens — once per **unique** statement
/// text (the fused splitter's memo-miss path and the dedup intake's
/// per-unique pass both land here). Word tokens resolve through the
/// per-script [`Interner`]: the keyword decision is one hash-and-probe,
/// and the fingerprint commits the symbol's stored prefolded bytes, so
/// classification and case folding run once per unique *word*.
struct FingerprintSink<'a, 'i> {
    src: &'a str,
    interner: &'i mut Interner,
    fp: StreamingFingerprint,
}

impl TokenSink for FingerprintSink<'_, '_> {
    #[inline]
    fn token(&mut self, kind: TokenKind, start: usize, end: usize) {
        if !matches!(kind, TokenKind::Whitespace | TokenKind::Comment) {
            self.fp.push(kind, &self.src[start..end]);
        }
    }

    #[inline]
    fn word(&mut self, text: &str, _start: usize, _end: usize) {
        let sym = self.interner.intern(text);
        self.fp.push_folded_word(self.interner.folded(sym).as_bytes());
    }
}

/// Template fingerprint of one statement slice (a trimmed statement span:
/// starts and ends on significant tokens). Identical to
/// [`fingerprint_spanned`] over the statement's tokens: any `;` inside
/// the slice (compound bodies, custom-delimiter content) is ordinary
/// statement content to the fingerprint's own trailing-semicolon fold.
fn fingerprint_slice(slice: &str, interner: &mut Interner, dialect: Dialect) -> u64 {
    let mut sink =
        FingerprintSink { src: slice, interner, fp: StreamingFingerprint::new() };
    lex_into(slice, dialect, &mut sink);
    sink.fp.finish()
}

/// Probes after which the fingerprint memo must have earned its keep:
/// if fewer than 1 in [`MEMO_MIN_HIT_SHIFT`] statements were repeats, the
/// workload is duplicate-poor and the memo is dropped (misses keep
/// re-fingerprinting; output is unchanged either way).
const MEMO_PROBATION: u32 = 4096;
/// `hits << MEMO_MIN_HIT_SHIFT >= probes` keeps the memo alive.
const MEMO_MIN_HIT_SHIFT: u32 = 3;

/// The fused streaming splitter state: receives the lexer's token stream
/// and tracks the current statement's span bounds; the content hash and
/// template fingerprint are computed at statement flush from the span's
/// slice.
///
/// The fingerprint is **memoized by content hash**: real workloads
/// re-issue the same statement texts constantly, equal bytes have equal
/// templates, and the content hash — computed from the span slice at
/// flush either way — already identifies equal bytes (the 128-bit hash
/// is the pipeline's interchangeability identity, see
/// [`crate::fingerprint`]). Each unique text is classified and
/// fingerprinted exactly once per pass ([`fingerprint_slice`]); repeats
/// cost one map probe. Keyword classification is therefore skipped
/// entirely in the streaming pass (`CLASSIFY_WORDS = false`) — the per
/// token hot path is pure boundary tracking, and runs at the lexer's
/// unclassified speed. A short probation window drops the memo on
/// duplicate-poor workloads so they never pay for a table they cannot
/// hit.
struct SplitSink<'a> {
    chunk: &'a str,
    bytes: &'a [u8],
    /// Absolute offset of `chunk` within the original script.
    offset: usize,
    out: Vec<SplitStatement>,
    /// A statement is open (at least one significant token seen).
    started: bool,
    /// Absolute span bounds of the open statement.
    start: usize,
    end: usize,
    /// Per-pass word interner for the fingerprint path.
    interner: Interner,
    /// `content_hash → fingerprint` for statements flushed by this sink.
    memo: HashMap<u128, u64, BuildHasherDefault<HashIdentity>>,
    /// Memo hit statistics for the probation check.
    probes: u32,
    hits: u32,
    /// Cleared when probation finds the workload duplicate-poor.
    memo_on: bool,
    /// Statement-boundary state machine.
    tracker: BlockTracker,
    /// Dialect the pass lexes and fingerprints under.
    dialect: Dialect,
}

impl<'a> SplitSink<'a> {
    fn new(chunk: &'a str, offset: usize, dialect: Dialect) -> Self {
        SplitSink {
            chunk,
            bytes: chunk.as_bytes(),
            offset,
            out: Vec::new(),
            started: false,
            start: 0,
            end: 0,
            interner: Interner::new(),
            memo: HashMap::default(),
            probes: 0,
            hits: 0,
            memo_on: true,
            tracker: BlockTracker::with_dialect(dialect),
            dialect,
        }
    }

    /// Close the open statement, if any (called at `;` and end-of-input).
    fn flush(&mut self) {
        if !self.started {
            return;
        }
        self.started = false;
        let slice = &self.chunk[self.start - self.offset..self.end - self.offset];
        let content_hash = content_hash_bytes(slice.as_bytes());
        let fingerprint = if self.memo_on {
            self.probes += 1;
            if let Some(&fp) = self.memo.get(&content_hash) {
                self.hits += 1;
                fp
            } else {
                let fp = fingerprint_slice(slice, &mut self.interner, self.dialect);
                self.memo.insert(content_hash, fp);
                if self.probes == MEMO_PROBATION
                    && (self.hits << MEMO_MIN_HIT_SHIFT) < self.probes
                {
                    self.memo_on = false;
                    self.memo = HashMap::default();
                }
                fp
            }
        } else {
            fingerprint_slice(slice, &mut self.interner, self.dialect)
        };
        self.out.push(SplitStatement {
            span: Span::new(self.start, self.end),
            content_hash,
            fingerprint,
        });
    }

    fn finish(mut self) -> Vec<SplitStatement> {
        self.flush();
        self.out
    }
}

impl TokenSink for SplitSink<'_> {
    /// Word classification happens on the fingerprint path only — see
    /// the type docs. The streaming pass runs at unclassified lex speed.
    const CLASSIFY_WORDS: bool = false;

    #[inline]
    fn token(&mut self, kind: TokenKind, start: usize, end: usize) {
        if matches!(kind, TokenKind::Whitespace | TokenKind::Comment) {
            // Trivia never moves the span's significant end, and the
            // content hash is taken from the final span slice at flush —
            // interior trivia is covered by the slice, trailing trivia
            // falls outside it. Nothing to do per token.
            return;
        }
        // Fast path mirrors SpanOnlySink's: plain mid-statement tokens
        // skip the tracker call entirely.
        if self.tracker.is_fast() {
            if kind == TokenKind::Punct && end - start == 1 && self.bytes[start] == b';' {
                self.tracker.fast_terminator();
                self.flush();
                return;
            }
        } else {
            match self.tracker.offer(self.bytes, kind, start, end) {
                SplitAction::Token => {}
                SplitAction::Terminator => {
                    self.flush();
                    return;
                }
                SplitAction::Directive => return,
            }
        }
        if !self.started {
            self.started = true;
            self.start = self.offset + start;
        }
        self.end = self.offset + end;
    }
}

/// Fused single-pass split: lex, split, content-hash, and fingerprint the
/// script in one streaming pass. Emits the same statements (spans,
/// hashes, fingerprints) as the two-pass [`split_spanned`] reference,
/// without ever materialising a token stream.
pub fn split_stream(script: &str) -> Vec<SplitStatement> {
    split_stream_dialect(script, Dialect::Generic)
}

/// [`split_stream`] under an explicit [`Dialect`].
pub fn split_stream_dialect(script: &str, dialect: Dialect) -> Vec<SplitStatement> {
    split_range(script, 0, script.len(), dialect)
}

fn split_range(script: &str, start: usize, end: usize, dialect: Dialect) -> Vec<SplitStatement> {
    let mut sink = SplitSink::new(&script[start..end], start, dialect);
    lex_into(&script[start..end], dialect, &mut sink);
    sink.finish()
}

/// Spans-only statement boundary sink — the cheapest possible split pass,
/// used by [`split_deduped`]'s byte-level grouping. Statement spans
/// depend only on trivia-vs-significant classification and the block
/// tracker's terminator decisions, so keyword lookup is skipped entirely
/// and nothing is hashed (the tracker compares raw word bytes itself).
struct SpanOnlySink<'a> {
    bytes: &'a [u8],
    offset: usize,
    out: Vec<Span>,
    started: bool,
    start: usize,
    end: usize,
    tracker: BlockTracker,
}

impl SpanOnlySink<'_> {
    fn flush(&mut self) {
        if self.started {
            self.started = false;
            self.out.push(Span::new(self.start, self.end));
        }
    }

    /// Tracked token handling — out of line so the fast path in
    /// [`TokenSink::token`] stays small enough to inline at every lexer
    /// emit site (the sink body is monomorphised into the lexer loop;
    /// bloating it regresses the whole scan).
    #[inline(never)]
    fn token_slow(&mut self, kind: TokenKind, start: usize, end: usize) {
        match self.tracker.offer(self.bytes, kind, start, end) {
            SplitAction::Token => {
                if !self.started {
                    self.started = true;
                    self.start = self.offset + start;
                }
                self.end = self.offset + end;
            }
            SplitAction::Terminator => self.flush(),
            SplitAction::Directive => {}
        }
    }
}

impl TokenSink for SpanOnlySink<'_> {
    const CLASSIFY_WORDS: bool = false;

    #[inline]
    fn token(&mut self, kind: TokenKind, start: usize, end: usize) {
        if matches!(kind, TokenKind::Whitespace | TokenKind::Comment) {
            return;
        }
        // Fast path (plain mid-statement state): only `;` matters, and
        // ordinary tokens need no tracker interaction at all.
        if self.tracker.is_fast() {
            if kind == TokenKind::Punct && end - start == 1 && self.bytes[start] == b';' {
                self.tracker.fast_terminator();
                self.flush();
            } else {
                if !self.started {
                    self.started = true;
                    self.start = self.offset + start;
                }
                self.end = self.offset + end;
            }
            return;
        }
        self.token_slow(kind, start, end);
    }
}

/// Speculative spans-only sink: the pre-tracker scan (every top-level
/// `;` terminates) plus a watch for the marker words that could make
/// block tracking matter ([`crate::block`]'s `may_need_tracking`). On a hit it
/// aborts (via [`TokenSink::done`]) and the caller re-scans with the
/// tracked [`SpanOnlySink`]. Plain workloads — the overwhelmingly common
/// case — thus pay **zero** per-token tracking cost.
struct SpeculativeSpanSink<'a> {
    bytes: &'a [u8],
    offset: usize,
    out: Vec<Span>,
    started: bool,
    start: usize,
    end: usize,
    needs_tracking: bool,
}

impl TokenSink for SpeculativeSpanSink<'_> {
    const CLASSIFY_WORDS: bool = false;

    #[inline]
    fn token(&mut self, kind: TokenKind, start: usize, end: usize) {
        if matches!(kind, TokenKind::Whitespace | TokenKind::Comment) {
            return;
        }
        if kind == TokenKind::Punct && end - start == 1 && self.bytes[start] == b';' {
            if self.started {
                self.started = false;
                self.out.push(Span::new(self.start, self.end));
            }
            return;
        }
        if kind == TokenKind::Ident && crate::block::may_need_tracking(&self.bytes[start..end])
        {
            self.needs_tracking = true;
            return;
        }
        if !self.started {
            self.started = true;
            self.start = self.offset + start;
        }
        self.end = self.offset + end;
    }

    #[inline]
    fn done(&self) -> bool {
        self.needs_tracking
    }
}

/// Spans-only split of a range, plus whether a `DELIMITER` directive was
/// processed in the range. The flag is a property of the script bytes
/// (directives are recognised at statement starts, and chunk boundaries
/// are statement boundaries), so OR-ing it over any chunking of the
/// script yields the same answer — deterministic across thread counts.
fn split_spans_range_diag(
    script: &str,
    start: usize,
    end: usize,
    dialect: Dialect,
) -> (Vec<Span>, bool) {
    let chunk = &script[start..end];
    // First pass: untracked, aborting on the first word that could make
    // block tracking matter. Completing it means no DELIMITER word
    // exists in the range at all.
    let mut fast = SpeculativeSpanSink {
        bytes: chunk.as_bytes(),
        offset: start,
        out: Vec::new(),
        started: false,
        start: 0,
        end: 0,
        needs_tracking: false,
    };
    lex_into(chunk, dialect, &mut fast);
    if !fast.needs_tracking {
        if fast.started {
            fast.out.push(Span::new(fast.start, fast.end));
        }
        return (fast.out, false);
    }
    // Trigger/procedure/function/DELIMITER/ATOMIC vocabulary present:
    // re-scan with the full block tracker.
    let mut sink = SpanOnlySink {
        bytes: chunk.as_bytes(),
        offset: start,
        out: Vec::new(),
        started: false,
        start: 0,
        end: 0,
        tracker: BlockTracker::with_dialect(dialect),
    };
    lex_into(chunk, dialect, &mut sink);
    if sink.started {
        sink.out.push(Span::new(sink.start, sink.end));
    }
    let saw_directive = sink.tracker.saw_directive();
    (sink.out, saw_directive)
}

/// Lex + hash the single statement covering `span` (a trimmed statement
/// span: starts and ends on significant tokens). The content hash covers
/// the span's raw bytes; the fingerprint re-lexes the slice — a compound
/// statement's body semicolons (or, under a custom `DELIMITER`, embedded
/// top-level-looking `;`) are ordinary statement content, exactly as the
/// tracked pass treated them.
fn hash_span(
    script: &str,
    span: Span,
    interner: &mut Interner,
    dialect: Dialect,
) -> SplitStatement {
    let slice = &script[span.start..span.end];
    SplitStatement {
        span,
        content_hash: content_hash_bytes(slice.as_bytes()),
        fingerprint: fingerprint_slice(slice, interner, dialect),
    }
}

/// Pre-scan sink that records safe chunk boundaries: the end offset of
/// the first top-level statement terminator at or past each target
/// offset. "Top-level" is decided by the lexer (`;` consumed inside
/// strings, comments, quoted identifiers, dollar-quoted bodies, or
/// DB-API parameters never reaches the sink) **and** by the shared
/// [`BlockTracker`] (`;` inside a `BEGIN…END` body is not a terminator),
/// so the boundaries resynchronise exactly where the sequential splitter
/// ends a statement. Keyword classification is skipped
/// (`CLASSIFY_WORDS = false`) — the tracker compares word bytes itself.
///
/// A `DELIMITER` directive makes the sink bail (`bail = true`): the
/// active custom delimiter would have to be threaded into every later
/// chunk, so such scripts are split sequentially instead — same output,
/// no chunking.
struct BoundarySink<'a> {
    bytes: &'a [u8],
    targets: &'a [usize],
    next: usize,
    out: Vec<usize>,
    tracker: BlockTracker,
    bail: bool,
}

impl TokenSink for BoundarySink<'_> {
    const CLASSIFY_WORDS: bool = false;

    #[inline]
    fn token(&mut self, kind: TokenKind, start: usize, end: usize) {
        if matches!(kind, TokenKind::Whitespace | TokenKind::Comment) {
            return;
        }
        let terminator = if self.tracker.is_fast() {
            if kind == TokenKind::Punct && end - start == 1 && self.bytes[start] == b';' {
                self.tracker.fast_terminator();
                true
            } else {
                return;
            }
        } else {
            let action = self.tracker.offer(self.bytes, kind, start, end);
            if self.tracker.saw_directive() {
                self.bail = true;
                return;
            }
            action == SplitAction::Terminator
        };
        if terminator
            && self.next < self.targets.len()
            && end >= self.targets[self.next]
        {
            self.out.push(end);
            while self.next < self.targets.len() && self.targets[self.next] <= end {
                self.next += 1;
            }
        }
    }

    #[inline]
    fn done(&self) -> bool {
        self.bail || self.next >= self.targets.len()
    }
}

/// Floor on the bytes a parallel split chunk should carry: below this,
/// thread spawn + join overhead outweighs the lexing saved, so the
/// effective chunk count is clamped to `len / MIN_CHUNK_BYTES`. The
/// clamp is byte-identity-safe — it only changes how many boundary
/// targets the pre-scan aims for, never where statements end.
const MIN_CHUNK_BYTES: usize = 16 * 1024;

/// Chunk the script into at most `threads` ranges that all start right
/// after a top-level `;` (or at 0) — every range is a whole number of
/// statements (never the middle of a `BEGIN…END` body), so per-range
/// splits concatenate to the sequential result. The range count is
/// additionally size-clamped so every chunk carries at least
/// [`MIN_CHUNK_BYTES`] (oversubscribing tiny scripts only adds spawn
/// overhead). Scripts containing a `DELIMITER` directive fall back to
/// one sequential range.
fn chunk_ranges(script: &str, threads: usize, dialect: Dialect) -> Vec<(usize, usize)> {
    let len = script.len();
    let threads = threads.min(len / MIN_CHUNK_BYTES);
    if threads <= 1 || len == 0 {
        return vec![(0, len)];
    }
    let targets: Vec<usize> =
        (1..threads).map(|i| (len / threads).saturating_mul(i)).filter(|&t| t > 0).collect();
    if targets.is_empty() {
        return vec![(0, len)];
    }
    let mut sink = BoundarySink {
        bytes: script.as_bytes(),
        targets: &targets,
        next: 0,
        out: Vec::new(),
        tracker: BlockTracker::with_dialect(dialect),
        bail: false,
    };
    lex_into(script, dialect, &mut sink);
    if sink.bail {
        return vec![(0, len)];
    }
    let mut ranges = Vec::with_capacity(sink.out.len() + 1);
    let mut start = 0usize;
    for b in sink.out {
        if b > start && b < len {
            ranges.push((start, b));
            start = b;
        }
    }
    ranges.push((start, len));
    ranges
}

/// [`split_stream`] across `threads` scoped worker threads: a pre-scan
/// finds safe chunk boundaries (statement terminators at top level), the
/// chunks are lexed+hashed independently, and the per-chunk statements
/// are concatenated in chunk order. Output is byte-identical to
/// [`split_stream`] for every `threads` value. With the `parallel`
/// feature disabled (or `threads <= 1`) the chunks are processed
/// sequentially — same output, no thread spawns.
pub fn split_stream_parallel(script: &str, threads: usize) -> Vec<SplitStatement> {
    split_stream_parallel_dialect(script, threads, Dialect::Generic)
}

/// [`split_stream_parallel`] under an explicit [`Dialect`]. Scripts whose
/// dialect does not honour `DELIMITER` directives (e.g. Postgres) never
/// trigger the sequential fallback, even when the word appears in them.
pub fn split_stream_parallel_dialect(
    script: &str,
    threads: usize,
    dialect: Dialect,
) -> Vec<SplitStatement> {
    let ranges = chunk_ranges(script, threads, dialect);
    if ranges.len() <= 1 {
        return split_stream_dialect(script, dialect);
    }
    run_chunks(script, &ranges, |s, a, b| split_range(s, a, b, dialect))
}

#[cfg(feature = "parallel")]
fn run_chunks<T, F>(script: &str, ranges: &[(usize, usize)], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&str, usize, usize) -> Vec<T> + Sync,
{
    let chunks: Vec<Vec<T>> = std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(a, b)| (s.spawn(move || f(script, a, b)), a, b))
            .collect();
        handles
            .into_iter()
            // A worker that panicked has its range re-split on the
            // calling thread: if the panic was transient (allocation
            // pressure) the result is still produced, and if it is
            // deterministic it propagates here exactly as the sequential
            // path would — never an opaque join `.expect`.
            .map(|(h, a, b)| h.join().unwrap_or_else(|_| f(script, a, b)))
            .collect()
    });
    chunks.into_iter().flatten().collect()
}

#[cfg(not(feature = "parallel"))]
fn run_chunks<T, F>(script: &str, ranges: &[(usize, usize)], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&str, usize, usize) -> Vec<T> + Sync,
{
    ranges.iter().flat_map(|&(a, b)| f(script, a, b)).collect()
}

/// A script split and deduplicated in one step: every occurrence in
/// script order, referencing its unique statement text.
#[derive(Debug, Clone, Default)]
pub struct DedupedSplit {
    /// Unique statement texts, in first-occurrence order. Each carries
    /// the span of its **first** occurrence.
    pub uniques: Vec<SplitStatement>,
    /// One `(unique_index, span)` entry per statement occurrence, in
    /// script order.
    pub occurrences: Vec<(u32, Span)>,
    /// The script contains a `DELIMITER` directive — chunk-parallel
    /// splitting fell back to (or would fall back to) a single
    /// sequential pass. Deterministic across thread counts: it is a
    /// property of the script, not of the chunking.
    pub saw_delimiter_directive: bool,
}

/// Fast non-cryptographic hasher for the dedup map's `&str` keys
/// (FxHash-style word-folding). Collisions only cost a key comparison —
/// the map's equality check is the exact statement bytes.
#[derive(Default)]
struct StrFold(u64);

impl Hasher for StrFold {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            h = (h.rotate_left(5) ^ w).wrapping_mul(K);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            h = (h.rotate_left(5) ^ u64::from_le_bytes(tail)).wrapping_mul(K);
        }
        self.0 = h;
    }
    fn write_u8(&mut self, i: u8) {
        // `str`'s Hash impl appends a 0xFF length terminator.
        self.0 = (self.0.rotate_left(5) ^ i as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
    fn write_usize(&mut self, i: usize) {
        self.0 = (self.0.rotate_left(5) ^ i as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

/// Split the script and group duplicate statement texts, hashing each
/// **unique** text exactly once.
///
/// Duplicate detection needs no content hash at all: two statements are
/// duplicates iff their trimmed source bytes are equal (equal bytes lex
/// to equal tokens, hence equal hashes). So the per-occurrence pass is
/// the cheapest one possible — a spans-only boundary scan (no hashing,
/// no keyword classification), chunk-parallel for large scripts — and
/// the fused lex+hash pass runs only once per unique text. Duplicates
/// cost one map probe (exact byte comparison on hit) and carry nothing
/// but their span.
pub fn split_deduped(script: &str, threads: usize) -> DedupedSplit {
    split_deduped_dialect(script, threads, Dialect::Generic)
}

/// [`split_deduped`] under an explicit [`Dialect`].
pub fn split_deduped_dialect(script: &str, threads: usize, dialect: Dialect) -> DedupedSplit {
    let ranges = chunk_ranges(script, threads, dialect);
    let saw_directive = std::sync::atomic::AtomicBool::new(false);
    let spans: Vec<Span> = if ranges.len() <= 1 {
        let (spans, saw) = split_spans_range_diag(script, 0, script.len(), dialect);
        saw_directive.store(saw, std::sync::atomic::Ordering::Relaxed);
        spans
    } else {
        run_chunks(script, &ranges, |s, a, b| {
            let (spans, saw) = split_spans_range_diag(s, a, b, dialect);
            if saw {
                saw_directive.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            spans
        })
    };
    let mut uniques: Vec<SplitStatement> = Vec::new();
    let mut occurrences: Vec<(u32, Span)> = Vec::with_capacity(spans.len());
    let mut slots: HashMap<&str, u32, BuildHasherDefault<StrFold>> =
        HashMap::with_capacity_and_hasher(spans.len().min(1024), Default::default());
    // One interner for the whole script: unique statements share most of
    // their vocabulary, so word classification amortises across them.
    let mut interner = Interner::new();
    for span in spans {
        let slot = match slots.entry(&script[span.start..span.end]) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let slot = uniques.len() as u32;
                v.insert(slot);
                uniques.push(hash_span(script, span, &mut interner, dialect));
                slot
            }
        };
        occurrences.push((slot, span));
    }
    DedupedSplit {
        uniques,
        occurrences,
        saw_delimiter_directive: saw_directive.into_inner(),
    }
}

/// One split-off statement at the span level: its span-tokens (trivia
/// trimmed at both ends, kept inside) and its content hash — computed
/// **before parsing and before any token text is allocated**.
///
/// This is the legacy two-pass representation: [`split_spanned`] keeps a
/// whole-script token buffer and re-walks each statement's tokens to
/// hash. The production path is the fused [`split_stream`], which emits
/// identical spans/hashes without either; `split_spanned` remains as the
/// readable reference implementation that the property tests pin the
/// fused splitter against.
#[derive(Debug, Clone)]
pub struct SpannedStatement {
    /// Span-level tokens of the statement (no owned text).
    pub tokens: Vec<SpannedToken>,
    /// Span covering the statement in the original script.
    pub span: Span,
    /// Literal-sensitive 128-bit content hash
    /// ([`crate::fingerprint::content_hash_spanned`]).
    pub content_hash: u128,
}

impl SpannedStatement {
    /// Literal-insensitive template fingerprint, computed from the spans
    /// (no parsing, no allocation).
    pub fn fingerprint(&self, script: &str) -> u64 {
        fingerprint_spanned(script, &self.tokens)
    }

    /// Build the equivalent owned [`RawStatement`].
    pub fn materialize(&self, script: &str) -> RawStatement {
        RawStatement {
            tokens: self.tokens.iter().map(|t| t.materialize(script)).collect(),
            span: self.span,
            source: script[self.span.start..self.span.end].into(),
        }
    }
}

/// Split a script into span-level statements, computing each chunk's
/// content hash on the way — the **legacy two-pass reference** for the
/// fused [`split_stream`] (lex everything into a buffer, then slice into
/// statements and hash each slice). Kept for tests and comparison
/// benchmarks; production consumers use [`split_stream`] /
/// [`split_deduped`].
pub fn split_spanned(script: &str) -> Vec<SpannedStatement> {
    split_spanned_dialect(script, Dialect::Generic)
}

/// [`split_spanned`] under an explicit [`Dialect`] — the two-pass
/// reference the per-dialect property tests pin the fused path against.
pub fn split_spanned_dialect(script: &str, dialect: Dialect) -> Vec<SpannedStatement> {
    let tokens = lex_spans_dialect(script, dialect);
    let bytes = script.as_bytes();
    let mut tracker = BlockTracker::with_dialect(dialect);
    let mut stmts = Vec::new();
    let mut start = 0usize;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.is_trivia() {
            continue;
        }
        match tracker.offer(bytes, tok.kind, tok.span.start, tok.span.end) {
            SplitAction::Token => {}
            SplitAction::Terminator | SplitAction::Directive => {
                // Directive tokens (a `DELIMITER` line, or the trailing
                // bytes of a multi-byte terminator) sit between
                // statements, so the slice before them holds trivia at
                // most and `push_spanned` drops it.
                push_spanned(script, &mut stmts, &tokens[start..i]);
                start = i + 1;
            }
        }
    }
    push_spanned(script, &mut stmts, &tokens[start..]);
    stmts
}

fn push_spanned(script: &str, out: &mut Vec<SpannedStatement>, tokens: &[SpannedToken]) {
    // Trim leading/trailing trivia but keep interior trivia for lossless text.
    let Some(first) = tokens.iter().position(|t| !t.is_trivia()) else { return };
    let last = tokens.iter().rposition(|t| !t.is_trivia()).unwrap();
    let trimmed = &tokens[first..=last];
    let span = trimmed[0].span.merge(trimmed[trimmed.len() - 1].span);
    out.push(SpannedStatement {
        tokens: trimmed.to_vec(),
        span,
        content_hash: content_hash_spanned(script, trimmed),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_semicolons() {
        let stmts = split("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t");
        assert_eq!(stmts.len(), 3);
        assert!(stmts[0].text().starts_with("CREATE"));
        assert!(stmts[2].text().starts_with("SELECT"));
    }

    #[test]
    fn semicolon_in_string_is_not_a_split() {
        let stmts = split("SELECT 'a;b' FROM t; SELECT 2");
        assert_eq!(stmts.len(), 2);
        assert!(stmts[0].text().contains("'a;b'"));
    }

    #[test]
    fn semicolon_in_comment_is_not_a_split() {
        let stmts = split("SELECT 1 -- one; two\n; SELECT 2");
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn empty_statements_dropped() {
        let stmts = split(";;  ; SELECT 1; ;");
        assert_eq!(stmts.len(), 1);
    }

    #[test]
    fn whole_script_without_semicolon() {
        let stmts = split("SELECT 1");
        assert_eq!(stmts.len(), 1);
        assert_eq!(stmts[0].text(), "SELECT 1");
    }

    #[test]
    fn text_is_a_script_slice_not_a_token_concat() {
        let script = "SELECT a /* interior ; trivia */ , b FROM t ; UPDATE t SET a = 1";
        for s in split(script) {
            assert_eq!(s.text(), &script[s.span.start..s.span.end]);
            let concat: String = s.tokens.iter().map(|t| t.text.as_str()).collect();
            assert_eq!(s.text(), concat, "slice must equal the token concatenation");
        }
    }

    #[test]
    fn fingerprinted_chunks_match_post_parse_hashes() {
        // The pre-parse hashes must agree with the hashes computed from
        // the parsed statement — consumers rely on that to skip parsing.
        let script = "SELECT a FROM t WHERE a = 1;\
                      select a from t where a = 2;\
                      INSERT INTO t VALUES (1, 'x');";
        let chunks = split_fingerprinted(script);
        assert_eq!(chunks.len(), 3);
        for c in &chunks {
            let parsed = crate::parser::parse_statement(&c.raw);
            assert_eq!(c.fingerprint, parsed.fingerprint());
            assert_eq!(c.content_hash, parsed.content_hash());
        }
        // Literal-only variants share a template but not a content hash.
        assert_eq!(chunks[0].fingerprint, chunks[1].fingerprint);
        assert_ne!(chunks[0].content_hash, chunks[1].content_hash);
    }

    #[test]
    fn spans_index_into_original() {
        let script = "SELECT a FROM t;  UPDATE t SET a = 1";
        let stmts = split(script);
        assert_eq!(&script[stmts[1].span.start..stmts[1].span.end], "UPDATE t SET a = 1");
    }

    /// Scripts stressing every construct that can hide a `;` or end a
    /// statement early.
    fn nasty_scripts() -> Vec<&'static str> {
        vec![
            "SELECT 'a;b'; SELECT 2; -- tail ; comment\nSELECT 3",
            "SELECT 1 /* c1 ; /* nested ; */ still */; SELECT ';';;",
            "$tag$body; with ; semis$tag$; SELECT [br;acket] FROM t;",
            "SELECT $$;$$ , \";\" ; UPDATE \"u;u\" SET `a;a` = 1",
            "INSERT INTO t VALUES (%(na;me)s, :p1, $1, ?);",
            "SELECT 'unterminated ; string",
            "$unterminated$ ; ; ;",
            "  ; ;\t;\n ;",
            "",
            "SELECT a \";\" ; SELECT 1e; SELECT 1.5e+3;",
            "SELECT * FROM t WHERE c LIKE '%;%' ESCAPE '\\'; DELETE FROM t",
            // Compound statements: body semicolons are not terminators.
            "CREATE TRIGGER trg AFTER INSERT ON t FOR EACH ROW \
             BEGIN UPDATE u SET a = 1; DELETE FROM v; END; SELECT 1;",
            "CREATE PROCEDURE p() BEGIN IF a THEN SELECT 1; END IF; \
             SELECT CASE WHEN b THEN 'x;y' ELSE 2 END; END; SELECT 2;",
            // Decoys that must NOT open a block.
            "BEGIN; SELECT 1; COMMIT; BEGIN TRANSACTION; SELECT 2;",
            "CREATE TABLE t (begin INT, end INT); SELECT end FROM t;",
            "SELECT CASE WHEN a = 1 THEN 'x;y' ELSE b END FROM t; SELECT 2;",
            // Tolerant degradation: orphan END, unterminated BEGIN.
            "END; SELECT 1; END IF;",
            "CREATE TRIGGER t1 BEFORE UPDATE ON x FOR EACH ROW BEGIN SELECT 1;",
            // DELIMITER directives (mysqldump style).
            "DELIMITER ;;\nCREATE TRIGGER tr BEFORE INSERT ON t FOR EACH ROW \
             BEGIN SET @a = 1; END ;;\nDELIMITER ;\nSELECT 1;",
            "DELIMITER //\nSELECT 1; SELECT 2 //\nDELIMITER ;\nSELECT 3;",
            "DELIMITER GO\nSELECT agony FROM t GO\nDELIMITER ;\nSELECT 1;",
            "DELIMITER ;;",
        ]
    }

    #[test]
    fn fused_split_matches_legacy_reference() {
        for script in nasty_scripts() {
            let fused = split_stream(script);
            let legacy = split_spanned(script);
            assert_eq!(fused.len(), legacy.len(), "statement count on {script:?}");
            for (f, l) in fused.iter().zip(&legacy) {
                assert_eq!(f.span, l.span, "span on {script:?}");
                assert_eq!(f.content_hash, l.content_hash, "content hash on {script:?}");
                assert_eq!(f.fingerprint, l.fingerprint(script), "fingerprint on {script:?}");
                // Re-lex materialisation must reproduce the legacy tokens
                // exactly (kinds, texts, script-absolute spans).
                let fm = f.materialize(script);
                let lm = l.materialize(script);
                assert_eq!(fm.tokens, lm.tokens, "tokens on {script:?}");
                assert_eq!(fm.span, lm.span);
            }
        }
    }

    #[test]
    fn chunked_split_is_identical_across_thread_counts() {
        let mut big = String::new();
        for (i, s) in nasty_scripts().iter().cycle().take(200).enumerate() {
            big.push_str(s);
            big.push_str(&format!("; SELECT {i} FROM filler;\n"));
        }
        let sequential = split_stream(&big);
        for threads in [1, 2, 3, 5, 13] {
            assert_eq!(
                split_stream_parallel(&big, threads),
                sequential,
                "chunked split diverged at {threads} thread(s)"
            );
        }
    }

    #[test]
    fn deduped_split_reconstructs_the_statement_sequence() {
        let script = "SELECT 1; SELECT 2; SELECT 1; SELECT 1; SELECT 2;";
        let d = split_deduped(script, 1);
        assert_eq!(d.uniques.len(), 2);
        assert_eq!(d.occurrences.len(), 5);
        let full = split_stream(script);
        for ((slot, span), s) in d.occurrences.iter().zip(&full) {
            assert_eq!(*span, s.span, "occurrence keeps its own span");
            assert_eq!(d.uniques[*slot as usize].content_hash, s.content_hash);
        }
        // Uniques carry their first occurrence's span.
        assert_eq!(d.uniques[0].span, full[0].span);
        assert_eq!(d.uniques[1].span, full[1].span);
    }

    #[test]
    fn trigger_body_survives_splitting() {
        // The ISSUE 5 repro: the trigger is ONE statement, the trailing
        // SELECT another — the body semicolons must not split.
        let script = "CREATE TRIGGER trg AFTER INSERT ON t FOR EACH ROW \
                      BEGIN UPDATE u SET a = 1; DELETE FROM v; END; SELECT 1;";
        let stmts = split(script);
        assert_eq!(stmts.len(), 2, "{stmts:?}");
        assert!(stmts[0].text().starts_with("CREATE TRIGGER"));
        assert!(stmts[0].text().ends_with("END"));
        assert_eq!(stmts[1].text(), "SELECT 1");
    }

    #[test]
    fn delimiter_directive_is_honoured_and_excluded() {
        let script = "DELIMITER ;;\n\
                      CREATE TRIGGER tr BEFORE INSERT ON t FOR EACH ROW\n\
                      BEGIN\n  SET @c = @c + 1;\nEND ;;\n\
                      DELIMITER ;\n\
                      SELECT 1;";
        let stmts = split(script);
        assert_eq!(stmts.len(), 2, "{stmts:?}");
        assert!(stmts[0].text().starts_with("CREATE TRIGGER"));
        assert!(!stmts[0].text().contains("DELIMITER"));
        assert_eq!(stmts[1].text(), "SELECT 1");
    }

    #[test]
    fn custom_delimiter_makes_bare_semicolons_ordinary_text() {
        let script = "DELIMITER //\nSELECT 1; SELECT 2 //\nSELECT 3 //";
        let stmts = split(script);
        assert_eq!(stmts.len(), 2, "{stmts:?}");
        assert_eq!(stmts[0].text(), "SELECT 1; SELECT 2");
        assert_eq!(stmts[1].text(), "SELECT 3");
    }

    #[test]
    fn orphan_end_and_unterminated_begin_degrade_tolerantly() {
        // A bare END is its own one-word statement; trailing statements
        // survive.
        let stmts = split("END; SELECT 1;");
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].text(), "END");
        assert_eq!(stmts[1].text(), "SELECT 1");
        // An unterminated BEGIN runs to EOF as one tolerant statement —
        // nothing panics, nothing is dropped.
        let stmts = split("CREATE TRIGGER t1 BEFORE UPDATE ON x FOR EACH ROW BEGIN SELECT 1;");
        assert_eq!(stmts.len(), 1);
        assert!(stmts[0].text().ends_with("SELECT 1;"));
    }

    #[test]
    fn transaction_begin_and_case_end_are_not_blocks() {
        assert_eq!(split("BEGIN; SELECT 1; COMMIT;").len(), 3);
        assert_eq!(split("BEGIN TRANSACTION; SELECT 1;").len(), 2);
        assert_eq!(split("SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t; SELECT 2;").len(), 2);
        assert_eq!(split("CREATE TABLE t (begin INT, end INT); SELECT 1;").len(), 2);
    }

    #[test]
    fn boundary_prescan_never_splits_inside_trigger_bodies() {
        // Many compound statements, so naive byte-targets land inside
        // bodies; every path must still agree.
        let mut big = String::new();
        for i in 0..120 {
            big.push_str(&format!(
                "CREATE TRIGGER trg{i} AFTER INSERT ON t{i} FOR EACH ROW \
                 BEGIN UPDATE u SET a = {i}; DELETE FROM v WHERE x = {i}; END;\n"
            ));
            big.push_str(&format!("SELECT {i} FROM filler;\n"));
        }
        let sequential = split_stream(&big);
        assert_eq!(sequential.len(), 240);
        for threads in [2, 3, 5, 8] {
            assert_eq!(split_stream_parallel(&big, threads), sequential, "{threads} threads");
            let d = split_deduped(&big, threads);
            assert_eq!(d.occurrences.len(), sequential.len());
        }
    }

    #[test]
    fn delimiter_scripts_fall_back_to_sequential_chunking() {
        let mut big = String::from("DELIMITER ;;\n");
        for i in 0..100 {
            big.push_str(&format!("SELECT {i}; SELECT {i} ;;\n"));
        }
        big.push_str("DELIMITER ;\nSELECT 1;");
        let sequential = split_stream(&big);
        assert_eq!(sequential.len(), 101);
        for threads in [2, 4, 7] {
            assert_eq!(split_stream_parallel(&big, threads), sequential);
        }
    }

    /// Development probe, not a test: attributes fused-splitter cost to
    /// lexing, keyword classification, and fingerprinting. Run with
    /// `cargo test -q -p sqlcheck-parser --release -- --ignored
    /// profile_front_layers --nocapture`.
    #[test]
    #[ignore]
    fn profile_front_layers() {
        use crate::lexer::lex_into;
        use std::time::Instant;

        struct CountSink<const CLASSIFY: bool> {
            n: u64,
        }
        impl<const CLASSIFY: bool> TokenSink for CountSink<CLASSIFY> {
            const CLASSIFY_WORDS: bool = CLASSIFY;
            #[inline]
            fn token(&mut self, kind: TokenKind, _start: usize, _end: usize) {
                self.n += kind as u64;
            }
        }
        struct FpSink<'a> {
            src: &'a str,
            fp: StreamingFingerprint,
            acc: u64,
        }
        impl TokenSink for FpSink<'_> {
            #[inline]
            fn token(&mut self, kind: TokenKind, start: usize, end: usize) {
                if matches!(kind, TokenKind::Whitespace | TokenKind::Comment) {
                    return;
                }
                self.fp.push(kind, &self.src[start..end]);
                if kind == TokenKind::Punct
                    && end - start == 1
                    && self.src.as_bytes()[start] == b';'
                {
                    self.acc ^= self.fp.finish();
                }
            }
        }
        fn time<F: FnMut() -> u64>(label: &str, bytes: usize, mut f: F) {
            let mut best = u128::MAX;
            let mut acc = 0u64;
            for _ in 0..7 {
                let t = Instant::now();
                acc ^= f();
                best = best.min(t.elapsed().as_nanos());
            }
            let mbs = bytes as f64 / (best as f64 / 1e9) / 1e6;
            println!(
                "{label:28} {:>9.1} us  {mbs:>8.1} MB/s  (acc {acc:x})",
                best as f64 / 1e3
            );
        }

        let mut script = String::new();
        let mut x = 0x5117u64;
        for i in 0..100_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match i % 5 {
                0 => script.push_str(&format!(
                    "SELECT id, name, created_at FROM users WHERE tenant_id = {} AND active = TRUE;\n",
                    x % 10_000
                )),
                1 => script.push_str(&format!(
                    "INSERT INTO events (user_id, kind, payload) VALUES ({}, 'click', 'x{}');\n",
                    x % 9999,
                    x % 777
                )),
                2 => script.push_str(&format!(
                    "UPDATE sessions SET last_seen = '2026-01-01', hits = hits + 1 WHERE sid = '{x:x}';\n"
                )),
                3 => script.push_str(&format!(
                    "SELECT a.x, b.y FROM a JOIN b ON a.id = b.a_id WHERE b.z IN ({}, {}, {});\n",
                    x % 10,
                    x % 100,
                    x % 1000
                )),
                _ => script.push_str(&format!("DELETE FROM audit WHERE ts < {};\n", x % 50_000)),
            }
        }
        let bytes = script.len();
        println!("script: {bytes} bytes");
        time("lex (no keyword classify)", bytes, || {
            let mut s = CountSink::<false> { n: 0 };
            lex_into(&script, Dialect::Generic, &mut s);
            s.n
        });
        time("lex (keyword classify)", bytes, || {
            let mut s = CountSink::<true> { n: 0 };
            lex_into(&script, Dialect::Generic, &mut s);
            s.n
        });
        time("lex + fingerprint", bytes, || {
            let mut s = FpSink { src: &script, fp: StreamingFingerprint::new(), acc: 0 };
            lex_into(&script, Dialect::Generic, &mut s);
            s.acc
        });
        time("split_stream (fused)", bytes, || split_stream(&script).len() as u64);
        time("split_deduped", bytes, || split_deduped(&script, 1).uniques.len() as u64);
    }

    #[test]
    fn boundary_prescan_never_splits_inside_tokens() {
        // Force targets to land inside strings/comments/dollar quotes:
        // every resulting chunk must still start right after a top-level
        // `;`, which the byte-identity with the sequential path proves.
        let script = "SELECT '; ; ; ; ; ; ; ;'; /* ;;;;;;;; */ SELECT $t$;;;;;;;;$t$; SELECT 2;";
        for threads in 2..12 {
            assert_eq!(split_stream_parallel(script, threads), split_stream(script));
        }
    }
}
