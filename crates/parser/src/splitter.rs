//! Statement splitter.
//!
//! Splits a SQL script into individual statements on top of the token
//! stream, so that semicolons inside string literals, comments, or
//! dollar-quoted bodies never split a statement.

use crate::fingerprint::{content_hash_spanned, fingerprint_spanned};
use crate::lexer::{lex_spans, SpannedToken};
use crate::token::{Span, Token};

/// One raw statement: its tokens (trivia included) and overall span.
#[derive(Debug, Clone)]
pub struct RawStatement {
    /// All tokens of the statement, excluding the terminating semicolon.
    pub tokens: Vec<Token>,
    /// Span covering the statement in the original script.
    pub span: Span,
}

impl RawStatement {
    /// The statement's source text, reconstructed from its tokens.
    pub fn text(&self) -> String {
        self.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    /// Significant (non-trivia) tokens.
    pub fn significant(&self) -> Vec<&Token> {
        self.tokens.iter().filter(|t| !t.is_trivia()).collect()
    }

    /// True if the statement has no significant tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.iter().all(|t| t.is_trivia())
    }
}

/// Split a script into statements. Empty statements (runs of trivia between
/// semicolons) are dropped.
///
/// ```
/// use sqlcheck_parser::splitter::split;
/// let stmts = split("SELECT 1; SELECT ';'; -- done");
/// assert_eq!(stmts.len(), 2);
/// assert_eq!(stmts[1].text().trim(), "SELECT ';'");
/// ```
pub fn split(script: &str) -> Vec<RawStatement> {
    split_impl(script)
}

/// One split-off statement chunk with its fingerprints computed **before
/// any parsing happens**. This is the front door of the parse-once
/// pipeline: chunks are independently parseable (each carries its own
/// token stream), and the two hashes let a consumer group duplicate
/// statement texts and parse each unique text exactly once.
#[derive(Debug, Clone)]
pub struct FingerprintedStatement {
    /// The raw statement chunk (tokens + span).
    pub raw: RawStatement,
    /// Literal-insensitive template fingerprint
    /// ([`crate::fingerprint::fingerprint_of`]).
    pub fingerprint: u64,
    /// Literal-sensitive, span-insensitive 128-bit content hash
    /// ([`crate::fingerprint::content_hash_of`]). Equal hashes identify
    /// statements whose parse trees and annotations are interchangeable.
    pub content_hash: u128,
}

/// Split a script and fingerprint every chunk, without parsing anything.
///
/// ```
/// use sqlcheck_parser::splitter::split_fingerprinted;
/// let chunks = split_fingerprinted("SELECT 1; SELECT 1 ; SELECT 2;");
/// assert_eq!(chunks.len(), 3);
/// // Same text → same content hash; different literal → different hash
/// // but (literals fold) the same template fingerprint.
/// assert_eq!(chunks[0].content_hash, chunks[1].content_hash);
/// assert_ne!(chunks[0].content_hash, chunks[2].content_hash);
/// assert_eq!(chunks[0].fingerprint, chunks[2].fingerprint);
/// ```
pub fn split_fingerprinted(script: &str) -> Vec<FingerprintedStatement> {
    split_spanned(script)
        .into_iter()
        .map(|s| FingerprintedStatement {
            fingerprint: s.fingerprint(script),
            content_hash: s.content_hash,
            raw: s.materialize(script),
        })
        .collect()
}

/// One split-off statement at the span level: its span-tokens (trivia
/// trimmed at both ends, kept inside) and its content hash — computed
/// **before parsing and before any token text is allocated**. The
/// allocation-free front door of the parse-once pipeline: a consumer
/// groups duplicate texts by [`SpannedStatement::content_hash`] and
/// [materialises](SpannedStatement::materialize) owned tokens only for
/// the unique texts it actually parses.
#[derive(Debug, Clone)]
pub struct SpannedStatement {
    /// Span-level tokens of the statement (no owned text).
    pub tokens: Vec<SpannedToken>,
    /// Span covering the statement in the original script.
    pub span: Span,
    /// Literal-sensitive 128-bit content hash
    /// ([`crate::fingerprint::content_hash_spanned`]).
    pub content_hash: u128,
}

impl SpannedStatement {
    /// Literal-insensitive template fingerprint, computed from the spans
    /// (no parsing, no allocation).
    pub fn fingerprint(&self, script: &str) -> u64 {
        fingerprint_spanned(script, &self.tokens)
    }

    /// Build the equivalent owned [`RawStatement`].
    pub fn materialize(&self, script: &str) -> RawStatement {
        RawStatement {
            tokens: self.tokens.iter().map(|t| t.materialize(script)).collect(),
            span: self.span,
        }
    }
}

/// Split a script into span-level statements, computing each chunk's
/// content hash on the way — without allocating any token text. This is
/// what [`split`] and [`split_fingerprinted`] are built on.
pub fn split_spanned(script: &str) -> Vec<SpannedStatement> {
    let tokens = lex_spans(script);
    let mut stmts = Vec::new();
    let mut start = 0usize;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind == crate::token::TokenKind::Punct && tok.text(script) == ";" {
            push_spanned(script, &mut stmts, &tokens[start..i]);
            start = i + 1;
        }
    }
    push_spanned(script, &mut stmts, &tokens[start..]);
    stmts
}

fn push_spanned(script: &str, out: &mut Vec<SpannedStatement>, tokens: &[SpannedToken]) {
    // Trim leading/trailing trivia but keep interior trivia for lossless text.
    let Some(first) = tokens.iter().position(|t| !t.is_trivia()) else { return };
    let last = tokens.iter().rposition(|t| !t.is_trivia()).unwrap();
    let trimmed = &tokens[first..=last];
    let span = trimmed[0].span.merge(trimmed[trimmed.len() - 1].span);
    out.push(SpannedStatement {
        tokens: trimmed.to_vec(),
        span,
        content_hash: content_hash_spanned(script, trimmed),
    });
}

fn split_impl(script: &str) -> Vec<RawStatement> {
    split_spanned(script).into_iter().map(|s| s.materialize(script)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_semicolons() {
        let stmts = split("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t");
        assert_eq!(stmts.len(), 3);
        assert!(stmts[0].text().starts_with("CREATE"));
        assert!(stmts[2].text().starts_with("SELECT"));
    }

    #[test]
    fn semicolon_in_string_is_not_a_split() {
        let stmts = split("SELECT 'a;b' FROM t; SELECT 2");
        assert_eq!(stmts.len(), 2);
        assert!(stmts[0].text().contains("'a;b'"));
    }

    #[test]
    fn semicolon_in_comment_is_not_a_split() {
        let stmts = split("SELECT 1 -- one; two\n; SELECT 2");
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn empty_statements_dropped() {
        let stmts = split(";;  ; SELECT 1; ;");
        assert_eq!(stmts.len(), 1);
    }

    #[test]
    fn whole_script_without_semicolon() {
        let stmts = split("SELECT 1");
        assert_eq!(stmts.len(), 1);
        assert_eq!(stmts[0].text(), "SELECT 1");
    }

    #[test]
    fn fingerprinted_chunks_match_post_parse_hashes() {
        // The pre-parse hashes must agree with the hashes computed from
        // the parsed statement — consumers rely on that to skip parsing.
        let script = "SELECT a FROM t WHERE a = 1;\
                      select a from t where a = 2;\
                      INSERT INTO t VALUES (1, 'x');";
        let chunks = split_fingerprinted(script);
        assert_eq!(chunks.len(), 3);
        for c in &chunks {
            let parsed = crate::parser::parse_statement(&c.raw);
            assert_eq!(c.fingerprint, parsed.fingerprint());
            assert_eq!(c.content_hash, parsed.content_hash());
        }
        // Literal-only variants share a template but not a content hash.
        assert_eq!(chunks[0].fingerprint, chunks[1].fingerprint);
        assert_ne!(chunks[0].content_hash, chunks[1].content_hash);
    }

    #[test]
    fn spans_index_into_original(){
        let script = "SELECT a FROM t;  UPDATE t SET a = 1";
        let stmts = split(script);
        assert_eq!(&script[stmts[1].span.start..stmts[1].span.end], "UPDATE t SET a = 1");
    }
}
