//! Statement splitter.
//!
//! Splits a SQL script into individual statements on top of the token
//! stream, so that semicolons inside string literals, comments, or
//! dollar-quoted bodies never split a statement.

use crate::lexer::tokenize;
use crate::token::{Span, Token};

/// One raw statement: its tokens (trivia included) and overall span.
#[derive(Debug, Clone)]
pub struct RawStatement {
    /// All tokens of the statement, excluding the terminating semicolon.
    pub tokens: Vec<Token>,
    /// Span covering the statement in the original script.
    pub span: Span,
}

impl RawStatement {
    /// The statement's source text, reconstructed from its tokens.
    pub fn text(&self) -> String {
        self.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    /// Significant (non-trivia) tokens.
    pub fn significant(&self) -> Vec<&Token> {
        self.tokens.iter().filter(|t| !t.is_trivia()).collect()
    }

    /// True if the statement has no significant tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.iter().all(|t| t.is_trivia())
    }
}

/// Split a script into statements. Empty statements (runs of trivia between
/// semicolons) are dropped.
///
/// ```
/// use sqlcheck_parser::splitter::split;
/// let stmts = split("SELECT 1; SELECT ';'; -- done");
/// assert_eq!(stmts.len(), 2);
/// assert_eq!(stmts[1].text().trim(), "SELECT ';'");
/// ```
pub fn split(script: &str) -> Vec<RawStatement> {
    let tokens = tokenize(script);
    let mut stmts = Vec::new();
    let mut current: Vec<Token> = Vec::new();
    for tok in tokens {
        if tok.is_punct(';') {
            push_statement(&mut stmts, std::mem::take(&mut current));
        } else {
            current.push(tok);
        }
    }
    push_statement(&mut stmts, current);
    stmts
}

fn push_statement(out: &mut Vec<RawStatement>, tokens: Vec<Token>) {
    // Trim leading/trailing trivia but keep interior trivia for lossless text.
    let first = tokens.iter().position(|t| !t.is_trivia());
    let Some(first) = first else { return };
    let last = tokens.iter().rposition(|t| !t.is_trivia()).unwrap();
    let trimmed: Vec<Token> = tokens[first..=last].to_vec();
    let span = trimmed
        .first()
        .map(|f| f.span.merge(trimmed.last().unwrap().span))
        .unwrap_or(Span::new(0, 0));
    out.push(RawStatement { tokens: trimmed, span });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_semicolons() {
        let stmts = split("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t");
        assert_eq!(stmts.len(), 3);
        assert!(stmts[0].text().starts_with("CREATE"));
        assert!(stmts[2].text().starts_with("SELECT"));
    }

    #[test]
    fn semicolon_in_string_is_not_a_split() {
        let stmts = split("SELECT 'a;b' FROM t; SELECT 2");
        assert_eq!(stmts.len(), 2);
        assert!(stmts[0].text().contains("'a;b'"));
    }

    #[test]
    fn semicolon_in_comment_is_not_a_split() {
        let stmts = split("SELECT 1 -- one; two\n; SELECT 2");
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn empty_statements_dropped() {
        let stmts = split(";;  ; SELECT 1; ;");
        assert_eq!(stmts.len(), 1);
    }

    #[test]
    fn whole_script_without_semicolon() {
        let stmts = split("SELECT 1");
        assert_eq!(stmts.len(), 1);
        assert_eq!(stmts[0].text(), "SELECT 1");
    }

    #[test]
    fn spans_index_into_original(){
        let script = "SELECT a FROM t;  UPDATE t SET a = 1";
        let stmts = split(script);
        assert_eq!(&script[stmts[1].span.start..stmts[1].span.end], "UPDATE t SET a = 1");
    }
}
