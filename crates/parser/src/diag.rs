//! Degradation diagnostics and resource budgets.
//!
//! The parser is total — it never errors — which means it degrades
//! *silently*: a statement it cannot shape becomes [`Statement::Other`]
//! and a sub-expression becomes [`Expr::Raw`], and detection power is
//! quietly lost. This module makes that degradation observable. Every
//! fallback path emits a [`Diagnostic`] describing what was lost, and a
//! [`Limits`] budget bounds how much work a single pathological
//! statement may consume before it is degraded deliberately.
//!
//! [`Statement::Other`]: crate::ast::Statement::Other
//! [`Expr::Raw`]: crate::ast::Expr::Raw

use std::fmt;

/// What kind of degradation occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiagKind {
    /// A statement fell back to `Statement::Other`, or a sub-expression
    /// fell back to `Expr::Raw`, because the parser could not shape it.
    ParseDegraded,
    /// A compound statement opened a `BEGIN`/`CASE` block that never
    /// closed before the input ran out; the trailing piece was kept as a
    /// best-effort body.
    UnterminatedBlock,
    /// A statement began with `END` that matches no open block; the
    /// splitter tolerated it as an ordinary word.
    OrphanEnd,
    /// The script contains a `DELIMITER` directive, which forces the
    /// chunk-parallel splitter back to a single sequential pass.
    DelimiterFallbackSequential,
    /// A statement exceeded a [`Limits`] budget and was degraded to
    /// `Statement::Other` (or had a sub-tree flattened) instead of
    /// burning unbounded CPU or stack.
    OverLimit,
    /// A detection-rule unit panicked; its output was dropped and every
    /// other unit's output is unaffected.
    RuleFailed,
    /// No dialect was specified and the front door guessed one from the
    /// script's contents ([`crate::dialect::Dialect::detect`]); the
    /// detail names the guessed dialect and the triggering signal.
    /// Explicitly selecting a dialect suppresses this.
    DialectGuessed,
}

impl DiagKind {
    /// All kinds, in stable order (indexes match [`DiagKind::index`]).
    pub const ALL: [DiagKind; 7] = [
        DiagKind::ParseDegraded,
        DiagKind::UnterminatedBlock,
        DiagKind::OrphanEnd,
        DiagKind::DelimiterFallbackSequential,
        DiagKind::OverLimit,
        DiagKind::RuleFailed,
        DiagKind::DialectGuessed,
    ];

    /// Number of kinds (length of [`DiagKind::ALL`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable index into per-kind count arrays.
    pub fn index(self) -> usize {
        match self {
            DiagKind::ParseDegraded => 0,
            DiagKind::UnterminatedBlock => 1,
            DiagKind::OrphanEnd => 2,
            DiagKind::DelimiterFallbackSequential => 3,
            DiagKind::OverLimit => 4,
            DiagKind::RuleFailed => 5,
            DiagKind::DialectGuessed => 6,
        }
    }

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DiagKind::ParseDegraded => "parse-degraded",
            DiagKind::UnterminatedBlock => "unterminated-block",
            DiagKind::OrphanEnd => "orphan-end",
            DiagKind::DelimiterFallbackSequential => "delimiter-fallback-sequential",
            DiagKind::OverLimit => "over-limit",
            DiagKind::RuleFailed => "rule-failed",
            DiagKind::DialectGuessed => "dialect-guessed",
        }
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One degradation event. Diagnostics are advisory: the pipeline always
/// completes; these describe where output quality was reduced.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Diagnostic {
    /// What happened.
    pub kind: DiagKind,
    /// Human-readable detail (rule name, limit exceeded, ...).
    pub detail: String,
    /// Statement index this applies to, when known. Parser-emitted
    /// diagnostics leave this `None`; the context builder fills in the
    /// first occurrence index of the unique statement.
    pub statement: Option<usize>,
}

impl Diagnostic {
    /// Build a diagnostic with no statement attribution.
    pub fn new(kind: DiagKind, detail: impl Into<String>) -> Self {
        Diagnostic { kind, detail: detail.into(), statement: None }
    }

    /// Copy with the statement index set.
    pub fn at(&self, statement: usize) -> Self {
        Diagnostic { kind: self.kind, detail: self.detail.clone(), statement: Some(statement) }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.statement {
            Some(i) => write!(f, "[{}] statement {}: {}", self.kind, i, self.detail),
            None => write!(f, "[{}] {}", self.kind, self.detail),
        }
    }
}

/// Resource budgets for a single statement. Exceeding a budget never
/// errors — the statement degrades to `Statement::Other` (or a sub-tree
/// is flattened) and an [`DiagKind::OverLimit`] diagnostic is emitted.
///
/// The defaults are far above anything a legitimate statement reaches
/// (a 1 MiB single statement, 64 levels of `BEGIN` nesting, 128 levels
/// of expression nesting) so ordinary workloads never see them, while a
/// pathological or adversarial input is bounded in CPU and stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Limits {
    /// Maximum statement source length in bytes before the statement is
    /// degraded without a structural parse.
    pub max_statement_bytes: usize,
    /// Maximum token count per statement before the statement is
    /// degraded without a structural parse.
    pub max_tokens: usize,
    /// Maximum `BEGIN`/`CASE` block-nesting depth inside a compound
    /// statement body; deeper blocks are kept flat instead of recursed.
    pub max_block_depth: u32,
    /// Maximum expression/subquery recursion depth; deeper sub-trees
    /// flatten to `Expr::Raw`. This is the stack-overflow guard.
    pub max_expr_depth: u32,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_statement_bytes: 1 << 20,
            max_tokens: 1 << 16,
            max_block_depth: 64,
            max_expr_depth: 128,
        }
    }
}

impl Limits {
    /// Effectively no budgets (for comparison runs; expression depth is
    /// still capped high enough to stay stack-safe).
    pub fn unlimited() -> Self {
        Limits {
            max_statement_bytes: usize::MAX,
            max_tokens: usize::MAX,
            max_block_depth: u32::MAX,
            max_expr_depth: 4096,
        }
    }

    /// FNV-1a digest of the budget values — used to key caches whose
    /// entries depend on how statements were parsed.
    pub fn epoch(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        mix(self.max_statement_bytes as u64);
        mix(self.max_tokens as u64);
        mix(self.max_block_depth as u64);
        mix(self.max_expr_depth as u64);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indexes_are_stable() {
        for (i, k) in DiagKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic::new(DiagKind::ParseDegraded, "statement fell back to Other");
        assert_eq!(d.to_string(), "[parse-degraded] statement fell back to Other");
        assert_eq!(d.at(3).to_string(), "[parse-degraded] statement 3: statement fell back to Other");
    }

    #[test]
    fn limits_epoch_distinguishes_values() {
        let a = Limits::default();
        let b = Limits { max_expr_depth: 129, ..Limits::default() };
        assert_ne!(a.epoch(), b.epoch());
        assert_eq!(a.epoch(), Limits::default().epoch());
    }
}
