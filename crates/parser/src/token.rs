//! Token model for the non-validating SQL lexer.
//!
//! The lexer is *lossless*: concatenating the `text` of every token in order
//! reproduces the input byte-for-byte. This property is what lets the
//! annotation layer and the repair engine operate on a tree while still
//! being able to fall back to the original SQL text for constructs the
//! parser does not model (mirroring the paper's use of the non-validating
//! `sqlparse` library).

use crate::istr::IStr;
use std::fmt;

/// Byte range of a token within the original SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

impl Span {
    /// Create a new span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(&self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// The lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A recognised SQL keyword (`SELECT`, `FROM`, ...). Keyword matching is
    /// case-insensitive; the original casing is preserved in the token text.
    Keyword,
    /// A bare identifier (table, column, alias, function name, ...).
    Ident,
    /// A quoted identifier: `"x"`, `` `x` ``, or `[x]`.
    QuotedIdent,
    /// A string literal: `'...'` (with `''` escapes) or dollar-quoted.
    StringLit,
    /// A numeric literal: integer, decimal, or scientific notation.
    NumberLit,
    /// An operator such as `=`, `<>`, `||`, `::`.
    Operator,
    /// Punctuation: `(`, `)`, `,`, `;`, `.`.
    Punct,
    /// A bind parameter: `?`, `$1`, `:name`, `%s`, `%(name)s`.
    Param,
    /// A `--` line comment or `/* ... */` block comment.
    Comment,
    /// Whitespace (spaces, tabs, newlines).
    Whitespace,
    /// A byte sequence the lexer could not classify. Never dropped: the
    /// non-validating contract requires the input to be preserved.
    Unknown,
}

/// A single lexed token. Owns its text so that token streams can outlive
/// the input buffer (statements are routinely stored in the application
/// context for inter-query analysis). The text is an [`IStr`]: SQL
/// lexemes are almost always short, so ownership costs no heap
/// allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: IStr,
    /// Location in the original input.
    pub span: Span,
    /// Integer keyword code, resolved once at construction for
    /// [`TokenKind::Keyword`] tokens (`None` otherwise). Downstream
    /// keyword checks ([`Token::is_kw`]) are single integer compares —
    /// the string is never re-examined after lexing.
    pub kw: Option<Kw>,
}

impl Token {
    /// Construct a token. Keyword tokens resolve their [`Kw`] code here,
    /// once, so later checks never touch the text.
    pub fn new(kind: TokenKind, text: impl Into<IStr>, span: Span) -> Self {
        let text = text.into();
        let kw = if kind == TokenKind::Keyword { kw_lookup(&text) } else { None };
        Token { kind, text, span, kw }
    }

    /// Uppercased text, used for case-insensitive keyword comparisons.
    /// Inline (allocation-free) for any lexeme up to [`IStr::INLINE_CAP`]
    /// bytes — every keyword qualifies.
    pub fn upper(&self) -> IStr {
        IStr::new_upper(&self.text)
    }

    /// True if this token is the given keyword — one integer compare
    /// against the code cached at construction.
    #[inline]
    pub fn is_kw(&self, kw: Kw) -> bool {
        self.kw == Some(kw)
    }

    /// True if this token is the given keyword (case-insensitive). String
    /// flavour of [`Token::is_kw`], kept for call sites that work with
    /// dynamic or out-of-table words.
    pub fn is_keyword(&self, kw: &str) -> bool {
        self.kind == TokenKind::Keyword && self.text.eq_ignore_ascii_case(kw)
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }

    /// True if this token is the given operator text.
    pub fn is_operator(&self, op: &str) -> bool {
        self.kind == TokenKind::Operator && self.text == op
    }

    /// True for tokens that carry no syntactic meaning (whitespace/comments).
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokenKind::Whitespace | TokenKind::Comment)
    }

    /// The identifier value with any quoting stripped: `"User"` -> `User`,
    /// `` `t` `` -> `t`, `[col]` -> `col`. Bare identifiers are returned
    /// unchanged (original case preserved).
    pub fn ident_value(&self) -> &str {
        match self.kind {
            TokenKind::QuotedIdent => {
                let t = self.text.as_str();
                // The boundary check matters only for *unterminated*
                // quoted identifiers, which run to end-of-input and can
                // end mid-character: slicing would panic, so return the
                // token raw. (A terminated identifier always ends with
                // its ASCII delimiter — a char boundary.)
                if t.len() >= 2 && t.is_char_boundary(t.len() - 1) {
                    &t[1..t.len() - 1]
                } else {
                    t
                }
            }
            _ => self.text.as_str(),
        }
    }

    /// The contents of a string literal with quotes stripped and `''`
    /// unescaped. Returns `None` for non-string tokens.
    pub fn string_value(&self) -> Option<IStr> {
        if self.kind != TokenKind::StringLit {
            return None;
        }
        let t = self.text.as_str();
        if t.starts_with('\'') && t.ends_with('\'') && t.len() >= 2 {
            let inner = &t[1..t.len() - 1];
            if inner.contains("''") {
                Some(inner.replace("''", "'").into())
            } else {
                Some(inner.into())
            }
        } else if let Some(rest) = t.strip_prefix('$') {
            // dollar-quoted: $tag$...$tag$
            let close = rest.find('$').map(|i| i + 2)?;
            let tag = &t[..close];
            Some(t[close..t.len().saturating_sub(tag.len())].into())
        } else {
            Some(IStr::new(t))
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Generates the keyword universe from one list: the string table
/// ([`KEYWORDS`]), the dense integer code enum ([`Kw`]), and the
/// discriminant-indexed [`Kw::LIST`] table. One source of truth means the
/// enum discriminants, the string table, and the interner's keyword
/// symbol space (see [`crate::intern`]) can never drift apart.
macro_rules! define_keywords {
    ($($kw:ident),* $(,)?) => {
        /// The set of words the lexer classifies as keywords. The list is
        /// intentionally broad (union of common dialects) because the parser is
        /// non-validating: treating a dialect-specific word as a keyword never
        /// rejects a statement, it only enriches the token classification.
        pub const KEYWORDS: &[&str] = &[$(stringify!($kw)),*];

        /// A recognised SQL keyword as a dense integer code.
        ///
        /// `Kw as u8` is the keyword's position in [`KEYWORDS`] and equals
        /// the interner's keyword symbol index ([`crate::intern::Symbol`]),
        /// so keyword identity checks anywhere in the pipeline are single
        /// integer compares — the parser never re-hashes or re-compares
        /// keyword strings after lexing.
        #[allow(non_camel_case_types, missing_docs)]
        #[repr(u8)]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Kw { $($kw),* }

        impl Kw {
            /// Every keyword, indexed by discriminant (= position in
            /// [`KEYWORDS`]).
            pub const LIST: &'static [Kw] = &[$(Kw::$kw),*];
        }
    };
}

define_keywords!(
    ADD, AFTER, ALL, ALTER, ANALYZE, AND, ANY, AS, ASC,
    AUTOINCREMENT, AUTO_INCREMENT, BEFORE, BEGIN, BETWEEN, BIGINT, BLOB,
    BOOL, BOOLEAN, BY, CASCADE, CASE, CAST, CHAR, CHARACTER, CHECK,
    COLLATE, COLUMN, COMMIT, CONCAT, CONSTRAINT, CREATE, CROSS,
    CURRENT_DATE, CURRENT_TIME, CURRENT_TIMESTAMP, DATABASE, DATE,
    DATETIME, DECIMAL, DECLARE, DEFAULT, DELETE, DESC, DISTINCT,
    DOUBLE, DROP, EACH, ELSE, ELSEIF, END, ENUM, ESCAPE, EXCEPT,
    EXISTS, EXPLAIN, FALSE, FLOAT, FOR, FOREIGN, FROM, FULL,
    FUNCTION, GLOB, GRANT, GROUP, HAVING, IF, ILIKE, IN, INDEX,
    INNER, INSERT, INT, INTEGER, INTERSECT, INTERVAL, INTO, IS,
    JOIN, KEY, LANGUAGE, LEFT, LIKE, LIMIT, LOOP, MATERIALIZED,
    MEDIUMINT, MODIFY, NATURAL, NOT, NULL, NUMERIC, OFFSET, ON, OR,
    ORDER, OUTER, PRAGMA, PRECISION, PRIMARY, PROCEDURE, RAND, RANDOM,
    REAL, REFERENCES, REGEXP, RENAME, REPEAT, REPLACE, RESTRICT,
    RETURN, RETURNS, REVOKE, RIGHT, RLIKE, ROLLBACK, ROW, SELECT,
    SERIAL, SET, SIMILAR, SMALLINT, TABLE, TEMP, TEMPORARY, TEXT,
    THEN, TIME, TIMESTAMP, TIMESTAMPTZ, TINYINT, TO, TRANSACTION,
    TRIGGER, TRUE, TRUNCATE, UNION, UNIQUE, UNSIGNED, UPDATE, USING,
    VACUUM, VALUES, VARCHAR, VARYING, VIEW, WHEN, WHERE, WHILE,
    WITH, WITHOUT, ZONE,
);

impl Kw {
    /// The keyword's canonical (uppercase) spelling.
    pub fn text(self) -> &'static str {
        KEYWORDS[self as usize]
    }

    /// The keyword whose position in [`KEYWORDS`] is `index`, if any.
    /// Inverse of `kw as u8`; also maps an interner keyword symbol index
    /// back to its code.
    pub fn from_index(index: usize) -> Option<Kw> {
        Kw::LIST.get(index).copied()
    }
}

/// Longest keyword length (`CURRENT_TIMESTAMP`); words longer than this
/// are never keywords.
const MAX_KEYWORD_LEN: usize = 17;

/// A keyword packed for word-at-a-time comparison: its uppercased bytes
/// in three little-endian `u64` lanes, zero-padded.
type PackedWord = [u64; 3];

fn pack_upper(word: &str) -> PackedWord {
    let mut buf = [0u8; 24];
    for (i, b) in word.bytes().enumerate() {
        buf[i] = b.to_ascii_uppercase();
    }
    [
        u64::from_le_bytes(buf[0..8].try_into().unwrap()),
        u64::from_le_bytes(buf[8..16].try_into().unwrap()),
        u64::from_le_bytes(buf[16..24].try_into().unwrap()),
    ]
}

/// Keywords grouped by length, each group sorted for binary search on the
/// packed representation; each entry carries its [`Kw`] code. Built once,
/// on first lookup.
struct KeywordTable {
    /// `by_len[len]` is the `packed` range holding keywords of `len` bytes.
    by_len: [(u16, u16); MAX_KEYWORD_LEN + 1],
    packed: Vec<(PackedWord, Kw)>,
}

fn build_keyword_table() -> KeywordTable {
    let mut groups: Vec<Vec<(PackedWord, Kw)>> = vec![Vec::new(); MAX_KEYWORD_LEN + 1];
    for (i, k) in KEYWORDS.iter().enumerate() {
        groups[k.len()].push((pack_upper(k), Kw::LIST[i]));
    }
    let mut by_len = [(0u16, 0u16); MAX_KEYWORD_LEN + 1];
    let mut packed = Vec::with_capacity(KEYWORDS.len());
    for (len, mut g) in groups.into_iter().enumerate() {
        g.sort_unstable_by_key(|e| e.0);
        by_len[len] = (packed.len() as u16, (packed.len() + g.len()) as u16);
        packed.extend(g);
    }
    KeywordTable { by_len, packed }
}

static KEYWORD_TABLE: std::sync::OnceLock<KeywordTable> = std::sync::OnceLock::new();

/// Look up the [`Kw`] code for `word` (case-insensitive), or `None` if it
/// is not a keyword.
///
/// This is the hottest classification in the lexer (once per word token),
/// so it compares whole machine words instead of bytes: candidates are
/// pre-grouped by length and the uppercased word is packed into three
/// `u64` lanes, making each binary-search probe three integer compares.
/// Allocation-free after the first call builds the table.
pub fn kw_lookup(word: &str) -> Option<Kw> {
    let len = word.len();
    if !(2..=MAX_KEYWORD_LEN).contains(&len) {
        return None;
    }
    let table = KEYWORD_TABLE.get_or_init(build_keyword_table);
    let (lo, hi) = table.by_len[len];
    let group = &table.packed[lo as usize..hi as usize];
    let key = pack_upper(word);
    group.binary_search_by(|e| e.0.cmp(&key)).ok().map(|i| group[i].1)
}

/// Check whether `word` is a SQL keyword (case-insensitive).
pub fn is_keyword(word: &str) -> bool {
    kw_lookup(word).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_sorted_for_binary_search() {
        let mut sorted = KEYWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, KEYWORDS, "KEYWORDS must stay sorted");
    }

    #[test]
    fn kw_codes_match_keyword_table() {
        for (i, &k) in KEYWORDS.iter().enumerate() {
            let kw = kw_lookup(k).expect("every table word resolves");
            assert_eq!(kw as usize, i, "discriminant = KEYWORDS position");
            assert_eq!(kw.text(), k);
            assert_eq!(Kw::from_index(i), Some(kw));
        }
        assert_eq!(kw_lookup("tenant"), None);
        assert_eq!(kw_lookup("select"), Some(Kw::SELECT));
        assert_eq!(kw_lookup("SeLeCt"), Some(Kw::SELECT));
    }

    #[test]
    fn token_caches_kw_code() {
        let t = Token::new(TokenKind::Keyword, "Select", Span::new(0, 6));
        assert_eq!(t.kw, Some(Kw::SELECT));
        assert!(t.is_kw(Kw::SELECT));
        assert!(!t.is_kw(Kw::FROM));
        // Idents never carry a code, even for keyword-shaped text.
        let i = Token::new(TokenKind::Ident, "select", Span::new(0, 6));
        assert_eq!(i.kw, None);
    }

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert!(is_keyword("select"));
        assert!(is_keyword("SELECT"));
        assert!(is_keyword("SeLeCt"));
        assert!(!is_keyword("tenant"));
    }

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn quoted_ident_value_strips_quotes() {
        let t = Token::new(TokenKind::QuotedIdent, "\"User\"", Span::new(0, 6));
        assert_eq!(t.ident_value(), "User");
        let t = Token::new(TokenKind::QuotedIdent, "`tbl`", Span::new(0, 5));
        assert_eq!(t.ident_value(), "tbl");
        let t = Token::new(TokenKind::QuotedIdent, "[col]", Span::new(0, 5));
        assert_eq!(t.ident_value(), "col");
    }

    #[test]
    fn string_value_unescapes_quotes() {
        let t = Token::new(TokenKind::StringLit, "'it''s'", Span::new(0, 7));
        assert_eq!(t.string_value().unwrap(), "it's");
    }

    #[test]
    fn is_keyword_helpers() {
        let t = Token::new(TokenKind::Keyword, "Select", Span::new(0, 6));
        assert!(t.is_keyword("SELECT"));
        assert!(!t.is_keyword("FROM"));
        let p = Token::new(TokenKind::Punct, "(", Span::new(0, 1));
        assert!(p.is_punct('('));
    }
}
