//! Byte-scanning primitives for the lexer's hot loops.
//!
//! Three ingredients make the fused front door fast at the byte level:
//!
//! 1. a **byte-class table** ([`CLASS`]) so the lexer's main loop
//!    dispatches on one table load instead of a cascade of range
//!    comparisons, and a **flags table** ([`FLAGS`]) so run-skipping
//!    loops (whitespace, words, digit runs) test one bit per byte;
//! 2. **SIMD classify-and-skip** on x86_64: SSE2 (a compile-time
//!    baseline of the architecture) classifies 16 bytes per step for
//!    whitespace/word/digit runs and needle searches, and AVX2 —
//!    runtime-detected, used for the long-run needle scans where the
//!    detection check amortises — crosses 32 bytes per step;
//! 3. **widened SWAR fallbacks** ([`memchr`], [`memchr2`], whitespace
//!    runs) that cross uninteresting regions two machine words (16
//!    bytes) at a time on targets without the SIMD path — no external
//!    crates, portable to any `usize` width.
//!
//! The `force-scalar` cargo feature routes every entry point to the
//! obviously-correct byte-at-a-time reference loops ([`scalar`]); CI
//! runs the suite both ways and the in-module equivalence tests compare
//! the dispatched implementations against the reference on adversarial
//! inputs, so the SIMD paths can never silently diverge.

/// Lexical dispatch class of a byte — what the lexer's main loop does
/// when a token starts with it. One entry per byte in [`CLASS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Class {
    /// Space, tab, CR, LF.
    Ws,
    /// Word start: ASCII letter, `_`, or any byte ≥ 0x80.
    Word,
    /// ASCII digit.
    Digit,
    /// `'` — single-quoted string.
    SQuote,
    /// `"` — quoted identifier.
    DQuote,
    /// `` ` `` — quoted identifier.
    Backtick,
    /// `[` — T-SQL bracket identifier (or unknown).
    Bracket,
    /// `$` — positional parameter or dollar-quoted string.
    Dollar,
    /// `?` — positional parameter.
    Question,
    /// `%` — DB-API parameter or operator.
    Percent,
    /// `:` — named parameter or operator.
    Colon,
    /// `.` — number start or punctuation.
    Dot,
    /// `-` — line comment or operator.
    Minus,
    /// `/` — block comment or operator.
    Slash,
    /// `(`, `)`, `,`, `;`.
    Punct,
    /// Everything else: operator characters and unclassifiable bytes.
    Op,
}

const fn classify(b: u8) -> Class {
    match b {
        b' ' | b'\t' | b'\r' | b'\n' => Class::Ws,
        b'\'' => Class::SQuote,
        b'"' => Class::DQuote,
        b'`' => Class::Backtick,
        b'[' => Class::Bracket,
        b'$' => Class::Dollar,
        b'?' => Class::Question,
        b'%' => Class::Percent,
        b':' => Class::Colon,
        b'.' => Class::Dot,
        b'-' => Class::Minus,
        b'/' => Class::Slash,
        b'0'..=b'9' => Class::Digit,
        b'(' | b')' | b',' | b';' => Class::Punct,
        b'_' => Class::Word,
        _ => {
            if b.is_ascii_alphabetic() || b >= 0x80 {
                Class::Word
            } else {
                Class::Op
            }
        }
    }
}

/// Byte → dispatch class, for the lexer's main loop.
pub(crate) static CLASS: [Class; 256] = {
    let mut t = [Class::Op; 256];
    let mut i = 0usize;
    while i < 256 {
        t[i] = classify(i as u8);
        i += 1;
    }
    t
};

/// Flag: byte is whitespace.
pub(crate) const F_WS: u8 = 1 << 0;
/// Flag: byte continues a word token (alphanumeric, `_`, `$`, ≥ 0x80).
pub(crate) const F_WORD: u8 = 1 << 1;
/// Flag: byte is an ASCII digit.
pub(crate) const F_DIGIT: u8 = 1 << 2;

/// Byte → run flags, for [`skip_while`] loops.
pub(crate) static FLAGS: [u8; 256] = {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let b = i as u8;
        let mut f = 0u8;
        if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
            f |= F_WS;
        }
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' || b >= 0x80 {
            f |= F_WORD;
        }
        if b.is_ascii_digit() {
            f |= F_DIGIT;
        }
        t[i] = f;
        i += 1;
    }
    t
};

/// Byte-at-a-time reference implementations. These are the semantic
/// definition of every scan primitive: the SIMD/SWAR paths are pinned to
/// them by the equivalence tests below, and the `force-scalar` feature
/// makes them the production path (CI's scalar leg of the equivalence
/// gate).
#[cfg_attr(not(any(test, feature = "force-scalar")), allow(dead_code))]
pub(crate) mod scalar {
    use super::FLAGS;

    #[inline]
    pub(crate) fn skip_while(bytes: &[u8], mut pos: usize, mask: u8) -> usize {
        while pos < bytes.len() && FLAGS[bytes[pos] as usize] & mask != 0 {
            pos += 1;
        }
        pos
    }

    #[inline]
    pub(crate) fn memchr(needle: u8, hay: &[u8]) -> Option<usize> {
        hay.iter().position(|&b| b == needle)
    }

    #[inline]
    pub(crate) fn memchr2(a: u8, b: u8, hay: &[u8]) -> Option<usize> {
        hay.iter().position(|&x| x == a || x == b)
    }
}

/// Widened SWAR fallbacks: two `usize` lanes (16 bytes on 64-bit) per
/// iteration, used on targets without the x86_64 SIMD path.
#[cfg(not(any(target_arch = "x86_64", feature = "force-scalar")))]
mod swar {
    use super::{scalar, F_WS, FLAGS};

    const WORD: usize = std::mem::size_of::<usize>();
    const LO: usize = usize::from_ne_bytes([0x01; WORD]);
    const HI: usize = usize::from_ne_bytes([0x80; WORD]);

    #[inline]
    fn splat(b: u8) -> usize {
        usize::from_ne_bytes([b; WORD])
    }

    /// True when any byte of `w` is zero (classic SWAR zero-byte test).
    #[inline]
    fn has_zero_byte(w: usize) -> bool {
        w.wrapping_sub(LO) & !w & HI != 0
    }

    #[inline]
    fn load_word(bytes: &[u8], at: usize) -> usize {
        let mut buf = [0u8; WORD];
        buf.copy_from_slice(&bytes[at..at + WORD]);
        usize::from_ne_bytes(buf)
    }

    #[inline]
    pub(crate) fn memchr(needle: u8, hay: &[u8]) -> Option<usize> {
        let sp = splat(needle);
        let mut i = 0usize;
        // Two-word (128-bit on 64-bit targets) stride.
        while i + 2 * WORD <= hay.len() {
            let hit_lo = has_zero_byte(load_word(hay, i) ^ sp);
            let hit_hi = has_zero_byte(load_word(hay, i + WORD) ^ sp);
            if hit_lo || hit_hi {
                break;
            }
            i += 2 * WORD;
        }
        hay[i..].iter().position(|&b| b == needle).map(|p| i + p)
    }

    #[inline]
    pub(crate) fn memchr2(a: u8, b: u8, hay: &[u8]) -> Option<usize> {
        let (sa, sb) = (splat(a), splat(b));
        let mut i = 0usize;
        while i + 2 * WORD <= hay.len() {
            let w0 = load_word(hay, i);
            let w1 = load_word(hay, i + WORD);
            if has_zero_byte(w0 ^ sa)
                || has_zero_byte(w0 ^ sb)
                || has_zero_byte(w1 ^ sa)
                || has_zero_byte(w1 ^ sb)
            {
                break;
            }
            i += 2 * WORD;
        }
        hay[i..].iter().position(|&x| x == a || x == b).map(|p| i + p)
    }

    /// Per-byte mask (0x80 in matching lanes) of bytes equal to `n`.
    #[inline]
    fn eq_mask(w: usize, n: usize) -> usize {
        let x = w ^ n;
        x.wrapping_sub(LO) & !x & HI
    }

    #[inline]
    pub(crate) fn skip_while(bytes: &[u8], mut pos: usize, mask: u8) -> usize {
        // Whitespace runs get the SWAR treatment (the only run kind long
        // enough to amortise on non-x86 targets: formatted scripts indent
        // heavily); word/digit runs stay on the table loop.
        if mask == F_WS {
            let (sp, tb, cr, lf) =
                (splat(b' '), splat(b'\t'), splat(b'\r'), splat(b'\n'));
            while pos + WORD <= bytes.len() {
                let w = load_word(bytes, pos);
                let ws =
                    eq_mask(w, sp) | eq_mask(w, tb) | eq_mask(w, cr) | eq_mask(w, lf);
                if ws != HI {
                    break; // first non-whitespace lane found by the tail loop
                }
                pos += WORD;
            }
            while pos < bytes.len() && FLAGS[bytes[pos] as usize] & mask != 0 {
                pos += 1;
            }
            return pos;
        }
        scalar::skip_while(bytes, pos, mask)
    }
}

/// SSE2/AVX2 classify-and-skip. SSE2 is part of the x86_64 baseline, so
/// the 16-byte paths need no runtime detection; the 32-byte AVX2 needle
/// scans check [`std::arch::is_x86_feature_detected`] (one cached atomic
/// load) and are only used for the region-crossing searches — line
/// comments, string bodies — where runs are long enough to amortise it.
#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
mod simd {
    use super::{scalar, F_DIGIT, F_WORD, F_WS};
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// 16-bit mask of lanes holding whitespace (space, tab, CR, LF).
    #[inline]
    unsafe fn ws_mask16(v: __m128i) -> u32 {
        let sp = _mm_cmpeq_epi8(v, _mm_set1_epi8(b' ' as i8));
        let tb = _mm_cmpeq_epi8(v, _mm_set1_epi8(b'\t' as i8));
        let cr = _mm_cmpeq_epi8(v, _mm_set1_epi8(b'\r' as i8));
        let lf = _mm_cmpeq_epi8(v, _mm_set1_epi8(b'\n' as i8));
        _mm_movemask_epi8(_mm_or_si128(_mm_or_si128(sp, tb), _mm_or_si128(cr, lf))) as u32
    }

    /// 16-bit mask of lanes in `[lo, hi]` (unsigned).
    #[inline]
    unsafe fn range_mask16(v: __m128i, lo: u8, hi: u8) -> __m128i {
        let ge = _mm_cmpeq_epi8(_mm_max_epu8(v, _mm_set1_epi8(lo as i8)), v);
        let le = _mm_cmpeq_epi8(_mm_min_epu8(v, _mm_set1_epi8(hi as i8)), v);
        _mm_and_si128(ge, le)
    }

    /// 16-bit mask of lanes continuing a word token: ASCII alphanumeric,
    /// `_`, `$`, or any byte ≥ 0x80 (must agree with `FLAGS & F_WORD`).
    #[inline]
    unsafe fn word_mask16(v: __m128i) -> u32 {
        // Bytes ≥ 0x80 are exactly the ones negative as signed i8.
        let high = _mm_cmpgt_epi8(_mm_setzero_si128(), v);
        // Case-fold with `| 0x20`: folds A–Z onto a–z and cannot pull
        // any non-letter into the a–z range ('@'→'`', high bytes stay
        // above 0x7A unsigned and are caught by `high` regardless).
        let folded = _mm_or_si128(v, _mm_set1_epi8(0x20));
        let alpha = range_mask16(folded, b'a', b'z');
        let digit = range_mask16(v, b'0', b'9');
        let us = _mm_cmpeq_epi8(v, _mm_set1_epi8(b'_' as i8));
        let dl = _mm_cmpeq_epi8(v, _mm_set1_epi8(b'$' as i8));
        let m = _mm_or_si128(
            _mm_or_si128(high, alpha),
            _mm_or_si128(digit, _mm_or_si128(us, dl)),
        );
        _mm_movemask_epi8(m) as u32
    }

    #[inline]
    unsafe fn digit_mask16(v: __m128i) -> u32 {
        _mm_movemask_epi8(range_mask16(v, b'0', b'9')) as u32
    }

    #[inline]
    pub(crate) fn skip_while(bytes: &[u8], mut pos: usize, mask: u8) -> usize {
        let len = bytes.len();
        unsafe {
            while pos + 16 <= len {
                let v = _mm_loadu_si128(bytes.as_ptr().add(pos) as *const __m128i);
                let in_class = match mask {
                    F_WS => ws_mask16(v),
                    F_WORD => word_mask16(v),
                    F_DIGIT => digit_mask16(v),
                    // Combined masks never occur on the hot path.
                    _ => return scalar::skip_while(bytes, pos, mask),
                };
                let miss = !in_class & 0xFFFF;
                if miss != 0 {
                    return pos + miss.trailing_zeros() as usize;
                }
                pos += 16;
            }
        }
        scalar::skip_while(bytes, pos, mask)
    }

    #[inline]
    pub(crate) fn memchr(needle: u8, hay: &[u8]) -> Option<usize> {
        if hay.len() >= 32 && is_x86_feature_detected!("avx2") {
            return unsafe { memchr_avx2(needle, hay) };
        }
        unsafe { memchr_sse2(needle, hay) }
    }

    #[inline]
    pub(crate) fn memchr2(a: u8, b: u8, hay: &[u8]) -> Option<usize> {
        if hay.len() >= 32 && is_x86_feature_detected!("avx2") {
            return unsafe { memchr2_avx2(a, b, hay) };
        }
        unsafe { memchr2_sse2(a, b, hay) }
    }

    #[inline]
    unsafe fn memchr_sse2(needle: u8, hay: &[u8]) -> Option<usize> {
        let sp = _mm_set1_epi8(needle as i8);
        let mut i = 0usize;
        while i + 16 <= hay.len() {
            let v = _mm_loadu_si128(hay.as_ptr().add(i) as *const __m128i);
            let m = _mm_movemask_epi8(_mm_cmpeq_epi8(v, sp)) as u32;
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 16;
        }
        hay[i..].iter().position(|&b| b == needle).map(|p| i + p)
    }

    #[inline]
    unsafe fn memchr2_sse2(a: u8, b: u8, hay: &[u8]) -> Option<usize> {
        let (sa, sb) = (_mm_set1_epi8(a as i8), _mm_set1_epi8(b as i8));
        let mut i = 0usize;
        while i + 16 <= hay.len() {
            let v = _mm_loadu_si128(hay.as_ptr().add(i) as *const __m128i);
            let hit = _mm_or_si128(_mm_cmpeq_epi8(v, sa), _mm_cmpeq_epi8(v, sb));
            let m = _mm_movemask_epi8(hit) as u32;
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 16;
        }
        hay[i..].iter().position(|&x| x == a || x == b).map(|p| i + p)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn memchr_avx2(needle: u8, hay: &[u8]) -> Option<usize> {
        let sp = _mm256_set1_epi8(needle as i8);
        let mut i = 0usize;
        while i + 32 <= hay.len() {
            let v = _mm256_loadu_si256(hay.as_ptr().add(i) as *const __m256i);
            let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, sp)) as u32;
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 32;
        }
        memchr_sse2(needle, &hay[i..]).map(|p| i + p)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn memchr2_avx2(a: u8, b: u8, hay: &[u8]) -> Option<usize> {
        let (sa, sb) = (_mm256_set1_epi8(a as i8), _mm256_set1_epi8(b as i8));
        let mut i = 0usize;
        while i + 32 <= hay.len() {
            let v = _mm256_loadu_si256(hay.as_ptr().add(i) as *const __m256i);
            let hit = _mm256_or_si256(_mm256_cmpeq_epi8(v, sa), _mm256_cmpeq_epi8(v, sb));
            let m = _mm256_movemask_epi8(hit) as u32;
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 32;
        }
        memchr2_sse2(a, b, &hay[i..]).map(|p| i + p)
    }
}

/// Advance `pos` past every byte whose [`FLAGS`] entry intersects `mask`.
///
/// Runs on real SQL are usually *short* — one space, a 3–10 byte
/// identifier — so a scalar probe handles the first few bytes and the
/// wide loop only engages once a run has proven long enough to amortise
/// the vector setup.
#[inline]
pub(crate) fn skip_while(bytes: &[u8], pos: usize, mask: u8) -> usize {
    #[cfg(feature = "force-scalar")]
    return scalar::skip_while(bytes, pos, mask);
    #[cfg(not(feature = "force-scalar"))]
    {
        let n = bytes.len();
        let probe_end = n.min(pos + 4);
        let mut p = pos;
        while p < probe_end {
            if FLAGS[bytes[p] as usize] & mask == 0 {
                return p;
            }
            p += 1;
        }
        if p >= n {
            return p;
        }
        #[cfg(target_arch = "x86_64")]
        return simd::skip_while(bytes, p, mask);
        #[cfg(not(target_arch = "x86_64"))]
        return swar::skip_while(bytes, p, mask);
    }
}

/// Index of the first occurrence of `needle` in `hay`.
#[inline]
pub(crate) fn memchr(needle: u8, hay: &[u8]) -> Option<usize> {
    #[cfg(feature = "force-scalar")]
    return scalar::memchr(needle, hay);
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    return simd::memchr(needle, hay);
    #[cfg(not(any(target_arch = "x86_64", feature = "force-scalar")))]
    return swar::memchr(needle, hay);
}

/// Index of the first occurrence of `a` or `b` in `hay`.
#[inline]
pub(crate) fn memchr2(a: u8, b: u8, hay: &[u8]) -> Option<usize> {
    #[cfg(feature = "force-scalar")]
    return scalar::memchr2(a, b, hay);
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    return simd::memchr2(a, b, hay);
    #[cfg(not(any(target_arch = "x86_64", feature = "force-scalar")))]
    return swar::memchr2(a, b, hay);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memchr_agrees_with_position() {
        let hay = b"SELECT * FROM t -- a much longer comment body without the byte\nrest";
        for needle in [b'\n', b'S', b't', b'z', b'\0'] {
            assert_eq!(
                memchr(needle, hay),
                hay.iter().position(|&b| b == needle),
                "needle {needle:#x}"
            );
        }
        assert_eq!(memchr(b'x', b""), None);
        // Hits in the unaligned tail after word-sized strides.
        let tail = b"aaaaaaaaab";
        assert_eq!(memchr(b'b', tail), Some(9));
    }

    #[test]
    fn memchr2_agrees_with_position() {
        let hay = b"it''s a \\'string\\' body; with ; semicolons and quotes '";
        for (a, b) in [(b'\'', b'\\'), (b';', b'\n'), (b'z', b'q'), (b'*', b'/')] {
            assert_eq!(
                memchr2(a, b, hay),
                hay.iter().position(|&x| x == a || x == b),
                "needles {a:#x} {b:#x}"
            );
        }
        assert_eq!(memchr2(b'x', b'y', b"no hits here at all......."), None);
    }

    #[test]
    fn class_table_matches_spot_checks() {
        assert_eq!(CLASS[b' ' as usize], Class::Ws);
        assert_eq!(CLASS[b'a' as usize], Class::Word);
        assert_eq!(CLASS[b'_' as usize], Class::Word);
        assert_eq!(CLASS[0xC3], Class::Word);
        assert_eq!(CLASS[b'7' as usize], Class::Digit);
        assert_eq!(CLASS[b';' as usize], Class::Punct);
        assert_eq!(CLASS[b'=' as usize], Class::Op);
        assert_eq!(CLASS[0x01], Class::Op);
    }

    #[test]
    fn flags_cover_word_runs() {
        assert_ne!(FLAGS[b'$' as usize] & F_WORD, 0, "lex_word consumes $");
        assert_eq!(FLAGS[b'$' as usize] & F_WS, 0);
        assert_eq!(skip_while(b"abc_9$ rest", 0, F_WORD), 6);
        assert_eq!(skip_while(b"   \t\nx", 0, F_WS), 5);
        assert_eq!(skip_while(b"123a", 0, F_DIGIT), 3);
    }

    /// Deterministic xorshift byte stream for the equivalence corpus.
    fn pseudo_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 24) as u8
            })
            .collect()
    }

    /// The dispatched implementations (SIMD on x86_64, widened SWAR
    /// elsewhere, reference loops under `force-scalar`) must agree with
    /// the scalar reference on every byte value, every alignment, and
    /// inputs straddling the 16/32-byte stride boundaries.
    #[test]
    fn dispatched_scans_match_scalar_reference() {
        let mut corpus: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"   \t\r\n   word_99$ rest".to_vec(),
            vec![b' '; 127],
            vec![b'x'; 129],
            (0u8..=255).collect(),
        ];
        for seed in [1u64, 0xBEEF, 0x5EED] {
            for len in [15, 16, 17, 31, 32, 33, 63, 64, 65, 1000] {
                corpus.push(pseudo_bytes(seed, len));
            }
        }
        // Long homogeneous runs with a class break at every offset near
        // the stride boundaries.
        for brk in 0..40usize {
            let mut ws = vec![b' '; 48];
            ws[brk] = b'x';
            corpus.push(ws);
            let mut word = vec![b'w'; 48];
            word[brk] = b' ';
            corpus.push(word);
        }
        for bytes in &corpus {
            for mask in [F_WS, F_WORD, F_DIGIT] {
                for start in 0..bytes.len().min(20) {
                    assert_eq!(
                        skip_while(bytes, start, mask),
                        scalar::skip_while(bytes, start, mask),
                        "skip_while mask={mask} start={start} on {bytes:?}"
                    );
                }
            }
            for needle in [b' ', b'\n', b'\'', b'x', 0u8, 0xFF] {
                assert_eq!(
                    memchr(needle, bytes),
                    scalar::memchr(needle, bytes),
                    "memchr {needle:#x} on {bytes:?}"
                );
                assert_eq!(
                    memchr2(needle, b'*', bytes),
                    scalar::memchr2(needle, b'*', bytes),
                    "memchr2 {needle:#x} on {bytes:?}"
                );
            }
        }
    }
}
