//! Byte-scanning primitives for the lexer's hot loops.
//!
//! Two ingredients make the fused front door fast at the byte level:
//!
//! 1. a **byte-class table** ([`CLASS`]) so the lexer's main loop
//!    dispatches on one table load instead of a cascade of range
//!    comparisons, and a **flags table** ([`FLAGS`]) so run-skipping
//!    loops (whitespace, words, digit runs) test one bit per byte;
//! 2. **`memchr`-style skip loops** ([`memchr`], [`memchr2`]) that cross
//!    long uninteresting regions (line comments, string bodies, quoted
//!    identifiers) a machine word at a time (SWAR — no SIMD intrinsics,
//!    no external crates, portable to any `usize` width).

/// Lexical dispatch class of a byte — what the lexer's main loop does
/// when a token starts with it. One entry per byte in [`CLASS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Class {
    /// Space, tab, CR, LF.
    Ws,
    /// Word start: ASCII letter, `_`, or any byte ≥ 0x80.
    Word,
    /// ASCII digit.
    Digit,
    /// `'` — single-quoted string.
    SQuote,
    /// `"` — quoted identifier.
    DQuote,
    /// `` ` `` — quoted identifier.
    Backtick,
    /// `[` — T-SQL bracket identifier (or unknown).
    Bracket,
    /// `$` — positional parameter or dollar-quoted string.
    Dollar,
    /// `?` — positional parameter.
    Question,
    /// `%` — DB-API parameter or operator.
    Percent,
    /// `:` — named parameter or operator.
    Colon,
    /// `.` — number start or punctuation.
    Dot,
    /// `-` — line comment or operator.
    Minus,
    /// `/` — block comment or operator.
    Slash,
    /// `(`, `)`, `,`, `;`.
    Punct,
    /// Everything else: operator characters and unclassifiable bytes.
    Op,
}

const fn classify(b: u8) -> Class {
    match b {
        b' ' | b'\t' | b'\r' | b'\n' => Class::Ws,
        b'\'' => Class::SQuote,
        b'"' => Class::DQuote,
        b'`' => Class::Backtick,
        b'[' => Class::Bracket,
        b'$' => Class::Dollar,
        b'?' => Class::Question,
        b'%' => Class::Percent,
        b':' => Class::Colon,
        b'.' => Class::Dot,
        b'-' => Class::Minus,
        b'/' => Class::Slash,
        b'0'..=b'9' => Class::Digit,
        b'(' | b')' | b',' | b';' => Class::Punct,
        b'_' => Class::Word,
        _ => {
            if b.is_ascii_alphabetic() || b >= 0x80 {
                Class::Word
            } else {
                Class::Op
            }
        }
    }
}

/// Byte → dispatch class, for the lexer's main loop.
pub(crate) static CLASS: [Class; 256] = {
    let mut t = [Class::Op; 256];
    let mut i = 0usize;
    while i < 256 {
        t[i] = classify(i as u8);
        i += 1;
    }
    t
};

/// Flag: byte is whitespace.
pub(crate) const F_WS: u8 = 1 << 0;
/// Flag: byte continues a word token (alphanumeric, `_`, `$`, ≥ 0x80).
pub(crate) const F_WORD: u8 = 1 << 1;
/// Flag: byte is an ASCII digit.
pub(crate) const F_DIGIT: u8 = 1 << 2;

/// Byte → run flags, for [`skip_while`] loops.
pub(crate) static FLAGS: [u8; 256] = {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let b = i as u8;
        let mut f = 0u8;
        if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
            f |= F_WS;
        }
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' || b >= 0x80 {
            f |= F_WORD;
        }
        if b.is_ascii_digit() {
            f |= F_DIGIT;
        }
        t[i] = f;
        i += 1;
    }
    t
};

/// Advance `pos` past every byte whose [`FLAGS`] entry intersects `mask`.
#[inline]
pub(crate) fn skip_while(bytes: &[u8], mut pos: usize, mask: u8) -> usize {
    while pos < bytes.len() && FLAGS[bytes[pos] as usize] & mask != 0 {
        pos += 1;
    }
    pos
}

const WORD: usize = std::mem::size_of::<usize>();
const LO: usize = usize::from_ne_bytes([0x01; WORD]);
const HI: usize = usize::from_ne_bytes([0x80; WORD]);

#[inline]
fn splat(b: u8) -> usize {
    usize::from_ne_bytes([b; WORD])
}

/// True when any byte of `w` is zero (classic SWAR zero-byte test).
#[inline]
fn has_zero_byte(w: usize) -> bool {
    w.wrapping_sub(LO) & !w & HI != 0
}

#[inline]
fn load_word(bytes: &[u8], at: usize) -> usize {
    let mut buf = [0u8; WORD];
    buf.copy_from_slice(&bytes[at..at + WORD]);
    usize::from_ne_bytes(buf)
}

/// Index of the first occurrence of `needle` in `hay`, scanning a word at
/// a time.
#[inline]
pub(crate) fn memchr(needle: u8, hay: &[u8]) -> Option<usize> {
    let sp = splat(needle);
    let mut i = 0usize;
    while i + WORD <= hay.len() {
        if has_zero_byte(load_word(hay, i) ^ sp) {
            break;
        }
        i += WORD;
    }
    hay[i..].iter().position(|&b| b == needle).map(|p| i + p)
}

/// Index of the first occurrence of `a` or `b` in `hay`, scanning a word
/// at a time.
#[inline]
pub(crate) fn memchr2(a: u8, b: u8, hay: &[u8]) -> Option<usize> {
    let (sa, sb) = (splat(a), splat(b));
    let mut i = 0usize;
    while i + WORD <= hay.len() {
        let w = load_word(hay, i);
        if has_zero_byte(w ^ sa) || has_zero_byte(w ^ sb) {
            break;
        }
        i += WORD;
    }
    hay[i..].iter().position(|&x| x == a || x == b).map(|p| i + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memchr_agrees_with_position() {
        let hay = b"SELECT * FROM t -- a much longer comment body without the byte\nrest";
        for needle in [b'\n', b'S', b't', b'z', b'\0'] {
            assert_eq!(
                memchr(needle, hay),
                hay.iter().position(|&b| b == needle),
                "needle {needle:#x}"
            );
        }
        assert_eq!(memchr(b'x', b""), None);
        // Hits in the unaligned tail after word-sized strides.
        let tail = b"aaaaaaaaab";
        assert_eq!(memchr(b'b', tail), Some(9));
    }

    #[test]
    fn memchr2_agrees_with_position() {
        let hay = b"it''s a \\'string\\' body; with ; semicolons and quotes '";
        for (a, b) in [(b'\'', b'\\'), (b';', b'\n'), (b'z', b'q'), (b'*', b'/')] {
            assert_eq!(
                memchr2(a, b, hay),
                hay.iter().position(|&x| x == a || x == b),
                "needles {a:#x} {b:#x}"
            );
        }
        assert_eq!(memchr2(b'x', b'y', b"no hits here at all......."), None);
    }

    #[test]
    fn class_table_matches_spot_checks() {
        assert_eq!(CLASS[b' ' as usize], Class::Ws);
        assert_eq!(CLASS[b'a' as usize], Class::Word);
        assert_eq!(CLASS[b'_' as usize], Class::Word);
        assert_eq!(CLASS[0xC3], Class::Word);
        assert_eq!(CLASS[b'7' as usize], Class::Digit);
        assert_eq!(CLASS[b';' as usize], Class::Punct);
        assert_eq!(CLASS[b'=' as usize], Class::Op);
        assert_eq!(CLASS[0x01], Class::Op);
    }

    #[test]
    fn flags_cover_word_runs() {
        assert_ne!(FLAGS[b'$' as usize] & F_WORD, 0, "lex_word consumes $");
        assert_eq!(FLAGS[b'$' as usize] & F_WS, 0);
        assert_eq!(skip_while(b"abc_9$ rest", 0, F_WORD), 6);
        assert_eq!(skip_while(b"   \t\nx", 0, F_WS), 5);
        assert_eq!(skip_while(b"123a", 0, F_DIGIT), 3);
    }
}
