//! Dialect-tolerant SQL tokenizer.
//!
//! The lexer never fails: any byte sequence it cannot classify becomes an
//! [`TokenKind::Unknown`] token. It is also lossless — whitespace and
//! comments are emitted as tokens — so the original statement can always be
//! reconstructed exactly. Both properties mirror the contract of the
//! `sqlparse` library the paper builds on.
//!
//! The lexer is a *push* machine: it drives a [`TokenSink`] one token at a
//! time and materialises nothing itself. [`lex_spans`] collects the stream
//! into a `Vec` for callers that want it, but the fused front door
//! ([`crate::splitter::split_stream`]) consumes tokens directly — statement
//! splitting, content hashing, and template fingerprinting all happen in
//! this single pass, with no whole-script token buffer. The byte loop
//! dispatches through the [`crate::scan`] class table and crosses long runs
//! (comments, string bodies, whitespace, words) with `memchr`-style skip
//! loops.

use crate::dialect::Dialect;
use crate::scan::{self, Class, F_DIGIT, F_WORD, F_WS};
use crate::token::{is_keyword, Span, Token, TokenKind};

/// Receiver of the lexer's token stream. Tokens arrive in source order as
/// `(kind, start, end)` byte ranges over the lexed slice; the sink slices
/// the source itself if it needs text.
pub(crate) trait TokenSink {
    /// When `false`, the lexer may skip keyword classification and emit
    /// every word token as [`TokenKind::Ident`] — for sinks that only
    /// care about token *boundaries* (e.g. the parallel-split pre-scan).
    const CLASSIFY_WORDS: bool = true;

    /// One token.
    fn token(&mut self, kind: TokenKind, start: usize, end: usize);

    /// One word token (identifier-class byte run), delivered with its
    /// text when `CLASSIFY_WORDS` is set. The default classifies via the
    /// static keyword table and forwards to [`TokenSink::token`]; sinks
    /// that carry an [`crate::intern::Interner`] override this to resolve
    /// the word to a symbol in one hash-and-probe instead.
    #[inline]
    fn word(&mut self, text: &str, start: usize, end: usize) {
        let kind = if is_keyword(text) { TokenKind::Keyword } else { TokenKind::Ident };
        self.token(kind, start, end);
    }

    /// Early-exit check, polled once per token. The default never stops.
    #[inline]
    fn done(&self) -> bool {
        false
    }
}

/// Lex `input` under `dialect`, pushing every token into `sink`.
pub(crate) fn lex_into<S: TokenSink>(input: &str, dialect: Dialect, sink: &mut S) {
    Lexer { src: input, bytes: input.as_bytes(), pos: 0, dialect, sink }.run();
}

/// Sink collecting the full span-level stream.
struct SpanSink {
    out: Vec<SpannedToken>,
}

impl TokenSink for SpanSink {
    #[inline]
    fn token(&mut self, kind: TokenKind, start: usize, end: usize) {
        self.out.push(SpannedToken { kind, span: Span::new(start, end) });
    }
}

/// Tokenize `input` into a lossless token stream.
///
/// ```
/// use sqlcheck_parser::lexer::tokenize;
/// use sqlcheck_parser::token::TokenKind;
/// let toks = tokenize("SELECT * FROM t WHERE a = 'x'");
/// assert_eq!(toks[0].kind, TokenKind::Keyword);
/// let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
/// assert_eq!(rebuilt, "SELECT * FROM t WHERE a = 'x'");
/// ```
pub fn tokenize(input: &str) -> Vec<Token> {
    tokenize_dialect(input, Dialect::Generic)
}

/// [`tokenize`] under an explicit [`Dialect`].
pub fn tokenize_dialect(input: &str, dialect: Dialect) -> Vec<Token> {
    lex_spans_dialect(input, dialect)
        .into_iter()
        .map(|t| Token::new(t.kind, &input[t.span.start..t.span.end], t.span))
        .collect()
}

/// Sink that materialises significant tokens only — trivia is filtered at
/// the span level, before any text is allocated.
struct SignificantSink<'a> {
    src: &'a str,
    out: Vec<Token>,
}

impl TokenSink for SignificantSink<'_> {
    #[inline]
    fn token(&mut self, kind: TokenKind, start: usize, end: usize) {
        if !matches!(kind, TokenKind::Whitespace | TokenKind::Comment) {
            self.out.push(Token::new(kind, &self.src[start..end], Span::new(start, end)));
        }
    }
}

/// Tokenize and drop whitespace/comment trivia. Convenient for detection
/// rules that only care about the significant token sequence. Trivia is
/// discarded at the span level — no text is ever allocated for it.
pub fn tokenize_significant(input: &str) -> Vec<Token> {
    tokenize_significant_dialect(input, Dialect::Generic)
}

/// [`tokenize_significant`] under an explicit [`Dialect`].
pub fn tokenize_significant_dialect(input: &str, dialect: Dialect) -> Vec<Token> {
    let mut sink = SignificantSink { src: input, out: Vec::with_capacity(input.len() / 4 + 4) };
    lex_into(input, dialect, &mut sink);
    sink.out
}

/// A token at the span level: lexical class and byte range, **no owned
/// text**. The allocation-free representation the parse-once front-end
/// splits and fingerprints on; owned [`Token`]s are materialised (via
/// [`SpannedToken::materialize`]) only for the statement texts that
/// actually get parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpannedToken {
    /// Lexical class.
    pub kind: TokenKind,
    /// Location in the original input.
    pub span: Span,
}

impl SpannedToken {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.span.start..self.span.end]
    }

    /// True for tokens that carry no syntactic meaning.
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokenKind::Whitespace | TokenKind::Comment)
    }

    /// Build the equivalent owned [`Token`].
    pub fn materialize(&self, src: &str) -> Token {
        Token::new(self.kind, self.text(src), self.span)
    }
}

/// Tokenize `input` into span-level tokens without allocating any token
/// text. Same classification as [`tokenize`]; `tokenize` is in fact this
/// pass plus text materialisation.
pub fn lex_spans(input: &str) -> Vec<SpannedToken> {
    lex_spans_dialect(input, Dialect::Generic)
}

/// [`lex_spans`] under an explicit [`Dialect`].
pub fn lex_spans_dialect(input: &str, dialect: Dialect) -> Vec<SpannedToken> {
    // ~2.2 bytes/token on realistic SQL; reserve once, grow rarely.
    let mut sink = SpanSink { out: Vec::with_capacity(input.len() / 2) };
    lex_into(input, dialect, &mut sink);
    sink.out
}

struct Lexer<'a, 's, S: TokenSink> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    dialect: Dialect,
    sink: &'s mut S,
}

impl<S: TokenSink> Lexer<'_, '_, S> {
    fn run(mut self) {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match scan::CLASS[b as usize] {
                Class::Ws => self.lex_whitespace(start),
                Class::Word => self.lex_word(start),
                Class::Digit => self.lex_number(start),
                Class::SQuote => self.lex_single_quoted(start),
                Class::DQuote => {
                    // MySQL (without ANSI_QUOTES) reads "…" as a string.
                    let kind = if self.dialect.double_quote_strings() {
                        TokenKind::StringLit
                    } else {
                        TokenKind::QuotedIdent
                    };
                    self.lex_delimited(start, b'"', kind)
                }
                Class::Backtick => {
                    if self.dialect.backtick_idents() {
                        self.lex_delimited(start, b'`', TokenKind::QuotedIdent)
                    } else {
                        self.emit_one(start, TokenKind::Unknown)
                    }
                }
                Class::Bracket => {
                    if self.dialect.bracket_idents() {
                        self.lex_bracket_ident(start)
                    } else {
                        self.emit_one(start, TokenKind::Unknown)
                    }
                }
                Class::Dollar => {
                    if self.dialect.dollar_quoting() {
                        self.lex_dollar(start)
                    } else {
                        // '$' is F_WORD, so `$$`/`$tag$` lex as ordinary
                        // words — exactly what MySQL custom delimiters need.
                        self.lex_word(start)
                    }
                }
                Class::Question => self.emit_one(start, TokenKind::Param),
                Class::Percent => {
                    if matches!(self.peek(1), Some(b's') | Some(b'(')) {
                        self.lex_format_param(start)
                    } else {
                        self.lex_operator_or_unknown(start)
                    }
                }
                Class::Colon => {
                    if self
                        .peek(1)
                        .map(|c| c.is_ascii_alphabetic() || c == b'_')
                        .unwrap_or(false)
                    {
                        self.lex_named_param(start)
                    } else {
                        self.lex_operator_or_unknown(start)
                    }
                }
                Class::Dot => {
                    if self.peek(1).map(|c| c.is_ascii_digit()).unwrap_or(false) {
                        self.lex_number(start)
                    } else {
                        self.emit_one(start, TokenKind::Punct)
                    }
                }
                Class::Minus => {
                    if self.peek(1) == Some(b'-') {
                        self.lex_line_comment(start)
                    } else {
                        self.lex_operator_or_unknown(start)
                    }
                }
                Class::Slash => {
                    if self.peek(1) == Some(b'*') {
                        self.lex_block_comment(start)
                    } else {
                        self.lex_operator_or_unknown(start)
                    }
                }
                Class::Punct => self.emit_one(start, TokenKind::Punct),
                Class::Op => {
                    if b == b'#' && self.dialect.hash_comments() {
                        self.lex_line_comment(start)
                    } else {
                        self.lex_operator_or_unknown(start)
                    }
                }
            }
            if self.sink.done() {
                return;
            }
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn emit(&mut self, start: usize, kind: TokenKind) {
        self.sink.token(kind, start, self.pos);
    }

    fn emit_one(&mut self, start: usize, kind: TokenKind) {
        self.pos += 1;
        self.emit(start, kind);
    }

    /// Jump `self.pos` to the first match of `a`/`b` at or after it, or to
    /// end-of-input; returns the matched byte, if any.
    fn seek2(&mut self, a: u8, b: u8) -> Option<u8> {
        match scan::memchr2(a, b, &self.bytes[self.pos..]) {
            Some(off) => {
                self.pos += off;
                Some(self.bytes[self.pos])
            }
            None => {
                self.pos = self.bytes.len();
                None
            }
        }
    }

    fn lex_whitespace(&mut self, start: usize) {
        // The first byte is known whitespace; skip from the second.
        self.pos = scan::skip_while(self.bytes, self.pos + 1, F_WS);
        self.emit(start, TokenKind::Whitespace);
    }

    fn lex_line_comment(&mut self, start: usize) {
        self.pos = match scan::memchr(b'\n', &self.bytes[self.pos..]) {
            Some(off) => self.pos + off,
            None => self.bytes.len(),
        };
        self.emit(start, TokenKind::Comment);
    }

    fn lex_block_comment(&mut self, start: usize) {
        self.pos += 2; // consume "/*"
        let mut depth = 1usize;
        while depth > 0 {
            match self.seek2(b'*', b'/') {
                Some(b'*') if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                Some(b'/') if self.peek(1) == Some(b'*') => {
                    if self.dialect.nested_block_comments() {
                        depth += 1;
                        self.pos += 2;
                    } else {
                        // Non-nesting dialects: an inner "/*" is comment
                        // text; step past the '/' only, so a following
                        // "*/" still closes.
                        self.pos += 1;
                    }
                }
                Some(_) => self.pos += 1,
                None => break,
            }
        }
        self.emit(start, TokenKind::Comment);
    }

    fn lex_single_quoted(&mut self, start: usize) {
        self.pos += 1; // opening quote
        loop {
            match self.seek2(b'\'', b'\\') {
                Some(b'\'') => {
                    if self.peek(1) == Some(b'\'') {
                        self.pos += 2; // escaped quote
                    } else {
                        self.pos += 1; // closing quote
                        break;
                    }
                }
                Some(_) => {
                    // Tolerate backslash escapes (MySQL); harmless elsewhere.
                    if self.pos + 1 < self.bytes.len() {
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                    }
                }
                None => break,
            }
        }
        self.emit(start, TokenKind::StringLit);
    }

    fn lex_delimited(&mut self, start: usize, quote: u8, kind: TokenKind) {
        self.pos += 1;
        loop {
            match scan::memchr(quote, &self.bytes[self.pos..]) {
                Some(off) => {
                    self.pos += off;
                    if self.peek(1) == Some(quote) {
                        self.pos += 2; // doubled delimiter escape
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                None => {
                    self.pos = self.bytes.len();
                    break;
                }
            }
        }
        self.emit(start, kind);
    }

    fn lex_bracket_ident(&mut self, start: usize) {
        // `[name]` T-SQL quoting; but a bare `[` followed by something that
        // is not a simple name..`]` is treated as an unknown/operator char
        // (e.g. the POSIX classes `[[:<:]]` appear *inside* string literals,
        // so they never reach here).
        match scan::memchr2(b']', b'\n', &self.bytes[self.pos + 1..]) {
            Some(off) if self.bytes[self.pos + 1 + off] == b']' => {
                self.pos += off + 2;
                self.emit(start, TokenKind::QuotedIdent);
            }
            _ => self.emit_one(start, TokenKind::Unknown),
        }
    }

    fn lex_dollar(&mut self, start: usize) {
        // $1 positional param, or $tag$...$tag$ dollar-quoted string.
        if self.peek(1).map(|c| c.is_ascii_digit()).unwrap_or(false) {
            self.pos = scan::skip_while(self.bytes, self.pos + 1, F_DIGIT);
            self.emit(start, TokenKind::Param);
            return;
        }
        // find closing '$' of the opening tag
        let mut i = self.pos + 1;
        while i < self.bytes.len()
            && (self.bytes[i].is_ascii_alphanumeric() || self.bytes[i] == b'_')
        {
            i += 1;
        }
        if i < self.bytes.len() && self.bytes[i] == b'$' {
            let tag = &self.src[self.pos..=i];
            if let Some(close) = self.src[i + 1..].find(tag) {
                self.pos = i + 1 + close + tag.len();
                self.emit(start, TokenKind::StringLit);
                return;
            }
            // Unterminated dollar-quote: consume the rest as a string.
            self.pos = self.bytes.len();
            self.emit(start, TokenKind::StringLit);
            return;
        }
        self.emit_one(start, TokenKind::Unknown);
    }

    fn lex_format_param(&mut self, start: usize) {
        // %s or %(name)s — Python DB-API style parameters commonly embedded
        // in the GitHub corpus statements.
        if self.peek(1) == Some(b's') {
            self.pos += 2;
            self.emit(start, TokenKind::Param);
            return;
        }
        // %(name)s
        let mut i = self.pos + 2;
        while i < self.bytes.len() && self.bytes[i] != b')' && self.bytes[i] != b'\n' {
            i += 1;
        }
        if i + 1 < self.bytes.len() && self.bytes[i] == b')' && self.bytes[i + 1] == b's' {
            self.pos = i + 2;
            self.emit(start, TokenKind::Param);
        } else {
            self.emit_one(start, TokenKind::Unknown);
        }
    }

    fn lex_named_param(&mut self, start: usize) {
        self.pos += 1;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        self.emit(start, TokenKind::Param);
    }

    fn lex_number(&mut self, start: usize) {
        let mut seen_dot = false;
        let mut seen_exp = false;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_digit() {
                self.pos = scan::skip_while(self.bytes, self.pos + 1, F_DIGIT);
            } else if b == b'.' && !seen_dot && !seen_exp {
                seen_dot = true;
                self.pos += 1;
            } else if (b == b'e' || b == b'E')
                && !seen_exp
                && self
                    .peek(1)
                    .map(|c| c.is_ascii_digit() || c == b'+' || c == b'-')
                    .unwrap_or(false)
            {
                seen_exp = true;
                self.pos += 2;
            } else {
                break;
            }
        }
        self.emit(start, TokenKind::NumberLit);
    }

    fn lex_word(&mut self, start: usize) {
        // The first byte is known word-class; skip from the second.
        self.pos = scan::skip_while(self.bytes, self.pos + 1, F_WORD);
        // Without dollar-quoting, an interior '$' starts a new token so a
        // custom delimiter fused to a word (`END$$`) still matches at a
        // token boundary. Words *starting* with '$' stay whole.
        if !self.dialect.dollar_quoting() && self.bytes[start] != b'$' {
            if let Some(off) = scan::memchr(b'$', &self.bytes[start + 1..self.pos]) {
                self.pos = start + 1 + off;
            }
        }
        if S::CLASSIFY_WORDS {
            self.sink.word(&self.src[start..self.pos], start, self.pos);
        } else {
            self.emit(start, TokenKind::Ident);
        }
    }

    fn lex_operator_or_unknown(&mut self, start: usize) {
        // Multi-char operators first, longest match wins.
        const OPS: &[&str] = &[
            "<=>", "!=", "<>", "<=", ">=", "||", "::", ":=", "==", "->>", "->", "<<", ">>",
        ];
        for op in OPS {
            if self.src[self.pos..].starts_with(op) {
                self.pos += op.len();
                self.emit(start, TokenKind::Operator);
                return;
            }
        }
        let b = self.bytes[self.pos];
        if matches!(b, b'=' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'!' | b'~' | b'^' | b':' | b'#' | b'@')
        {
            self.emit_one(start, TokenKind::Operator);
        } else {
            self.emit_one(start, TokenKind::Unknown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize_significant(sql).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lossless_reconstruction() {
        let sql = "SELECT a, b FROM t -- trailing\n WHERE x = 'it''s' /* c */;";
        let rebuilt: String = tokenize(sql).iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, sql);
    }

    #[test]
    fn classifies_basic_select() {
        let k = kinds("SELECT * FROM t WHERE a = 1");
        assert_eq!(k, vec![Keyword, Operator, Keyword, Ident, Keyword, Ident, Operator, NumberLit]);
    }

    #[test]
    fn string_with_escaped_quote() {
        let toks = tokenize_significant("'it''s'");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, StringLit);
        assert_eq!(toks[0].string_value().unwrap(), "it's");
    }

    #[test]
    fn quoting_dialects() {
        let toks = tokenize_significant("\"a\" `b` [c]");
        assert!(toks.iter().all(|t| t.kind == QuotedIdent));
        assert_eq!(toks[0].ident_value(), "a");
        assert_eq!(toks[1].ident_value(), "b");
        assert_eq!(toks[2].ident_value(), "c");
    }

    #[test]
    fn dollar_quoted_string() {
        let toks = tokenize_significant("$tag$hello 'world'$tag$");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, StringLit);
    }

    #[test]
    fn positional_and_named_params() {
        let k = kinds("? $1 :name %s %(key)s");
        assert_eq!(k, vec![Param, Param, Param, Param, Param]);
    }

    #[test]
    fn numbers() {
        let toks = tokenize_significant("1 2.5 .5 1e10 3.14E-2");
        assert!(toks.iter().all(|t| t.kind == NumberLit), "{toks:?}");
        assert_eq!(toks.len(), 5);
    }

    #[test]
    fn nested_block_comment() {
        let toks = tokenize("/* outer /* inner */ still */x");
        assert_eq!(toks[0].kind, Comment);
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn multi_char_operators() {
        let k = kinds("a <> b != c || d :: e == f");
        let ops: Vec<_> = tokenize_significant("a <> b != c || d :: e == f")
            .into_iter()
            .filter(|t| t.kind == Operator)
            .map(|t| t.text)
            .collect();
        assert_eq!(ops, vec!["<>", "!=", "||", "::", "=="]);
        assert_eq!(k.len(), 11);
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let toks = tokenize("SELECT 'oops");
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, "SELECT 'oops");
    }

    #[test]
    fn unknown_bytes_preserved() {
        let sql = "SELECT \u{7f}\u{1} FROM t";
        let rebuilt: String = tokenize(sql).iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, sql);
    }

    #[test]
    fn like_pattern_with_posix_classes_stays_in_string() {
        let toks = tokenize_significant("SELECT * FROM t WHERE c LIKE '[[:<:]]U1[[:>:]]'");
        let lit = toks.iter().find(|t| t.kind == StringLit).unwrap();
        assert!(lit.text.contains("[[:<:]]"));
    }

    #[test]
    fn significant_filter_happens_before_materialisation() {
        // Same significant stream as tokenize + filter, without trivia
        // texts ever existing.
        let sql = "  SELECT /* c */ a -- tail\n FROM t  ";
        let via_spans: Vec<_> = tokenize_significant(sql);
        let via_owned: Vec<_> = tokenize(sql).into_iter().filter(|t| !t.is_trivia()).collect();
        assert_eq!(via_spans, via_owned);
    }

    #[test]
    fn dialect_quoting_rules() {
        // MySQL: "…" is a string, backticks quote, brackets don't.
        let toks = tokenize_significant_dialect("\"s\" `b` [c]", Dialect::MySql);
        assert_eq!(toks[0].kind, StringLit);
        assert_eq!(toks[1].kind, QuotedIdent);
        assert!(toks[2..].iter().all(|t| t.kind != QuotedIdent));
        // Postgres: no backticks, no brackets.
        let toks = tokenize_significant_dialect("\"a\" `b` [c]", Dialect::Postgres);
        assert_eq!(toks[0].kind, QuotedIdent);
        assert!(toks[1..].iter().all(|t| t.kind != QuotedIdent));
        // SQLite: all three quote identifiers.
        let toks = tokenize_significant_dialect("\"a\" `b` [c]", Dialect::Sqlite);
        assert!(toks.iter().all(|t| t.kind == QuotedIdent));
    }

    #[test]
    fn mysql_hash_comment_and_dollar_words() {
        let toks = tokenize_dialect("SELECT 1 # tail\n", Dialect::MySql);
        assert!(toks.iter().any(|t| t.kind == Comment && t.text.starts_with('#')));
        // Generic keeps '#' as an operator.
        let toks = tokenize("SELECT 1 # tail\n");
        assert!(toks.iter().all(|t| t.kind != Comment));
        // With dollar-quoting off, $$ is one ordinary word token.
        let toks = tokenize_significant_dialect("$$ x $tag$", Dialect::MySql);
        assert_eq!(toks[0].kind, Ident);
        assert_eq!(toks[0].text, "$$");
        assert_eq!(toks.last().unwrap().text, "$tag$");
    }

    #[test]
    fn non_nesting_block_comment_closes_at_first_terminator() {
        let toks = tokenize_dialect("/* outer /* inner */ rest", Dialect::MySql);
        assert_eq!(toks[0].kind, Comment);
        assert_eq!(toks[0].text, "/* outer /* inner */");
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, "/* outer /* inner */ rest");
    }

    #[test]
    fn dialect_lexing_stays_lossless() {
        let sql = "\"q\" `b` [c] $$ # h\n /* a /* b */ c */ 'lit' $1";
        for d in Dialect::ALL {
            let rebuilt: String =
                tokenize_dialect(sql, d).iter().map(|t| t.text.as_str()).collect();
            assert_eq!(rebuilt, sql, "{d:?}");
        }
    }

    #[test]
    fn backslash_at_end_of_unterminated_string() {
        let sql = "'abc\\";
        let toks = tokenize(sql);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, StringLit);
        assert_eq!(toks[0].text, sql);
    }
}

