//! Render ASTs back to SQL text.
//!
//! Used by the repair engine (`ap-fix`) after transforming a parse tree:
//! "It then transforms the parse tree to a SQL string based on the dialect
//! used by the application" (§6). Rendering is canonical (uppercase
//! keywords, single spaces) rather than byte-identical to the input — the
//! raw tokens remain available for untouched statements.
//!
//! Expression nodes live in the statement's [`ExprArena`], so every
//! `write_sql` threads the arena through; the owner-level entry point is
//! [`ParsedStatement::write_sql`](ParsedStatement), which supplies its own
//! arena.

use crate::arena::{ExprArena, ExprId};
use crate::ast::*;
use std::fmt::Write;

/// Types renderable to SQL text. `arena` resolves [`ExprId`] /
/// [`crate::arena::ExprRange`] indices; node-free types ignore it.
pub trait ToSql {
    /// Append SQL to `out`.
    fn write_sql(&self, arena: &ExprArena, out: &mut String);

    /// Render to a fresh string.
    fn to_sql(&self, arena: &ExprArena) -> String {
        let mut s = String::new();
        self.write_sql(arena, &mut s);
        s
    }
}

fn quote_ident(name: &str) -> String {
    let simple = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !name.chars().next().unwrap().is_ascii_digit();
    if simple {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

fn quote_string(value: &str) -> String {
    format!("'{}'", value.replace('\'', "''"))
}

impl ToSql for ObjectName {
    fn write_sql(&self, _arena: &ExprArena, out: &mut String) {
        let parts: Vec<String> = self.0.iter().map(|p| quote_ident(p)).collect();
        out.push_str(&parts.join("."));
    }
}

impl ToSql for TypeName {
    fn write_sql(&self, _arena: &ExprArena, out: &mut String) {
        out.push_str(&self.name);
        if !self.args.is_empty() {
            out.push('(');
            out.push_str(&self.args.join(", "));
            out.push(')');
        }
        for m in &self.modifiers {
            out.push(' ');
            out.push_str(m);
        }
    }
}

impl ToSql for ExprId {
    /// Render the arena node the id points at.
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        arena.node(*self).write_sql(arena, out);
    }
}

impl ToSql for Expr {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        match self {
            Expr::Ident(parts) => {
                let rendered: Vec<String> = parts
                    .iter()
                    .map(|p| if p == "*" { "*".to_string() } else { quote_ident(p) })
                    .collect();
                out.push_str(&rendered.join("."));
            }
            Expr::StringLit(s) => out.push_str(&quote_string(s)),
            Expr::NumberLit(n) => out.push_str(n),
            Expr::BoolLit(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
            Expr::Null => out.push_str("NULL"),
            Expr::Param(p) => out.push_str(p),
            Expr::Unary { op, expr } => {
                out.push_str(op);
                if op.chars().all(|c| c.is_ascii_alphabetic()) {
                    out.push(' ');
                }
                expr.write_sql(arena, out);
            }
            Expr::Binary { left, op, right } => {
                left.write_sql(arena, out);
                let _ = write!(out, " {op} ");
                right.write_sql(arena, out);
            }
            Expr::Function { name, args, distinct } => {
                out.push_str(name);
                out.push('(');
                if *distinct {
                    out.push_str("DISTINCT ");
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    a.write_sql(arena, out);
                }
                out.push(')');
            }
            Expr::Paren(e) => {
                out.push('(');
                e.write_sql(arena, out);
                out.push(')');
            }
            Expr::InList { expr, list, negated } => {
                expr.write_sql(arena, out);
                out.push_str(if *negated { " NOT IN (" } else { " IN (" });
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    e.write_sql(arena, out);
                }
                out.push(')');
            }
            Expr::Between { expr, low, high, negated } => {
                expr.write_sql(arena, out);
                out.push_str(if *negated { " NOT BETWEEN " } else { " BETWEEN " });
                low.write_sql(arena, out);
                out.push_str(" AND ");
                high.write_sql(arena, out);
            }
            Expr::Like { expr, op, pattern, negated } => {
                expr.write_sql(arena, out);
                out.push(' ');
                if *negated {
                    out.push_str("NOT ");
                }
                out.push_str(op.sql());
                out.push(' ');
                pattern.write_sql(arena, out);
            }
            Expr::IsNull { expr, negated } => {
                expr.write_sql(arena, out);
                out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
            }
            Expr::Subquery(sel) => {
                out.push('(');
                sel.write_sql(arena, out);
                out.push(')');
            }
            Expr::Raw(text) => out.push_str(text),
        }
    }
}

impl ToSql for SelectItem {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        match self {
            SelectItem::Wildcard { qualifier: Some(q) } => {
                out.push_str(&quote_ident(q));
                out.push_str(".*");
            }
            SelectItem::Wildcard { qualifier: None } => out.push('*'),
            SelectItem::Expr { expr, alias } => {
                expr.write_sql(arena, out);
                if let Some(a) = alias {
                    out.push_str(" AS ");
                    out.push_str(&quote_ident(a));
                }
            }
        }
    }
}

impl ToSql for TableRef {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        if let Some(sub) = &self.subquery {
            out.push('(');
            sub.write_sql(arena, out);
            out.push(')');
        } else {
            self.name.write_sql(arena, out);
        }
        if let Some(a) = &self.alias {
            out.push_str(" AS ");
            out.push_str(&quote_ident(a));
        }
    }
}

impl ToSql for Join {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        let kw = match self.join_type {
            JoinType::Inner => "JOIN",
            JoinType::Left => "LEFT JOIN",
            JoinType::Right => "RIGHT JOIN",
            JoinType::Full => "FULL JOIN",
            JoinType::Cross => "CROSS JOIN",
            JoinType::Comma => ",",
        };
        if self.join_type == JoinType::Comma {
            out.push_str(", ");
        } else {
            out.push(' ');
            out.push_str(kw);
            out.push(' ');
        }
        self.table.write_sql(arena, out);
        if let Some(on) = &self.on {
            out.push_str(" ON ");
            on.write_sql(arena, out);
        } else if !self.using.is_empty() {
            out.push_str(" USING (");
            out.push_str(&self.using.join(", "));
            out.push(')');
        }
    }
}

impl ToSql for Select {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        out.push_str("SELECT ");
        if self.distinct {
            out.push_str("DISTINCT ");
        }
        if self.items.is_empty() {
            out.push('*');
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            item.write_sql(arena, out);
        }
        if let Some(f) = &self.from {
            out.push_str(" FROM ");
            f.write_sql(arena, out);
        }
        for j in &self.joins {
            j.write_sql(arena, out);
        }
        if let Some(w) = &self.where_clause {
            out.push_str(" WHERE ");
            w.write_sql(arena, out);
        }
        if !self.group_by.is_empty() {
            out.push_str(" GROUP BY ");
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                e.write_sql(arena, out);
            }
        }
        if let Some(h) = &self.having {
            out.push_str(" HAVING ");
            h.write_sql(arena, out);
        }
        if !self.order_by.is_empty() {
            out.push_str(" ORDER BY ");
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                o.expr.write_sql(arena, out);
                if !o.asc {
                    out.push_str(" DESC");
                }
            }
        }
        if let Some(l) = &self.limit {
            out.push_str(" LIMIT ");
            out.push_str(l);
        }
        if let Some(tail) = &self.set_op_tail {
            out.push(' ');
            out.push_str(tail);
        }
    }
}

impl ToSql for CheckConstraint {
    fn write_sql(&self, _arena: &ExprArena, out: &mut String) {
        out.push_str("CHECK (");
        out.push_str(&self.expr_text);
        out.push(')');
    }
}

impl ToSql for ForeignKeyRef {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        out.push_str("REFERENCES ");
        self.table.write_sql(arena, out);
        if !self.columns.is_empty() {
            out.push('(');
            let cols: Vec<String> = self.columns.iter().map(|c| quote_ident(c)).collect();
            out.push_str(&cols.join(", "));
            out.push(')');
        }
        for a in &self.actions {
            out.push(' ');
            out.push_str(a);
        }
    }
}

impl ToSql for ColumnConstraint {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        match self {
            ColumnConstraint::PrimaryKey => out.push_str("PRIMARY KEY"),
            ColumnConstraint::NotNull => out.push_str("NOT NULL"),
            ColumnConstraint::Null => out.push_str("NULL"),
            ColumnConstraint::Unique => out.push_str("UNIQUE"),
            ColumnConstraint::AutoIncrement => out.push_str("AUTO_INCREMENT"),
            ColumnConstraint::Default(d) => {
                out.push_str("DEFAULT ");
                out.push_str(d);
            }
            ColumnConstraint::Check(c) => c.write_sql(arena, out),
            ColumnConstraint::References(r) => r.write_sql(arena, out),
            ColumnConstraint::Other(o) => out.push_str(o),
        }
    }
}

impl ToSql for ColumnDef {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        out.push_str(&quote_ident(&self.name));
        if let Some(t) = &self.data_type {
            out.push(' ');
            t.write_sql(arena, out);
        }
        for c in &self.constraints {
            out.push(' ');
            c.write_sql(arena, out);
        }
    }
}

impl ToSql for TableConstraint {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        if let Some(n) = &self.name {
            out.push_str("CONSTRAINT ");
            out.push_str(&quote_ident(n));
            out.push(' ');
        }
        match &self.kind {
            TableConstraintKind::PrimaryKey(cols) => {
                out.push_str("PRIMARY KEY (");
                let cols: Vec<String> = cols.iter().map(|c| quote_ident(c)).collect();
                out.push_str(&cols.join(", "));
                out.push(')');
            }
            TableConstraintKind::Unique(cols) => {
                out.push_str("UNIQUE (");
                let cols: Vec<String> = cols.iter().map(|c| quote_ident(c)).collect();
                out.push_str(&cols.join(", "));
                out.push(')');
            }
            TableConstraintKind::ForeignKey { columns, reference } => {
                out.push_str("FOREIGN KEY (");
                let cols: Vec<String> = columns.iter().map(|c| quote_ident(c)).collect();
                out.push_str(&cols.join(", "));
                out.push_str(") ");
                reference.write_sql(arena, out);
            }
            TableConstraintKind::Check(c) => c.write_sql(arena, out),
            TableConstraintKind::Other(o) => out.push_str(o),
        }
    }
}

impl ToSql for CreateTable {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        out.push_str("CREATE TABLE ");
        if self.if_not_exists {
            out.push_str("IF NOT EXISTS ");
        }
        self.name.write_sql(arena, out);
        out.push_str(" (");
        let mut first = true;
        for c in &self.columns {
            if !first {
                out.push_str(", ");
            }
            first = false;
            c.write_sql(arena, out);
        }
        for tc in &self.constraints {
            if !first {
                out.push_str(", ");
            }
            first = false;
            tc.write_sql(arena, out);
        }
        out.push(')');
        if !self.options.is_empty() {
            out.push(' ');
            out.push_str(&self.options);
        }
    }
}

impl ToSql for CreateIndex {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        out.push_str("CREATE ");
        if self.unique {
            out.push_str("UNIQUE ");
        }
        out.push_str("INDEX ");
        if !self.name.is_empty() {
            out.push_str(&quote_ident(&self.name));
            out.push(' ');
        }
        out.push_str("ON ");
        self.table.write_sql(arena, out);
        out.push_str(" (");
        let cols: Vec<String> = self.columns.iter().map(|c| quote_ident(c)).collect();
        out.push_str(&cols.join(", "));
        out.push(')');
    }
}

impl ToSql for AlterTable {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        out.push_str("ALTER TABLE ");
        self.table.write_sql(arena, out);
        out.push(' ');
        match &self.action {
            AlterAction::AddColumn(cd) => {
                out.push_str("ADD COLUMN ");
                cd.write_sql(arena, out);
            }
            AlterAction::DropColumn(n) => {
                out.push_str("DROP COLUMN ");
                out.push_str(&quote_ident(n));
            }
            AlterAction::AddConstraint(tc) => {
                out.push_str("ADD ");
                tc.write_sql(arena, out);
            }
            AlterAction::DropConstraint(n) => {
                out.push_str("DROP CONSTRAINT IF EXISTS ");
                out.push_str(&quote_ident(n));
            }
            AlterAction::Other(o) => out.push_str(o),
        }
    }
}

impl ToSql for Insert {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        out.push_str("INSERT INTO ");
        self.table.write_sql(arena, out);
        if !self.columns.is_empty() {
            out.push_str(" (");
            let cols: Vec<String> = self.columns.iter().map(|c| quote_ident(c)).collect();
            out.push_str(&cols.join(", "));
            out.push(')');
        }
        match &self.source {
            InsertSource::Values(rows) => {
                out.push_str(" VALUES ");
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('(');
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        e.write_sql(arena, out);
                    }
                    out.push(')');
                }
            }
            InsertSource::Select(s) => {
                out.push(' ');
                s.write_sql(arena, out);
            }
            InsertSource::Raw(r) => {
                out.push(' ');
                out.push_str(r);
            }
        }
    }
}

impl ToSql for Update {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        out.push_str("UPDATE ");
        self.table.write_sql(arena, out);
        out.push_str(" SET ");
        for (i, (col, e)) in self.assignments.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&quote_ident(col));
            out.push_str(" = ");
            e.write_sql(arena, out);
        }
        if let Some(w) = &self.where_clause {
            out.push_str(" WHERE ");
            w.write_sql(arena, out);
        }
    }
}

impl ToSql for Delete {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        out.push_str("DELETE FROM ");
        self.table.write_sql(arena, out);
        if let Some(w) = &self.where_clause {
            out.push_str(" WHERE ");
            w.write_sql(arena, out);
        }
    }
}

impl ToSql for Drop {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        out.push_str("DROP ");
        out.push_str(&self.object_kind);
        out.push(' ');
        if self.if_exists {
            out.push_str("IF EXISTS ");
        }
        self.name.write_sql(arena, out);
    }
}

impl ToSql for Statement {
    fn write_sql(&self, arena: &ExprArena, out: &mut String) {
        match self {
            Statement::CreateTable(s) => s.write_sql(arena, out),
            Statement::CreateIndex(s) => s.write_sql(arena, out),
            Statement::AlterTable(s) => s.write_sql(arena, out),
            Statement::Select(s) => s.write_sql(arena, out),
            Statement::Insert(s) => s.write_sql(arena, out),
            Statement::Update(s) => s.write_sql(arena, out),
            Statement::Delete(s) => s.write_sql(arena, out),
            Statement::Drop(s) => s.write_sql(arena, out),
            // Compound DDL renders from the original token text at the
            // ParsedStatement level (like Other): the body's dialect
            // details (delimiters, characteristics) are not modelled
            // losslessly enough to re-render canonically.
            Statement::CreateTrigger(_) | Statement::CreateRoutine(_) => {}
            Statement::Other(_) => {}
        }
    }
}

impl ParsedStatement {
    /// Append this statement's SQL to `out`, resolving arena indices
    /// against the statement's own [`ExprArena`].
    ///
    /// `Other` statements — and compound DDL, whose bodies are not
    /// re-rendered canonically — render as their original token text;
    /// shaped statements render canonically.
    pub fn write_sql(&self, out: &mut String) {
        if matches!(
            self.stmt,
            Statement::Other(_) | Statement::CreateTrigger(_) | Statement::CreateRoutine(_)
        ) {
            out.push_str(&self.text());
        } else {
            self.stmt.write_sql(&self.arena, out);
        }
    }

    /// Render to a fresh string (the arena-supplying counterpart of
    /// [`ToSql::to_sql`]).
    pub fn to_sql(&self) -> String {
        let mut s = String::new();
        self.write_sql(&mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_one;

    fn roundtrip(sql: &str) -> String {
        parse_one(sql).to_sql()
    }

    #[test]
    fn select_roundtrip_is_reparseable_and_stable() {
        let once = roundtrip("SELECT a, b AS x FROM t JOIN u ON t.id = u.id WHERE a = 'v' ORDER BY a DESC LIMIT 5");
        let twice = roundtrip(&once);
        assert_eq!(once, twice, "render must be a fixpoint");
        assert!(once.contains("JOIN u ON"));
    }

    #[test]
    fn create_table_roundtrip() {
        let sql = "CREATE TABLE Hosting (User_ID VARCHAR(10) REFERENCES Users(User_ID), PRIMARY KEY (User_ID))";
        let once = roundtrip(sql);
        assert!(once.contains("REFERENCES Users(User_ID)"));
        assert_eq!(roundtrip(&once), once);
    }

    #[test]
    fn insert_roundtrip() {
        let once = roundtrip("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
        assert_eq!(once, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
    }

    #[test]
    fn update_delete_roundtrip() {
        assert_eq!(
            roundtrip("UPDATE u SET r = 'R5' WHERE r = 'R2'"),
            "UPDATE u SET r = 'R5' WHERE r = 'R2'"
        );
        assert_eq!(roundtrip("DELETE FROM t WHERE a = 1"), "DELETE FROM t WHERE a = 1");
    }

    #[test]
    fn other_statement_renders_original_text() {
        let sql = "PRAGMA journal_mode = WAL";
        assert_eq!(roundtrip(sql), sql);
    }

    #[test]
    fn string_escaping() {
        let once = roundtrip("SELECT 'it''s' FROM t");
        assert!(once.contains("'it''s'"));
    }

    #[test]
    fn weird_identifier_gets_quoted() {
        let once = roundtrip("SELECT \"weird col\" FROM t");
        assert!(once.contains("\"weird col\""));
    }

    #[test]
    fn is_null_and_like_render() {
        let once = roundtrip("SELECT * FROM t WHERE a IS NOT NULL AND b LIKE '%x%'");
        assert!(once.contains("IS NOT NULL"));
        assert!(once.contains("LIKE '%x%'"));
    }
}
