//! Compound-statement tracking for the statement splitter.
//!
//! Real schema dumps contain trigger/procedure DDL whose `BEGIN … END`
//! bodies hold whole statements — the inner semicolons terminate *body*
//! statements, not the DDL statement itself. [`BlockTracker`] is the
//! shared state machine that every split path (fused streaming, spans-only
//! dedup scan, chunk-parallel pre-scan, and the legacy two-pass reference)
//! consults per significant token so all of them agree, byte for byte, on
//! where statements end.
//!
//! The tracker answers three questions:
//!
//! 1. **Is this `;` a statement terminator?** Only at block depth 0.
//!    Block depth is raised by `BEGIN` when (and only when) the statement
//!    header identifies a routine (`CREATE [OR REPLACE] [DEFINER=…]
//!    TRIGGER|PROCEDURE|FUNCTION`), or when already inside a block
//!    (nested `BEGIN`). Transaction control (`BEGIN;`,
//!    `BEGIN TRANSACTION;`) therefore never opens a block. `END` closes a
//!    block — unless it closes a `CASE` expression (tracked separately)
//!    or reads `END IF` / `END LOOP` / `END WHILE` / `END REPEAT` /
//!    `END CASE`, which close constructs the tracker deliberately does
//!    not count (their interiors are already protected by the enclosing
//!    block). The `END` decision needs one token of lookahead, so it is
//!    *deferred* until the next significant token arrives.
//! 2. **Is this token a script-level directive?** MySQL dump `DELIMITER`
//!    lines change the statement terminator for the rest of the script.
//!    The directive line itself belongs to no statement, and while a
//!    custom delimiter is active a bare `;` is ordinary statement text.
//! 3. **Is this token part of a multi-byte terminator?** A custom
//!    delimiter like `;;` or `//` spans several tokens; the bytes after
//!    the first are skipped.
//!
//! Degradation is always tolerant: an orphan `END;` at top level is an
//! ordinary one-word statement, and an unterminated `BEGIN` runs to
//! end-of-input as a single statement (the splitter's EOF flush emits
//! it) — nothing panics and nothing is dropped.
//!
//! The tracker is dialect-aware ([`BlockTracker::with_dialect`]):
//! `DELIMITER` directives are honoured only where the dialect allows them
//! (Generic, MySQL) — under Postgres the word is an ordinary identifier,
//! so PL/pgSQL scripts keep chunk-parallel splitting — and a
//! statement-initial `BEGIN ATOMIC` (SQL standard, Postgres 14+ SQL-body
//! routines) opens a block under Generic/Postgres via one token of
//! lookahead, exactly like the deferred-`END` decision. The old `$$`
//! custom-delimiter vs dollar-quoting collision is resolved one layer
//! down: with dollar-quoting disabled (MySQL/SQLite) the lexer emits
//! `$$` as an ordinary word, which the delimiter match here then sees.

use crate::dialect::Dialect;
use crate::scan::memchr;
use crate::token::TokenKind;

/// What a significant token means for statement splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SplitAction {
    /// Ordinary statement content (including `;` inside an open block or
    /// under a custom delimiter).
    Token,
    /// Ends the current statement; the token (and, for multi-byte custom
    /// delimiters, the following delimiter bytes) belongs to no statement.
    Terminator,
    /// Script-level directive content (a `DELIMITER` line) or trailing
    /// bytes of a multi-byte terminator — part of no statement.
    Directive,
}

/// Statement-header classification, used to tell block `BEGIN` (routine
/// DDL) from transaction-control `BEGIN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Header {
    /// Not a routine header: `BEGIN` does not open a block at depth 0.
    Plain,
    /// Saw leading `CREATE`; awaiting the object-kind word.
    Create,
    /// `CREATE … TRIGGER|PROCEDURE|FUNCTION`: the next `BEGIN` opens the
    /// routine body block.
    Routine,
}

/// Per-chunk splitter state machine. See the module docs.
#[derive(Debug, Clone)]
pub(crate) struct BlockTracker {
    /// `BEGIN … END` nesting depth.
    depth: u32,
    /// `CASE … END` nesting depth (only tracked inside blocks, where a
    /// bare `END` is otherwise ambiguous).
    case_depth: u32,
    /// An `END` was seen and awaits its lookahead token (`END IF` vs
    /// block/CASE `END`).
    pending_end: bool,
    /// A statement-initial `BEGIN` was seen and awaits its lookahead
    /// token: `ATOMIC` opens a block (SQL-standard compound statement),
    /// anything else is transaction control. Only set when the dialect
    /// has [`Dialect::begin_atomic`].
    pending_begin: bool,
    /// Header state of the current statement.
    header: Header,
    /// No significant token of the current statement has been seen yet.
    at_stmt_start: bool,
    /// Custom statement delimiter (`DELIMITER` directive); `None` means
    /// the default `;`.
    delimiter: Option<Box<[u8]>>,
    /// Chunk offsets below this belong to a directive line or to the
    /// trailing bytes of a multi-byte terminator.
    skip_until: usize,
    /// A `DELIMITER` directive was seen (the chunk-parallel pre-scan
    /// bails to a single sequential chunk, because the active delimiter
    /// would otherwise have to be threaded across chunk starts).
    saw_directive: bool,
    /// Single-branch fast-path flag, kept in sync with the rest of the
    /// state: true exactly when `;` is the terminator and no word can
    /// change the split state (mid-statement, plain header, depth 0, no
    /// deferred `END`). Plain workloads run almost entirely in this
    /// state, so the per-token cost is one boolean branch plus the `;`
    /// check — measured ~free next to the pre-tracker splitter.
    fast: bool,
    /// Active dialect: gates `DELIMITER` directives and `BEGIN ATOMIC`.
    dialect: Dialect,
}

impl Default for BlockTracker {
    fn default() -> Self {
        Self::new()
    }
}

/// Case-insensitive whole-word comparison (`up` must be uppercase ASCII).
#[inline]
fn is_word(w: &[u8], up: &[u8]) -> bool {
    w.len() == up.len() && w.eq_ignore_ascii_case(up)
}

/// Does this word make block tracking *necessary*? The tracker diverges
/// from naive top-level-`;` splitting only when a block is opened (which
/// requires a `CREATE … TRIGGER|PROCEDURE|FUNCTION` header or a
/// statement-initial `BEGIN ATOMIC` — `BEGIN`, `CASE`, and `END` alone
/// are all no-ops at depth 0) or a `DELIMITER` directive changes the
/// terminator. A chunk containing none of these five marker words (as
/// word tokens; quoted identifiers and string literals never reach the
/// tracker as words) therefore splits **identically** with and without
/// the tracker, so scanners may run a speculative untracked pass and
/// only re-scan tracked when this fires. The set is deliberately
/// dialect-independent: a false positive only costs a re-scan.
#[inline]
pub(crate) fn may_need_tracking(w: &[u8]) -> bool {
    /// True for the first bytes of the five marker words, both cases —
    /// one table load rejects the vast majority of words.
    const MARKER_START: [bool; 256] = {
        let mut t = [false; 256];
        let s = b"tpfdaTPFDA";
        let mut i = 0;
        while i < s.len() {
            t[s[i] as usize] = true;
            i += 1;
        }
        t
    };
    MARKER_START[w[0] as usize]
        && matches!(w.len(), 6..=9)
        && (is_word(w, b"TRIGGER")
            || is_word(w, b"PROCEDURE")
            || is_word(w, b"FUNCTION")
            || is_word(w, b"DELIMITER")
            || is_word(w, b"ATOMIC"))
}

/// Does the active custom delimiter match at `start`? Word-shaped
/// delimiters additionally require a word boundary after the match so a
/// delimiter like `GO` does not fire inside `GONE`.
fn delimiter_matches(bytes: &[u8], start: usize, d: &[u8]) -> bool {
    let end = start + d.len();
    if end > bytes.len() || !bytes[start..end].eq_ignore_ascii_case(d) {
        return false;
    }
    let last = d[d.len() - 1];
    if last.is_ascii_alphanumeric() || last == b'_' {
        if let Some(&next) = bytes.get(end) {
            if next.is_ascii_alphanumeric() || next == b'_' {
                return false;
            }
        }
    }
    true
}

impl BlockTracker {
    /// Fresh tracker under [`Dialect::Generic`]: default `;` delimiter,
    /// top level, statement start.
    pub(crate) fn new() -> Self {
        Self::with_dialect(Dialect::Generic)
    }

    /// Fresh tracker under an explicit dialect.
    pub(crate) fn with_dialect(dialect: Dialect) -> Self {
        BlockTracker {
            depth: 0,
            case_depth: 0,
            pending_end: false,
            pending_begin: false,
            header: Header::Plain,
            at_stmt_start: true,
            delimiter: None,
            skip_until: 0,
            saw_directive: false,
            fast: false,
            dialect,
        }
    }

    /// Recompute the fast-path flag after any state mutation.
    #[inline]
    fn sync_fast(&mut self) {
        self.fast = self.delimiter.is_none()
            && self.header == Header::Plain
            && self.depth == 0
            && !self.pending_end
            && !self.pending_begin
            && !self.at_stmt_start;
    }

    /// Whether a `DELIMITER` directive has been seen so far.
    pub(crate) fn saw_directive(&self) -> bool {
        self.saw_directive
    }

    /// Fast-path probe for the sinks' hot loops: when true, `;` is the
    /// statement terminator and **no other token can change the split
    /// state**, so the caller may handle the token without calling
    /// [`BlockTracker::offer`] at all — a plain token updates nothing,
    /// and a `;` must be reported via [`BlockTracker::fast_terminator`].
    /// Measured: routing every token through `offer` (even with the same
    /// internal fast check) costs ~15% on the spans-only dedup scan; this
    /// probe makes the tracker ~free on plain workloads.
    #[inline]
    pub(crate) fn is_fast(&self) -> bool {
        self.fast
    }

    /// Record a `;` terminator observed on the fast path (caller checked
    /// [`BlockTracker::is_fast`]): resets per-statement state.
    #[inline]
    pub(crate) fn fast_terminator(&mut self) {
        debug_assert!(self.fast);
        self.reset_statement_state();
    }

    /// Feed one significant token (`bytes` is the chunk being lexed;
    /// `start..end` the token's range within it) and learn what it means
    /// for statement splitting. Trivia must not be offered.
    #[inline]
    pub(crate) fn offer(
        &mut self,
        bytes: &[u8],
        kind: TokenKind,
        start: usize,
        end: usize,
    ) -> SplitAction {
        // Fast path: mid-statement at top level, default delimiter, in a
        // non-routine header — no word can change the split state (BEGIN
        // needs a routine header, CASE/END need an open block), so plain
        // workloads pay one branch plus the `;` check per token.
        if self.fast {
            if kind == TokenKind::Punct && end - start == 1 && bytes[start] == b';' {
                self.reset_statement_state();
                return SplitAction::Terminator;
            }
            return SplitAction::Token;
        }
        self.offer_slow(bytes, kind, start, end)
    }

    /// Kept out of line so the two-branch fast path above stays small
    /// enough to inline into every sink's token loop — inlining this
    /// body into `offer` was measured to push the whole function out of
    /// the callers' inlining budget and cost ~15% on the spans-only
    /// dedup scan.
    #[inline(never)]
    fn offer_slow(
        &mut self,
        bytes: &[u8],
        kind: TokenKind,
        start: usize,
        end: usize,
    ) -> SplitAction {
        if start < self.skip_until {
            return SplitAction::Directive;
        }
        if let Some(d) = &self.delimiter {
            if delimiter_matches(bytes, start, d) {
                // The custom delimiter terminates at *any* depth — the
                // mysql client splits without understanding blocks, and
                // matching it keeps unbalanced bodies from swallowing the
                // rest of the script. State resets tolerantly.
                self.skip_until = start + d.len();
                self.reset_statement_state();
                return SplitAction::Terminator;
            }
        } else if kind == TokenKind::Punct && end - start == 1 && bytes[start] == b';' {
            // `BEGIN;` — the lookahead token is the terminator itself, so
            // this was transaction control, not a compound statement.
            self.pending_begin = false;
            self.resolve_pending_bare();
            if self.depth == 0 {
                self.reset_statement_state();
                return SplitAction::Terminator;
            }
            return SplitAction::Token;
        }
        self.classify(bytes, kind, start, end)
    }

    /// Slow path: header scanning, `BEGIN`/`CASE`/`END` accounting, and
    /// `DELIMITER` directive recognition.
    fn classify(
        &mut self,
        bytes: &[u8],
        kind: TokenKind,
        start: usize,
        end: usize,
    ) -> SplitAction {
        let action = self.classify_inner(bytes, kind, start, end);
        self.sync_fast();
        action
    }

    fn classify_inner(
        &mut self,
        bytes: &[u8],
        kind: TokenKind,
        start: usize,
        end: usize,
    ) -> SplitAction {
        let word: Option<&[u8]> = if matches!(kind, TokenKind::Keyword | TokenKind::Ident) {
            // Quoted identifiers never participate: `"END"` is a name.
            Some(&bytes[start..end])
        } else {
            None
        };

        if self.pending_begin {
            // Statement-initial `BEGIN …` lookahead: `ATOMIC` opens the
            // SQL-standard compound block; anything else (TRANSACTION,
            // WORK, a bare `BEGIN`) is transaction control.
            self.pending_begin = false;
            if let Some(w) = word {
                if is_word(w, b"ATOMIC") {
                    self.depth += 1;
                    return SplitAction::Token;
                }
            }
        }

        if self.pending_end {
            self.pending_end = false;
            if let Some(w) = word {
                if is_word(w, b"IF")
                    || is_word(w, b"LOOP")
                    || is_word(w, b"WHILE")
                    || is_word(w, b"REPEAT")
                {
                    // `END IF` & friends close constructs whose openings
                    // are not counted — no depth change either way.
                    return SplitAction::Token;
                }
                if is_word(w, b"CASE") {
                    self.case_depth = self.case_depth.saturating_sub(1);
                    return SplitAction::Token;
                }
            }
            // Bare END: closes the innermost CASE, else the block.
            if self.case_depth > 0 {
                self.case_depth -= 1;
            } else {
                self.depth = self.depth.saturating_sub(1);
            }
            // Fall through: the current token is processed normally.
        }

        let Some(w) = word else {
            self.at_stmt_start = false;
            return SplitAction::Token;
        };

        if self.at_stmt_start {
            self.at_stmt_start = false;
            if self.depth == 0
                && self.dialect.delimiter_directives()
                && is_word(w, b"DELIMITER")
            {
                return self.directive(bytes, end);
            }
            self.header = if is_word(w, b"CREATE") { Header::Create } else { Header::Plain };
            if self.dialect.begin_atomic() && is_word(w, b"BEGIN") {
                self.pending_begin = true;
            }
            return SplitAction::Token;
        }

        if self.header == Header::Create {
            if is_word(w, b"TRIGGER") || is_word(w, b"PROCEDURE") || is_word(w, b"FUNCTION") {
                self.header = Header::Routine;
            } else if is_word(w, b"TABLE")
                || is_word(w, b"INDEX")
                || is_word(w, b"VIEW")
                || is_word(w, b"SCHEMA")
                || is_word(w, b"DATABASE")
                || is_word(w, b"SEQUENCE")
            {
                // A known non-routine object kind: later BEGIN/END words
                // (e.g. columns named `begin`) are ordinary identifiers.
                self.header = Header::Plain;
            }
            // Anything else (OR, REPLACE, DEFINER=`u`@`h`, TEMPORARY,
            // IF NOT EXISTS, unknown object kinds) keeps scanning: the
            // object kind always precedes the body.
            return SplitAction::Token;
        }

        if is_word(w, b"BEGIN") {
            if self.depth > 0 || self.header == Header::Routine {
                self.depth += 1;
            }
        } else if is_word(w, b"CASE") {
            if self.depth > 0 {
                self.case_depth += 1;
            }
        } else if is_word(w, b"END") && (self.depth > 0 || self.case_depth > 0) {
            // Defer: `END IF` must not close the block. An END at depth 0
            // is an orphan and stays an ordinary word (tolerance).
            self.pending_end = true;
        }
        SplitAction::Token
    }

    /// Process a `DELIMITER` directive: the rest of the line names the
    /// new statement terminator and belongs to no statement.
    fn directive(&mut self, bytes: &[u8], word_end: usize) -> SplitAction {
        self.saw_directive = true;
        let line_end = match memchr(b'\n', &bytes[word_end..]) {
            Some(off) => word_end + off,
            None => bytes.len(),
        };
        let raw = bytes[word_end..line_end].trim_ascii();
        self.delimiter = if raw.is_empty() || raw == b";" { None } else { Some(raw.into()) };
        self.skip_until = line_end;
        self.at_stmt_start = true;
        SplitAction::Directive
    }

    /// Resolve a deferred `END` as a bare block/CASE close (called when
    /// the lookahead token is a terminator or end-of-input).
    fn resolve_pending_bare(&mut self) {
        if self.pending_end {
            self.pending_end = false;
            if self.case_depth > 0 {
                self.case_depth -= 1;
            } else {
                self.depth = self.depth.saturating_sub(1);
            }
            self.sync_fast();
        }
    }

    fn reset_statement_state(&mut self) {
        self.depth = 0;
        self.case_depth = 0;
        self.pending_end = false;
        self.pending_begin = false;
        self.header = Header::Plain;
        self.at_stmt_start = true;
        self.fast = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Offer every significant token of `script` (lexed with keyword
    /// classification under `dialect`) and collect the actions.
    fn actions_dialect(script: &str, dialect: Dialect) -> Vec<(String, SplitAction)> {
        let mut tracker = BlockTracker::with_dialect(dialect);
        let bytes = script.as_bytes();
        crate::lexer::tokenize_dialect(script, dialect)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| {
                let a = tracker.offer(bytes, t.kind, t.span.start, t.span.end);
                (t.text.to_string(), a)
            })
            .collect()
    }

    fn actions(script: &str) -> Vec<(String, SplitAction)> {
        actions_dialect(script, Dialect::Generic)
    }

    fn terminator_count_dialect(script: &str, dialect: Dialect) -> usize {
        actions_dialect(script, dialect)
            .iter()
            .filter(|(_, a)| *a == SplitAction::Terminator)
            .count()
    }

    fn terminator_count(script: &str) -> usize {
        terminator_count_dialect(script, Dialect::Generic)
    }

    #[test]
    fn plain_semicolons_terminate() {
        assert_eq!(terminator_count("SELECT 1; SELECT 2;"), 2);
    }

    #[test]
    fn trigger_body_semicolons_do_not_terminate() {
        let s = "CREATE TRIGGER trg AFTER INSERT ON t FOR EACH ROW \
                 BEGIN UPDATE u SET a = 1; DELETE FROM v; END; SELECT 1;";
        assert_eq!(terminator_count(s), 2);
    }

    #[test]
    fn transaction_begin_is_not_a_block() {
        assert_eq!(terminator_count("BEGIN; SELECT 1; COMMIT;"), 3);
        assert_eq!(terminator_count("BEGIN TRANSACTION; SELECT 1;"), 2);
    }

    #[test]
    fn case_end_does_not_close_the_block() {
        let s = "CREATE PROCEDURE p() BEGIN \
                 SELECT CASE WHEN a THEN 1 ELSE 2 END; \
                 SELECT CASE x WHEN 1 THEN 2 END CASE; \
                 IF a THEN SELECT 3; END IF; \
                 WHILE b DO SELECT 4; END WHILE; \
                 END; SELECT 99;";
        assert_eq!(terminator_count(s), 2);
    }

    #[test]
    fn create_table_with_begin_end_columns_is_plain() {
        assert_eq!(terminator_count("CREATE TABLE t (begin INT, end INT); SELECT 1;"), 2);
    }

    #[test]
    fn orphan_end_is_tolerated() {
        assert_eq!(terminator_count("END; SELECT 1;"), 2);
    }

    #[test]
    fn delimiter_directive_switches_terminator() {
        let s = "DELIMITER ;;\nSELECT 1; SELECT 2;;\nDELIMITER ;\nSELECT 3;";
        // One `;;` terminator, one default `;` after the reset.
        assert_eq!(terminator_count(s), 2);
    }

    #[test]
    fn word_delimiter_requires_boundary() {
        let s = "DELIMITER GO\nSELECT agony FROM t GO\n";
        let acts = actions(s);
        let term: Vec<&str> =
            acts.iter().filter(|(_, a)| *a == SplitAction::Terminator).map(|(t, _)| t.as_str()).collect();
        assert_eq!(term, vec!["GO"]);
    }

    #[test]
    fn begin_atomic_opens_a_block() {
        let s = "BEGIN ATOMIC UPDATE t SET a = 1; DELETE FROM u; END; SELECT 1;";
        for d in [Dialect::Generic, Dialect::Postgres] {
            assert_eq!(terminator_count_dialect(s, d), 2, "{d:?}");
        }
        // Transaction control is unaffected, ATOMIC or not.
        assert_eq!(terminator_count("BEGIN; SELECT atomic FROM t; COMMIT;"), 3);
        // Dialects without BEGIN ATOMIC split on every `;`.
        assert_eq!(terminator_count_dialect(s, Dialect::MySql), 4);
        assert_eq!(terminator_count_dialect(s, Dialect::Sqlite), 4);
    }

    #[test]
    fn delimiter_is_a_plain_word_under_postgres() {
        let s = "DELIMITER ;;\nSELECT 1; SELECT 2;;\n";
        // MySQL/Generic honour the directive: one `;;` terminator.
        assert_eq!(terminator_count_dialect(s, Dialect::MySql), 1);
        assert_eq!(terminator_count(s), 1);
        // Postgres treats DELIMITER as an identifier: every `;` terminates
        // (the `;;` pairs yield empty statements the splitter drops), and
        // no directive is recorded (chunk-parallel splitting stays on).
        let acts = actions_dialect(s, Dialect::Postgres);
        assert_eq!(
            acts.iter().filter(|(_, a)| *a == SplitAction::Terminator).count(),
            5
        );
        let mut tracker = BlockTracker::with_dialect(Dialect::Postgres);
        for t in crate::lexer::tokenize_dialect(s, Dialect::Postgres) {
            if !t.is_trivia() {
                tracker.offer(s.as_bytes(), t.kind, t.span.start, t.span.end);
            }
        }
        assert!(!tracker.saw_directive());
    }

    #[test]
    fn mysql_dollar_delimiter_works_without_quoting_collision() {
        let s = "DELIMITER $$\nCREATE PROCEDURE p() BEGIN SELECT 1; END$$\nSELECT 2$$\n";
        let acts = actions_dialect(s, Dialect::MySql);
        let term: Vec<&str> = acts
            .iter()
            .filter(|(_, a)| *a == SplitAction::Terminator)
            .map(|(t, _)| t.as_str())
            .collect();
        assert_eq!(term, vec!["$$", "$$"]);
    }

    #[test]
    fn atomic_is_a_tracking_marker() {
        assert!(may_need_tracking(b"ATOMIC"));
        assert!(may_need_tracking(b"atomic"));
        assert!(!may_need_tracking(b"ATOM"));
        assert!(!may_need_tracking(b"BEGIN"));
    }

    #[test]
    fn definer_clause_still_finds_trigger() {
        let s = "CREATE DEFINER = root@localhost TRIGGER trg BEFORE UPDATE ON t \
                 FOR EACH ROW BEGIN SET a = 1; END; SELECT 1;";
        assert_eq!(terminator_count(s), 2);
    }
}
