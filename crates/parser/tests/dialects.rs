//! Per-dialect regression tests for the dialect-aware front door.
//!
//! The first three tests pin the three "known limits" the dialect work
//! cleared — each fails on the pre-dialect tolerant-union behaviour:
//!
//! 1. a `$$` custom delimiter no longer collides with dollar-quoting
//!    (MySQL scripts disable dollar-quoting entirely);
//! 2. `BEGIN ATOMIC` (SQL standard) opens a block under Postgres and
//!    Generic, so SQL-body routines survive splitting and parse with
//!    their sub-statements;
//! 3. Postgres scripts never pay the `DELIMITER` sequential fallback —
//!    the word is ordinary statement text and chunk-parallel splitting
//!    stays available.
//!
//! The rest covers the per-dialect lexer surface (comments, identifier
//! quoting, string styles) and keyword admissibility, plus the property
//! that `Dialect::Generic` is byte-identical to every pre-dialect entry
//! point on randomized scripts.

use sqlcheck_parser::diag::Limits;
use sqlcheck_parser::lexer::{tokenize, tokenize_dialect};
use sqlcheck_parser::parser::{parse_raw_limited, parse_raw_limited_dialect};
use sqlcheck_parser::splitter::{
    split, split_dialect, split_stream, split_stream_dialect, split_stream_parallel_dialect,
};
use sqlcheck_parser::{Dialect, Statement, TokenKind};

// ---------------------------------------------------------------------------
// Cleared limit 1: `$$` custom delimiters vs dollar-quoting
// ---------------------------------------------------------------------------

/// Under MySQL, `DELIMITER $$` works: dollar-quoting is not part of the
/// dialect, so `$$` is a plain custom delimiter and the trigger body
/// (with its internal `;`) stays one statement.
#[test]
fn mysql_dollar_delimiter_no_longer_collides_with_dollar_quoting() {
    let script = "DELIMITER $$\n\
                  CREATE TRIGGER trg BEFORE INSERT ON t FOR EACH ROW \
                  BEGIN UPDATE t SET a = 1; DELETE FROM u; END$$\n\
                  DELIMITER ;\n\
                  SELECT 1;\n";
    let stmts = split_dialect(script, Dialect::MySql);
    assert_eq!(stmts.len(), 2, "trigger + select: {:?}",
        stmts.iter().map(|s| s.text()).collect::<Vec<_>>());
    assert!(stmts[0].text().contains("DELETE FROM u"));
    assert_eq!(stmts[1].text().trim(), "SELECT 1");
}

/// The same bytes under Postgres read `$$ … $$` as a dollar-quoted
/// string (the pre-dialect collision), which is exactly why the split is
/// dialect-parameterised: each dialect gets its own reading.
#[test]
fn postgres_dollar_body_with_custom_delimiter_text_stays_one_statement() {
    // A dollar-quoted body containing `;;` — under Postgres the body is
    // one opaque token, so the function is ONE statement even though a
    // mysqldump reader would treat `;;` specially.
    let script = "CREATE FUNCTION f() RETURNS trigger AS $fn$ \
                  BEGIN UPDATE t SET a = 1;; DELETE FROM u; END; \
                  $fn$ LANGUAGE plpgsql;\nSELECT 2;\n";
    let stmts = split_dialect(script, Dialect::Postgres);
    assert_eq!(stmts.len(), 2);
    assert!(stmts[0].text().contains("$fn$"));
    assert_eq!(stmts[1].text().trim(), "SELECT 2");
}

// ---------------------------------------------------------------------------
// Cleared limit 2: `BEGIN ATOMIC` block integrity
// ---------------------------------------------------------------------------

/// `BEGIN ATOMIC … END` is a block under Postgres: body semicolons do
/// not split, and the routine parses with its body sub-statements.
#[test]
fn begin_atomic_body_survives_split_and_parse_under_postgres() {
    let script = "CREATE FUNCTION prune() RETURNS INTEGER LANGUAGE SQL \
                  BEGIN ATOMIC DELETE FROM t WHERE score < 0; SELECT 1; END;\n\
                  SELECT 2;\n";
    let stmts = split_dialect(script, Dialect::Postgres);
    assert_eq!(stmts.len(), 2, "routine + select: {:?}",
        stmts.iter().map(|s| s.text()).collect::<Vec<_>>());

    let (parsed, diags) =
        parse_raw_limited_dialect(stmts[0].clone(), &Limits::default(), Dialect::Postgres);
    assert!(diags.is_empty(), "clean parse expected: {diags:?}");
    match &parsed.stmt {
        Statement::CreateRoutine(r) => {
            assert_eq!(r.body.len(), 2, "DELETE + SELECT body: {:?}", r.body);
        }
        other => panic!("expected CreateRoutine, got {other:?}"),
    }
}

/// A statement-initial `BEGIN ATOMIC … END` (the SQL-standard anonymous
/// compound statement) is one statement under Postgres/Generic; under
/// MySQL and SQLite the capability is absent, so `ATOMIC` is ordinary
/// text and every body `;` splits. Dialect gating cuts both ways.
#[test]
fn statement_initial_begin_atomic_is_dialect_gated() {
    let script = "BEGIN ATOMIC UPDATE t SET a = 1; DELETE FROM u; END;\nSELECT 1;\n";
    for d in [Dialect::Generic, Dialect::Postgres] {
        assert_eq!(split_dialect(script, d).len(), 2, "{d}: block + select");
    }
    for d in [Dialect::MySql, Dialect::Sqlite] {
        assert_eq!(split_dialect(script, d).len(), 4, "{d}: every `;` splits");
    }
}

// ---------------------------------------------------------------------------
// Cleared limit 3: Postgres never pays the DELIMITER fallback
// ---------------------------------------------------------------------------

/// Under Postgres, `DELIMITER` is a plain word — not a directive — so a
/// script containing it still splits chunk-parallel, byte-identical to
/// the sequential pass at every thread count.
#[test]
fn postgres_delimiter_word_keeps_chunk_parallel_splitting() {
    let mut script = String::from("CREATE TABLE delimiter_log (id INTEGER, note VARCHAR(80));\n");
    for i in 0..400 {
        script.push_str(&format!(
            "INSERT INTO delimiter_log VALUES ({i}, 'DELIMITER is just a word here');\n"
        ));
    }
    let sequential = split_stream_dialect(&script, Dialect::Postgres);
    assert_eq!(sequential.len(), 401);
    for threads in [2, 4] {
        let parallel = split_stream_parallel_dialect(&script, threads, Dialect::Postgres);
        assert_eq!(parallel, sequential, "{threads} threads diverged");
    }
}

// ---------------------------------------------------------------------------
// Per-dialect lexer surface
// ---------------------------------------------------------------------------

#[test]
fn hash_comments_are_mysql_only() {
    let input = "# note\nSELECT 1";
    let my = tokenize_dialect(input, Dialect::MySql);
    assert_eq!(my[0].kind, TokenKind::Comment, "MySQL: `#` opens a line comment");
    for d in [Dialect::Generic, Dialect::Postgres, Dialect::Sqlite] {
        let toks = tokenize_dialect(input, d);
        assert!(
            toks.iter().all(|t| t.kind != TokenKind::Comment),
            "{d}: `#` must not open a comment"
        );
    }
}

#[test]
fn backtick_quoting_is_not_postgres() {
    let input = "SELECT `col` FROM t";
    for d in [Dialect::Generic, Dialect::MySql, Dialect::Sqlite] {
        let toks = tokenize_dialect(input, d);
        assert!(
            toks.iter().any(|t| t.kind == TokenKind::QuotedIdent && t.text.as_str() == "`col`"),
            "{d}: backticks quote identifiers"
        );
    }
    let pg = tokenize_dialect(input, Dialect::Postgres);
    assert!(
        pg.iter().all(|t| t.kind != TokenKind::QuotedIdent),
        "Postgres: backtick is not an identifier quote"
    );
}

#[test]
fn bracket_quoting_is_generic_and_sqlite_only() {
    let input = "SELECT [col] FROM t";
    for d in [Dialect::Generic, Dialect::Sqlite] {
        let toks = tokenize_dialect(input, d);
        assert!(
            toks.iter().any(|t| t.kind == TokenKind::QuotedIdent && t.text.as_str() == "[col]"),
            "{d}: brackets quote identifiers"
        );
    }
    for d in [Dialect::Postgres, Dialect::MySql] {
        let toks = tokenize_dialect(input, d);
        assert!(
            toks.iter().all(|t| t.kind != TokenKind::QuotedIdent),
            "{d}: brackets are not identifier quotes"
        );
    }
}

#[test]
fn double_quotes_are_strings_under_mysql_idents_elsewhere() {
    let input = "SELECT \"x\"";
    let my = tokenize_dialect(input, Dialect::MySql);
    assert!(my.iter().any(|t| t.kind == TokenKind::StringLit && t.text.as_str() == "\"x\""));
    for d in [Dialect::Generic, Dialect::Postgres, Dialect::Sqlite] {
        let toks = tokenize_dialect(input, d);
        assert!(
            toks.iter().any(|t| t.kind == TokenKind::QuotedIdent),
            "{d}: double quotes are identifier quotes"
        );
    }
}

#[test]
fn block_comments_nest_under_generic_and_postgres_only() {
    let input = "/* a /* b */ c */ SELECT 1";
    for d in [Dialect::Generic, Dialect::Postgres] {
        let toks = tokenize_dialect(input, d);
        assert_eq!(
            toks[0].text.as_str(),
            "/* a /* b */ c */",
            "{d}: block comments nest"
        );
    }
    for d in [Dialect::MySql, Dialect::Sqlite] {
        let toks = tokenize_dialect(input, d);
        assert_eq!(
            toks[0].text.as_str(),
            "/* a /* b */",
            "{d}: block comments end at the first `*/`"
        );
    }
}

// ---------------------------------------------------------------------------
// Keyword admissibility in the parser
// ---------------------------------------------------------------------------

/// Debug-render the parse result *including the expression arena* (the
/// shaped `Like`/`ILike`/… nodes live there, addressed by `ExprId`), so
/// a case-sensitive `contains("ILike")` observes shaping — the raw token
/// text is all-caps and never matches the variant spelling.
fn parse_under(sql: &str, dialect: Dialect) -> String {
    let stmts = split_dialect(sql, dialect);
    assert_eq!(stmts.len(), 1, "one statement expected from {sql:?}");
    let (p, _) = parse_raw_limited_dialect(stmts[0].clone(), &Limits::default(), dialect);
    format!("{:?} {:?}", p.stmt, p.arena)
}

#[test]
fn like_family_operators_follow_their_dialect() {
    // ILIKE is Postgres vocabulary: shaped there, raw under MySQL.
    let ilike = "SELECT a FROM t WHERE a ILIKE 'x%'";
    assert!(parse_under(ilike, Dialect::Postgres).contains("ILike"));
    assert!(!parse_under(ilike, Dialect::MySql).contains("ILike"));

    // REGEXP is MySQL/SQLite vocabulary: shaped there, raw under Postgres.
    let regexp = "SELECT a FROM t WHERE a REGEXP '^x'";
    assert!(parse_under(regexp, Dialect::MySql).contains("Regexp"));
    assert!(!parse_under(regexp, Dialect::Postgres).contains("Regexp"));

    // GLOB is SQLite vocabulary: shaped there, raw under MySQL.
    let glob = "SELECT a FROM t WHERE a GLOB 'x*'";
    assert!(parse_under(glob, Dialect::Sqlite).contains("Glob"));
    assert!(!parse_under(glob, Dialect::MySql).contains("Glob"));

    // Generic is the tolerant union: everything shapes.
    for sql in [ilike, regexp, glob] {
        let dbg = parse_under(sql, Dialect::Generic);
        assert!(
            dbg.contains("ILike") || dbg.contains("Regexp") || dbg.contains("Glob"),
            "Generic must shape {sql:?}: {dbg}"
        );
    }
}

// ---------------------------------------------------------------------------
// Generic is byte-identical to the pre-dialect entry points
// ---------------------------------------------------------------------------

/// Deterministic xorshift64* generator (same idiom as `proptests.rs` —
/// the build environment has no `proptest` crate).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Script generator biased toward dialect-sensitive constructs: every
/// spelling whose reading *could* differ between dialects shows up here,
/// so Generic's byte-identity is tested exactly where it could break.
fn dialect_stress_script(rng: &mut Rng) -> String {
    const FRAGMENTS: &[&str] = &[
        "SELECT * FROM t WHERE a = 1",
        "SELECT `b;tick` FROM t",
        "SELECT [bra;cket] FROM \"qu;oted\"",
        "SELECT \"double\" FROM t",
        "# hash line\nSELECT 1",
        "SELECT /* outer /* inner; */ tail */ x FROM y",
        "INSERT INTO t VALUES ($tag$v;1$tag$, 2)",
        "SELECT $$;$$",
        "SELECT a FROM t WHERE a ILIKE 'x%'",
        "SELECT a FROM t WHERE a REGEXP '^x' OR a RLIKE 'y'",
        "SELECT a FROM t WHERE a GLOB 'x*'",
        "SELECT a FROM t WHERE a SIMILAR TO 'x_'",
        "CREATE FUNCTION f() RETURNS INTEGER LANGUAGE SQL \
         BEGIN ATOMIC DELETE FROM t; SELECT 1; END",
        "CREATE TRIGGER trg AFTER INSERT ON t FOR EACH ROW \
         BEGIN UPDATE u SET a = 1; DELETE FROM v; END",
        "DELIMITER ;;\nSELECT 1; SELECT 2 ;;\nDELIMITER ;\n",
        "DELIMITER //\nUPDATE t SET a = 'x;y' //\nDELIMITER ;\n",
        "SELECT col$name FROM t",
        "SELECT e'esc;ape'",
        "",
        "-- just a comment",
    ];
    let n = rng.below(10);
    let mut script = String::new();
    for _ in 0..n {
        script.push_str(FRAGMENTS[rng.below(FRAGMENTS.len())]);
        script.push(';');
        if rng.below(3) == 0 {
            script.push('\n');
        }
    }
    script
}

/// `Dialect::Generic` must be byte-identical to the un-suffixed
/// pre-dialect entry points at every layer: lexer tokens, fused split,
/// materialised statements, and parse results (including diagnostics).
#[test]
fn generic_is_byte_identical_to_the_undialected_entry_points() {
    let mut rng = Rng::new(0xD1A1);
    let limits = Limits::default();
    for case in 0..192 {
        let script = dialect_stress_script(&mut rng);

        let base_toks = tokenize(&script);
        assert_eq!(
            tokenize_dialect(&script, Dialect::Generic),
            base_toks,
            "case {case}: lexer diverged on {script:?}"
        );

        let base_split = split_stream(&script);
        assert_eq!(
            split_stream_dialect(&script, Dialect::Generic),
            base_split,
            "case {case}: fused split diverged on {script:?}"
        );

        let base_raw = split(&script);
        let dialect_raw = split_dialect(&script, Dialect::Generic);
        assert_eq!(base_raw.len(), dialect_raw.len(), "case {case}");
        for (b, d) in base_raw.into_iter().zip(dialect_raw) {
            assert_eq!(b.tokens, d.tokens, "case {case}: tokens on {script:?}");
            assert_eq!(b.span, d.span, "case {case}: span on {script:?}");
            let (pb, db) = parse_raw_limited(b, &limits);
            let (pd, dd) =
                parse_raw_limited_dialect(d, &limits, Dialect::Generic);
            assert_eq!(
                format!("{:?}", pb.stmt),
                format!("{:?}", pd.stmt),
                "case {case}: parse diverged on {script:?}"
            );
            assert_eq!(
                format!("{db:?}"),
                format!("{dd:?}"),
                "case {case}: diagnostics diverged on {script:?}"
            );
        }
    }
}
