//! Resource-budget regression tests: pathological inputs must degrade
//! deliberately (bounded CPU and stack, `OverLimit`/`ParseDegraded`
//! diagnostics) instead of crashing or hanging.

use sqlcheck_parser::ast::Statement;
use sqlcheck_parser::diag::{DiagKind, Limits};
use sqlcheck_parser::parser::{parse, parse_one, parse_raw_limited};
use sqlcheck_parser::splitter::split;

fn diag_kinds(diags: &[sqlcheck_parser::diag::Diagnostic]) -> Vec<DiagKind> {
    diags.iter().map(|d| d.kind).collect()
}

#[test]
fn ten_thousand_nested_parens_do_not_blow_the_stack() {
    // The ISSUE regression case: expression recursion must be depth-
    // guarded, not bounded by the thread's stack size.
    let depth = 10_000;
    let mut sql = String::from("SELECT ");
    sql.extend(std::iter::repeat_n('(', depth));
    sql.push('1');
    sql.extend(std::iter::repeat_n(')', depth));
    let parsed = parse(&sql);
    assert_eq!(parsed.len(), 1);
    // The statement still shapes as a SELECT; the over-deep expression
    // sub-tree flattened to Raw.
    assert!(matches!(parsed[0].stmt, Statement::Select(_)), "{:?}", parsed[0].stmt);
}

#[test]
fn deep_parens_report_over_limit_and_degraded() {
    let depth = 1_000;
    let mut sql = String::from("SELECT ");
    sql.extend(std::iter::repeat_n('(', depth));
    sql.push('1');
    sql.extend(std::iter::repeat_n(')', depth));
    let raw = split(&sql).pop().expect("one statement");
    let (p, diags) = parse_raw_limited(raw, &Limits::default());
    assert!(matches!(p.stmt, Statement::Select(_)));
    let kinds = diag_kinds(&diags);
    assert!(kinds.contains(&DiagKind::OverLimit), "{diags:?}");
    assert!(kinds.contains(&DiagKind::ParseDegraded), "{diags:?}");
}

#[test]
fn shallow_nesting_stays_fully_shaped() {
    let sql = "SELECT ((a + (b * 2))) FROM t WHERE (x IN (1, 2, (3)))";
    let raw = split(sql).pop().expect("one statement");
    let (p, diags) = parse_raw_limited(raw, &Limits::default());
    assert!(matches!(p.stmt, Statement::Select(_)));
    assert!(diags.is_empty(), "clean statement must emit no diagnostics: {diags:?}");
}

#[test]
fn deep_unary_not_chain_is_bounded() {
    let mut sql = String::from("SELECT ");
    sql.push_str(&"NOT ".repeat(20_000));
    sql.push('1');
    let parsed = parse(&sql);
    assert_eq!(parsed.len(), 1);
}

#[test]
fn deeply_nested_subqueries_are_bounded() {
    let depth = 5_000;
    let mut sql = String::from("SELECT * FROM ");
    sql.extend(std::iter::repeat_n("(SELECT * FROM ", depth).map(String::from));
    sql.push('t');
    sql.extend(std::iter::repeat_n(')', depth));
    let parsed = parse(&sql);
    assert_eq!(parsed.len(), 1);
}

#[test]
fn deeply_nested_begin_blocks_are_bounded() {
    let depth = 5_000;
    let mut sql = String::from("CREATE PROCEDURE p() ");
    sql.extend(std::iter::repeat_n("BEGIN ", depth).map(String::from));
    sql.push_str("SELECT 1; ");
    sql.extend(std::iter::repeat_n("END; ", depth).map(String::from));
    let parsed = parse(&sql);
    assert!(!parsed.is_empty());
}

#[test]
fn over_byte_budget_skips_structural_parse() {
    let sql = format!("SELECT {} FROM t", "x".repeat(4096));
    let raw = split(&sql).pop().expect("one statement");
    let tight = Limits { max_statement_bytes: 1024, ..Limits::default() };
    let (p, diags) = parse_raw_limited(raw, &tight);
    let Statement::Other(o) = &p.stmt else { panic!("expected Other, got {:?}", p.stmt) };
    assert_eq!(o.leading_keyword, "SELECT");
    assert_eq!(diag_kinds(&diags), vec![DiagKind::OverLimit]);
    // Tokens are preserved even when the structural parse is skipped.
    assert!(!p.tokens.is_empty());
}

#[test]
fn over_token_budget_skips_structural_parse() {
    let cols: Vec<String> = (0..500).map(|i| format!("c{i}")).collect();
    let sql = format!("SELECT {} FROM t", cols.join(", "));
    let raw = split(&sql).pop().expect("one statement");
    let tight = Limits { max_tokens: 64, ..Limits::default() };
    let (p, diags) = parse_raw_limited(raw, &tight);
    assert!(matches!(p.stmt, Statement::Other(_)));
    assert_eq!(diag_kinds(&diags), vec![DiagKind::OverLimit]);
}

#[test]
fn unterminated_block_is_diagnosed() {
    let sql = "CREATE TRIGGER t1 BEFORE UPDATE ON x FOR EACH ROW BEGIN SELECT 1;";
    let raw = split(sql).pop().expect("one statement");
    let (p, diags) = parse_raw_limited(raw, &Limits::default());
    assert!(matches!(p.stmt, Statement::CreateTrigger(_)), "{:?}", p.stmt);
    assert!(diag_kinds(&diags).contains(&DiagKind::UnterminatedBlock), "{diags:?}");
}

#[test]
fn orphan_end_is_diagnosed() {
    let raw = split("END").pop().expect("one statement");
    let (p, diags) = parse_raw_limited(raw, &Limits::default());
    assert!(matches!(p.stmt, Statement::Other(_)));
    assert_eq!(diag_kinds(&diags), vec![DiagKind::OrphanEnd]);
}

#[test]
fn unshaped_statement_is_diagnosed_as_degraded() {
    let raw = split("GRANT ALL ON t TO alice").pop().expect("one statement");
    let (p, diags) = parse_raw_limited(raw, &Limits::default());
    assert!(matches!(p.stmt, Statement::Other(_)));
    assert_eq!(diag_kinds(&diags), vec![DiagKind::ParseDegraded]);
}

#[test]
fn parse_one_handles_trivia_and_statements() {
    // All-trivia input: tokens preserved without a second tokenize pass.
    let p = parse_one("  -- just a comment\n  ");
    assert!(matches!(&p.stmt, Statement::Other(o) if o.leading_keyword.is_empty()));
    assert!(!p.tokens.is_empty());
    // Normal input: first statement of several.
    let p = parse_one("SELECT a FROM t; SELECT b FROM u;");
    let Statement::Select(s) = &p.stmt else { panic!("{:?}", p.stmt) };
    assert_eq!(s.from.as_ref().unwrap().name.to_string(), "t");
    // Empty input.
    let p = parse_one("");
    assert!(matches!(p.stmt, Statement::Other(_)));
    // DELIMITER directive before the first statement.
    let p = parse_one("DELIMITER //\nSELECT 1 //");
    assert!(matches!(p.stmt, Statement::Select(_)), "{:?}", p.stmt);
}

#[test]
fn budget_flags_do_not_leak_between_statements() {
    // A degraded parse followed by a clean parse on the same thread must
    // not smear diagnostics onto the clean statement.
    let deep = {
        let mut s = String::from("SELECT ");
        s.extend(std::iter::repeat_n('(', 500));
        s.push('1');
        s.extend(std::iter::repeat_n(')', 500));
        s
    };
    let raw_deep = split(&deep).pop().unwrap();
    let (_, d1) = parse_raw_limited(raw_deep, &Limits::default());
    assert!(!d1.is_empty());
    let raw_clean = split("SELECT a FROM t").pop().unwrap();
    let (_, d2) = parse_raw_limited(raw_clean, &Limits::default());
    assert!(d2.is_empty(), "{d2:?}");
}

#[test]
fn expr_raw_fallback_sets_sub_expression_diagnostic() {
    // A shaped statement whose WHERE clause cannot be shaped.
    let raw = split("SELECT a FROM t WHERE a ->> 'b' @> 'c'").pop().unwrap();
    let (p, diags) = parse_raw_limited(raw, &Limits::default());
    if matches!(p.stmt, Statement::Select(_)) {
        // Either the whole clause went Raw (sub-expression diagnostic)
        // or the parser shaped it — both are valid total outcomes, but a
        // Raw fallback must be reported.
        let has_raw = format!("{:?}", p.stmt).contains("Raw");
        if has_raw {
            assert!(diag_kinds(&diags).contains(&DiagKind::ParseDegraded), "{diags:?}");
        }
    }
}

#[test]
fn delimiter_scripts_set_the_dedup_flag() {
    use sqlcheck_parser::splitter::split_deduped;
    let script = "DELIMITER //\nSELECT 1; SELECT 2 //\nDELIMITER ;\nSELECT 3;";
    for threads in [1, 2, 4] {
        let d = split_deduped(script, threads);
        assert!(d.saw_delimiter_directive, "threads={threads}");
    }
    let plain = "SELECT 1; SELECT 2; SELECT 3;";
    for threads in [1, 2, 4] {
        let d = split_deduped(plain, threads);
        assert!(!d.saw_delimiter_directive, "threads={threads}");
    }
    // The word appearing mid-statement is not a directive.
    let decoy = "SELECT delimiter FROM t;";
    assert!(!split_deduped(decoy, 1).saw_delimiter_directive);
}
