//! Property-based tests for the non-validating parser contract.
//!
//! The build environment has no access to the `proptest` crate, so these
//! properties are exercised with a small deterministic xorshift generator:
//! same seeds, same cases, every run.

use sqlcheck_parser::lexer::tokenize;
use sqlcheck_parser::parser::{parse, parse_one};
use sqlcheck_parser::splitter::{split_deduped, split_spanned, split_stream, split_stream_parallel};

/// Deterministic xorshift64* generator for test-case synthesis.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    /// Arbitrary-ish string: ASCII printable, SQL punctuation, quotes,
    /// newlines, and some multi-byte unicode.
    fn arbitrary_string(&mut self, max_len: usize) -> String {
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', '(', ')', ',', ';', '.', '*',
            '=', '<', '>', '\'', '"', '`', '[', ']', '%', '_', '$', ':', '?', '-', '/', '|',
            '\\', '#', '@', 'é', 'λ', '中', '😀', '\u{0}',
        ];
        let len = self.below(max_len + 1);
        (0..len).map(|_| POOL[self.below(POOL.len())]).collect()
    }
    fn ident(&mut self, max_extra: usize) -> String {
        const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
        const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        let mut s = String::new();
        s.push(HEAD[self.below(HEAD.len())] as char);
        for _ in 0..self.below(max_extra + 1) {
            s.push(TAIL[self.below(TAIL.len())] as char);
        }
        s
    }
}

const CASES: usize = 256;

/// The lexer must be lossless on arbitrary input: the concatenation of
/// token texts reproduces the input byte-for-byte, and lexing never
/// panics.
#[test]
fn lexer_is_lossless_on_arbitrary_input() {
    let mut rng = Rng::new(0x10A11);
    for case in 0..CASES {
        let input = rng.arbitrary_string(200);
        let toks = tokenize(&input);
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, input, "case {case}: lexer must be lossless");
    }
}

/// Token spans are contiguous and cover the input exactly.
#[test]
fn lexer_spans_are_contiguous() {
    let mut rng = Rng::new(0x5BA5);
    for case in 0..CASES {
        let input = rng.arbitrary_string(200);
        let toks = tokenize(&input);
        let mut pos = 0usize;
        for t in &toks {
            assert_eq!(t.span.start, pos, "case {case}: span start");
            pos = t.span.end;
        }
        assert_eq!(pos, input.len(), "case {case}: spans cover input");
    }
}

/// The parser is total: any input parses without panicking.
#[test]
fn parser_is_total() {
    let mut rng = Rng::new(0x707A1);
    for _ in 0..CASES {
        let input = rng.arbitrary_string(300);
        let _ = parse(&input);
    }
}

/// Rendering a parsed statement and re-parsing it must be stable: the
/// second render equals the first (render is a fixpoint after one
/// normalisation step).
#[test]
fn render_is_fixpoint_on_generated_selects() {
    let mut rng = Rng::new(0xF1B);
    for case in 0..CASES {
        let n_cols = 1 + rng.below(4);
        let cols: Vec<String> = (0..n_cols).map(|_| rng.ident(8)).collect();
        let table = rng.ident(8);
        let val = rng.below(1000);
        let sql = format!(
            "SELECT {} FROM {} WHERE {} = {}",
            cols.join(", "),
            table,
            cols[0],
            val
        );
        let once = parse_one(&sql).to_sql();
        let twice = parse_one(&once).to_sql();
        assert_eq!(once, twice, "case {case}: render must be a fixpoint");
    }
}

/// Keywords injected between identifiers still produce a total parse
/// and a statement tag; the fingerprint is insensitive to case and
/// whitespace mangling of the same statement.
#[test]
fn statement_tag_is_always_defined() {
    const KWS: &[&str] =
        &["SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER", "PRAGMA"];
    const REST_POOL: &[char] =
        &[' ', 'a', 'z', '0', '9', '_', ',', '(', ')', '*', '=', '\''];
    let mut rng = Rng::new(0x7A6);
    for _ in 0..CASES {
        let kw = KWS[rng.below(KWS.len())];
        let len = rng.below(81);
        let rest: String = (0..len).map(|_| REST_POOL[rng.below(REST_POOL.len())]).collect();
        let sql = format!("{kw} {rest}");
        let p = parse_one(&sql);
        let _ = p.stmt.tag();
    }
}

/// Build a random SQL-ish script stressing every construct that can hide
/// a `;` (string literals, line/block comments, dollar quotes, bracket
/// and quoted identifiers, DB-API parameters, `BEGIN…END` compound
/// bodies, `CASE…END` decoys, `DELIMITER` directives), plus empty
/// statements and an optional unterminated trailing statement.
fn random_script(rng: &mut Rng) -> String {
    const FRAGMENTS: &[&str] = &[
        "SELECT * FROM t WHERE a = 1",
        "SELECT 'a;b' FROM t",
        "SELECT 1 -- c;not a split\n, 2",
        "SELECT /* b;lock /* nested; */ */ x FROM y",
        "INSERT INTO t VALUES ($tag$v;1$tag$, 2)",
        "SELECT [col;umn] FROM \"ta;ble\"",
        "UPDATE `w;eird` SET a = %(pa;ram)s",
        "SELECT \";\"",
        "select a  ,  b from T where A in (1,2,3)",
        "",
        "   ",
        "-- just a comment",
        "DELETE FROM t WHERE x = :named",
        "SELECT $$;$$",
        // Compound statements and their decoys: the block-depth state
        // machine must keep every split path byte-identical on these.
        "CREATE TRIGGER trg AFTER INSERT ON t FOR EACH ROW \
         BEGIN UPDATE u SET a = 1; DELETE FROM v; END",
        "CREATE PROCEDURE p() BEGIN IF a THEN SELECT 1; END IF; \
         SELECT CASE WHEN b THEN 'x;y' END; END",
        "create trigger T2 before update on X for each row begin set a = 1; end",
        "SELECT CASE WHEN a = 1 THEN 'x;y' ELSE b END FROM t",
        "CREATE TABLE decoy (begin INT, end INT, [case] TEXT)",
        "BEGIN TRANSACTION",
        "BEGIN",
        "COMMIT",
        "END",
        "END IF",
        "CREATE TRIGGER dangling BEFORE DELETE ON t FOR EACH ROW BEGIN SELECT 1",
        "DELIMITER ;;\nSELECT 1; SELECT 2 ;;\nDELIMITER ;\n",
        "DELIMITER //\nUPDATE t SET a = 'x;y' //\nDELIMITER ;\n",
        "DELIMITER ;;",
    ];
    let n = rng.below(12);
    let mut script = String::new();
    for _ in 0..n {
        if rng.below(8) == 0 {
            // Raw fuzz between statements.
            script.push_str(&rng.arbitrary_string(24));
        } else {
            script.push_str(FRAGMENTS[rng.below(FRAGMENTS.len())]);
        }
        script.push(';');
        if rng.below(3) == 0 {
            script.push('\n');
        }
    }
    match rng.below(4) {
        0 => script.push_str("SELECT 'trailing unterminated"),
        1 => script.push_str("SELECT trailing_no_semi FROM t"),
        2 => script.push_str(&rng.arbitrary_string(16)),
        _ => {}
    }
    script
}

/// The fused streaming splitter must emit exactly the statements of the
/// legacy two-pass `split_spanned` reference — same spans, same content
/// hashes, same template fingerprints, and identical materialised token
/// streams — on randomized scripts full of semicolon decoys.
#[test]
fn fused_split_equals_legacy_split_on_random_scripts() {
    let mut rng = Rng::new(0x5B11);
    for case in 0..CASES {
        let script = random_script(&mut rng);
        let fused = split_stream(&script);
        let legacy = split_spanned(&script);
        assert_eq!(fused.len(), legacy.len(), "case {case}: count on {script:?}");
        for (f, l) in fused.iter().zip(&legacy) {
            assert_eq!(f.span, l.span, "case {case}: span on {script:?}");
            assert_eq!(f.content_hash, l.content_hash, "case {case}: hash on {script:?}");
            assert_eq!(
                f.fingerprint,
                l.fingerprint(&script),
                "case {case}: fingerprint on {script:?}"
            );
            assert_eq!(
                f.materialize(&script).tokens,
                l.materialize(&script).tokens,
                "case {case}: materialised tokens on {script:?}"
            );
        }
    }
}

/// Chunk-parallel splitting must be byte-identical to the sequential
/// fused pass for every thread count, on arbitrary input.
#[test]
fn parallel_split_is_identical_across_thread_counts() {
    let mut rng = Rng::new(0xC4A9);
    for case in 0..CASES / 2 {
        let script = random_script(&mut rng);
        let sequential = split_stream(&script);
        for threads in [2, 3, 7] {
            assert_eq!(
                split_stream_parallel(&script, threads),
                sequential,
                "case {case}: {threads} thread(s) diverged on {script:?}"
            );
        }
    }
}

/// Splitter-level dedup must preserve the occurrence sequence exactly:
/// mapping every occurrence back through its unique slot reproduces the
/// undeduplicated stream's spans and hashes.
#[test]
fn deduped_split_round_trips_on_random_scripts() {
    let mut rng = Rng::new(0xDED0);
    for case in 0..CASES / 2 {
        let script = random_script(&mut rng);
        let full = split_stream(&script);
        for threads in [1, 4] {
            let d = split_deduped(&script, threads);
            assert_eq!(d.occurrences.len(), full.len(), "case {case}");
            for ((slot, span), s) in d.occurrences.iter().zip(&full) {
                assert_eq!(*span, s.span, "case {case}: occurrence span");
                let u = &d.uniques[*slot as usize];
                assert_eq!(u.content_hash, s.content_hash, "case {case}: unique hash");
                assert_eq!(u.fingerprint, s.fingerprint, "case {case}: unique fingerprint");
            }
        }
    }
}

/// Fingerprints are literal-, case-, and whitespace-insensitive on
/// generated statements, and the template never contains literal text.
#[test]
fn fingerprint_is_template_stable() {
    let mut rng = Rng::new(0xF160);
    for case in 0..CASES {
        let table = rng.ident(8);
        let col = rng.ident(6);
        let v1 = rng.below(100_000);
        let v2 = rng.below(100_000);
        let a = format!("SELECT {col} FROM {table} WHERE {col} = {v1}");
        let b = format!(
            "select  {}  from {} where {} = {v2}",
            col.to_ascii_uppercase(),
            table.to_ascii_uppercase(),
            col.to_ascii_uppercase()
        );
        let pa = parse_one(&a);
        let pb = parse_one(&b);
        assert_eq!(pa.fingerprint(), pb.fingerprint(), "case {case}: {a} vs {b}");
        assert!(!pa.template().contains(&v1.to_string()), "case {case}: literal leaked");
    }
}
