//! Property-based tests for the non-validating parser contract.

use proptest::prelude::*;
use sqlcheck_parser::lexer::tokenize;
use sqlcheck_parser::parser::{parse, parse_one};
use sqlcheck_parser::render::ToSql;

proptest! {
    /// The lexer must be lossless on arbitrary input: the concatenation of
    /// token texts reproduces the input byte-for-byte, and lexing never
    /// panics.
    #[test]
    fn lexer_is_lossless_on_arbitrary_input(input in ".{0,200}") {
        let toks = tokenize(&input);
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(rebuilt, input);
    }

    /// Token spans are contiguous and cover the input exactly.
    #[test]
    fn lexer_spans_are_contiguous(input in ".{0,200}") {
        let toks = tokenize(&input);
        let mut pos = 0usize;
        for t in &toks {
            prop_assert_eq!(t.span.start, pos);
            pos = t.span.end;
        }
        prop_assert_eq!(pos, input.len());
    }

    /// The parser is total: any input parses without panicking.
    #[test]
    fn parser_is_total(input in ".{0,300}") {
        let _ = parse(&input);
    }

    /// Rendering a parsed statement and re-parsing it must be stable: the
    /// second render equals the first (render is a fixpoint after one
    /// normalisation step).
    #[test]
    fn render_is_fixpoint_on_generated_selects(
        cols in prop::collection::vec("[a-z][a-z0-9_]{0,8}", 1..5),
        table in "[a-z][a-z0-9_]{0,8}",
        val in 0i64..1000,
    ) {
        let sql = format!(
            "SELECT {} FROM {} WHERE {} = {}",
            cols.join(", "), table, cols[0], val
        );
        let once = parse_one(&sql).to_sql();
        let twice = parse_one(&once).to_sql();
        prop_assert_eq!(once, twice);
    }

    /// Keywords injected between identifiers still produce a total parse
    /// and a statement tag.
    #[test]
    fn statement_tag_is_always_defined(
        kw in prop::sample::select(vec!["SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER", "PRAGMA"]),
        rest in "[ a-z0-9_,()*=']{0,80}",
    ) {
        let sql = format!("{kw} {rest}");
        let p = parse_one(&sql);
        let _ = p.stmt.tag();
    }
}
