//! Property-based tests for the non-validating parser contract.
//!
//! The build environment has no access to the `proptest` crate, so these
//! properties are exercised with a small deterministic xorshift generator:
//! same seeds, same cases, every run.

use sqlcheck_parser::lexer::tokenize;
use sqlcheck_parser::parser::{parse, parse_one};
use sqlcheck_parser::render::ToSql;

/// Deterministic xorshift64* generator for test-case synthesis.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    /// Arbitrary-ish string: ASCII printable, SQL punctuation, quotes,
    /// newlines, and some multi-byte unicode.
    fn arbitrary_string(&mut self, max_len: usize) -> String {
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', '(', ')', ',', ';', '.', '*',
            '=', '<', '>', '\'', '"', '`', '[', ']', '%', '_', '$', ':', '?', '-', '/', '|',
            '\\', '#', '@', 'é', 'λ', '中', '😀', '\u{0}',
        ];
        let len = self.below(max_len + 1);
        (0..len).map(|_| POOL[self.below(POOL.len())]).collect()
    }
    fn ident(&mut self, max_extra: usize) -> String {
        const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
        const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        let mut s = String::new();
        s.push(HEAD[self.below(HEAD.len())] as char);
        for _ in 0..self.below(max_extra + 1) {
            s.push(TAIL[self.below(TAIL.len())] as char);
        }
        s
    }
}

const CASES: usize = 256;

/// The lexer must be lossless on arbitrary input: the concatenation of
/// token texts reproduces the input byte-for-byte, and lexing never
/// panics.
#[test]
fn lexer_is_lossless_on_arbitrary_input() {
    let mut rng = Rng::new(0x10A11);
    for case in 0..CASES {
        let input = rng.arbitrary_string(200);
        let toks = tokenize(&input);
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, input, "case {case}: lexer must be lossless");
    }
}

/// Token spans are contiguous and cover the input exactly.
#[test]
fn lexer_spans_are_contiguous() {
    let mut rng = Rng::new(0x5BA5);
    for case in 0..CASES {
        let input = rng.arbitrary_string(200);
        let toks = tokenize(&input);
        let mut pos = 0usize;
        for t in &toks {
            assert_eq!(t.span.start, pos, "case {case}: span start");
            pos = t.span.end;
        }
        assert_eq!(pos, input.len(), "case {case}: spans cover input");
    }
}

/// The parser is total: any input parses without panicking.
#[test]
fn parser_is_total() {
    let mut rng = Rng::new(0x707A1);
    for _ in 0..CASES {
        let input = rng.arbitrary_string(300);
        let _ = parse(&input);
    }
}

/// Rendering a parsed statement and re-parsing it must be stable: the
/// second render equals the first (render is a fixpoint after one
/// normalisation step).
#[test]
fn render_is_fixpoint_on_generated_selects() {
    let mut rng = Rng::new(0xF1B);
    for case in 0..CASES {
        let n_cols = 1 + rng.below(4);
        let cols: Vec<String> = (0..n_cols).map(|_| rng.ident(8)).collect();
        let table = rng.ident(8);
        let val = rng.below(1000);
        let sql = format!(
            "SELECT {} FROM {} WHERE {} = {}",
            cols.join(", "),
            table,
            cols[0],
            val
        );
        let once = parse_one(&sql).to_sql();
        let twice = parse_one(&once).to_sql();
        assert_eq!(once, twice, "case {case}: render must be a fixpoint");
    }
}

/// Keywords injected between identifiers still produce a total parse
/// and a statement tag; the fingerprint is insensitive to case and
/// whitespace mangling of the same statement.
#[test]
fn statement_tag_is_always_defined() {
    const KWS: &[&str] =
        &["SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER", "PRAGMA"];
    const REST_POOL: &[char] =
        &[' ', 'a', 'z', '0', '9', '_', ',', '(', ')', '*', '=', '\''];
    let mut rng = Rng::new(0x7A6);
    for _ in 0..CASES {
        let kw = KWS[rng.below(KWS.len())];
        let len = rng.below(81);
        let rest: String = (0..len).map(|_| REST_POOL[rng.below(REST_POOL.len())]).collect();
        let sql = format!("{kw} {rest}");
        let p = parse_one(&sql);
        let _ = p.stmt.tag();
    }
}

/// Fingerprints are literal-, case-, and whitespace-insensitive on
/// generated statements, and the template never contains literal text.
#[test]
fn fingerprint_is_template_stable() {
    let mut rng = Rng::new(0xF160);
    for case in 0..CASES {
        let table = rng.ident(8);
        let col = rng.ident(6);
        let v1 = rng.below(100_000);
        let v2 = rng.below(100_000);
        let a = format!("SELECT {col} FROM {table} WHERE {col} = {v1}");
        let b = format!(
            "select  {}  from {} where {} = {v2}",
            col.to_ascii_uppercase(),
            table.to_ascii_uppercase(),
            col.to_ascii_uppercase()
        );
        let pa = parse_one(&a);
        let pb = parse_one(&b);
        assert_eq!(pa.fingerprint(), pb.fingerprint(), "case {case}: {a} vs {b}");
        assert!(!pa.template().contains(&v1.to_string()), "case {case}: literal leaked");
    }
}
