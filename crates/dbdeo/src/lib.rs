//! # sqlcheck-dbdeo
//!
//! A faithful re-implementation of **dbdeo** (Sharma et al., ICSE 2018) as
//! the comparison baseline of the SQLCheck paper (§8.1).
//!
//! dbdeo performs *regex-style static analysis over raw statement text* —
//! no parse tree, no application context, no data analysis. That design
//! yields exactly the behaviour Table 2 documents:
//!
//! * it supports only **11 AP types**;
//! * it misses variants sqlcheck's richer rules catch (false negatives —
//!   e.g. CHECK IN-list enums, word-boundary MVA patterns, `ALTER TABLE`
//!   primary keys);
//! * its context-free text matching over-fires (false positives — e.g.
//!   every `LIKE` flags Pattern Matching, prefix patterns included; string
//!   literal contents are not distinguished from syntax).
//!
//! The detection surface is intentionally crude; do not "improve" it, its
//! crudeness *is* the baseline being reproduced.

#![warn(missing_docs)]

use sqlcheck::AntiPatternKind;
use sqlcheck_parser::splitter::split;

/// One dbdeo detection: an AP kind anchored at a statement index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbdeoDetection {
    /// Detected anti-pattern kind (one of the 11 supported).
    pub kind: AntiPatternKind,
    /// Statement index in the analysed script.
    pub statement_index: usize,
    /// The matched text fragment (evidence).
    pub evidence: String,
}

/// Run dbdeo over a whole script.
pub fn detect_script(script: &str) -> Vec<DbdeoDetection> {
    split(script)
        .iter()
        .enumerate()
        .flat_map(|(i, stmt)| detect_statement(i, stmt.text()))
        .collect()
}

/// Run dbdeo over one statement's raw text.
pub fn detect_statement(index: usize, text: &str) -> Vec<DbdeoDetection> {
    let lower = collapse_ws(&text.to_ascii_lowercase());
    let mut out = Vec::new();
    let mut push = |kind: AntiPatternKind, evidence: &str| {
        out.push(DbdeoDetection { kind, statement_index: index, evidence: evidence.to_string() })
    };

    // --- Multi-Valued Attribute: the paper quotes dbdeo's actual regex:
    //     (id\s+regexp)|(id\s+like)
    if lower.contains("id regexp") || lower.contains("id like") || lower.contains("ids like") {
        push(AntiPatternKind::MultiValuedAttribute, "id ~ LIKE/REGEXP");
    }

    // --- Pattern Matching: ANY like/regexp keyword, prefix patterns and
    //     string contents included (the all-FP column of Table 2).
    if word(&lower, "like") || word(&lower, "regexp") || word(&lower, "rlike") {
        push(AntiPatternKind::PatternMatching, "LIKE/REGEXP present");
    }

    // --- No Primary Key: CREATE TABLE text without the literal phrase.
    if lower.starts_with("create table") && !lower.contains("primary key") {
        push(AntiPatternKind::NoPrimaryKey, "CREATE TABLE without PRIMARY KEY");
    }

    // --- God Table: comma count in a CREATE TABLE (counts constraint
    //     clauses and type args too — an FP source).
    if lower.starts_with("create table") {
        let commas = lower.matches(',').count();
        if commas + 1 >= 10 {
            push(AntiPatternKind::GodTable, "many commas in CREATE TABLE");
        }
    }

    // --- Enumerated Types: the substring `enum(` only; CHECK IN-lists are
    //     missed (FN), `enum` inside identifiers/strings matches (FP).
    if lower.contains("enum(") || lower.contains("enum (") {
        push(AntiPatternKind::EnumeratedTypes, "enum( literal");
    }

    // --- Rounding Errors: the words float/real/double anywhere in DDL.
    if (lower.starts_with("create table") || lower.starts_with("alter table"))
        && (word(&lower, "float") || word(&lower, "real") || word(&lower, "double"))
    {
        push(AntiPatternKind::RoundingErrors, "float/real/double keyword");
    }

    // --- Data in Metadata: identifiers carrying digit suffixes anywhere in
    //     the statement (values and table names alike — a big FP source).
    if has_numbered_identifier(&lower) {
        push(AntiPatternKind::DataInMetadata, "identifier with numeric suffix");
    }

    // --- Clone Table: a CREATE TABLE whose own name ends in digits. One
    //     statement suffices for dbdeo (no cross-statement grouping).
    if lower.starts_with("create table") {
        if let Some(name) = create_table_name(&lower) {
            if name.chars().last().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                push(AntiPatternKind::CloneTable, "numbered table name");
            }
        }
    }

    // --- Adjacency List: the canonical column names, as plain substrings.
    if lower.contains("parent_id") || lower.contains("manager_id") || lower.contains("mgr_id") {
        push(AntiPatternKind::AdjacencyList, "parent/manager id column");
    }

    // --- Index Overuse: several indexes created in one statement batch is
    //     invisible to dbdeo; it flags composite indexes with many columns.
    if (lower.starts_with("create index") || lower.starts_with("create unique index"))
        && lower.matches(',').count() >= 3
    {
        push(AntiPatternKind::IndexOveruse, "wide composite index");
    }

    // --- Index Underuse: a SELECT with a WHERE over an OR-disjunction
    //     (heuristic: such predicates rarely have index support).
    if lower.starts_with("select") && lower.contains(" where ") && lower.contains(" or ") {
        push(AntiPatternKind::IndexUnderuse, "OR-predicate select");
    }

    out
}

/// Aggregate detections per AP kind (the shape of Table 3's `D` column).
pub fn histogram(detections: &[DbdeoDetection]) -> Vec<(AntiPatternKind, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for d in detections {
        *counts.entry(d.kind).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

fn collapse_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_ws = false;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_ws {
                out.push(' ');
            }
            last_ws = true;
        } else {
            out.push(c);
            last_ws = false;
        }
    }
    out
}

/// Word-boundary substring check (ASCII).
fn word(haystack: &str, needle: &str) -> bool {
    let hb = haystack.as_bytes();
    let mut start = 0;
    while let Some(p) = haystack[start..].find(needle) {
        let at = start + p;
        let before = at == 0 || !(hb[at - 1].is_ascii_alphanumeric() || hb[at - 1] == b'_');
        let end = at + needle.len();
        let after = end >= hb.len() || !(hb[end].is_ascii_alphanumeric() || hb[end] == b'_');
        if before && after {
            return true;
        }
        start = at + 1;
        if start >= haystack.len() {
            break;
        }
    }
    false
}

fn has_numbered_identifier(lower: &str) -> bool {
    // Two or more identifiers sharing a stem with different digit suffixes.
    let mut stems: std::collections::BTreeMap<&str, std::collections::BTreeSet<&str>> =
        Default::default();
    for tok in lower.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
        if tok.len() < 2 {
            continue;
        }
        let stripped = tok.trim_end_matches(|c: char| c.is_ascii_digit());
        if stripped.len() < tok.len() && stripped.len() >= 2 {
            stems.entry(stripped).or_default().insert(tok);
        }
    }
    stems.values().any(|set| set.len() >= 2)
}

fn create_table_name(lower: &str) -> Option<&str> {
    let rest = lower.strip_prefix("create table")?.trim_start();
    let rest = rest.strip_prefix("if not exists").unwrap_or(rest).trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
        .unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<AntiPatternKind> {
        detect_script(sql).into_iter().map(|d| d.kind).collect()
    }

    #[test]
    fn supports_only_dbdeo_kinds() {
        let corpus = "CREATE TABLE t1 (a FLOAT, b ENUM('x'), parent_id INT);\
                      SELECT * FROM t WHERE id LIKE '%x%' OR a = 1;\
                      CREATE INDEX i ON t (a, b, c, d);";
        for d in detect_script(corpus) {
            assert!(d.kind.dbdeo_supported(), "{:?} not a dbdeo kind", d.kind);
        }
    }

    #[test]
    fn pattern_matching_over_fires_on_prefix_like() {
        // sqlcheck knows 'x%' can use an index; dbdeo flags it anyway (FP).
        assert!(kinds("SELECT * FROM t WHERE a LIKE 'x%'")
            .contains(&AntiPatternKind::PatternMatching));
    }

    #[test]
    fn enum_check_in_list_is_a_false_negative() {
        // dbdeo misses the CHECK IN-list encoding of enumerated types.
        let k = kinds("ALTER TABLE u ADD CONSTRAINT c CHECK (role IN ('R1','R2'))");
        assert!(!k.contains(&AntiPatternKind::EnumeratedTypes));
        // ...but catches the ENUM( spelling.
        assert!(kinds("CREATE TABLE u (role ENUM('a','b'))")
            .contains(&AntiPatternKind::EnumeratedTypes));
    }

    #[test]
    fn no_pk_misses_alter_table_fix() {
        // dbdeo has no cross-statement context: the ALTER doesn't help.
        let k = kinds(
            "CREATE TABLE t (a INT); ALTER TABLE t ADD CONSTRAINT pk PRIMARY KEY (a);",
        );
        assert!(k.contains(&AntiPatternKind::NoPrimaryKey), "context-free FP");
    }

    #[test]
    fn mva_regex_matches_paper_quoted_pattern() {
        assert!(kinds("SELECT * FROM t WHERE user_ids LIKE '%u1%'")
            .contains(&AntiPatternKind::MultiValuedAttribute));
        // word-boundary variant dbdeo misses unless 'id like' appears
        let k = kinds("SELECT * FROM t WHERE members REGEXP '[[:<:]]U1[[:>:]]'");
        assert!(!k.contains(&AntiPatternKind::MultiValuedAttribute), "variant FN");
    }

    #[test]
    fn clone_table_single_statement() {
        assert!(kinds("CREATE TABLE sales_2020 (id INT PRIMARY KEY)")
            .contains(&AntiPatternKind::CloneTable));
    }

    #[test]
    fn adjacency_list_substring() {
        assert!(kinds("CREATE TABLE emp (id INT PRIMARY KEY, parent_id INT)")
            .contains(&AntiPatternKind::AdjacencyList));
    }

    #[test]
    fn histogram_groups() {
        let dets = detect_script(
            "SELECT * FROM a WHERE x LIKE '%1%'; SELECT * FROM b WHERE y LIKE '%2%';",
        );
        let h = histogram(&dets);
        let pm = h
            .iter()
            .find(|(k, _)| *k == AntiPatternKind::PatternMatching)
            .map(|(_, n)| *n)
            .unwrap();
        assert_eq!(pm, 2);
    }

    #[test]
    fn rounding_errors_word_boundary() {
        assert!(kinds("CREATE TABLE t (p FLOAT)").contains(&AntiPatternKind::RoundingErrors));
        assert!(!kinds("CREATE TABLE t (floaty INT)")
            .contains(&AntiPatternKind::RoundingErrors));
    }

    #[test]
    fn god_table_counts_commas_not_columns() {
        // 8 columns + 2 constraints = 10 comma-separated elements: FP.
        let cols: Vec<String> = (0..8).map(|i| format!("c{i} INT")).collect();
        let sql = format!(
            "CREATE TABLE t ({}, PRIMARY KEY (c0), UNIQUE (c1))",
            cols.join(", ")
        );
        assert!(kinds(&sql).contains(&AntiPatternKind::GodTable));
    }
}
