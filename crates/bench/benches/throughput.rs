//! `cargo bench --bench throughput` — batch detection engine vs the
//! sequential seed path on template-heavy workloads (1k / 10k / 100k
//! statements, 100 unique templates).
//!
//! Prints a throughput table and writes the machine-readable results to
//! `BENCH_throughput.json` at the workspace root.

use sqlcheck_bench::experiments::throughput;
use std::path::Path;

fn main() {
    let sizes = [1_000usize, 10_000, 100_000];
    let templates = 100;
    println!(
        "batch detection throughput — {} templates, sizes {:?}",
        templates, sizes
    );
    let rows = throughput::run(&sizes, templates, 0xBA7C4, None);
    print!("{}", throughput::render(&rows));

    for r in &rows {
        assert!(r.identical, "{} statements: batch output diverged from sequential", r.statements);
    }

    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_throughput.json");
    std::fs::write(&out, throughput::to_json(&rows)).expect("write BENCH_throughput.json");
    println!("\nwrote {}", out.display());
}
