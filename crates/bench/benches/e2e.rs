//! `cargo bench --bench e2e` — the parse-once front-end and the
//! incremental detection cache vs the legacy per-statement front-end
//! (10k / 100k statements, 100 unique templates, 1% of statements edited
//! for the warm re-check).
//!
//! Prints the e2e table and writes the machine-readable results to
//! `BENCH_e2e.json` at the workspace root.

use sqlcheck_bench::experiments::e2e;
use std::path::Path;

fn main() {
    let sizes = [10_000usize, 100_000];
    let templates = 100;
    println!(
        "parse-once front-end e2e — {} templates, sizes {:?}, 1% edits",
        templates, sizes
    );
    let rows = e2e::run(&sizes, templates, 10, 0xE2E0, None);
    print!("{}", e2e::render(&rows));

    for r in &rows {
        assert!(
            r.identical,
            "{} statements: pipeline/warm output diverged from the legacy front-end",
            r.statements
        );
    }

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_e2e.json");
    std::fs::write(&out, e2e::to_json(&rows)).expect("write BENCH_e2e.json");
    println!("\nwrote {}", out.display());
}
