//! Bench for **Figure 3**: the Multi-Valued Attribute AP's impact on the
//! GlobaLeaks tasks, AP-laden vs refactored design.

use sqlcheck_bench::harness::{bench, bench_batched, group};
use sqlcheck_workload::globaleaks::*;

fn main() {
    let scale = Scale { users: 2_000, tenants: 200, memberships: 2, seed: 0x61EA };
    let ap = build_ap_database(scale);
    let fixed = build_fixed_database(scale);

    group("fig3_task1_lookup");
    bench("ap_like_scan", || task1_ap(&ap, "U7"));
    bench("fixed_index_join", || task1_fixed(&fixed, "U7"));

    group("fig3_task2_join");
    bench("ap_expression_join", || task2_ap(&ap, "T1"));
    bench("fixed_index_nl_join", || task2_fixed(&fixed, "T1"));

    group("fig3_task3_delete_user");
    bench_batched("ap_string_surgery", || ap.clone(), |mut db| task3_ap(&mut db, "U3"));
    bench_batched("fixed_index_delete", || fixed.clone(), |mut db| task3_fixed(&mut db, "U3"));
}
