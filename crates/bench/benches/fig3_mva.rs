//! Criterion bench for **Figure 3**: the Multi-Valued Attribute AP's
//! impact on the GlobaLeaks tasks, AP-laden vs refactored design.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sqlcheck_workload::globaleaks::*;

fn bench_fig3(c: &mut Criterion) {
    let scale = Scale { users: 2_000, tenants: 200, memberships: 2, seed: 0x61EA };
    let ap = build_ap_database(scale);
    let fixed = build_fixed_database(scale);

    let mut g = c.benchmark_group("fig3_task1_lookup");
    g.bench_function("ap_like_scan", |b| b.iter(|| task1_ap(&ap, "U7")));
    g.bench_function("fixed_index_join", |b| b.iter(|| task1_fixed(&fixed, "U7")));
    g.finish();

    let mut g = c.benchmark_group("fig3_task2_join");
    g.sample_size(10);
    g.bench_function("ap_expression_join", |b| b.iter(|| task2_ap(&ap, "T1")));
    g.bench_function("fixed_index_nl_join", |b| b.iter(|| task2_fixed(&fixed, "T1")));
    g.finish();

    let mut g = c.benchmark_group("fig3_task3_delete_user");
    g.sample_size(10);
    g.bench_function("ap_string_surgery", |b| {
        b.iter_batched(
            || ap.clone(),
            |mut db| task3_ap(&mut db, "U3"),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("fixed_index_delete", |b| {
        b.iter_batched(
            || fixed.clone(),
            |mut db| task3_fixed(&mut db, "U3"),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
