//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **context**: intra-only vs intra+inter detection cost;
//! * **sampling**: data-analysis cost as the reservoir sample grows;
//! * **join strategy**: expression join vs hash vs index join — the
//!   asymmetry that powers Fig 3.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlcheck::{ContextBuilder, DataAnalysisConfig, Detector};
use sqlcheck_minidb::prelude::*;
use sqlcheck_workload::globaleaks::{build_fixed_database, Scale};

fn bench_sampling(c: &mut Criterion) {
    let scale = Scale { users: 5_000, tenants: 500, memberships: 2, seed: 1 };
    let mut g = c.benchmark_group("ablate_sampling_size");
    g.sample_size(10);
    for sample_size in [16usize, 64, 256, 1024] {
        let db = build_fixed_database(scale);
        g.bench_function(format!("sample_{sample_size}"), |b| {
            b.iter(|| {
                let cfg = DataAnalysisConfig { sample_size, ..Default::default() };
                let ctx = ContextBuilder::new().with_database(db.clone(), cfg).build();
                Detector::default().detect(&ctx).detections.len()
            })
        });
    }
    g.finish();
}

fn bench_join_strategies(c: &mut Criterion) {
    let rows = 3_000usize;
    let mk = |name: &str| {
        let mut t = Table::new(
            TableSchema::new(name)
                .column(Column::new("k", DataType::Int).not_null())
                .column(Column::new("v", DataType::Text))
                .primary_key(&["k"]),
        );
        for i in 0..rows {
            t.insert(vec![Value::Int(i as i64), Value::text(format!("v{i}"))]).unwrap();
        }
        t
    };
    let left = mk("l");
    let right = mk("r");
    let on = PExpr::Cmp(
        Box::new(PExpr::Col(0)),
        CmpOp::Eq,
        Box::new(PExpr::Col(2)),
    );
    let mut g = c.benchmark_group("ablate_join_strategy");
    g.sample_size(10);
    g.bench_function("nested_loop", |b| b.iter(|| nested_loop_join(&left, &right, &on).len()));
    g.bench_function("hash_join", |b| b.iter(|| hash_join(&left, 0, &right, 0).len()));
    g.bench_function("index_nl_join", |b| {
        b.iter(|| index_nl_join(&left, 0, &right, "r_pkey").len())
    });
    g.finish();
}

criterion_group!(benches, bench_sampling, bench_join_strategies);
criterion_main!(benches);
