//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **sampling**: data-analysis cost as the reservoir sample grows;
//! * **join strategy**: expression join vs hash vs index join — the
//!   asymmetry that powers Fig 3.

use sqlcheck::{ContextBuilder, DataAnalysisConfig, Detector};
use sqlcheck_bench::harness::{bench, group};
use sqlcheck_minidb::prelude::*;
use sqlcheck_workload::globaleaks::{build_fixed_database, Scale};

fn bench_sampling() {
    let scale = Scale { users: 5_000, tenants: 500, memberships: 2, seed: 1 };
    group("ablate_sampling_size");
    for sample_size in [16usize, 64, 256, 1024] {
        let db = build_fixed_database(scale);
        bench(&format!("sample_{sample_size}"), || {
            let cfg = DataAnalysisConfig { sample_size, ..Default::default() };
            let ctx = ContextBuilder::new().with_database(db.clone(), cfg).build();
            Detector::default().detect(&ctx).detections.len()
        });
    }
}

fn bench_join_strategies() {
    let rows = 3_000usize;
    let mk = |name: &str| {
        let mut t = Table::new(
            TableSchema::new(name)
                .column(Column::new("k", DataType::Int).not_null())
                .column(Column::new("v", DataType::Text))
                .primary_key(&["k"]),
        );
        for i in 0..rows {
            t.insert(vec![Value::Int(i as i64), Value::text(format!("v{i}"))]).unwrap();
        }
        t
    };
    let left = mk("l");
    let right = mk("r");
    let on = PExpr::Cmp(
        Box::new(PExpr::Col(0)),
        CmpOp::Eq,
        Box::new(PExpr::Col(2)),
    );
    group("ablate_join_strategy");
    bench("nested_loop", || nested_loop_join(&left, &right, &on).len());
    bench("hash_join", || hash_join(&left, 0, &right, 0).len());
    bench("index_nl_join", || index_nl_join(&left, 0, &right, "r_pkey").len());
}

fn main() {
    bench_sampling();
    bench_join_strategies();
}
