//! Bench for **Figure 8**: per-AP performance impact panels.
//! Each group benchmarks the AP-present plan against the AP-fixed plan.

use sqlcheck_bench::harness::{bench, bench_batched, group};
use sqlcheck_minidb::prelude::*;

const ROWS: usize = 20_000;

fn tenant_table(extra_indexes: usize) -> Table {
    let mut table = Table::new(
        TableSchema::new("Tenant")
            .column(Column::new("Tenant_ID", DataType::Int).not_null())
            .column(Column::new("Zone_ID", DataType::Text))
            .column(Column::new("Active", DataType::Bool))
            .column(Column::new("Score", DataType::Int))
            .primary_key(&["Tenant_ID"]),
    );
    let mut rng = SmallRng::new(0xF18);
    for i in 0..ROWS {
        table
            .insert(vec![
                Value::Int(i as i64),
                Value::text(format!("Z{}", rng.gen_range(10))),
                Value::Bool(i % 2 == 0),
                Value::Int(rng.gen_range(1000) as i64),
            ])
            .unwrap();
    }
    for k in 0..extra_indexes {
        let cols: Vec<&str> = match k % 3 {
            0 => vec!["Zone_ID"],
            1 => vec!["Zone_ID", "Active"],
            _ => vec!["Zone_ID", "Score"],
        };
        table.create_index(format!("idx_extra_{k}"), &cols, false).unwrap();
    }
    table
}

/// Fig 8a — UPDATE under index maintenance, sweeping the index count
/// (the ablation axis DESIGN.md calls out).
fn bench_index_overuse() {
    group("fig8a_update_vs_index_count");
    for k in [0usize, 1, 3, 5] {
        let table = tenant_table(k);
        bench_batched(
            &format!("indexes_{k}"),
            || table.clone(),
            |mut t| {
                let victims: Vec<RowId> = t
                    .scan()
                    .filter(|(_, r)| matches!(&r[1], Value::Text(z) if z == "Z3"))
                    .map(|(rid, _)| rid)
                    .collect();
                for rid in victims {
                    let mut row = t.get(rid).unwrap().clone();
                    row[1] = Value::text("Z3b");
                    t.update_row(rid, row).unwrap();
                }
            },
        );
    }
}

/// Fig 8b/8c — grouped aggregation and the low-cardinality scan.
fn bench_index_underuse() {
    let mut table = tenant_table(0);
    table.create_index("idx_zone", &["Zone_ID"], false).unwrap();
    table.create_index("idx_active", &["Active"], false).unwrap();

    group("fig8b_grouped_aggregate");
    bench("hash_aggregate_no_index", || hash_group_aggregate(&table, 1, 3, AggFunc::Sum));
    bench("index_assisted_aggregate", || {
        sorted_group_aggregate(&table, "idx_zone", 3, AggFunc::Sum)
    });

    group("fig8c_low_cardinality_scan");
    let pred = PExpr::col_eq(2, Value::Bool(true));
    bench("seq_scan", || seq_scan_count(&table, &pred));
    bench("index_scan", || {
        index_scan_eq(&table, "idx_active", &Value::Bool(true), None).len()
    });
}

/// Fig 8g — the enumerated-types UPDATE (constraint surgery vs lookup).
fn bench_enum_update() {
    let mut ap = Database::new();
    ap.create_table(
        TableSchema::new("User")
            .column(Column::new("User_ID", DataType::Int).not_null())
            .column(Column::new("Role", DataType::Text))
            .primary_key(&["User_ID"])
            .check(Check::InList {
                name: "rc".into(),
                column: "Role".into(),
                values: vec![Value::text("R1"), Value::text("R2"), Value::text("R3")],
            }),
    )
    .unwrap();
    for i in 0..ROWS {
        ap.insert("User", vec![Value::Int(i as i64), Value::text(format!("R{}", i % 3 + 1))])
            .unwrap();
    }
    let mut fixed = Database::new();
    fixed
        .create_table(
            TableSchema::new("Role")
                .column(Column::new("Role_ID", DataType::Int).not_null())
                .column(Column::new("Role_Name", DataType::Text))
                .primary_key(&["Role_ID"]),
        )
        .unwrap();
    for r in 1..=3i64 {
        fixed.insert("Role", vec![Value::Int(r), Value::text(format!("R{r}"))]).unwrap();
    }

    group("fig8g_enum_rename");
    bench_batched(
        "ap_constraint_surgery",
        || ap.clone(),
        |mut db| {
            db.table_mut("User").unwrap().drop_check("rc");
            db.update_where(
                "User",
                &PExpr::col_eq(1, Value::text("R2")),
                &[(1, Value::text("R5"))],
            )
            .unwrap();
            db.table_mut("User")
                .unwrap()
                .add_check(Check::InList {
                    name: "rc".into(),
                    column: "Role".into(),
                    values: vec![Value::text("R1"), Value::text("R5"), Value::text("R3")],
                })
                .unwrap();
        },
    );
    bench_batched(
        "fixed_lookup_update",
        || fixed.clone(),
        |mut db| {
            db.update_where(
                "Role",
                &PExpr::col_eq(1, Value::text("R2")),
                &[(1, Value::text("R5"))],
            )
            .unwrap()
        },
    );
}

fn main() {
    bench_index_overuse();
    bench_index_underuse();
    bench_enum_update();
}
