//! Detection throughput: parser, sqlcheck (intra / full), and the dbdeo
//! baseline over a generated repository script.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sqlcheck::{ContextBuilder, DetectionConfig, Detector};
use sqlcheck_workload::github::{generate_corpus, CorpusConfig};

fn bench_detection(c: &mut Criterion) {
    let corpus = generate_corpus(CorpusConfig {
        repositories: 1,
        statements_per_repo: 200,
        seed: 0x9178B,
    });
    let script = corpus[0].script();
    let bytes = script.len() as u64;

    let mut g = c.benchmark_group("detection_throughput");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("parse_only", |b| b.iter(|| sqlcheck_parser::parse(&script).len()));
    g.bench_function("sqlcheck_intra", |b| {
        b.iter(|| {
            let ctx = ContextBuilder::new().add_script(&script).build();
            Detector::new(DetectionConfig::intra_only()).detect(&ctx).detections.len()
        })
    });
    g.bench_function("sqlcheck_full", |b| {
        b.iter(|| {
            let ctx = ContextBuilder::new().add_script(&script).build();
            Detector::default().detect(&ctx).detections.len()
        })
    });
    g.bench_function("dbdeo", |b| b.iter(|| sqlcheck_dbdeo::detect_script(&script).len()));
    g.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
