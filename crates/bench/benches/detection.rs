//! Detection throughput: parser, sqlcheck (intra / full), and the dbdeo
//! baseline over a generated repository script.

use sqlcheck::{ContextBuilder, DetectionConfig, Detector};
use sqlcheck_bench::harness::{bench, group};
use sqlcheck_workload::github::{generate_corpus, CorpusConfig};

fn main() {
    let corpus = generate_corpus(CorpusConfig {
        repositories: 1,
        statements_per_repo: 200,
        seed: 0x9178B,
    });
    let script = corpus[0].script();
    let bytes = script.len() as u64;

    group("detection_throughput");
    println!("input: {bytes} bytes");
    bench("parse_only", || sqlcheck_parser::parse(&script).len());
    bench("sqlcheck_intra", || {
        let ctx = ContextBuilder::new().add_script(&script).build();
        Detector::new(DetectionConfig::intra_only()).detect(&ctx).detections.len()
    });
    bench("sqlcheck_full", || {
        let ctx = ContextBuilder::new().add_script(&script).build();
        Detector::default().detect(&ctx).detections.len()
    });
    bench("dbdeo", || sqlcheck_dbdeo::detect_script(&script).len());
}
