//! `cargo bench --bench split_phase` — the fused streaming splitter vs
//! the legacy two-pass reference (10k / 100k statements, 100 unique
//! templates), sequential and chunk-parallel.
//!
//! Prints the split table and writes the machine-readable results to
//! `BENCH_split.json` at the workspace root.

use sqlcheck_bench::experiments::split;
use std::path::Path;

fn main() {
    let sizes = [10_000usize, 100_000];
    let templates = 100;
    println!("fused split phase — {templates} templates, sizes {sizes:?}");
    let rows = split::run(&sizes, templates, 0x5117, None);
    print!("{}", split::render(&rows));

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_split.json");
    std::fs::write(&out, split::to_json(&rows)).expect("write BENCH_split.json");
    println!("\nwrote {}", out.display());
}
