//! # sqlcheck-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§8), shared by the Criterion benches and the `expdriver`
//! binary. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record.

#![warn(missing_docs)]

pub mod alloc_count;
pub mod harness;

/// Experiment implementations, one module per paper artefact.
pub mod experiments {
    pub mod corpus;
    pub mod e2e;
    pub mod fig3;
    pub mod fig7;
    pub mod fig8;
    pub mod phases;
    pub mod scaling;
    pub mod split;
    pub mod table2;
    pub mod table345;
    pub mod throughput;
}
