//! **Table 2 / Table 3 (GitHub column)** — detection comparison between
//! sqlcheck and dbdeo on the labelled query corpus (§8.1).
//!
//! For every statement the corpus generator knows the ground-truth AP
//! labels, so the manual analysis of the paper's Table 2 becomes an exact
//! computation: per AP kind we count detections found by sqlcheck only
//! (S), dbdeo only (D), by both, and split each tool-only column into
//! true/false positives against the labels.

use sqlcheck::{AntiPatternKind, ContextBuilder, DetectionConfig, Detector};
use sqlcheck_workload::github::{generate_corpus, CorpusConfig, Repository};
use std::collections::{BTreeMap, BTreeSet};

/// One Table 2 row.
#[derive(Debug, Clone, Default)]
pub struct Table2Row {
    /// Detections only sqlcheck made.
    pub s_only: usize,
    /// Detections only dbdeo made.
    pub d_only: usize,
    /// Detections both made.
    pub both: usize,
    /// True positives among sqlcheck-only detections.
    pub tp_s: usize,
    /// False positives among sqlcheck-only detections.
    pub fp_s: usize,
    /// True positives among dbdeo-only detections.
    pub tp_d: usize,
    /// False positives among dbdeo-only detections.
    pub fp_d: usize,
}

/// Aggregate precision/recall per tool.
#[derive(Debug, Clone, Default)]
pub struct Accuracy {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Accuracy {
    /// Precision.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

/// Full experiment result.
#[derive(Debug, Clone, Default)]
pub struct Table2Result {
    /// Per-kind rows (kinds with any activity).
    pub rows: BTreeMap<AntiPatternKind, Table2Row>,
    /// sqlcheck aggregate accuracy (per (statement, kind) decisions).
    pub sqlcheck: Accuracy,
    /// dbdeo aggregate accuracy.
    pub dbdeo: Accuracy,
    /// Per-kind detection totals: (dbdeo, sqlcheck-intra, sqlcheck-full).
    pub histogram: BTreeMap<AntiPatternKind, (usize, usize, usize)>,
    /// Total statements analysed.
    pub statements: usize,
}

/// Detection set: (statement index within repo, kind), per repository.
type DetSet = BTreeSet<(usize, AntiPatternKind)>;

fn sqlcheck_detections(repo: &Repository, intra_only: bool) -> DetSet {
    let script = repo.script();
    let ctx = ContextBuilder::new().add_script(&script).build();
    let cfg = if intra_only {
        DetectionConfig::intra_only()
    } else {
        DetectionConfig::default()
    };
    let report = Detector::new(cfg).detect(&ctx);
    // Detections anchored at tables/columns (inter-query rules) are mapped
    // back to the statement that created the table, so the comparison with
    // the per-statement labels stays apples-to-apples.
    let create_site = |table: &str| -> Option<usize> {
        ctx.statements.iter().position(|s| {
            matches!(&s.parsed.stmt, sqlcheck_parser::ast::Statement::CreateTable(ct)
                if ct.name.name_eq(table))
        })
    };
    report
        .detections
        .iter()
        .filter_map(|d| {
            let idx = d.statement_index().or_else(|| match &d.locus {
                sqlcheck::Locus::Table { table } => create_site(table),
                sqlcheck::Locus::Column { table, .. } => create_site(table),
                _ => None,
            })?;
            Some((idx, d.kind))
        })
        .collect()
}

fn dbdeo_detections(repo: &Repository) -> DetSet {
    sqlcheck_dbdeo::detect_script(&repo.script())
        .into_iter()
        .map(|d| (d.statement_index, d.kind))
        .collect()
}

fn truth(repo: &Repository) -> DetSet {
    repo.statements
        .iter()
        .enumerate()
        .flat_map(|(i, s)| s.labels.iter().map(move |k| (i, *k)))
        .collect()
}

/// Run the comparison over a generated corpus.
pub fn run(cfg: CorpusConfig) -> Table2Result {
    let corpus = generate_corpus(cfg);
    let mut result = Table2Result::default();

    for repo in &corpus {
        result.statements += repo.statements.len();
        let s_full = sqlcheck_detections(repo, false);
        let s_intra = sqlcheck_detections(repo, true);
        let d = dbdeo_detections(repo);
        let t = truth(repo);

        for key @ (_, kind) in s_full.union(&d) {
            let in_s = s_full.contains(key);
            let in_d = d.contains(key);
            let is_true = t.contains(key);
            let row = result.rows.entry(*kind).or_default();
            match (in_s, in_d) {
                (true, true) => row.both += 1,
                (true, false) => {
                    row.s_only += 1;
                    if is_true {
                        row.tp_s += 1;
                    } else {
                        row.fp_s += 1;
                    }
                }
                (false, true) => {
                    row.d_only += 1;
                    if is_true {
                        row.tp_d += 1;
                    } else {
                        row.fp_d += 1;
                    }
                }
                (false, false) => unreachable!(),
            }
        }

        // Aggregate accuracy per tool over all (statement, kind) decisions.
        for key in &s_full {
            if t.contains(key) {
                result.sqlcheck.tp += 1;
            } else {
                result.sqlcheck.fp += 1;
            }
        }
        for key in &t {
            if !s_full.contains(key) {
                result.sqlcheck.fn_ += 1;
            }
            if !d.contains(key) {
                result.dbdeo.fn_ += 1;
            }
        }
        for key in &d {
            if t.contains(key) {
                result.dbdeo.tp += 1;
            } else {
                result.dbdeo.fp += 1;
            }
        }

        // Histogram: dbdeo vs sqlcheck intra vs full.
        for (_, kind) in &d {
            result.histogram.entry(*kind).or_default().0 += 1;
        }
        for (_, kind) in &s_intra {
            result.histogram.entry(*kind).or_default().1 += 1;
        }
        for (_, kind) in &s_full {
            result.histogram.entry(*kind).or_default().2 += 1;
        }
    }
    result
}

/// Render the Table 2 comparison.
pub fn render(result: &Table2Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
        "AP Name", "S", "D", "Both", "TP-S", "FP-S", "TP-D", "FP-D"
    ));
    let mut totals = Table2Row::default();
    for (kind, row) in &result.rows {
        out.push_str(&format!(
            "{:<28} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
            kind.name(),
            row.s_only,
            row.d_only,
            row.both,
            row.tp_s,
            row.fp_s,
            row.tp_d,
            row.fp_d
        ));
        totals.s_only += row.s_only;
        totals.d_only += row.d_only;
        totals.both += row.both;
        totals.tp_s += row.tp_s;
        totals.fp_s += row.fp_s;
        totals.tp_d += row.tp_d;
        totals.fp_d += row.fp_d;
    }
    out.push_str(&format!(
        "{:<28} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
        "Total:",
        totals.s_only,
        totals.d_only,
        totals.both,
        totals.tp_s,
        totals.fp_s,
        totals.tp_d,
        totals.fp_d
    ));
    out.push_str(&format!(
        "\nsqlcheck: precision {:.3}  recall {:.3}  (TP {} FP {} FN {})\n",
        result.sqlcheck.precision(),
        result.sqlcheck.recall(),
        result.sqlcheck.tp,
        result.sqlcheck.fp,
        result.sqlcheck.fn_
    ));
    out.push_str(&format!(
        "dbdeo:    precision {:.3}  recall {:.3}  (TP {} FP {} FN {})\n",
        result.dbdeo.precision(),
        result.dbdeo.recall(),
        result.dbdeo.tp,
        result.dbdeo.fp,
        result.dbdeo.fn_
    ));
    let fewer_fp = 1.0 - result.sqlcheck.fp as f64 / result.dbdeo.fp.max(1) as f64;
    let fewer_fn = 1.0 - result.sqlcheck.fn_ as f64 / result.dbdeo.fn_.max(1) as f64;
    out.push_str(&format!(
        "sqlcheck has {:.0}% fewer false positives and {:.0}% fewer false negatives than dbdeo\n",
        fewer_fp * 100.0,
        fewer_fn * 100.0
    ));
    out
}

/// Render the Table 3 GitHub columns (D vs S histogram).
pub fn render_histogram(result: &Table2Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>9} {:>9} {:>9}\n",
        "Anti-Pattern", "D", "S-intra", "S-full"
    ));
    let (mut td, mut ti, mut tf) = (0, 0, 0);
    for (kind, (d, si, sf)) in &result.histogram {
        out.push_str(&format!("{:<28} {:>9} {:>9} {:>9}\n", kind.name(), d, si, sf));
        td += d;
        ti += si;
        tf += sf;
    }
    out.push_str(&format!("{:<28} {:>9} {:>9} {:>9}\n", "Total:", td, ti, tf));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_result() -> Table2Result {
        run(CorpusConfig { repositories: 40, statements_per_repo: 50, seed: 77 })
    }

    #[test]
    fn sqlcheck_beats_dbdeo_on_both_axes() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = small_result();
        assert!(
            r.sqlcheck.precision() > r.dbdeo.precision(),
            "precision: sqlcheck {:.3} vs dbdeo {:.3}",
            r.sqlcheck.precision(),
            r.dbdeo.precision()
        );
        assert!(
            r.sqlcheck.recall() > r.dbdeo.recall(),
            "recall: sqlcheck {:.3} vs dbdeo {:.3}",
            r.sqlcheck.recall(),
            r.dbdeo.recall()
        );
        // The paper's headline: fewer FPs and fewer FNs than dbdeo.
        assert!(r.sqlcheck.fp < r.dbdeo.fp, "FPs: {} vs {}", r.sqlcheck.fp, r.dbdeo.fp);
        assert!(r.sqlcheck.fn_ < r.dbdeo.fn_, "FNs: {} vs {}", r.sqlcheck.fn_, r.dbdeo.fn_);
    }

    #[test]
    fn sqlcheck_detects_more_kinds_than_dbdeo() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = small_result();
        let s_kinds = r.histogram.iter().filter(|(_, (_, _, sf))| *sf > 0).count();
        let d_kinds = r.histogram.iter().filter(|(_, (d, _, _))| *d > 0).count();
        assert!(s_kinds > d_kinds, "sqlcheck {s_kinds} kinds vs dbdeo {d_kinds}");
    }

    #[test]
    fn intra_only_finds_more_but_noisier() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // The paper: intra-only finds 86656 (more, noisier); full finds
        // 63058 because inter-query context eliminates false positives.
        // Context analysis also *adds* kinds intra cannot see (Clone
        // Table, No Foreign Key, Index Over/Underuse), so the direction is
        // asserted per-kind: for every kind intra-only can detect, the
        // full configuration never reports more.
        let r = small_result();
        let mut some_kind_shrinks = false;
        for (kind, (_, si, sf)) in &r.histogram {
            if *si > 0 {
                assert!(sf <= si, "{kind}: full {sf} must not exceed intra {si}");
                some_kind_shrinks |= sf < si;
            }
        }
        assert!(some_kind_shrinks, "context analysis suppressed at least one FP family");
    }

    #[test]
    fn renders_are_nonempty() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = small_result();
        let t2 = render(&r);
        assert!(t2.contains("TP-S"));
        assert!(t2.contains("Total:"));
        let t3 = render_histogram(&r);
        assert!(t3.contains("S-full"));
    }
}
