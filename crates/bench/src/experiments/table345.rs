//! **Tables 3, 4/7, 5/6** and the §8.3 user-study statistics.

use sqlcheck::{
    AntiPatternKind, ContextBuilder, DataAnalysisConfig, Detector, FixEngine, Ranker,
};
use sqlcheck_workload::{django, kaggle, user_study};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Table 3 — user-study column (D vs S on participants' statements)
// ---------------------------------------------------------------------------

/// Per-kind detection counts for the user-study statements.
#[derive(Debug, Clone, Default)]
pub struct UserStudyDistribution {
    /// (dbdeo count, sqlcheck count) per kind.
    pub counts: BTreeMap<AntiPatternKind, (usize, usize)>,
    /// Total statements.
    pub statements: usize,
}

/// Run both detectors over every participant's statements.
pub fn user_study_distribution(cfg: user_study::StudyConfig) -> UserStudyDistribution {
    let cohort = user_study::generate(cfg);
    let mut out = UserStudyDistribution::default();
    for p in &cohort {
        let script: String = p
            .statements
            .iter()
            .map(|s| s.sql.as_str())
            .collect::<Vec<_>>()
            .join(";\n");
        out.statements += p.statements.len();
        let ctx = ContextBuilder::new().add_script(&script).build();
        for d in Detector::default().detect(&ctx).detections {
            out.counts.entry(d.kind).or_default().1 += 1;
        }
        for d in sqlcheck_dbdeo::detect_script(&script) {
            out.counts.entry(d.kind).or_default().0 += 1;
        }
    }
    out
}

/// Render the user-study distribution.
pub fn render_user_study_distribution(dist: &UserStudyDistribution) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<28} {:>8} {:>8}\n", "Anti-Pattern", "D", "S"));
    let (mut td, mut ts) = (0, 0);
    for (kind, (d, s)) in &dist.counts {
        out.push_str(&format!("{:<28} {:>8} {:>8}\n", kind.name(), d, s));
        td += d;
        ts += s;
    }
    out.push_str(&format!("{:<28} {:>8} {:>8}\n", "Total:", td, ts));
    out
}

// ---------------------------------------------------------------------------
// §8.3 — user-study acceptance statistics
// ---------------------------------------------------------------------------

/// The §8.3 headline numbers, computed from the simulated cohort.
#[derive(Debug, Clone, Default)]
pub struct UserStudyStats {
    /// Total statements written.
    pub statements: usize,
    /// APs detected (fix suggestions made).
    pub detected: usize,
    /// APs considered by engaged participants.
    pub considered: usize,
    /// Fixes applied.
    pub resolved: usize,
    /// Fixes found ambiguous.
    pub ambiguous: usize,
    /// Fixes judged incorrect.
    pub incorrect: usize,
}

impl UserStudyStats {
    /// Raw efficacy (paper: 51%).
    pub fn efficacy(&self) -> f64 {
        if self.considered == 0 {
            0.0
        } else {
            self.resolved as f64 / self.considered as f64
        }
    }

    /// Adjusted efficacy counting ambiguous as non-failures (paper: 67%).
    pub fn adjusted_efficacy(&self) -> f64 {
        if self.considered == 0 {
            0.0
        } else {
            (self.resolved + self.ambiguous) as f64 / self.considered as f64
        }
    }
}

/// Run the full §8.3 pipeline: detect per participant, suggest fixes, and
/// replay the acceptance model.
pub fn user_study_stats(cfg: user_study::StudyConfig) -> UserStudyStats {
    let cohort = user_study::generate(cfg);
    let mut stats = UserStudyStats::default();
    for p in &cohort {
        let script: String = p
            .statements
            .iter()
            .map(|s| s.sql.as_str())
            .collect::<Vec<_>>()
            .join(";\n");
        stats.statements += p.statements.len();
        let ctx = ContextBuilder::new().add_script(&script).build();
        let report = Detector::default().detect(&ctx);
        let ranked = Ranker::default().rank(&report);
        let ordered: Vec<_> = ranked.iter().map(|r| r.detection.clone()).collect();
        let fixes = FixEngine.fix_all(&ordered, &ctx);
        stats.detected += fixes.len();
        if !user_study::engages(p) {
            continue;
        }
        for (i, _fix) in fixes.iter().enumerate() {
            stats.considered += 1;
            match user_study::respond(p, i) {
                user_study::FixResponse::Resolved => stats.resolved += 1,
                user_study::FixResponse::Ambiguous => stats.ambiguous += 1,
                user_study::FixResponse::Incorrect => stats.incorrect += 1,
            }
        }
    }
    stats
}

/// Render the §8.3 statistics.
pub fn render_user_study_stats(s: &UserStudyStats) -> String {
    format!(
        "statements written:        {}\n\
         APs detected (suggested):  {}\n\
         APs considered:            {}\n\
         fixes resolved:            {}\n\
         fixes ambiguous:           {}\n\
         fixes judged incorrect:    {}\n\
         efficacy:                  {:.0}%  (paper: 51%)\n\
         adjusted efficacy:         {:.0}%  (paper: 67%)\n",
        s.statements,
        s.detected,
        s.considered,
        s.resolved,
        s.ambiguous,
        s.incorrect,
        s.efficacy() * 100.0,
        s.adjusted_efficacy() * 100.0
    )
}

// ---------------------------------------------------------------------------
// Table 4/7 — Django applications
// ---------------------------------------------------------------------------

/// Result for one Django application.
#[derive(Debug, Clone)]
pub struct DjangoRow {
    /// Application name.
    pub name: &'static str,
    /// Domain.
    pub domain: &'static str,
    /// APs the paper detected.
    pub paper_detected: usize,
    /// AP kinds we detected on the generated trace.
    pub measured_kinds: usize,
    /// Total detections on the generated trace.
    pub measured_detections: usize,
    /// Reported kinds all re-detected?
    pub reported_covered: bool,
}

/// Run sqlcheck over every Django app trace.
pub fn django_rows() -> Vec<DjangoRow> {
    django::APPS
        .iter()
        .map(|app| {
            let ctx = ContextBuilder::new()
                .add_script(&django::sql_trace(app))
                .with_database(django::database(app), DataAnalysisConfig::default())
                .build();
            let report = Detector::default().detect(&ctx);
            let kinds = report.kinds();
            DjangoRow {
                name: app.name,
                domain: app.domain,
                paper_detected: app.detected,
                measured_kinds: kinds.len(),
                measured_detections: report.detections.len(),
                reported_covered: app.reported.iter().all(|k| kinds.contains(k)),
            }
        })
        .collect()
}

/// Render Table 4.
pub fn render_django(rows: &[DjangoRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:<14} {:>10} {:>12} {:>12} {:>9}\n",
        "GitHub Repo", "Domain", "paper #AP", "our kinds", "our total", "reported?"
    ));
    let mut paper = 0;
    let mut ours = 0;
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:<14} {:>10} {:>12} {:>12} {:>9}\n",
            r.name,
            r.domain,
            r.paper_detected,
            r.measured_kinds,
            r.measured_detections,
            if r.reported_covered { "yes" } else { "NO" }
        ));
        paper += r.paper_detected;
        ours += r.measured_kinds;
    }
    out.push_str(&format!(
        "{:<22} {:<14} {:>10} {:>12}\n",
        "Total:", "", paper, ours
    ));
    out
}

// ---------------------------------------------------------------------------
// Table 5/6 — Kaggle databases (data analysis only)
// ---------------------------------------------------------------------------

/// Result for one Kaggle database.
#[derive(Debug, Clone)]
pub struct KaggleRow {
    /// Database name.
    pub name: &'static str,
    /// AP kinds the paper lists in Table 6.
    pub paper_kinds: usize,
    /// Detections we measured (data rules only — no queries supplied).
    pub measured: usize,
    /// Names of detected kinds.
    pub kinds: Vec<&'static str>,
    /// All paper-listed kinds re-detected?
    pub covered: bool,
}

/// Run data-analysis-only detection over the 31 databases.
pub fn kaggle_rows() -> Vec<KaggleRow> {
    kaggle::SPECS
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let db = kaggle::build(spec, i as u64);
            let ctx = ContextBuilder::new()
                .with_database(db, DataAnalysisConfig::default())
                .build();
            let report = Detector::default().detect(&ctx);
            let kinds = report.kinds();
            KaggleRow {
                name: spec.name,
                paper_kinds: spec.aps.len(),
                measured: report.detections.len(),
                kinds: kinds.iter().map(|k| k.name()).collect(),
                covered: spec.aps.iter().all(|k| kinds.contains(k)),
            }
        })
        .collect()
}

/// Render Table 5/6.
pub fn render_kaggle(rows: &[KaggleRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:>10} {:>9} {:>8}  kinds\n",
        "Kaggle Database", "paper #AP", "measured", "covered"
    ));
    let mut total = 0;
    for r in rows {
        out.push_str(&format!(
            "{:<36} {:>10} {:>9} {:>8}  {}\n",
            r.name,
            r.paper_kinds,
            r.measured,
            if r.covered { "yes" } else { "NO" },
            r.kinds.join(", ")
        ));
        total += r.measured;
    }
    out.push_str(&format!("{:<36} {:>10} {:>9}\n", "Total:", 200, total));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_study_stats_track_the_paper() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let s = user_study_stats(user_study::StudyConfig::default());
        assert_eq!(s.statements, 987);
        assert!(s.detected > 100, "plenty of APs detected: {}", s.detected);
        assert!(
            (0.40..0.62).contains(&s.efficacy()),
            "efficacy ≈ 51%, got {:.2}",
            s.efficacy()
        );
        assert!(
            s.adjusted_efficacy() > s.efficacy(),
            "counting ambiguous raises efficacy"
        );
    }

    #[test]
    fn user_study_distribution_s_exceeds_d() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let d = user_study_distribution(user_study::StudyConfig {
            participants: 6,
            total_statements: 240,
            seed: 2,
        });
        let total_d: usize = d.counts.values().map(|(d, _)| d).sum();
        let total_s: usize = d.counts.values().map(|(_, s)| s).sum();
        assert!(total_s > total_d, "sqlcheck {total_s} vs dbdeo {total_d}");
    }

    #[test]
    fn django_rows_cover_reported_kinds() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rows = django_rows();
        assert_eq!(rows.len(), 15);
        for r in &rows {
            assert!(r.reported_covered, "{} did not re-detect its reported kinds", r.name);
        }
    }

    #[test]
    fn kaggle_rows_cover_table6() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rows = kaggle_rows();
        assert_eq!(rows.len(), 31);
        for r in &rows {
            assert!(r.covered, "{} did not re-detect its Table 6 kinds", r.name);
        }
        let total: usize = rows.iter().map(|r| r.measured).sum();
        assert!(total >= 60, "substantial data-AP volume, got {total}");
    }
}
