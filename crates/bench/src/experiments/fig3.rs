//! **Figure 3** — performance impact of the Multi-Valued Attribute AP on
//! the GlobaLeaks tasks (§2.3). The paper reports 636×/256×/193× speedups
//! for Tasks #1–#3 after the fix.

use sqlcheck_minidb::engine::Timings;
use sqlcheck_workload::globaleaks::{
    build_ap_database, build_fixed_database, task1_ap, task1_fixed, task2_ap, task2_fixed,
    task3_ap, task3_fixed, Scale,
};

/// Run the three task comparisons at the given scale.
pub fn run(scale: Scale, runs: usize) -> Timings {
    let ap = build_ap_database(scale);
    let fixed = build_fixed_database(scale);
    let mut t = Timings::default();

    t.measure(
        "Fig 3a  MVA Task #1 (tenants of a user)",
        runs,
        || std::hint::black_box(task1_ap(&ap, "U7")),
        || std::hint::black_box(task1_fixed(&fixed, "U7")),
    );
    t.measure(
        "Fig 3b  MVA Task #2 (users of a tenant)",
        runs,
        || std::hint::black_box(task2_ap(&ap, "T1")),
        || std::hint::black_box(task2_fixed(&fixed, "T1")),
    );
    // Task #3 mutates, so each run removes a *different* user (the same
    // sequence on both sides) rather than cloning the database inside the
    // timed region.
    let mut ap3 = ap.clone();
    let mut fixed3 = fixed.clone();
    let mut next_ap = 100usize;
    let mut next_fixed = 100usize;
    t.measure(
        "Fig 3c  MVA Task #3 (remove user everywhere)",
        runs,
        || {
            next_ap += 1;
            std::hint::black_box(task3_ap(&mut ap3, &format!("U{next_ap}")))
        },
        || {
            next_fixed += 1;
            std::hint::black_box(task3_fixed(&mut fixed3, &format!("U{next_fixed}")))
        },
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fix_wins_every_task() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let t = run(Scale { users: 3_000, tenants: 300, memberships: 2, seed: 3 }, 5);
        assert_eq!(t.comparisons.len(), 3);
        for c in &t.comparisons {
            assert!(
                c.speedup() > 3.0,
                "{}: expected a clear win, got {:.2}x",
                c.label,
                c.speedup()
            );
        }
        // Task ordering of the paper: task 1 & 2 speedups are large.
        assert!(t.comparisons[0].speedup() > 4.0, "task1 {:.1}x", t.comparisons[0].speedup());
        assert!(t.comparisons[1].speedup() > 4.0, "task2 {:.1}x", t.comparisons[1].speedup());
    }
}
