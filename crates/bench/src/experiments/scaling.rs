//! **Scaling experiment** — speedup-vs-threads curves of the full
//! split + three-phase detection pipeline.
//!
//! Earlier experiments measured one parallel configuration; this one
//! sweeps the worker count over `{1, 2, 4, available_parallelism}` and
//! records a point per count, per workload shape:
//!
//! * `plain` — the template-heavy statement stream (uniform unit costs;
//!   any scheduler balances it);
//! * `trigger` — ~1 in 6 statements is compound `BEGIN…END` DDL (mildly
//!   non-uniform costs);
//! * `skewed` — one hot template at ~90% of occurrences plus one giant
//!   trigger body: the adversarial shape where static round-robin
//!   assignment serializes behind the giant unit and only cost-aware
//!   self-scheduling keeps the pool busy.
//!
//! Every point runs the **whole** pipeline — chunk-parallel split +
//! parse/annotate + batch detection — at its pinned thread count, and is
//! asserted **byte-identical** to the single-thread baseline (which is
//! itself checked against the sequential [`Detector::detect`] reference)
//! before any timing is reported. The per-worker busy-time spread from
//! [`BatchStats`] rides along so scheduling skew is visible in the
//! artifact, not inferred.
//!
//! Speedups are meaningful only when the host actually has cores to
//! scale onto: each point records the machine's `available_parallelism`
//! alongside the requested and effective thread counts, and the identity
//! gate (unlike the speedup expectation) holds on any host.

use super::throughput::script_for_shape;
use sqlcheck::{BatchOptions, ContextBuilder, Detector, FrontendOptions, Report};
use std::time::Instant;

/// One measured (workload, thread-count) point.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Worker threads this point pinned (the sweep value).
    pub requested: usize,
    /// Effective worker threads the batch engine used (clamped to unit
    /// count; equals `requested` on all but degenerate workloads).
    pub effective: usize,
    /// Wall-clock microseconds: front-end (split + parse + annotate +
    /// context fold) at this thread count.
    pub frontend_micros: u128,
    /// Wall-clock microseconds: batch detection at this thread count.
    pub detect_micros: u128,
    /// Wall-clock microseconds: front-end + detection end to end.
    pub total_micros: u128,
    /// End-to-end speedup vs this workload's 1-thread point.
    pub speedup_vs_1: f64,
    /// Whether this point's detections matched the baseline byte for
    /// byte.
    pub identical: bool,
    /// Busiest worker's cumulative busy micros across detection phases.
    pub worker_busy_max: u128,
    /// Least-busy worker's cumulative busy micros.
    pub worker_busy_min: u128,
}

/// The scaling curve of one workload shape.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Workload shape: `"plain"`, `"trigger"`, or `"skewed"`.
    pub workload: &'static str,
    /// Statements in the workload.
    pub statements: usize,
    /// Unique templates the workload draws from.
    pub templates: usize,
    /// Unique statement texts (intra-phase unit count).
    pub unique_texts: usize,
    /// The host's `available_parallelism` when the sweep ran — the
    /// context every speedup must be read against.
    pub hw_threads: usize,
    /// One point per swept thread count, ascending.
    pub points: Vec<ScalingPoint>,
}

impl ScalingRow {
    /// The point measured at `requested` threads, if swept.
    pub fn at(&self, requested: usize) -> Option<&ScalingPoint> {
        self.points.iter().find(|p| p.requested == requested)
    }
}

fn report_key(r: &Report) -> Vec<String> {
    r.detections.iter().map(|d| format!("{d:?}")).collect()
}

/// Repetitions per measurement; the minimum observation is reported
/// (noise-robust: preemption and hypervisor steal only ever add time).
const REPS: usize = 3;

/// The thread counts to sweep on a host with `hw` cores: 1, 2, 4, and
/// `hw`, deduplicated and sorted (a 1-core host still sweeps 2 and 4 —
/// oversubscribed points that prove correctness, not speed).
pub fn sweep_points(hw: usize) -> Vec<usize> {
    let mut pts = vec![1, 2, 4, hw.max(1)];
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// One full pipeline run (front-end + batch detection) pinned to
/// `threads` workers, returning the batch report plus the front-end and
/// detection wall-clock micros of this single run.
fn check_at(script: &str, threads: usize) -> (sqlcheck::BatchReport, u128, u128) {
    let fe = FrontendOptions { dedup: true, parallel: threads > 1, threads: Some(threads), ..FrontendOptions::default() };
    let opts = BatchOptions { parallel: threads > 1, threads: Some(threads), ..BatchOptions::default() };
    let t_fe = Instant::now();
    let (ctx, fe_stats) =
        ContextBuilder::new().with_frontend(fe).add_script(script).build_with_stats();
    let frontend_micros = t_fe.elapsed().as_micros();
    let t_det = Instant::now();
    let mut batch = Detector::default().detect_batch_with(&ctx, &opts, None);
    let detect_micros = t_det.elapsed().as_micros();
    batch.stats.absorb_frontend(&fe_stats);
    (batch, frontend_micros, detect_micros)
}

/// Sweep one workload shape across thread counts. `max_threads` caps the
/// sweep (`None` = the full `{1, 2, 4, hw}` ladder) — CI uses a cap of 2
/// for a fast byte-identity gate. Panics if any point's detections
/// diverge from the sequential reference — byte-identity is the gate
/// that makes the timings worth reading.
pub fn run_one(
    workload: &'static str,
    statements: usize,
    templates: usize,
    seed: u64,
    max_threads: Option<usize>,
) -> ScalingRow {
    let script = script_for_shape(workload, statements, templates, seed);
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Ground truth: the sequential detector over the plainly-built
    // context. Every swept point must reproduce this byte for byte.
    let ref_ctx = ContextBuilder::new().add_script(&script).build();
    let ref_key = report_key(&Detector::default().detect(&ref_ctx));

    let mut ladder = sweep_points(hw);
    if let Some(cap) = max_threads {
        ladder.retain(|&t| t <= cap.max(1));
        if !ladder.contains(&cap.max(1)) {
            ladder.push(cap.max(1));
        }
    }
    let mut points: Vec<ScalingPoint> = Vec::new();
    let mut base_total: u128 = 0;
    let mut row_stats = None;
    for requested in ladder {
        let mut best_fe = u128::MAX;
        let mut best_det = u128::MAX;
        let mut best_total = u128::MAX;
        let mut last = None;
        for _ in 0..REPS {
            let (batch, fe_us, det_us) = check_at(&script, requested);
            best_fe = best_fe.min(fe_us);
            best_det = best_det.min(det_us);
            best_total = best_total.min(fe_us + det_us);
            last = Some(batch);
        }
        let batch = last.expect("REPS > 0");
        let identical = report_key(&batch.report) == ref_key;
        assert!(
            identical,
            "{workload}/{statements} at {requested} thread(s): \
             batch output diverged from the sequential reference"
        );
        if requested == 1 {
            base_total = best_total;
        }
        points.push(ScalingPoint {
            requested,
            effective: batch.stats.threads,
            frontend_micros: best_fe,
            detect_micros: best_det,
            total_micros: best_total,
            speedup_vs_1: base_total as f64 / best_total.max(1) as f64,
            identical,
            worker_busy_max: batch.stats.worker_busy_max(),
            worker_busy_min: batch.stats.worker_busy_min(),
        });
        row_stats = Some((batch.stats.statements, batch.stats.unique_texts));
    }
    let (stmts, unique_texts) = row_stats.expect("at least one sweep point");
    ScalingRow { workload, statements: stmts, templates, unique_texts, hw_threads: hw, points }
}

/// Sweep all three workload shapes at one size.
pub fn run(
    statements: usize,
    templates: usize,
    seed: u64,
    max_threads: Option<usize>,
) -> Vec<ScalingRow> {
    ["plain", "trigger", "skewed"]
        .into_iter()
        .map(|w| run_one(w, statements, templates, seed, max_threads))
        .collect()
}

/// Render rows as an aligned console table (one line per point).
pub fn render(rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8} {:>9} {:>4} {:>9} {:>9} {:>10} {:>10} {:>10} {:>8} {:>10} {:>10} {:>9}\n",
        "workload", "stmts", "hw", "requested", "effective", "front_us", "detect_us",
        "total_us", "speedup", "busy_max", "busy_min", "identical"
    ));
    for r in rows {
        for p in &r.points {
            out.push_str(&format!(
                "{:>8} {:>9} {:>4} {:>9} {:>9} {:>10} {:>10} {:>10} {:>7.2}x {:>10} {:>10} {:>9}\n",
                r.workload,
                r.statements,
                r.hw_threads,
                p.requested,
                p.effective,
                p.frontend_micros,
                p.detect_micros,
                p.total_micros,
                p.speedup_vs_1,
                p.worker_busy_max,
                p.worker_busy_min,
                p.identical,
            ));
        }
    }
    out
}

/// Render rows as a JSON document (written to `BENCH_scaling.json`) —
/// one JSON row per (workload, thread-count) point.
pub fn to_json(rows: &[ScalingRow]) -> String {
    let mut out =
        String::from("{\n  \"experiment\": \"multicore_scaling\",\n  \"rows\": [\n");
    let total: usize = rows.iter().map(|r| r.points.len()).sum();
    let mut i = 0;
    for r in rows {
        for p in &r.points {
            i += 1;
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"statements\": {}, \"templates\": {}, \
                 \"unique_texts\": {}, \"hw_threads\": {}, \
                 \"requested_threads\": {}, \"threads\": {}, \
                 \"frontend_micros\": {}, \"detect_micros\": {}, \"total_micros\": {}, \
                 \"speedup_vs_1\": {:.2}, \"worker_busy_max_micros\": {}, \
                 \"worker_busy_min_micros\": {}, \"identical\": {}}}{}\n",
                r.workload,
                r.statements,
                r.templates,
                r.unique_texts,
                r.hw_threads,
                p.requested,
                p.effective,
                p.frontend_micros,
                p.detect_micros,
                p.total_micros,
                p.speedup_vs_1,
                p.worker_busy_max,
                p.worker_busy_min,
                p.identical,
                if i == total { "" } else { "," }
            ));
        }
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_dedup_and_sort() {
        assert_eq!(sweep_points(1), vec![1, 2, 4]);
        assert_eq!(sweep_points(2), vec![1, 2, 4]);
        assert_eq!(sweep_points(4), vec![1, 2, 4]);
        assert_eq!(sweep_points(8), vec![1, 2, 4, 8]);
        assert_eq!(sweep_points(3), vec![1, 2, 3, 4]);
    }

    #[test]
    fn all_points_identical_at_small_scale() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // run_one asserts identity internally; surviving it is the test.
        for r in run(300, 30, 0x5CA1E, Some(2)) {
            assert!(r.points.iter().all(|p| p.identical), "{} row", r.workload);
            assert!(r.points.iter().any(|p| p.requested == 1), "baseline point present");
            assert_eq!(r.statements, 300, "{} row statement count", r.workload);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rows = run(150, 20, 3, Some(2));
        let j = to_json(&rows);
        assert!(j.contains("\"workload\": \"skewed\""));
        assert!(j.contains("\"hw_threads\""));
        assert!(j.contains("\"identical\": true"));
        assert!(!j.contains("\"identical\": false"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
