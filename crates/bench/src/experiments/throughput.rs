//! **Throughput experiment** — the batch detection engine vs the
//! sequential seed path on template-heavy workloads.
//!
//! Real application logs contain millions of statements drawn from a few
//! hundred templates (§8 analyses thousands of repositories and Django
//! apps). This experiment synthesizes such workloads — `n` statements
//! drawn from a fixed pool of unique templates — and measures:
//!
//! * `sequential` — [`sqlcheck::Detector::detect`], the seed path;
//! * `batch` — [`sqlcheck::Detector::detect_batch`] with one thread
//!   (fingerprint/text dedup only);
//! * `parallel` — `detect_batch` with all available threads.
//!
//! Every configuration is verified to produce byte-identical detections
//! before any timing is reported.

use sqlcheck::{BatchOptions, ContextBuilder, Detector};
use sqlcheck_minidb::stats::SmallRng;
use std::time::Instant;

/// One measured workload size.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Workload shape: `"plain"`, `"trigger"`, or `"skewed"`.
    pub workload: &'static str,
    /// Statements in the workload.
    pub statements: usize,
    /// Unique templates the workload draws from.
    pub templates: usize,
    /// Detections produced (identical across all three paths).
    pub detections: usize,
    /// Whether all three paths produced byte-identical reports.
    pub identical: bool,
    /// Wall-clock microseconds: sequential seed path.
    pub seq_micros: u128,
    /// Wall-clock microseconds: batch path, single thread.
    pub batch_micros: u128,
    /// Wall-clock microseconds: batch path, all threads.
    pub parallel_micros: u128,
    /// Effective threads used by the parallel configuration.
    pub threads: usize,
    /// Threads the caller requested (0 = auto-detect).
    pub requested_threads: usize,
}

impl ThroughputRow {
    /// Statements per second for a measured duration.
    fn stmts_per_sec(&self, micros: u128) -> f64 {
        if micros == 0 {
            f64::INFINITY
        } else {
            self.statements as f64 / (micros as f64 / 1e6)
        }
    }

    /// Sequential-path throughput (statements/second).
    pub fn seq_throughput(&self) -> f64 {
        self.stmts_per_sec(self.seq_micros)
    }

    /// Single-thread batch throughput (statements/second).
    pub fn batch_throughput(&self) -> f64 {
        self.stmts_per_sec(self.batch_micros)
    }

    /// Parallel batch throughput (statements/second).
    pub fn parallel_throughput(&self) -> f64 {
        self.stmts_per_sec(self.parallel_micros)
    }

    /// Speedup of single-thread batch over sequential.
    pub fn batch_speedup(&self) -> f64 {
        self.seq_micros as f64 / self.batch_micros.max(1) as f64
    }

    /// Speedup of parallel batch over sequential.
    pub fn parallel_speedup(&self) -> f64 {
        self.seq_micros as f64 / self.parallel_micros.max(1) as f64
    }
}

/// Deterministically generate a workload of `statements` statements drawn
/// from `templates` unique statement shapes, shuffled. Each template is
/// instantiated with fixed literals, mirroring an application that
/// re-issues the same prepared statements throughout its log.
pub fn workload_script(statements: usize, templates: usize, seed: u64) -> String {
    // Each template gets its own table so fingerprints stay distinct
    // (literals fold to `?`, so varying only literals would collapse
    // the pool onto the eight statement shapes).
    let pool = workload_pool(templates);
    let mut rng = SmallRng::new(seed);
    let mut script = String::with_capacity(statements * 48);
    for _ in 0..statements {
        script.push_str(&pool[rng.gen_range(pool.len())]);
        script.push_str(";\n");
    }
    script
}

/// Deterministically generate a **trigger-heavy** workload: the plain
/// template pool of [`workload_script`] interleaved with compound
/// `CREATE TRIGGER … BEGIN … END` DDL (about one statement in six), the
/// shape of a real schema dump. Each trigger is ONE statement whose body
/// semicolons must survive splitting — the workload exercises the
/// splitter's block-depth state machine at scale and measures its
/// overhead against the plain shape.
pub fn trigger_workload_script(statements: usize, templates: usize, seed: u64) -> String {
    let mut pool: Vec<String> = Vec::with_capacity(templates);
    for k in 0..templates {
        pool.push(match k % 3 {
            0 => format!(
                "CREATE TRIGGER trg{k} AFTER INSERT ON app_t{k} FOR EACH ROW BEGIN \
                 UPDATE app_u{k} SET c0 = c0 + 1; \
                 DELETE FROM app_v{k} WHERE c0 = {k}; END"
            ),
            1 => format!(
                "CREATE TRIGGER chk{k} BEFORE UPDATE ON app_t{k} FOR EACH ROW BEGIN \
                 IF NEW.c0 > {k} THEN INSERT INTO app_log{k} VALUES ({k}); END IF; \
                 SELECT CASE WHEN NEW.c1 THEN 1 ELSE 0 END; END"
            ),
            _ => format!(
                "CREATE PROCEDURE proc{k}() BEGIN \
                 INSERT INTO app_log{k} VALUES ({k}, 'p'); \
                 UPDATE app_t{k} SET c1 = 'done' WHERE c0 = {k}; END"
            ),
        });
    }
    let trigger_pool = pool;
    let plain_pool = workload_pool(templates);
    let mut rng = SmallRng::new(seed);
    let mut script = String::with_capacity(statements * 72);
    for i in 0..statements {
        if i % 6 == 0 {
            script.push_str(&trigger_pool[rng.gen_range(trigger_pool.len())]);
        } else {
            script.push_str(&plain_pool[rng.gen_range(plain_pool.len())]);
        }
        script.push_str(";\n");
    }
    script
}

/// Deterministically generate a **skewed** workload — the adversarial
/// shape for any static work partitioner:
///
/// * ~90% of the statements instantiate **one hot template** with a
///   distinct literal each (distinct texts, so they are distinct intra
///   units — all cheap, all under one fingerprint);
/// * exactly one statement, placed mid-script, is a **giant trigger
///   body** (hundreds of `BEGIN…END` sub-statements) — a single intra
///   unit that costs orders of magnitude more than its neighbours;
/// * the rest draw from the plain template pool.
///
/// Round-robin assignment hands the giant unit to whichever worker its
/// index lands on and that worker finishes last; cost-aware
/// self-scheduling starts it first and fills the other workers with the
/// cheap hot-template units.
pub fn skewed_workload_script(statements: usize, templates: usize, seed: u64) -> String {
    let plain_pool = workload_pool(templates);
    let mut rng = SmallRng::new(seed);
    let giant_at = statements / 2;
    let mut script = String::with_capacity(statements * 56);
    for i in 0..statements {
        if i == giant_at && statements > 0 {
            // One giant compound statement: ~400 body sub-statements.
            script.push_str("CREATE PROCEDURE giant_migration() BEGIN ");
            for k in 0..400 {
                script.push_str(&format!(
                    "UPDATE app_t{} SET c0 = c0 + {k} WHERE c1 LIKE '%m{k}%'; ",
                    k % 97
                ));
            }
            script.push_str("END");
        } else if rng.gen_range(10) < 9 {
            // The hot template: same shape, fresh literal per occurrence.
            script.push_str(&format!("SELECT c0, c1 FROM app_hot WHERE c0 = {i}"));
        } else {
            script.push_str(&plain_pool[rng.gen_range(plain_pool.len())]);
        }
        script.push_str(";\n");
    }
    script
}

/// The script for one named workload shape (`plain`, `trigger`, or
/// `skewed`) — the tag every bench row carries.
pub fn script_for_shape(
    workload: &str,
    statements: usize,
    templates: usize,
    seed: u64,
) -> String {
    match workload {
        "plain" => workload_script(statements, templates, seed),
        "trigger" => trigger_workload_script(statements, templates, seed),
        "skewed" => skewed_workload_script(statements, templates, seed),
        other => {
            panic!("unknown workload shape {other:?} (use \"plain\", \"trigger\", or \"skewed\")")
        }
    }
}

/// The plain statement pool of [`workload_script`], reusable by other
/// workload shapes.
fn workload_pool(templates: usize) -> Vec<String> {
    let mut pool: Vec<String> = Vec::with_capacity(templates);
    for k in 0..templates {
        let t = k;
        pool.push(match k % 8 {
            0 => format!("SELECT * FROM app_t{t} WHERE c0 = {k}"),
            1 => format!("SELECT c0, c1 FROM app_t{t} WHERE c1 LIKE '%v{k}%'"),
            2 => format!("INSERT INTO app_t{t} VALUES ({k}, 'x{k}')"),
            3 => format!("UPDATE app_t{t} SET c0 = {k} WHERE c1 = 'u{k}'"),
            4 => format!("SELECT c0 FROM app_t{t} WHERE c0 IN ({k}, {}, {})", k + 1, k + 2),
            5 => format!(
                "SELECT DISTINCT a.c0 FROM app_t{t} a JOIN app_u{t} b ON a.c0 = b.c1 \
                 WHERE b.c0 > {k}"
            ),
            6 => format!("SELECT * FROM app_t{t} ORDER BY RANDOM() LIMIT {}", k + 1),
            _ => format!("DELETE FROM app_t{t} WHERE c0 = {k}"),
        });
    }
    pool
}

/// Render a report's detections for byte-identity comparison.
fn report_key(r: &sqlcheck::Report) -> Vec<String> {
    r.detections.iter().map(|d| format!("{d:?}")).collect()
}

/// Repetitions per measurement; the minimum observation is reported
/// (noise-robust: preemption and hypervisor steal only ever add time).
const REPS: usize = 3;

/// Time `f` over [`REPS`] runs, returning the last result and the
/// fastest observation in microseconds.
fn best_of<T>(mut f: impl FnMut() -> T) -> (T, u128) {
    let mut best = u128::MAX;
    let mut last = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_micros());
        last = Some(out);
    }
    (last.unwrap(), best)
}

/// Run the experiment at one workload size. `threads` overrides the
/// parallel configuration's worker count (`None` = all cores). The
/// recorded `threads` value is always read back from the stats of the
/// timed parallel run — the count actually used, never an assumption.
pub fn run_one(
    workload: &'static str,
    statements: usize,
    templates: usize,
    seed: u64,
    threads: Option<usize>,
) -> ThroughputRow {
    let script = script_for_shape(workload, statements, templates, seed);
    let ctx = ContextBuilder::new().add_script(&script).build();
    let det = Detector::default();
    let par_opts = BatchOptions { parallel: true, threads, ..BatchOptions::default() };

    let (seq, seq_micros) = best_of(|| det.detect(&ctx));
    let (batch, batch_micros) = best_of(|| det.detect_batch(&ctx, &BatchOptions::sequential()));
    let (par, parallel_micros) = best_of(|| det.detect_batch(&ctx, &par_opts));

    let seq_key = report_key(&seq);
    let identical =
        seq_key == report_key(&batch.report) && seq_key == report_key(&par.report);

    ThroughputRow {
        workload,
        statements: ctx.len(),
        templates,
        detections: seq.detections.len(),
        identical,
        seq_micros,
        batch_micros,
        parallel_micros,
        threads: par.stats.threads,
        requested_threads: threads.unwrap_or(0),
    }
}

/// Run the experiment over several workload sizes. The plain rows come
/// first (the cross-PR regression reference), then the skewed shape
/// where the scheduler's cost-awareness shows.
pub fn run(
    sizes: &[usize],
    templates: usize,
    seed: u64,
    threads: Option<usize>,
) -> Vec<ThroughputRow> {
    let mut rows = Vec::with_capacity(sizes.len() * 2);
    for workload in ["plain", "skewed"] {
        for &n in sizes {
            rows.push(run_one(workload, n, templates, seed, threads));
        }
    }
    rows
}

/// Render rows as an aligned console table.
pub fn render(rows: &[ThroughputRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8} {:>10} {:>10} {:>7} {:>12} {:>12} {:>12} {:>8} {:>9} {:>9}\n",
        "workload", "stmts", "templates", "threads", "seq st/s", "batch st/s", "par st/s",
        "batch_x", "par_x", "identical"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>10} {:>10} {:>7} {:>12.0} {:>12.0} {:>12.0} {:>7.1}x {:>8.1}x {:>9}\n",
            r.workload,
            r.statements,
            r.templates,
            r.threads,
            r.seq_throughput(),
            r.batch_throughput(),
            r.parallel_throughput(),
            r.batch_speedup(),
            r.parallel_speedup(),
            r.identical,
        ));
    }
    out
}

/// Render rows as a JSON document (written to `BENCH_throughput.json`).
pub fn to_json(rows: &[ThroughputRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"batch_detection_throughput\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"statements\": {}, \"templates\": {}, \
             \"threads\": {}, \"requested_threads\": {}, \
             \"detections\": {}, \"identical\": {}, \
             \"seq_micros\": {}, \"batch_micros\": {}, \"parallel_micros\": {}, \
             \"seq_stmts_per_sec\": {:.1}, \"batch_stmts_per_sec\": {:.1}, \
             \"parallel_stmts_per_sec\": {:.1}, \
             \"batch_speedup\": {:.2}, \"parallel_speedup\": {:.2}}}{}\n",
            r.workload,
            r.statements,
            r.templates,
            r.threads,
            r.requested_threads,
            r.detections,
            r.identical,
            r.seq_micros,
            r.batch_micros,
            r.parallel_micros,
            r.seq_throughput(),
            r.batch_throughput(),
            r.parallel_throughput(),
            r.batch_speedup(),
            r.parallel_speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_requested_shape() {
        let script = workload_script(500, 100, 7);
        let parsed = sqlcheck_parser::parse(&script);
        assert_eq!(parsed.len(), 500);
        let fps: std::collections::HashSet<u64> =
            parsed.iter().map(|p| p.fingerprint()).collect();
        assert!(fps.len() <= 100, "at most 100 templates, got {}", fps.len());
        assert!(fps.len() > 50, "workload should draw from most templates");
    }

    #[test]
    fn outputs_identical_at_small_scale() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_one("plain", 300, 50, 42, None);
        assert!(r.identical, "batch output must match sequential");
        assert!(r.detections > 0);
    }

    #[test]
    fn skewed_workload_has_hot_template_and_one_giant_statement() {
        let script = skewed_workload_script(600, 40, 0x5EED);
        let parsed = sqlcheck_parser::parse(&script);
        assert_eq!(parsed.len(), 600, "giant trigger body must stay one statement");
        // The hot template dominates: one fingerprint covers ~90%.
        let mut by_fp: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for p in &parsed {
            *by_fp.entry(p.fingerprint()).or_default() += 1;
        }
        let hottest = by_fp.values().copied().max().unwrap();
        assert!(hottest > 500, "hot template should cover ~90%, got {hottest}/600");
        // And the giant statement dwarfs the median.
        let giant = script.lines().map(str::len).max().unwrap();
        assert!(giant > 10_000, "giant statement present ({giant} bytes)");
    }

    #[test]
    fn skewed_outputs_identical_at_small_scale() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_one("skewed", 300, 30, 7, None);
        assert!(r.identical, "skewed batch output must match sequential");
        assert_eq!(r.workload, "skewed");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rows = run(&[100], 20, 1, None);
        let j = to_json(&rows);
        assert!(j.contains("\"statements\": 100"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
