//! **Per-phase experiment** — timing breakdown of the three-phase batch
//! detection pipeline (intra-query / inter-query / data-analysis), all
//! sliced onto the shared worker pool.
//!
//! The throughput and e2e experiments measure end-to-end wall clock; this
//! one records where the time goes. The workload is the template-heavy
//! statement stream of
//! [`workload_script`](crate::experiments::throughput::workload_script)
//! with a DDL prelude (so the inter-query rules have a catalog to check
//! against) and an attached database over a slice of the tables (so the
//! data-analysis phase profiles real columns). Per-phase wall-clock
//! micros come straight from [`BatchStats`] — the inter and data phases
//! are measured explicitly, not inferred as a residual.
//!
//! Byte-identity of the batch path against the sequential
//! [`Detector::detect`] is asserted before any timing is reported.

use super::throughput::workload_script;
use sqlcheck::{BatchOptions, BatchStats, ContextBuilder, DataAnalysisConfig, Detector, Report};
use sqlcheck_minidb::prelude::*;
use std::time::Instant;

/// One measured workload size with its per-phase breakdown.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Statements in the workload (DDL prelude included).
    pub statements: usize,
    /// Unique templates the statement stream draws from.
    pub templates: usize,
    /// Tables profiled by the data-analysis phase.
    pub profiled_tables: usize,
    /// Detections produced (identical across paths).
    pub detections: usize,
    /// Whether batch output matched the sequential path byte for byte.
    pub identical: bool,
    /// Wall-clock microseconds: sequential three-phase path.
    pub seq_micros: u128,
    /// Wall-clock microseconds: batch three-phase path (all threads).
    pub batch_micros: u128,
    /// Per-phase stats of the timed batch run (front-end populated from
    /// the context build).
    pub stats: BatchStats,
}

/// DDL prelude declaring every `app_t{k}` table the workload references,
/// plus an index that the workload never reads (Index Overuse fodder).
pub fn ddl_prelude(templates: usize) -> String {
    let mut out = String::new();
    for k in 0..templates {
        out.push_str(&format!(
            "CREATE TABLE app_t{k} (c0 INT PRIMARY KEY, c1 TEXT);\n"
        ));
    }
    out.push_str("CREATE INDEX idx_phase_unused ON app_t0 (c1);\n");
    out
}

/// A small database over the first `tables` workload tables, populated so
/// the data-analysis rules have distributions to inspect.
pub fn sample_database(tables: usize, rows_per_table: usize) -> Database {
    let mut db = Database::new();
    for k in 0..tables {
        let name = format!("app_t{k}");
        db.create_table(
            TableSchema::new(&name)
                .column(Column::new("c0", DataType::Int).not_null())
                .column(Column::new("c1", DataType::Text))
                .primary_key(&["c0"]),
        )
        .expect("create sample table");
        for i in 0..rows_per_table {
            // Low-cardinality text: Enumerated Types territory.
            db.insert(&name, vec![Value::Int(i as i64), Value::text(format!("v{}", i % 4))])
                .expect("insert sample row");
        }
    }
    db
}

fn report_key(r: &Report) -> Vec<String> {
    r.detections.iter().map(|d| format!("{d:?}")).collect()
}

/// Repetitions per measurement; the minimum observation is reported.
const REPS: usize = 3;

fn best_of<T>(mut f: impl FnMut() -> T) -> (T, u128) {
    let mut best = u128::MAX;
    let mut last = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_micros());
        last = Some(out);
    }
    (last.unwrap(), best)
}

/// Run the experiment at one workload size.
pub fn run_one(
    statements: usize,
    templates: usize,
    seed: u64,
    threads: Option<usize>,
) -> PhaseRow {
    let profiled = templates.min(8);
    let script = format!("{}{}", ddl_prelude(templates), workload_script(statements, templates, seed));
    let db = sample_database(profiled, 64);
    let (ctx, fe_stats) = ContextBuilder::new()
        .add_script(&script)
        .with_database(db, DataAnalysisConfig::default())
        .build_with_stats();
    let det = Detector::default();
    let opts = BatchOptions { parallel: true, threads, ..BatchOptions::default() };

    let (seq, seq_micros) = best_of(|| det.detect(&ctx));
    let (batch, batch_micros) = best_of(|| det.detect_batch(&ctx, &opts));

    let identical = report_key(&seq) == report_key(&batch.report);
    let mut stats = batch.stats;
    stats.absorb_frontend(&fe_stats);

    PhaseRow {
        statements: ctx.len(),
        templates,
        profiled_tables: profiled,
        detections: seq.detections.len(),
        identical,
        seq_micros,
        batch_micros,
        stats,
    }
}

/// Run the experiment over several workload sizes.
pub fn run(
    sizes: &[usize],
    templates: usize,
    seed: u64,
    threads: Option<usize>,
) -> Vec<PhaseRow> {
    sizes.iter().map(|&n| run_one(n, templates, seed, threads)).collect()
}

/// Render rows as an aligned console table (one line per phase set).
pub fn render(rows: &[PhaseRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>9} {:>7} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}\n",
        "stmts", "threads", "seq_us", "batch_us", "parse", "group", "intra", "fanout",
        "inter", "data", "identical"
    ));
    for r in rows {
        let s = &r.stats;
        out.push_str(&format!(
            "{:>9} {:>7} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}\n",
            r.statements,
            s.threads,
            r.seq_micros,
            r.batch_micros,
            s.parse_micros,
            s.group_micros,
            s.intra_micros,
            s.fanout_micros,
            s.inter_micros,
            s.data_micros,
            r.identical,
        ));
    }
    out
}

/// Render rows as a JSON document (written to `BENCH_throughput.json`
/// when the experiment runs standalone).
pub fn to_json(rows: &[PhaseRow]) -> String {
    let mut out =
        String::from("{\n  \"experiment\": \"batch_detection_phases\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let s = &r.stats;
        out.push_str(&format!(
            "    {{\"statements\": {}, \"templates\": {}, \"profiled_tables\": {}, \
             \"threads\": {}, \"requested_threads\": {}, \
             \"detections\": {}, \"identical\": {}, \
             \"seq_micros\": {}, \"batch_micros\": {}, \
             \"split_micros\": {}, \"parse_micros\": {}, \"annotate_micros\": {}, \
             \"context_micros\": {}, \"group_micros\": {}, \"intra_micros\": {}, \
             \"fanout_micros\": {}, \"inter_micros\": {}, \"data_micros\": {}, \
             \"total_micros\": {}, \"unique_texts\": {}, \"speedup\": {:.2}}}{}\n",
            r.statements,
            r.templates,
            r.profiled_tables,
            s.threads,
            s.requested_threads,
            r.detections,
            r.identical,
            r.seq_micros,
            r.batch_micros,
            s.split_micros,
            s.parse_micros,
            s.annotate_micros,
            s.context_micros,
            s.group_micros,
            s.intra_micros,
            s.fanout_micros,
            s.inter_micros,
            s.data_micros,
            s.total_micros,
            s.unique_texts,
            r.seq_micros as f64 / r.batch_micros.max(1) as f64,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_identical_and_measured() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_one(300, 24, 0x9A5E, None);
        assert!(r.identical, "batch three-phase output must match sequential");
        assert!(r.detections > 0);
        // The inter and data phases both did real, measured work: the
        // workload has hot unindexed predicates and the database has
        // profiled tables. (Timings can legitimately round to 0us at
        // this scale, so assert on the work items instead.)
        assert!(r.profiled_tables > 0);
        assert!(r.stats.unique_texts > 0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rows = run(&[120], 16, 1, None);
        let j = to_json(&rows);
        assert!(j.contains("\"inter_micros\""));
        assert!(j.contains("\"data_micros\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
