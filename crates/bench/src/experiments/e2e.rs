//! **End-to-end front-end experiment** — the parse-once pipeline, the
//! fingerprint-keyed incremental cache, and the delta-based warm
//! re-check ([`CheckSession`]) vs the pre-pipeline front-end.
//!
//! Three configurations per workload shape:
//!
//! * `legacy` — the pre-PR front-end: every statement parsed and
//!   annotated individually, single-threaded
//!   ([`FrontendOptions::legacy`]), followed by batch detection;
//! * `pipeline` — the parse-once front-end: split + fingerprint first,
//!   parse/annotate each unique text once (threaded when available),
//!   followed by batch detection;
//! * `warm` — a [`CheckSession`] retained from a cold check of the
//!   workload, re-checking an **edit set** (a fraction of statements
//!   replaced) through [`CheckSession::recheck`]: the script splices,
//!   the workload profile applies the edit as a delta, only dirty
//!   statements re-analyse, and the inter/data tail replays from the
//!   digest-keyed unit memo. Cost is proportional to the edit set, not
//!   the workload.
//!
//! Every configuration is verified to produce byte-identical output
//! before any timing is reported: `pipeline` vs `legacy` on the original
//! script, and the warm session vs a cold full check of the edited
//! script (detections **and** ranking).

use super::throughput::script_for_shape;
use crate::alloc_count::{alloc_count, allocs_per_stmt};
use sqlcheck::{
    BatchOptions, BatchStats, CheckSession, ContextBuilder, Detector, Edit, FrontendOptions,
    FrontendStats, IncrementalCache, Report, SqlCheck, WorkloadOutcome,
};
use std::time::Instant;

/// One measured workload configuration.
#[derive(Debug, Clone)]
pub struct E2eRow {
    /// Workload shape: `"plain"`, `"trigger"`, or `"skewed"`.
    pub workload: String,
    /// Statements in the workload.
    pub statements: usize,
    /// Unique templates the workload draws from.
    pub templates: usize,
    /// Requested edit rate in permille (‰) of statements.
    pub edit_permille: usize,
    /// Statements whose text was edited for the warm re-check.
    pub edited: usize,
    /// Effective threads used by the pipeline front-end.
    pub threads: usize,
    /// Threads the caller requested (0 = auto-detect).
    pub requested_threads: usize,
    /// Detections produced on the original script (identical across the
    /// cold configurations).
    pub detections: usize,
    /// Whether all configurations produced byte-identical reports.
    pub identical: bool,
    /// Wall-clock microseconds: legacy front-end + batch detection
    /// (0 when the legacy leg is skipped, see [`run_gate`]).
    pub legacy_micros: u128,
    /// Wall-clock microseconds: parse-once front-end + batch detection.
    pub pipeline_micros: u128,
    /// Wall-clock microseconds: warm [`CheckSession::recheck`] of the
    /// edit set (splice + delta profile + dirty-statement patch + unit
    /// replay + rank/fix tail).
    pub warm_micros: u128,
    /// Front-end phase breakdown of the cold pipeline run.
    pub frontend: FrontendStats,
    /// Warm re-check stats: per-phase micros, dirty-unit counts, cache
    /// outcomes — straight from the session's [`BatchStats`].
    pub warm: BatchStats,
    /// Full rebuilds the warm session fell back to (0 on the
    /// incremental path; any fallback voids the O(edits) claim).
    pub fallbacks: u64,
    /// Median observation for the pipeline configuration (noise context
    /// for the reported min).
    pub pipeline_median_micros: u128,
    /// Relative spread `(max-min)/min` of the pipeline observations,
    /// percent.
    pub pipeline_spread_pct: f64,
    /// Heap allocations per **unique** statement across one cold
    /// pipeline check (front-end + batch detection). `None` when the
    /// `count-allocs` feature is compiled out.
    pub allocs_per_stmt: Option<f64>,
}

impl E2eRow {
    /// Cold speedup: legacy front-end vs parse-once pipeline.
    pub fn cold_speedup(&self) -> f64 {
        self.legacy_micros as f64 / self.pipeline_micros.max(1) as f64
    }

    /// Warm speedup: cold check (legacy front-end) vs warm re-check.
    pub fn warm_speedup(&self) -> f64 {
        self.legacy_micros as f64 / self.warm_micros.max(1) as f64
    }

    /// Warm re-check **as a fraction of** the cold pipeline: below 1.0
    /// the warm path wins; the CI gate requires ≤ 0.35 on the 1%-edit
    /// 100k row. (Flipped from the pre-session `pipeline/warm` speedup
    /// so the gate reads as a ceiling.)
    pub fn warm_vs_pipeline(&self) -> f64 {
        self.warm_micros as f64 / self.pipeline_micros.max(1) as f64
    }
}

/// Deterministically pick `permille`/1000 of the statement indices and
/// pair each with a replacement text no template in the pool uses — a
/// genuinely new statement, as an application edit would produce.
/// Statement-index based, so it is shape-agnostic (trigger bodies span
/// lines; splicing is the session's job).
pub fn edit_set(statements: usize, permille: usize, seed: u64) -> Vec<Edit> {
    let mut rng = sqlcheck_minidb::stats::SmallRng::new(seed);
    let mut edits = Vec::new();
    for i in 0..statements {
        if rng.gen_range(1000) < permille {
            edits.push(Edit::new(
                i,
                format!("SELECT * FROM app_t{} WHERE c0 = {}", i % 97, 1_000_000 + i),
            ));
        }
    }
    edits
}

/// Render a report's detections for byte-identity comparison.
fn report_key(r: &Report) -> Vec<String> {
    r.detections.iter().map(|d| format!("{d:?}")).collect()
}

/// Render a full workload outcome — detections and ranking — for the
/// warm-vs-cold identity check (the session also patches ranking/fixes;
/// ranking covers both since it is derived from the detections).
fn outcome_key(o: &WorkloadOutcome) -> Vec<String> {
    let mut k = report_key(&o.outcome.report);
    k.extend(o.outcome.ranked().iter().map(|r| format!("{:.6} {:?}", r.score, r.detection)));
    k
}

/// Repetitions per measurement; the minimum observation is reported
/// (noise-robust: preemption and hypervisor steal only ever add time).
const REPS: usize = 3;

fn best_of<T>(mut f: impl FnMut() -> T) -> (T, u128) {
    let (out, s) = sample_full(&mut f);
    (out, s.0)
}

/// Time `f` REPS times; return the last output plus
/// `(min, median, spread_pct)` of the observations.
fn sample_full<T>(f: &mut impl FnMut() -> T) -> (T, (u128, u128, f64)) {
    let mut obs = Vec::with_capacity(REPS);
    let mut last = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let out = f();
        obs.push(t.elapsed().as_micros());
        last = Some(out);
    }
    obs.sort_unstable();
    let min = obs[0];
    let max = obs[obs.len() - 1];
    let spread = if min == 0 { 0.0 } else { (max - min) as f64 * 100.0 / min as f64 };
    (last.unwrap(), (min, obs[obs.len() / 2], spread))
}

/// One full end-to-end check: front-end + batch detection.
fn check(
    script: &str,
    fe: FrontendOptions,
    opts: &BatchOptions,
    cache: Option<&IncrementalCache>,
) -> sqlcheck::BatchReport {
    let (ctx, fe_stats) =
        ContextBuilder::new().with_frontend(fe).add_script(script).build_with_stats();
    let mut batch = Detector::default().detect_batch_with(&ctx, opts, cache);
    batch.stats.absorb_frontend(&fe_stats);
    batch.stats.threads = batch.stats.threads.max(fe_stats.threads);
    batch
}

/// Run the experiment at one workload size and shape. `threads` pins the
/// worker count of the parallel configurations (`None` = all cores).
pub fn run_one(
    workload: &str,
    statements: usize,
    templates: usize,
    edit_permille: usize,
    seed: u64,
    threads: Option<usize>,
) -> E2eRow {
    run_inner(workload, statements, templates, edit_permille, seed, threads, true)
}

/// The CI-gate variant: pipeline + warm legs only (the legacy leg costs
/// ~20x the pipeline at 100k and adds nothing to the
/// `warm_vs_pipeline` ceiling). `legacy_micros` is 0 in the result;
/// identity is still asserted warm-vs-cold on the edited script.
pub fn run_gate(
    workload: &str,
    statements: usize,
    templates: usize,
    edit_permille: usize,
    seed: u64,
    threads: Option<usize>,
) -> E2eRow {
    run_inner(workload, statements, templates, edit_permille, seed, threads, false)
}

fn run_inner(
    workload: &str,
    statements: usize,
    templates: usize,
    edit_permille: usize,
    seed: u64,
    threads: Option<usize>,
    with_legacy: bool,
) -> E2eRow {
    let script = script_for_shape(workload, statements, templates, seed);
    let opts = BatchOptions { parallel: true, threads, ..BatchOptions::default() };

    // Cold, legacy front-end (the pre-pipeline baseline). Detection uses
    // the same batch options as the pipeline runs so the measured delta
    // isolates the front-end.
    let (legacy, legacy_micros) = if with_legacy {
        let (l, us) = best_of(|| check(&script, FrontendOptions::legacy(), &opts, None));
        (Some(l), us)
    } else {
        (None, 0)
    };

    // Cold, parse-once pipeline.
    let pipeline_fe =
        FrontendOptions { dedup: true, parallel: true, threads, ..FrontendOptions::default() };
    let (pipeline, (pipeline_micros, pipeline_median_micros, pipeline_spread_pct)) =
        sample_full(&mut || check(&script, pipeline_fe.clone(), &opts, None));

    // Heap traffic per unique statement across one cold pipeline check
    // (only meaningful with the counting allocator compiled in).
    let a0 = alloc_count();
    let alloc_run = check(&script, pipeline_fe.clone(), &opts, None);
    let allocs = allocs_per_stmt(a0, alloc_count(), alloc_run.stats.unique_texts.max(1));

    // Warm: retain a session over the original workload (cold build,
    // untimed), then time only `recheck(&edits)`. Each repetition gets a
    // fresh session so no rep re-checks an already-applied edit set.
    let edits = edit_set(pipeline.stats.statements, edit_permille, seed ^ 0xE017);
    let edited = edits.len();
    let mut sessions: Vec<CheckSession> = (0..REPS)
        .map(|_| {
            SqlCheck::new().with_cache(1 << 14).into_session(script.clone(), opts.clone())
        })
        .collect();
    let (warm_session, warm_micros) = best_of(|| {
        let mut s = sessions.pop().expect("one retained session per repetition");
        s.recheck(&edits);
        s
    });
    let warm = warm_session.outcome().stats.clone();
    let fallbacks = warm_session.fallbacks();

    // Byte-identity: pipeline ≡ legacy on the original workload, and the
    // warm session ≡ a cold full check of the edited script (detections
    // and ranking — the session patches both).
    let cold_edited = SqlCheck::new().check_workload(warm_session.script(), &opts);
    let identical = legacy
        .as_ref()
        .map(|l| report_key(&l.report) == report_key(&pipeline.report))
        .unwrap_or(true)
        && outcome_key(&cold_edited) == outcome_key(warm_session.outcome());

    E2eRow {
        workload: workload.to_string(),
        statements,
        templates,
        edit_permille,
        edited,
        threads: pipeline.stats.threads,
        requested_threads: threads.unwrap_or(0),
        detections: pipeline.report.detections.len(),
        identical,
        legacy_micros,
        pipeline_micros,
        warm_micros,
        frontend: FrontendStats {
            statements: pipeline.stats.statements,
            unique_texts: pipeline.stats.unique_texts,
            threads: pipeline.stats.threads,
            split_micros: pipeline.stats.split_micros,
            materialize_micros: pipeline.stats.materialize_micros,
            intake_micros: pipeline.stats.intake_micros,
            parse_micros: pipeline.stats.parse_micros,
            annotate_micros: pipeline.stats.annotate_micros,
            context_micros: pipeline.stats.context_micros,
        },
        warm,
        fallbacks,
        pipeline_median_micros,
        pipeline_spread_pct,
        allocs_per_stmt: allocs,
    }
}

/// Result of the DDL-edit cache scenario: how much of the cache survives
/// a schema edit to **one** table.
#[derive(Debug, Clone)]
pub struct DdlEditRow {
    /// Statements in the workload (DDL included).
    pub statements: usize,
    /// Tables the workload spreads over.
    pub tables: usize,
    /// Incremental-cache hits on the re-check after the DDL edit. Under
    /// whole-cache flushing this is 0; under column-granular invalidation
    /// it is every unique text not reading the added column.
    pub hits: usize,
    /// Incremental-cache misses on the re-check (texts invalidated by
    /// the edit, plus the edited DDL itself).
    pub misses: usize,
    /// Whether the warm re-check matched a cold check byte for byte.
    pub identical: bool,
}

/// Prime a cache over a multi-table workload, edit the DDL of a single
/// table, and re-check: column-granular invalidation must keep every
/// entry that does not read the edited column (shown by the hit
/// counter), while output stays byte-identical to a cold check.
pub fn run_ddl_edit(
    statements: usize,
    tables: usize,
    seed: u64,
    threads: Option<usize>,
) -> DdlEditRow {
    let prelude = super::phases::ddl_prelude(tables);
    let body = super::throughput::workload_script(statements, tables, seed);
    let script = format!("{prelude}{body}");
    // The DDL edit: one table grows a column; every other table's
    // definition is untouched.
    let edited = script.replace(
        "CREATE TABLE app_t0 (c0 INT PRIMARY KEY, c1 TEXT);",
        "CREATE TABLE app_t0 (c0 INT PRIMARY KEY, c1 TEXT, c2 INT);",
    );
    assert_ne!(script, edited, "edit must change the DDL");

    let opts = BatchOptions { parallel: true, threads, ..BatchOptions::default() };
    let fe = FrontendOptions { dedup: true, parallel: true, threads, ..FrontendOptions::default() };
    let cache = IncrementalCache::default();
    let _ = check(&script, fe.clone(), &opts, Some(&cache));
    let warm = check(&edited, fe.clone(), &opts, Some(&cache));
    let cold = check(&edited, FrontendOptions::legacy(), &opts, None);

    DdlEditRow {
        statements: warm.stats.statements,
        tables,
        hits: warm.stats.incremental_hits,
        misses: warm.stats.incremental_misses,
        identical: report_key(&cold.report) == report_key(&warm.report),
    }
}

/// Render the DDL-edit scenario result.
pub fn render_ddl_edit(r: &DdlEditRow) -> String {
    format!(
        "DDL edit to 1 of {} tables over {} statements: {} cache hit(s), {} miss(es), identical: {}\n\
         (whole-cache flushing would report 0 hits here)\n",
        r.tables, r.statements, r.hits, r.misses, r.identical
    )
}

/// Run the experiment over several workload sizes at one edit rate
/// (plain shape — the cross-PR regression reference).
pub fn run(
    sizes: &[usize],
    templates: usize,
    edit_permille: usize,
    seed: u64,
    threads: Option<usize>,
) -> Vec<E2eRow> {
    sizes.iter().map(|&n| run_one("plain", n, templates, edit_permille, seed, threads)).collect()
}

/// Edit-fraction sweep at one workload size: every shape × every edit
/// rate (the `incremental` experiment — the O(edits) claim as a curve).
pub fn run_sweep(
    statements: usize,
    templates: usize,
    permilles: &[usize],
    shapes: &[&str],
    seed: u64,
    threads: Option<usize>,
) -> Vec<E2eRow> {
    let mut rows = Vec::with_capacity(shapes.len() * permilles.len());
    for &shape in shapes {
        for &pm in permilles {
            rows.push(run_one(shape, statements, templates, pm, seed, threads));
        }
    }
    rows
}

/// Render rows as an aligned console table.
pub fn render(rows: &[E2eRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8} {:>8} {:>7} {:>7} {:>11} {:>11} {:>9} {:>6} {:>6} {:>5} {:>9}\n",
        "workload", "stmts", "edited", "threads", "legacy_us", "pipeline_us", "warm_us", "cold_x",
        "w/p", "dirty", "identical"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>8} {:>7} {:>7} {:>11} {:>11} {:>9} {:>5.1}x {:>6.2} {:>5} {:>9}\n",
            r.workload,
            r.statements,
            r.edited,
            r.threads,
            r.legacy_micros,
            r.pipeline_micros,
            r.warm_micros,
            r.cold_speedup(),
            r.warm_vs_pipeline(),
            r.warm.warm_dirty_statements,
            r.identical,
        ));
    }
    out
}

/// Render the per-phase warm breakdown of each row (edit / profile /
/// patch / finalize micros plus dirty-unit counts) — the measured shape
/// of the O(edits) claim.
pub fn render_warm_phases(rows: &[E2eRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8} {:>7} {:>8} {:>11} {:>9} {:>12} {:>6} {:>11} {:>11}\n",
        "workload", "edited", "edit_us", "profile_us", "patch_us", "finalize_us", "dirty",
        "inter_r/c", "data_reuse"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>7} {:>8} {:>11} {:>9} {:>12} {:>6} {:>9}/{} {:>11}\n",
            r.workload,
            r.edited,
            r.warm.warm_edit_micros,
            r.warm.warm_profile_micros,
            r.warm.warm_patch_micros,
            r.warm.warm_finalize_micros,
            r.warm.warm_dirty_statements,
            r.warm.inter_units_reused,
            r.warm.inter_units_recomputed,
            r.warm.data_units_reused,
        ));
    }
    out
}

/// Render rows as a JSON document (written to `BENCH_e2e.json`).
pub fn to_json(rows: &[E2eRow]) -> String {
    let mut out =
        String::from("{\n  \"experiment\": \"parse_once_frontend_e2e\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"statements\": {}, \"templates\": {}, \
             \"edit_permille\": {}, \"edited\": {}, \"threads\": {}, \
             \"requested_threads\": {}, \
             \"detections\": {}, \"identical\": {}, \"fallbacks\": {}, \
             \"legacy_micros\": {}, \"pipeline_micros\": {}, \"warm_micros\": {}, \
             \"pipeline_median_micros\": {}, \"pipeline_spread_pct\": {:.1}, \
             \"allocs_per_stmt\": {}, \
             \"split_micros\": {}, \"materialize_micros\": {}, \"intake_micros\": {}, \
             \"parse_micros\": {}, \
             \"annotate_micros\": {}, \"context_micros\": {}, \"unique_texts\": {}, \
             \"warm_edit_micros\": {}, \"warm_profile_micros\": {}, \
             \"warm_patch_micros\": {}, \"warm_finalize_micros\": {}, \
             \"warm_dirty_statements\": {}, \
             \"inter_units_reused\": {}, \"inter_units_recomputed\": {}, \
             \"data_units_reused\": {}, \
             \"incremental_hits\": {}, \"incremental_misses\": {}, \
             \"cold_speedup\": {:.2}, \"warm_speedup\": {:.2}, \
             \"warm_vs_pipeline\": {:.3}}}{}\n",
            r.workload,
            r.statements,
            r.templates,
            r.edit_permille,
            r.edited,
            r.threads,
            r.requested_threads,
            r.detections,
            r.identical,
            r.fallbacks,
            r.legacy_micros,
            r.pipeline_micros,
            r.warm_micros,
            r.pipeline_median_micros,
            r.pipeline_spread_pct,
            r.allocs_per_stmt.map(|a| format!("{a:.1}")).unwrap_or_else(|| "null".into()),
            r.frontend.split_micros,
            r.frontend.materialize_micros,
            r.frontend.intake_micros,
            r.frontend.parse_micros,
            r.frontend.annotate_micros,
            r.frontend.context_micros,
            r.frontend.unique_texts,
            r.warm.warm_edit_micros,
            r.warm.warm_profile_micros,
            r.warm.warm_patch_micros,
            r.warm.warm_finalize_micros,
            r.warm.warm_dirty_statements,
            r.warm.inter_units_reused,
            r.warm.inter_units_recomputed,
            r.warm.data_units_reused,
            r.warm.incremental_hits,
            r.warm.incremental_misses,
            r.cold_speedup(),
            r.warm_speedup(),
            r.warm_vs_pipeline(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_identical_at_small_scale() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_one("plain", 400, 50, 10, 0xE2E, None);
        assert!(r.identical, "all three configurations must agree");
        assert!(r.detections > 0);
        assert!(r.edited > 0, "edit rate must actually edit something");
        assert_eq!(r.fallbacks, 0, "the edit set must stay on the incremental path");
        assert!(
            r.warm.warm_dirty_statements >= r.edited,
            "every edited statement is dirty on the warm path"
        );
    }

    #[test]
    fn trigger_and_skewed_shapes_stay_incremental() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for shape in ["trigger", "skewed"] {
            let r = run_one(shape, 300, 30, 20, 0x5A9E, None);
            assert!(r.identical, "{shape}: warm session diverged from cold check");
            assert_eq!(r.fallbacks, 0, "{shape}: edit set must stay incremental");
        }
    }

    #[test]
    fn edit_set_is_deterministic_and_bounded() {
        let a = edit_set(1_000, 10, 7);
        let b = edit_set(1_000, 10, 7);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.index == y.index && x.text == y.text));
        assert!(!a.is_empty() && a.len() < 100, "~1% of 1000 expected, got {}", a.len());
        assert!(edit_set(1_000, 0, 7).is_empty());
    }

    #[test]
    fn gate_variant_skips_legacy_but_keeps_identity() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_gate("plain", 300, 30, 10, 0xE2E, None);
        assert_eq!(r.legacy_micros, 0);
        assert!(r.identical, "warm session must equal the cold check of the edited script");
    }

    #[test]
    fn ddl_edit_keeps_unrelated_cache_entries() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_ddl_edit(400, 10, 0xDD1, None);
        assert!(r.identical, "warm re-check after a DDL edit must equal a cold check");
        assert!(
            r.hits > 0,
            "column-granular invalidation must keep entries that do not read the edit"
        );
        assert!(r.misses > 0, "statements invalidated by the edit must re-analyse");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rows = run(&[150], 20, 20, 3, None);
        let j = to_json(&rows);
        assert!(j.contains("\"statements\": 150"));
        assert!(j.contains("\"workload\": \"plain\""));
        assert!(j.contains("warm_patch_micros"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
