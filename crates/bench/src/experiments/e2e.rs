//! **End-to-end front-end experiment** — the parse-once pipeline and the
//! fingerprint-keyed incremental cache vs the pre-pipeline front-end.
//!
//! Three configurations over the same template-heavy workload
//! (`workload_script` from the [throughput](crate::experiments::throughput)
//! experiment):
//!
//! * `legacy` — the pre-PR front-end: every statement parsed and
//!   annotated individually, single-threaded
//!   ([`FrontendOptions::legacy`]), followed by batch detection;
//! * `pipeline` — the parse-once front-end: split + fingerprint first,
//!   parse/annotate each unique text once (threaded when available),
//!   followed by batch detection;
//! * `warm` — the pipeline plus an [`IncrementalCache`] primed by a
//!   previous check of the workload, re-checking an edited variant where
//!   a fraction of statements changed text.
//!
//! Every configuration is verified to produce byte-identical detections
//! before any timing is reported.

use sqlcheck::{
    BatchOptions, ContextBuilder, Detector, FrontendOptions, FrontendStats, IncrementalCache,
    Report,
};
use super::throughput::workload_script;
use crate::alloc_count::{alloc_count, allocs_per_stmt};
use std::time::Instant;

/// One measured workload configuration.
#[derive(Debug, Clone)]
pub struct E2eRow {
    /// Statements in the workload.
    pub statements: usize,
    /// Unique templates the workload draws from.
    pub templates: usize,
    /// Statements whose text was edited for the warm re-check.
    pub edited: usize,
    /// Effective threads used by the pipeline front-end.
    pub threads: usize,
    /// Threads the caller requested (0 = auto-detect).
    pub requested_threads: usize,
    /// Detections produced (identical across all configurations).
    pub detections: usize,
    /// Whether all configurations produced byte-identical reports.
    pub identical: bool,
    /// Wall-clock microseconds: legacy front-end + batch detection.
    pub legacy_micros: u128,
    /// Wall-clock microseconds: parse-once front-end + batch detection.
    pub pipeline_micros: u128,
    /// Wall-clock microseconds: warm re-check of the edited workload
    /// (pipeline front-end + primed incremental cache).
    pub warm_micros: u128,
    /// Front-end phase breakdown of the cold pipeline run.
    pub frontend: FrontendStats,
    /// Incremental-cache hits during the warm re-check.
    pub incremental_hits: usize,
    /// Incremental-cache misses during the warm re-check (edited texts).
    pub incremental_misses: usize,
    /// Median observation for the pipeline configuration (noise context
    /// for the reported min).
    pub pipeline_median_micros: u128,
    /// Relative spread `(max-min)/min` of the pipeline observations,
    /// percent.
    pub pipeline_spread_pct: f64,
    /// Heap allocations per **unique** statement across one cold
    /// pipeline check (front-end + batch detection). `None` when the
    /// `count-allocs` feature is compiled out.
    pub allocs_per_stmt: Option<f64>,
}

impl E2eRow {
    /// Cold speedup: legacy front-end vs parse-once pipeline.
    pub fn cold_speedup(&self) -> f64 {
        self.legacy_micros as f64 / self.pipeline_micros.max(1) as f64
    }

    /// Warm speedup: cold check (legacy front-end) vs cached re-check.
    pub fn warm_speedup(&self) -> f64 {
        self.legacy_micros as f64 / self.warm_micros.max(1) as f64
    }

    /// Warm re-check vs the cold pipeline (cache contribution alone).
    pub fn warm_vs_pipeline(&self) -> f64 {
        self.pipeline_micros as f64 / self.warm_micros.max(1) as f64
    }
}

/// Deterministically edit `permille`/1000 of the statements in a
/// workload script (one statement per line), giving each edited line a
/// literal no template in the pool uses — a genuinely new statement text,
/// as an application edit would produce.
pub fn edit_script(script: &str, permille: usize, seed: u64) -> (String, usize) {
    let mut rng = sqlcheck_minidb::stats::SmallRng::new(seed);
    let mut edited = 0usize;
    let mut out = String::with_capacity(script.len() + 64);
    for (i, line) in script.lines().enumerate() {
        if !line.is_empty() && rng.gen_range(1000) < permille {
            edited += 1;
            // Swap the statement for an edited sibling: same table
            // universe, fresh literal, so the text (and usually the
            // template) is new to the cache.
            out.push_str(&format!(
                "SELECT * FROM app_t{} WHERE c0 = {};\n",
                i % 97,
                1_000_000 + i
            ));
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    (out, edited)
}

/// Render a report's detections for byte-identity comparison.
fn report_key(r: &Report) -> Vec<String> {
    r.detections.iter().map(|d| format!("{d:?}")).collect()
}

/// Repetitions per measurement; the minimum observation is reported
/// (noise-robust: preemption and hypervisor steal only ever add time).
const REPS: usize = 3;

fn best_of<T>(mut f: impl FnMut() -> T) -> (T, u128) {
    let (out, s) = sample_full(&mut f);
    (out, s.0)
}

/// Time `f` REPS times; return the last output plus
/// `(min, median, spread_pct)` of the observations.
fn sample_full<T>(f: &mut impl FnMut() -> T) -> (T, (u128, u128, f64)) {
    let mut obs = Vec::with_capacity(REPS);
    let mut last = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let out = f();
        obs.push(t.elapsed().as_micros());
        last = Some(out);
    }
    obs.sort_unstable();
    let min = obs[0];
    let max = obs[obs.len() - 1];
    let spread = if min == 0 { 0.0 } else { (max - min) as f64 * 100.0 / min as f64 };
    (last.unwrap(), (min, obs[obs.len() / 2], spread))
}

/// One full end-to-end check: front-end + batch detection.
fn check(
    script: &str,
    fe: FrontendOptions,
    opts: &BatchOptions,
    cache: Option<&IncrementalCache>,
) -> sqlcheck::BatchReport {
    let (ctx, fe_stats) =
        ContextBuilder::new().with_frontend(fe).add_script(script).build_with_stats();
    let mut batch = Detector::default().detect_batch_with(&ctx, opts, cache);
    batch.stats.absorb_frontend(&fe_stats);
    batch.stats.threads = batch.stats.threads.max(fe_stats.threads);
    batch
}

/// Run the experiment at one workload size. `threads` pins the worker
/// count of the parallel configurations (`None` = all cores).
pub fn run_one(
    statements: usize,
    templates: usize,
    edit_permille: usize,
    seed: u64,
    threads: Option<usize>,
) -> E2eRow {
    let script = workload_script(statements, templates, seed);
    let (edited_script, edited) = edit_script(&script, edit_permille, seed ^ 0xE017);
    let opts = BatchOptions { parallel: true, threads, ..BatchOptions::default() };

    // Cold, legacy front-end (the pre-pipeline baseline). Detection uses
    // the same batch options as the pipeline runs so the measured delta
    // isolates the front-end.
    let (legacy, legacy_micros) =
        best_of(|| check(&script, FrontendOptions::legacy(), &opts, None));

    // Cold, parse-once pipeline.
    let pipeline_fe = FrontendOptions { dedup: true, parallel: true, threads, ..FrontendOptions::default() };
    let (pipeline, (pipeline_micros, pipeline_median_micros, pipeline_spread_pct)) =
        sample_full(&mut || check(&script, pipeline_fe.clone(), &opts, None));

    // Heap traffic per unique statement across one cold pipeline check
    // (only meaningful with the counting allocator compiled in).
    let a0 = alloc_count();
    let alloc_run = check(&script, pipeline_fe.clone(), &opts, None);
    let allocs = allocs_per_stmt(a0, alloc_count(), alloc_run.stats.unique_texts.max(1));

    // Warm: prime a cache with the original workload, then re-check the
    // edited variant. Each timed repetition starts from a freshly cloned
    // primed cache so later reps don't measure a fully warmed cache.
    let primed = IncrementalCache::default();
    let _ = check(&script, pipeline_fe.clone(), &opts, Some(&primed));
    let mut caches: Vec<IncrementalCache> = (0..REPS).map(|_| primed.clone()).collect();
    let (warm, warm_micros) = best_of(|| {
        let c = caches.pop().unwrap_or_else(|| primed.clone());
        check(&edited_script, pipeline_fe.clone(), &opts, Some(&c))
    });

    // Byte-identity: pipeline ≡ legacy on the original workload, and the
    // warm cached re-check ≡ a cold legacy check of the edited workload.
    let legacy_edited = check(&edited_script, FrontendOptions::legacy(), &opts, None);
    let identical = report_key(&legacy.report) == report_key(&pipeline.report)
        && report_key(&legacy_edited.report) == report_key(&warm.report);

    E2eRow {
        statements,
        templates,
        edited,
        threads: pipeline.stats.threads,
        requested_threads: threads.unwrap_or(0),
        detections: legacy.report.detections.len(),
        identical,
        legacy_micros,
        pipeline_micros,
        warm_micros,
        frontend: FrontendStats {
            statements: pipeline.stats.statements,
            unique_texts: pipeline.stats.unique_texts,
            threads: pipeline.stats.threads,
            split_micros: pipeline.stats.split_micros,
            materialize_micros: pipeline.stats.materialize_micros,
            parse_micros: pipeline.stats.parse_micros,
            annotate_micros: pipeline.stats.annotate_micros,
            context_micros: pipeline.stats.context_micros,
        },
        incremental_hits: warm.stats.incremental_hits,
        incremental_misses: warm.stats.incremental_misses,
        pipeline_median_micros,
        pipeline_spread_pct,
        allocs_per_stmt: allocs,
    }
}

/// Result of the DDL-edit cache scenario: how much of the cache survives
/// a schema edit to **one** table.
#[derive(Debug, Clone)]
pub struct DdlEditRow {
    /// Statements in the workload (DDL included).
    pub statements: usize,
    /// Tables the workload spreads over.
    pub tables: usize,
    /// Incremental-cache hits on the re-check after the DDL edit. Under
    /// whole-cache flushing this is 0; under per-table invalidation it is
    /// every unique text not touching the edited table.
    pub hits: usize,
    /// Incremental-cache misses on the re-check (texts touching the
    /// edited table, plus the edited DDL itself).
    pub misses: usize,
    /// Whether the warm re-check matched a cold check byte for byte.
    pub identical: bool,
}

/// Prime a cache over a multi-table workload, edit the DDL of a single
/// table, and re-check: per-table invalidation must keep every entry
/// that only depends on the *other* tables (shown by the hit counter),
/// while output stays byte-identical to a cold check.
pub fn run_ddl_edit(statements: usize, tables: usize, seed: u64, threads: Option<usize>) -> DdlEditRow {
    let prelude = super::phases::ddl_prelude(tables);
    let body = workload_script(statements, tables, seed);
    let script = format!("{prelude}{body}");
    // The DDL edit: one table grows a column; every other table's
    // definition is untouched.
    let edited = script.replace(
        "CREATE TABLE app_t0 (c0 INT PRIMARY KEY, c1 TEXT);",
        "CREATE TABLE app_t0 (c0 INT PRIMARY KEY, c1 TEXT, c2 INT);",
    );
    assert_ne!(script, edited, "edit must change the DDL");

    let opts = BatchOptions { parallel: true, threads, ..BatchOptions::default() };
    let fe = FrontendOptions { dedup: true, parallel: true, threads, ..FrontendOptions::default() };
    let cache = IncrementalCache::default();
    let _ = check(&script, fe.clone(), &opts, Some(&cache));
    let warm = check(&edited, fe.clone(), &opts, Some(&cache));
    let cold = check(&edited, FrontendOptions::legacy(), &opts, None);

    DdlEditRow {
        statements: warm.stats.statements,
        tables,
        hits: warm.stats.incremental_hits,
        misses: warm.stats.incremental_misses,
        identical: report_key(&cold.report) == report_key(&warm.report),
    }
}

/// Render the DDL-edit scenario result.
pub fn render_ddl_edit(r: &DdlEditRow) -> String {
    format!(
        "DDL edit to 1 of {} tables over {} statements: {} cache hit(s), {} miss(es), identical: {}\n\
         (whole-cache flushing would report 0 hits here)\n",
        r.tables, r.statements, r.hits, r.misses, r.identical
    )
}

/// Run the experiment over several workload sizes at one edit rate.
pub fn run(
    sizes: &[usize],
    templates: usize,
    edit_permille: usize,
    seed: u64,
    threads: Option<usize>,
) -> Vec<E2eRow> {
    sizes.iter().map(|&n| run_one(n, templates, edit_permille, seed, threads)).collect()
}

/// Sweep edit rates at one workload size (the `incremental` experiment).
pub fn run_sweep(
    statements: usize,
    templates: usize,
    permilles: &[usize],
    seed: u64,
    threads: Option<usize>,
) -> Vec<E2eRow> {
    permilles.iter().map(|&pm| run_one(statements, templates, pm, seed, threads)).collect()
}

/// Render rows as an aligned console table.
pub fn render(rows: &[E2eRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>9} {:>9} {:>7} {:>7} {:>11} {:>11} {:>11} {:>7} {:>7} {:>9}\n",
        "stmts", "templates", "edited", "threads", "legacy_us", "pipeline_us", "warm_us",
        "cold_x", "warm_x", "identical"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>9} {:>9} {:>7} {:>7} {:>11} {:>11} {:>11} {:>6.1}x {:>6.1}x {:>9}\n",
            r.statements,
            r.templates,
            r.edited,
            r.threads,
            r.legacy_micros,
            r.pipeline_micros,
            r.warm_micros,
            r.cold_speedup(),
            r.warm_speedup(),
            r.identical,
        ));
    }
    out
}

/// Render rows as a JSON document (written to `BENCH_e2e.json`).
pub fn to_json(rows: &[E2eRow]) -> String {
    let mut out =
        String::from("{\n  \"experiment\": \"parse_once_frontend_e2e\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"statements\": {}, \"templates\": {}, \"edited\": {}, \"threads\": {}, \
             \"requested_threads\": {}, \
             \"detections\": {}, \"identical\": {}, \
             \"legacy_micros\": {}, \"pipeline_micros\": {}, \"warm_micros\": {}, \
             \"pipeline_median_micros\": {}, \"pipeline_spread_pct\": {:.1}, \
             \"allocs_per_stmt\": {}, \
             \"split_micros\": {}, \"materialize_micros\": {}, \"parse_micros\": {}, \
             \"annotate_micros\": {}, \"context_micros\": {}, \"unique_texts\": {}, \
             \"incremental_hits\": {}, \"incremental_misses\": {}, \
             \"cold_speedup\": {:.2}, \"warm_speedup\": {:.2}, \
             \"warm_vs_pipeline\": {:.2}}}{}\n",
            r.statements,
            r.templates,
            r.edited,
            r.threads,
            r.requested_threads,
            r.detections,
            r.identical,
            r.legacy_micros,
            r.pipeline_micros,
            r.warm_micros,
            r.pipeline_median_micros,
            r.pipeline_spread_pct,
            r.allocs_per_stmt.map(|a| format!("{a:.1}")).unwrap_or_else(|| "null".into()),
            r.frontend.split_micros,
            r.frontend.materialize_micros,
            r.frontend.parse_micros,
            r.frontend.annotate_micros,
            r.frontend.context_micros,
            r.frontend.unique_texts,
            r.incremental_hits,
            r.incremental_misses,
            r.cold_speedup(),
            r.warm_speedup(),
            r.warm_vs_pipeline(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_identical_at_small_scale() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_one(400, 50, 10, 0xE2E, None);
        assert!(r.identical, "all three configurations must agree");
        assert!(r.detections > 0);
        assert!(r.edited > 0, "edit rate must actually edit something");
        assert!(r.incremental_hits > 0, "warm run must hit the cache");
    }

    #[test]
    fn edit_script_is_deterministic_and_bounded() {
        let script = workload_script(1_000, 50, 1);
        let (a, na) = edit_script(&script, 10, 7);
        let (b, nb) = edit_script(&script, 10, 7);
        assert_eq!(a, b);
        assert_eq!(na, nb);
        assert!(na > 0 && na < 100, "~1% of 1000 expected, got {na}");
        let (c, nc) = edit_script(&script, 0, 7);
        assert_eq!(nc, 0);
        // Zero edits reproduces the script modulo trailing newline.
        assert_eq!(c.trim_end(), script.trim_end());
    }

    #[test]
    fn ddl_edit_keeps_unrelated_cache_entries() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_ddl_edit(400, 10, 0xDD1, None);
        assert!(r.identical, "warm re-check after a DDL edit must equal a cold check");
        assert!(
            r.hits > 0,
            "per-table invalidation must keep entries that only depend on unedited tables"
        );
        assert!(r.misses > 0, "statements touching the edited table must re-analyse");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rows = run(&[150], 20, 20, 3, None);
        let j = to_json(&rows);
        assert!(j.contains("\"statements\": 150"));
        assert!(j.contains("warm_speedup"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
