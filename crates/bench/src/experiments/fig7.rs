//! **Figures 6 & 7 (Example 6)** — the ranking model's configuration
//! sensitivity, plus **Table 8** (the sqlcheck vs DETA feature matrix).

use sqlcheck::rank::{score, ApMetrics, RankWeights};

/// One scored row of the Example 6 reproduction.
#[derive(Debug, Clone)]
pub struct ScoredRow {
    /// AP name.
    pub name: &'static str,
    /// Score under C1.
    pub c1: f64,
    /// Score under C2.
    pub c2: f64,
}

/// Reproduce Example 6 with the exact Fig 7b metric rows.
pub fn example6() -> Vec<ScoredRow> {
    let index_underuse = ApMetrics {
        read_perf: 1.5,
        write_perf: 1.0,
        maintainability: 0.0,
        data_amplification: 1.0,
        data_integrity: false,
        accuracy: false,
    };
    let enumerated_types = ApMetrics {
        read_perf: 1.0,
        write_perf: 11.0,
        maintainability: 2.0,
        data_amplification: 1.5,
        data_integrity: false,
        accuracy: false,
    };
    vec![
        ScoredRow {
            name: "Index Underuse",
            c1: score(&index_underuse, &RankWeights::C1),
            c2: score(&index_underuse, &RankWeights::C2),
        },
        ScoredRow {
            name: "Enumerated Types",
            c1: score(&enumerated_types, &RankWeights::C1),
            c2: score(&enumerated_types, &RankWeights::C2),
        },
    ]
}

/// Render the Example 6 table with the paper's reference scores.
pub fn render_example6() -> String {
    let rows = example6();
    let mut out = String::new();
    out.push_str("Ranking model configurations (Fig 7a):\n");
    out.push_str("  C1 = {Wrp 0.7, Wwp 0.15, Wm 0.05, Wda 0.04, Wdi 0.02, Wa 0.02}\n");
    out.push_str("  C2 = {Wrp 0.4, Wwp 0.4,  Wm 0.1,  Wda 0.04, Wdi 0.02, Wa 0.02}\n\n");
    out.push_str(&format!(
        "{:<20} {:>8} {:>8}   (paper: IU 0.21/0.12, ET 0.175/≈0.47)\n",
        "AP", "C1", "C2"
    ));
    for r in &rows {
        out.push_str(&format!("{:<20} {:>8.3} {:>8.3}\n", r.name, r.c1, r.c2));
    }
    let (iu, et) = (&rows[0], &rows[1]);
    out.push_str(&format!(
        "\nC1 ranks {} first; C2 ranks {} first — the Example 6 crossover.\n",
        if iu.c1 > et.c1 { iu.name } else { et.name },
        if iu.c2 > et.c2 { iu.name } else { et.name },
    ));
    out
}

/// Render Table 8 (static feature matrix from the paper's appendix).
pub fn render_table8() -> String {
    const ROWS: &[(&str, bool, bool)] = &[
        ("Index creation/destruction suggestions", true, true),
        ("Type of index to create based on workload", true, false),
        ("Materialized view creation/destruction suggestions", true, false),
        ("Suggestions tailored to hardware, workload & data distribution", true, false),
        ("Table partitioning suggestions", true, false),
        ("Column type suggestions based on data", false, true),
        ("Query refactoring suggestions", false, true),
        ("Alternate logical schema design suggestions", false, true),
        ("Logical errors that may invalidate data integrity", false, true),
    ];
    let mut out = String::new();
    out.push_str(&format!("{:<64} {:>6} {:>9}\n", "Supported Features", "DETA", "SQLCheck"));
    for (feature, deta, sqlcheck) in ROWS {
        out.push_str(&format!(
            "{:<64} {:>6} {:>9}\n",
            feature,
            if *deta { "yes" } else { "-" },
            if *sqlcheck { "yes" } else { "-" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example6_scores_match_paper() {
        let rows = example6();
        assert!((rows[0].c1 - 0.21).abs() < 1e-9);
        assert!((rows[0].c2 - 0.12).abs() < 1e-9);
        assert!((rows[1].c1 - 0.175).abs() < 1e-3);
        assert!(rows[1].c2 > 0.4 && rows[1].c2 < 0.5);
        // the crossover
        assert!(rows[0].c1 > rows[1].c1);
        assert!(rows[1].c2 > rows[0].c2);
    }

    #[test]
    fn table8_has_nine_feature_rows() {
        let t = render_table8();
        assert_eq!(t.lines().count(), 10);
        assert!(t.contains("Query refactoring suggestions"));
    }
}
