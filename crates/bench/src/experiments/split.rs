//! **Split-phase experiment** — the fused streaming splitter vs the
//! legacy two-pass reference, sequential and chunk-parallel.
//!
//! The split phase is the front door of the whole pipeline: every byte of
//! a workload script passes through it before anything is parsed or
//! detected, and after the parse-once front-end (PR 2) it dominated
//! end-to-end wall clock. This experiment measures it in isolation on the
//! template-heavy workload of the
//! [throughput](crate::experiments::throughput) experiment:
//!
//! * `legacy` — [`split_spanned`]: lex the whole script into a token
//!   buffer, slice it into statements, re-walk each statement to hash
//!   (fingerprints computed per statement from the spans);
//! * `fused` — [`split_stream`]: one streaming pass computing spans,
//!   content hashes, and template fingerprints as the bytes are lexed;
//! * `deduped` — [`split_deduped`]: the pipeline's intake path — a
//!   spans-only boundary scan groups duplicate texts by exact bytes and
//!   the fused lex+hash pass runs once per **unique** text;
//! * `parallel` — [`split_stream_parallel`]: the fused pass over
//!   pre-scanned chunks on scoped worker threads.
//!
//! Every configuration is asserted to produce **identical statements**
//! (spans, content hashes, template fingerprints) before any timing is
//! reported.

use crate::alloc_count::{alloc_count, allocs_per_stmt};
use crate::harness::{sample_of, Sample};
use sqlcheck_parser::splitter::{split_deduped, split_spanned, split_stream, split_stream_parallel};
use sqlcheck_parser::SplitStatement;
use super::throughput::script_for_shape;

/// One measured workload size.
#[derive(Debug, Clone)]
pub struct SplitRow {
    /// Workload shape: `"plain"` (template statements only), `"trigger"`
    /// (~1 in 6 statements is compound trigger/procedure DDL whose
    /// `BEGIN…END` body exercises the block-depth state machine), or
    /// `"skewed"` (one hot template at ~90% plus one giant trigger body).
    pub workload: &'static str,
    /// Statements in the script.
    pub statements: usize,
    /// Unique templates the workload draws from.
    pub templates: usize,
    /// Script size in bytes.
    pub bytes: usize,
    /// Effective threads used by the parallel configuration.
    pub threads: usize,
    /// Threads the caller requested (0 = auto-detect).
    pub requested_threads: usize,
    /// Whether all three configurations emitted identical statements.
    pub identical: bool,
    /// Wall-clock microseconds: legacy two-pass splitter (+ per-statement
    /// fingerprints).
    pub legacy_micros: u128,
    /// Wall-clock microseconds: fused single-pass splitter.
    pub fused_micros: u128,
    /// Wall-clock microseconds: split + byte-level dedup, hashing each
    /// unique text once (the `ContextBuilder::add_script` intake path).
    pub deduped_micros: u128,
    /// Wall-clock microseconds: fused splitter over parallel chunks.
    pub parallel_micros: u128,
    /// Median observation for the legacy configuration (noise context
    /// for the min that the headline numbers report).
    pub legacy_median_micros: u128,
    /// Median observation for the fused configuration.
    pub fused_median_micros: u128,
    /// Median observation for the deduping configuration.
    pub deduped_median_micros: u128,
    /// Median observation for the parallel configuration.
    pub parallel_median_micros: u128,
    /// Relative spread `(max-min)/min` of the fused observations, percent
    /// — the per-row measurement of the host noise the README warns
    /// about.
    pub fused_spread_pct: f64,
    /// Heap allocations per **unique** statement on the parse-once path
    /// (fused split+dedup, then one structural parse per unique text).
    /// `None` when the `count-allocs` feature is compiled out.
    pub allocs_per_stmt: Option<f64>,
}

impl SplitRow {
    fn mb_per_sec(&self, micros: u128) -> f64 {
        if micros == 0 {
            f64::INFINITY
        } else {
            self.bytes as f64 / micros as f64 // bytes/µs == MB/s
        }
    }

    /// Legacy throughput in MB/s.
    pub fn legacy_mbps(&self) -> f64 {
        self.mb_per_sec(self.legacy_micros)
    }

    /// Fused sequential throughput in MB/s.
    pub fn fused_mbps(&self) -> f64 {
        self.mb_per_sec(self.fused_micros)
    }

    /// Parallel throughput in MB/s.
    pub fn parallel_mbps(&self) -> f64 {
        self.mb_per_sec(self.parallel_micros)
    }

    /// Single-threaded speedup of the fused pass over the legacy splitter.
    pub fn fused_speedup(&self) -> f64 {
        self.legacy_micros as f64 / self.fused_micros.max(1) as f64
    }

    /// Single-threaded speedup of the deduping intake path over the
    /// legacy splitter.
    pub fn deduped_speedup(&self) -> f64 {
        self.legacy_micros as f64 / self.deduped_micros.max(1) as f64
    }

    /// Microseconds per statement for the fused pass.
    pub fn fused_us_per_stmt(&self) -> f64 {
        self.fused_micros as f64 / self.statements.max(1) as f64
    }
}

/// Statements of the legacy splitter in the fused output shape, for
/// equivalence comparison.
fn legacy_statements(script: &str) -> Vec<SplitStatement> {
    split_spanned(script)
        .iter()
        .map(|s| SplitStatement {
            span: s.span,
            content_hash: s.content_hash,
            fingerprint: s.fingerprint(script),
        })
        .collect()
}

/// Assert the three configurations agree on `script`; returns the number
/// of statements. Used both by the timed runs (before reporting) and by
/// CI's bench-smoke byte-identity gate.
pub fn assert_equivalence(script: &str, threads: Option<usize>) -> usize {
    let fused = split_stream(script);
    let legacy = legacy_statements(script);
    assert_eq!(fused, legacy, "fused splitter diverged from the legacy reference");
    for t in [2, threads.unwrap_or(4).max(2)] {
        assert_eq!(
            split_stream_parallel(script, t),
            fused,
            "chunk-parallel splitter diverged from sequential at {t} thread(s)"
        );
    }
    for t in [1, threads.unwrap_or(4).max(2)] {
        let d = split_deduped(script, t);
        assert_eq!(d.occurrences.len(), fused.len(), "deduped occurrence count");
        for ((slot, span), s) in d.occurrences.iter().zip(&fused) {
            assert_eq!(*span, s.span, "deduped occurrence span");
            let u = &d.uniques[*slot as usize];
            assert_eq!(
                (u.content_hash, u.fingerprint),
                (s.content_hash, s.fingerprint),
                "deduped unique hashes"
            );
        }
    }
    fused.len()
}

/// Repetitions per measurement; the minimum observation is reported
/// (noise-robust: preemption and hypervisor steal only ever add time —
/// 9 reps because steal windows on the shared VM are long enough that 5
/// back-to-back runs often all land inside one). The median and spread
/// of the same observations are carried alongside as noise context.
const REPS: usize = 9;

fn measure<T>(f: impl FnMut() -> T) -> Sample {
    sample_of(REPS, f)
}

/// Ceiling for `allocs_per_stmt` on the plain workload, asserted whenever
/// counting is compiled in (the CI regression gate). The Box/Vec AST
/// baseline sat at ~60–190 allocations per unique statement; the
/// interned-token + arena path measures ~10–20, so 32 keeps ≥3× headroom
/// over the measured value while still failing loudly if per-node heap
/// traffic creeps back in.
pub const PLAIN_ALLOCS_PER_STMT_CEILING: f64 = 32.0;

/// Allocations per unique statement on the parse-once path: fused
/// split+dedup, then one structural parse per unique text — the intake
/// work `ContextBuilder::add_script` performs per unique statement.
/// `None` when the `count-allocs` feature is compiled out.
fn measure_allocs_per_stmt(script: &str) -> Option<f64> {
    let d = split_deduped(script, 1);
    // Warm thread-local parse state so one-time setup is not billed.
    if let Some(u) = d.uniques.first() {
        std::hint::black_box(sqlcheck_parser::parse_one(&script[u.span.start..u.span.end]));
    }
    let before = alloc_count();
    for u in &d.uniques {
        std::hint::black_box(sqlcheck_parser::parse_one(&script[u.span.start..u.span.end]));
    }
    allocs_per_stmt(before, alloc_count(), d.uniques.len())
}

/// Run the experiment at one workload size and shape.
pub fn run_one(
    workload: &'static str,
    statements: usize,
    templates: usize,
    seed: u64,
    threads: Option<usize>,
) -> SplitRow {
    let script = script_for_shape(workload, statements, templates, seed);
    let par_threads = threads
        .or_else(|| std::thread::available_parallelism().map(|n| n.get()).ok())
        .unwrap_or(1);

    let stmt_count = assert_equivalence(&script, threads);

    let legacy = measure(|| legacy_statements(&script));
    let fused = measure(|| split_stream(&script));
    let deduped = measure(|| split_deduped(&script, 1));
    let parallel = measure(|| split_stream_parallel(&script, par_threads));
    let allocs = measure_allocs_per_stmt(&script);
    if workload == "plain" {
        if let Some(a) = allocs {
            assert!(
                a <= PLAIN_ALLOCS_PER_STMT_CEILING,
                "allocs_per_stmt regression: {a:.1} > ceiling {PLAIN_ALLOCS_PER_STMT_CEILING}"
            );
        }
    }

    SplitRow {
        workload,
        statements: stmt_count,
        templates,
        bytes: script.len(),
        threads: par_threads,
        requested_threads: threads.unwrap_or(0),
        identical: true, // asserted above; a divergence panics before this
        legacy_micros: legacy.min_micros,
        fused_micros: fused.min_micros,
        deduped_micros: deduped.min_micros,
        parallel_micros: parallel.min_micros,
        legacy_median_micros: legacy.median_micros,
        fused_median_micros: fused.median_micros,
        deduped_median_micros: deduped.median_micros,
        parallel_median_micros: parallel.median_micros,
        fused_spread_pct: fused.spread_pct(),
        allocs_per_stmt: allocs,
    }
}

/// Run the split configurations over an externally supplied script (the
/// `expdriver splitfile FILE` path — typically a memory-mapped real dump
/// via [`sqlcheck::input::read_script`]). Same equivalence gate and
/// measurements as [`run_one`]; `templates` is reported as 0 (unknown).
pub fn run_script(script: &str, threads: Option<usize>) -> SplitRow {
    let par_threads = threads
        .or_else(|| std::thread::available_parallelism().map(|n| n.get()).ok())
        .unwrap_or(1);
    let stmt_count = assert_equivalence(script, threads);
    let legacy = measure(|| legacy_statements(script));
    let fused = measure(|| split_stream(script));
    let deduped = measure(|| split_deduped(script, 1));
    let parallel = measure(|| split_stream_parallel(script, par_threads));
    let allocs = measure_allocs_per_stmt(script);
    SplitRow {
        workload: "file",
        statements: stmt_count,
        templates: 0,
        bytes: script.len(),
        threads: par_threads,
        requested_threads: threads.unwrap_or(0),
        identical: true,
        legacy_micros: legacy.min_micros,
        fused_micros: fused.min_micros,
        deduped_micros: deduped.min_micros,
        parallel_micros: parallel.min_micros,
        legacy_median_micros: legacy.median_micros,
        fused_median_micros: fused.median_micros,
        deduped_median_micros: deduped.median_micros,
        parallel_median_micros: parallel.median_micros,
        fused_spread_pct: fused.spread_pct(),
        allocs_per_stmt: allocs,
    }
}

/// Run the experiment over several workload sizes, in both the plain and
/// the trigger-heavy shape — the trigger rows track the block-tracking
/// overhead (expected ~free on plain workloads) and put compound
/// statements through the same byte-identity gate.
pub fn run(sizes: &[usize], templates: usize, seed: u64, threads: Option<usize>) -> Vec<SplitRow> {
    let mut rows = Vec::with_capacity(sizes.len() * 2);
    // All plain rows first: they are the cross-PR regression reference,
    // so they must run under the same process conditions (allocator
    // state, touched memory) as before the trigger shape existed.
    for workload in ["plain", "trigger", "skewed"] {
        for &n in sizes {
            rows.push(run_one(workload, n, templates, seed, threads));
        }
    }
    rows
}

/// Render rows as an aligned console table.
pub fn render(rows: &[SplitRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8} {:>9} {:>10} {:>11} {:>10} {:>9} {:>7} {:>10} {:>10} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9}\n",
        "workload", "stmts", "bytes", "legacy_us", "fused_us", "fused_med", "spread%", "dedup_us",
        "par_us", "leg_MBs", "fus_MBs", "fused_x", "dedup_x", "allocs", "identical"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>9} {:>10} {:>11} {:>10} {:>9} {:>6.0}% {:>10} {:>10} {:>8.1} {:>8.1} {:>6.1}x {:>6.1}x {:>7} {:>9}\n",
            r.workload,
            r.statements,
            r.bytes,
            r.legacy_micros,
            r.fused_micros,
            r.fused_median_micros,
            r.fused_spread_pct,
            r.deduped_micros,
            r.parallel_micros,
            r.legacy_mbps(),
            r.fused_mbps(),
            r.fused_speedup(),
            r.deduped_speedup(),
            r.allocs_per_stmt.map(|a| format!("{a:.1}")).unwrap_or_else(|| "-".into()),
            r.identical,
        ));
    }
    out
}

/// Render rows as a JSON document (written to `BENCH_split.json`).
pub fn to_json(rows: &[SplitRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"fused_split_phase\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"statements\": {}, \"templates\": {}, \"bytes\": {}, \
             \"threads\": {}, \"requested_threads\": {}, \
             \"identical\": {}, \"legacy_micros\": {}, \"fused_micros\": {}, \
             \"deduped_micros\": {}, \"parallel_micros\": {}, \
             \"legacy_median_micros\": {}, \"fused_median_micros\": {}, \
             \"deduped_median_micros\": {}, \"parallel_median_micros\": {}, \
             \"fused_spread_pct\": {:.1}, \"allocs_per_stmt\": {}, \
             \"legacy_mb_per_s\": {:.1}, \
             \"fused_mb_per_s\": {:.1}, \"parallel_mb_per_s\": {:.1}, \
             \"fused_us_per_stmt\": {:.3}, \"fused_speedup\": {:.2}, \
             \"deduped_speedup\": {:.2}}}{}\n",
            r.workload,
            r.statements,
            r.templates,
            r.bytes,
            r.threads,
            r.requested_threads,
            r.identical,
            r.legacy_micros,
            r.fused_micros,
            r.deduped_micros,
            r.parallel_micros,
            r.legacy_median_micros,
            r.fused_median_micros,
            r.deduped_median_micros,
            r.parallel_median_micros,
            r.fused_spread_pct,
            r.allocs_per_stmt.map(|a| format!("{a:.1}")).unwrap_or_else(|| "null".into()),
            r.legacy_mbps(),
            r.fused_mbps(),
            r.parallel_mbps(),
            r.fused_us_per_stmt(),
            r.fused_speedup(),
            r.deduped_speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configurations_agree_at_small_scale() {
        let r = run_one("plain", 500, 50, 0x5117, None);
        assert!(r.identical);
        assert_eq!(r.statements, 500);
        assert!(r.bytes > 0);
    }

    #[test]
    fn trigger_workload_agrees_and_keeps_compound_statements_whole() {
        // Every 6th statement is compound DDL; the count staying exact
        // proves body semicolons never split, and run_one's internal
        // assert_equivalence pins fused/legacy/parallel/deduped identity.
        let r = run_one("trigger", 480, 30, 0x5117, None);
        assert!(r.identical);
        assert_eq!(r.statements, 480);
    }

    #[test]
    fn skewed_workload_agrees_including_giant_statement() {
        let r = run_one("skewed", 300, 30, 0x5117, None);
        assert!(r.identical);
        assert_eq!(r.statements, 300, "the giant body must stay one statement");
    }

    #[test]
    fn equivalence_holds_on_semicolon_decoys() {
        // The workload generator emits clean statements; stress the
        // equivalence assertion with the constructs that hide `;`.
        let nasty = "SELECT 'a;b'; /* ;; /* ;; */ */ SELECT $t$;$t$; \
                     SELECT [c;d] FROM \"e;f\" -- tail;\n; SELECT 2";
        let n = assert_equivalence(nasty, Some(3));
        assert_eq!(n, 4);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = run(&[120], 20, 3, None);
        let j = to_json(&rows);
        assert!(j.contains("\"statements\": 120"));
        assert!(j.contains("fused_speedup"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
