//! **Corpus acceptance matrix** — the four real-workload corpora driven
//! end-to-end through [`SqlCheck::check_workload`], recording how much of
//! each corpus the total parser kept structurally shaped.
//!
//! The pipeline is total: it never refuses input, it degrades. That
//! contract is only trustworthy if the degradation rate on *realistic*
//! SQL is measured, not assumed. Each row of the matrix runs one corpus
//! loader (`crates/workload`) through the full batch pipeline and
//! records:
//!
//! * **parse coverage** — the fraction of statements whose parse kept
//!   structural shape (did not fall back to `Statement::Other`);
//! * **degradation diagnostics by kind** — every `DiagKind` event the
//!   front-end emitted, counted once per unique statement text;
//! * **rule failures** — detection units isolated after a panic (must be
//!   zero on every corpus: the built-in rules never panic);
//! * detections and MB/s, so the acceptance matrix doubles as a coarse
//!   end-to-end throughput record.
//!
//! The per-corpus coverage floors ([`coverage_floor`]) are CI-gated via
//! `expdriver corpus --quick`: a parser or splitter change that silently
//! degrades statements on real-shaped SQL fails the build instead of
//! shipping as a quiet recall loss.

use sqlcheck::{BatchOptions, DiagKind, Dialect, SqlCheck, WorkloadOutcome};
use sqlcheck_minidb::database::Database;
use sqlcheck_workload::dialects::DialectCorpusConfig;
use sqlcheck_workload::github::CorpusConfig;
use sqlcheck_workload::globaleaks::Scale;
use sqlcheck_workload::{dialects, django, github, globaleaks, kaggle};
use std::time::Instant;

/// One corpus of the acceptance matrix.
#[derive(Debug, Clone)]
pub struct CorpusRow {
    /// Corpus name: `django`, `github`, `globaleaks`, `kaggle`,
    /// `mysqldump`, or `plpgsql`.
    pub corpus: &'static str,
    /// The dialect the corpus was checked under.
    pub dialect: Dialect,
    /// Statements checked (occurrences, not uniques).
    pub statements: usize,
    /// Unique statement texts.
    pub unique_texts: usize,
    /// Script bytes fed through the pipeline.
    pub script_bytes: usize,
    /// Detections reported (ranked list length).
    pub detections: usize,
    /// Statements whose parse degraded to `Other`.
    pub degraded_statements: usize,
    /// Unique texts whose parse degraded to `Other`.
    pub degraded_uniques: usize,
    /// Diagnostics per kind (indexes match [`DiagKind::ALL`]).
    pub diag_counts: [usize; DiagKind::COUNT],
    /// Detection units isolated after a panic (expected 0).
    pub rule_failures: usize,
    /// End-to-end wall-clock microseconds (front-end + detection +
    /// ranking + fixes), summed over the corpus' checks.
    pub micros: u128,
}

impl CorpusRow {
    /// Fraction of statements that kept structural shape.
    pub fn parse_coverage(&self) -> f64 {
        if self.statements == 0 {
            1.0
        } else {
            1.0 - self.degraded_statements as f64 / self.statements as f64
        }
    }

    /// End-to-end megabytes of SQL per second.
    pub fn mb_per_sec(&self) -> f64 {
        if self.micros == 0 {
            0.0
        } else {
            self.script_bytes as f64 / self.micros as f64
        }
    }
}

/// Minimum acceptable parse coverage per corpus. The generated corpora
/// are dominated by well-formed DML/DDL, so coverage sits near 1.0; the
/// floors leave headroom for corpus-generator drift while still catching
/// any real regression (a broken statement splitter or a parser fallback
/// regression shows up as a double-digit drop).
pub fn coverage_floor(corpus: &str) -> f64 {
    match corpus {
        // The GitHub corpus deliberately mixes in malformed and
        // exotic-dialect statements; its floor is lower by design.
        "github" => 0.80,
        // The dialect-tagged corpora (`mysqldump`, `plpgsql`) are pure
        // idiomatic SQL for their dialect — anything under 0.95 means a
        // dialect capability regressed, not that the corpus got harder.
        _ => 0.95,
    }
}

/// Fold one `check_workload` outcome into a row.
fn absorb(row: &mut CorpusRow, script: &str, w: &WorkloadOutcome) {
    row.statements += w.stats.statements;
    row.unique_texts += w.stats.unique_texts;
    row.script_bytes += script.len();
    row.detections += w.outcome.report.detections.len();
    row.degraded_statements += w.stats.degraded_statements;
    row.degraded_uniques += w.stats.degraded_uniques;
    for (i, c) in w.stats.diag_counts.iter().enumerate() {
        row.diag_counts[i] += c;
    }
    row.rule_failures += w.stats.rule_failures;
}

fn empty_row(corpus: &'static str) -> CorpusRow {
    empty_dialect_row(corpus, Dialect::Generic)
}

fn empty_dialect_row(corpus: &'static str, dialect: Dialect) -> CorpusRow {
    CorpusRow {
        corpus,
        dialect,
        statements: 0,
        unique_texts: 0,
        script_bytes: 0,
        detections: 0,
        degraded_statements: 0,
        degraded_uniques: 0,
        diag_counts: [0; DiagKind::COUNT],
        rule_failures: 0,
        micros: 0,
    }
}

/// Render a minidb database's live schema as a `CREATE TABLE` script, so
/// a data-analysis-only corpus (Kaggle ships databases, not queries) still
/// exercises the parser + schema-fold front door end to end.
fn schema_script(db: &Database) -> String {
    use sqlcheck_minidb::value::DataType as DT;
    let mut out = String::new();
    for table in db.tables() {
        let mut cols: Vec<String> = table
            .schema
            .columns
            .iter()
            .map(|c| {
                let ty = match c.dtype {
                    DT::Int => "INTEGER",
                    DT::Float => "FLOAT",
                    DT::Text => "TEXT",
                    DT::Bool => "BOOLEAN",
                    DT::Timestamp => {
                        if c.with_timezone {
                            "TIMESTAMPTZ"
                        } else {
                            "TIMESTAMP"
                        }
                    }
                };
                let nn = if c.not_null { " NOT NULL" } else { "" };
                format!("{} {}{}", c.name, ty, nn)
            })
            .collect();
        if !table.schema.primary_key.is_empty() {
            cols.push(format!("PRIMARY KEY ({})", table.schema.primary_key.join(", ")));
        }
        for fk in &table.schema.foreign_keys {
            cols.push(format!(
                "FOREIGN KEY ({}) REFERENCES {} ({})",
                fk.columns.join(", "),
                fk.ref_table,
                fk.ref_columns.join(", ")
            ));
        }
        out.push_str(&format!("CREATE TABLE {} ({});\n", table.schema.name, cols.join(", ")));
    }
    out
}

/// Check one script (optionally with a database attached), timed. The
/// row's dialect drives the front door.
fn check_one(row: &mut CorpusRow, script: &str, db: Option<Database>, threads: Option<usize>) {
    let mut tool = SqlCheck::new();
    if let Some(db) = db {
        tool = tool.with_database(db);
    }
    let opts = BatchOptions { threads, dialect: row.dialect, ..BatchOptions::default() };
    let t = Instant::now();
    let w = tool.check_workload(script, &opts);
    row.micros += t.elapsed().as_micros();
    absorb(row, script, &w);
}

/// Run the acceptance matrix. `quick` shrinks the GitHub corpus and caps
/// the Kaggle database count for CI smoke runs; coverage floors apply at
/// every scale.
pub fn run(quick: bool, threads: Option<usize>) -> Vec<CorpusRow> {
    let mut rows = Vec::with_capacity(4);

    // Django: the 15 Table 7 applications' SQL traces, one check per app
    // (each trace is its own workload, like the paper's per-app runs).
    let mut dj = empty_row("django");
    for app in django::APPS {
        let script = django::sql_trace(app);
        check_one(&mut dj, &script, Some(django::database(app)), threads);
    }
    rows.push(dj);

    // GitHub: the synthesized Table 2/3 corpus, one script per repository.
    let mut gh = empty_row("github");
    let cfg = if quick {
        CorpusConfig::small()
    } else {
        CorpusConfig { repositories: 400, statements_per_repo: 124, seed: 0x9178B }
    };
    for repo in github::generate_corpus(cfg) {
        let script = repo.script();
        check_one(&mut gh, &script, None, threads);
    }
    rows.push(gh);

    // GlobaLeaks: the Fig 3 case-study trace with its AP-bearing database
    // attached, so the data-analysis phase runs too.
    let mut gl = empty_row("globaleaks");
    let script = globaleaks::sql_trace();
    check_one(&mut gl, &script, Some(globaleaks::build_ap_database(Scale::tiny())), threads);
    rows.push(gl);

    // Kaggle: data-analysis-only databases; the schema script synthesized
    // from each database drives the parser + catalog front door.
    let mut kg = empty_row("kaggle");
    let specs = if quick { &kaggle::SPECS[..8] } else { kaggle::SPECS };
    for spec in specs {
        let db = kaggle::build(spec, 0xCA661E);
        let script = schema_script(&db);
        check_one(&mut kg, &script, Some(db), threads);
    }
    rows.push(kg);

    // Dialect-tagged corpora: idiomatic scripts that would collide with
    // the tolerant-union front door (MySQL `$$` delimiters, `#`
    // comments) or forgo parallel splitting (Postgres scripts containing
    // the word DELIMITER) — each checked under its own dialect, with the
    // same coverage gate as the clean corpora.
    let dcfg = if quick { DialectCorpusConfig::small() } else { DialectCorpusConfig::default() };
    let mut my = empty_dialect_row("mysqldump", Dialect::MySql);
    check_one(&mut my, &dialects::mysqldump_script(dcfg), None, threads);
    rows.push(my);

    let mut pg = empty_dialect_row("plpgsql", Dialect::Postgres);
    check_one(&mut pg, &dialects::plpgsql_script(dcfg), None, threads);
    rows.push(pg);

    rows
}

/// Render rows as an aligned console table.
pub fn render(rows: &[CorpusRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>12} {:>9} {:>8} {:>8} {:>9} {:>6} {:>9} {:>9} {:>6} {:>8}\n",
        "corpus", "dialect", "stmts", "uniques", "coverage", "degr", "detect", "MB/s", "fails",
        "floor"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>12} {:>9} {:>8} {:>8} {:>9.4} {:>6} {:>9} {:>9.2} {:>6} {:>8.2}\n",
            r.corpus,
            r.dialect,
            r.statements,
            r.unique_texts,
            r.parse_coverage(),
            r.degraded_statements,
            r.detections,
            r.mb_per_sec(),
            r.rule_failures,
            coverage_floor(r.corpus),
        ));
    }
    for r in rows {
        let kinds: Vec<String> = DiagKind::ALL
            .iter()
            .filter(|k| r.diag_counts[k.index()] > 0)
            .map(|k| format!("{} {}", k.name(), r.diag_counts[k.index()]))
            .collect();
        if !kinds.is_empty() {
            out.push_str(&format!("{:>12}: diagnostics: {}\n", r.corpus, kinds.join(", ")));
        }
    }
    out
}

/// Assert the CI gates: per-corpus parse-coverage floors and zero
/// isolated rule failures. Panics (failing the driver) on violation.
pub fn assert_floors(rows: &[CorpusRow]) {
    for r in rows {
        let floor = coverage_floor(r.corpus);
        assert!(
            r.parse_coverage() >= floor,
            "{}: parse coverage {:.4} fell below the floor {:.2}",
            r.corpus,
            r.parse_coverage(),
            floor
        );
        assert_eq!(
            r.rule_failures, 0,
            "{}: built-in rules must never panic, {} unit(s) were isolated",
            r.corpus, r.rule_failures
        );
    }
}

/// Render rows as a JSON document (written to `BENCH_corpus.json`).
pub fn to_json(rows: &[CorpusRow]) -> String {
    let mut out =
        String::from("{\n  \"experiment\": \"corpus_acceptance_matrix\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let diags: Vec<String> = DiagKind::ALL
            .iter()
            .map(|k| format!("\"{}\": {}", k.name(), r.diag_counts[k.index()]))
            .collect();
        out.push_str(&format!(
            "    {{\"corpus\": \"{}\", \"dialect\": \"{}\", \"statements\": {}, \
             \"unique_texts\": {}, \
             \"script_bytes\": {}, \"detections\": {}, \
             \"degraded_statements\": {}, \"degraded_uniques\": {}, \
             \"parse_coverage\": {:.6}, \"coverage_floor\": {:.2}, \
             \"rule_failures\": {}, \"micros\": {}, \"mb_per_sec\": {:.3}, \
             \"diagnostics\": {{{}}}}}{}\n",
            r.corpus,
            r.dialect,
            r.statements,
            r.unique_texts,
            r.script_bytes,
            r.detections,
            r.degraded_statements,
            r.degraded_uniques,
            r.parse_coverage(),
            coverage_floor(r.corpus),
            r.rule_failures,
            r.micros,
            r.mb_per_sec(),
            diags.join(", "),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_meets_floors() {
        let rows = run(true, Some(2));
        assert_eq!(rows.len(), 6);
        assert_floors(&rows);
        for r in &rows {
            assert!(r.statements > 0, "{}: corpus must not be empty", r.corpus);
        }
        let json = to_json(&rows);
        assert!(json.contains("\"corpus\": \"django\""));
        assert!(json.contains("\"corpus\": \"mysqldump\""));
        assert!(json.contains("\"dialect\": \"postgres\""));
        assert!(json.contains("parse_coverage"));
        assert!(!render(&rows).is_empty());
    }

    #[test]
    fn dialect_rows_hold_the_floor_without_degradation_noise() {
        let rows = run(true, Some(2));
        for r in rows.iter().filter(|r| matches!(r.corpus, "mysqldump" | "plpgsql")) {
            assert!(
                r.parse_coverage() >= 0.95,
                "{}: coverage {:.4}",
                r.corpus,
                r.parse_coverage()
            );
            // A Postgres script must keep chunk-parallel splitting: no
            // delimiter-fallback diagnostic may appear.
            if r.corpus == "plpgsql" {
                assert_eq!(
                    r.diag_counts[DiagKind::DelimiterFallbackSequential.index()],
                    0,
                    "plpgsql corpus must not trip the DELIMITER fallback"
                );
            }
        }
    }
}
