//! **Figure 8** — per-AP performance impact on different SQL statement
//! types (§8.2). Nine panels:
//!
//! * 8a — Index Overuse: UPDATE with redundant indexes (~10× slower);
//! * 8b — Index Underuse: grouped aggregate, index-assisted vs hash
//!   (~1.3× faster with the index);
//! * 8c — Index Underuse *false positive*: scan with a low-cardinality
//!   predicate — the index does **not** help (paper: 3× slower; in an
//!   in-memory row store the penalty shrinks to ≈ parity, see
//!   EXPERIMENTS.md);
//! * 8d/8e — No Foreign Key: UPDATE / SELECT with vs without the FK —
//!   not prominent, because FK validation probes the referenced PK index;
//! * 8f — the 142× panel: deleting referenced rows requires finding
//!   referencing rows; an index on the referencing column makes that a
//!   probe instead of a scan;
//! * 8g/8h/8i — Enumerated Types: UPDATE (constraint drop + re-validate,
//!   >1000×), INSERT of a new permitted value, SELECT (≈1×).

use sqlcheck_minidb::engine::Timings;
use sqlcheck_minidb::prelude::*;

/// Scale for the Fig 8 micro-databases.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Scale {
    /// Rows in the experiment tables.
    pub rows: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for Fig8Scale {
    fn default() -> Self {
        Fig8Scale { rows: 60_000, seed: 0xF18 }
    }
}

impl Fig8Scale {
    /// Test-sized scale.
    pub fn tiny() -> Self {
        Fig8Scale { rows: 2_000, seed: 5 }
    }
}

/// Run all nine panels.
pub fn run(scale: Fig8Scale, runs: usize) -> Timings {
    let mut t = Timings::default();
    index_overuse_update(scale, runs, &mut t);
    index_underuse_grouped(scale, runs, &mut t);
    index_underuse_scan(scale, runs, &mut t);
    foreign_key_panels(scale, runs, &mut t);
    enumerated_types_panels(scale, runs, &mut t);
    t
}

fn base_table(rows: usize, seed: u64, extra_indexes: usize) -> Table {
    let mut table = Table::new(
        TableSchema::new("Tenant")
            .column(Column::new("Tenant_ID", DataType::Int).not_null())
            .column(Column::new("Zone_ID", DataType::Text))
            .column(Column::new("Active", DataType::Bool))
            .column(Column::new("Score", DataType::Int))
            .primary_key(&["Tenant_ID"]),
    );
    let mut rng = SmallRng::new(seed);
    for i in 0..rows {
        table
            .insert(vec![
                Value::Int(i as i64),
                Value::text(format!("Z{}", rng.gen_range(10))),
                Value::Bool(i % 2 == 0),
                Value::Int(rng.gen_range(1_000) as i64),
            ])
            .unwrap();
    }
    for k in 0..extra_indexes {
        // All cover the updated column so each one pays maintenance.
        let cols: Vec<&str> = match k % 3 {
            0 => vec!["Zone_ID"],
            1 => vec!["Zone_ID", "Active"],
            _ => vec!["Zone_ID", "Score"],
        };
        table.create_index(format!("idx_extra_{k}"), &cols, false).unwrap();
    }
    table
}

/// 8a — UPDATE cost with 5 redundant indexes vs none beyond the PK. Each
/// run flips the zone value back and forth so no cloning happens inside
/// the timed region.
fn index_overuse_update(scale: Fig8Scale, runs: usize, t: &mut Timings) {
    let mut with_ap = base_table(scale.rows, scale.seed, 5);
    let mut without_ap = base_table(scale.rows, scale.seed, 0);
    fn flip(table: &mut Table, from: &str, to: &str) -> usize {
        let victims: Vec<RowId> = table
            .scan()
            .filter(|(_, r)| matches!(&r[1], Value::Text(z) if z == from))
            .map(|(rid, _)| rid)
            .collect();
        let n = victims.len();
        for rid in victims {
            let mut row = table.get(rid).unwrap().clone();
            row[1] = Value::text(to);
            table.update_row(rid, row).unwrap();
        }
        n
    }
    let mut odd_a = false;
    let mut odd_b = false;
    t.measure(
        "Fig 8a  Index Overuse: Update (5 idx vs 0)",
        runs,
        || {
            odd_a = !odd_a;
            let (f, to) = if odd_a { ("Z3", "Z3b") } else { ("Z3b", "Z3") };
            std::hint::black_box(flip(&mut with_ap, f, to))
        },
        || {
            odd_b = !odd_b;
            let (f, to) = if odd_b { ("Z3", "Z3b") } else { ("Z3b", "Z3") };
            std::hint::black_box(flip(&mut without_ap, f, to))
        },
    );
}

/// 8b — grouped aggregate: hash aggregation (AP: no index) vs
/// index-assisted sorted aggregation.
fn index_underuse_grouped(scale: Fig8Scale, runs: usize, t: &mut Timings) {
    let mut table = base_table(scale.rows, scale.seed, 0);
    table.create_index("idx_zone", &["Zone_ID"], false).unwrap();
    t.measure(
        "Fig 8b  Index Underuse: Grouped Aggregate",
        runs,
        || std::hint::black_box(hash_group_aggregate(&table, 1, 3, AggFunc::Sum)),
        || std::hint::black_box(sorted_group_aggregate(&table, "idx_zone", 3, AggFunc::Sum)),
    );
}

/// 8c — scan with a low-cardinality predicate: the "fix" (an index on
/// `Active`) is measured against the plain scan. The paper observes the
/// indexed plan LOSING 3×; sqlcheck's data rule uses exactly this
/// cardinality signal to suppress the Index Underuse detection.
fn index_underuse_scan(scale: Fig8Scale, runs: usize, t: &mut Timings) {
    let mut indexed = base_table(scale.rows, scale.seed, 0);
    indexed.create_index("idx_active", &["Active"], false).unwrap();
    let plain = base_table(scale.rows, scale.seed, 0);
    let pred = PExpr::col_eq(2, Value::Bool(true));
    // NOTE the inverted orientation: "AP present" = table scan (no index),
    // "AP fixed" = the index the naive rule would have you build.
    t.measure(
        "Fig 8c  Index Underuse FP: Scan with low-cardinality predicate",
        runs,
        || std::hint::black_box(seq_scan_count(&plain, &pred)),
        || {
            std::hint::black_box(
                index_scan_eq(&indexed, "idx_active", &Value::Bool(true), None).len(),
            )
        },
    );
}

fn fk_database(scale: Fig8Scale, declare_fk: bool, index_fk_col: bool) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new("Tenant")
            .column(Column::new("Tenant_ID", DataType::Int).not_null())
            .column(Column::new("Zone_ID", DataType::Text))
            .primary_key(&["Tenant_ID"]),
    )
    .unwrap();
    let mut q = TableSchema::new("Questionnaire")
        .column(Column::new("Q_ID", DataType::Int).not_null())
        .column(Column::new("Tenant_ID", DataType::Int))
        .column(Column::new("Name", DataType::Text))
        .primary_key(&["Q_ID"]);
    if declare_fk {
        q = q.foreign_key(ForeignKey {
            name: "fk_q_tenant".into(),
            columns: vec!["Tenant_ID".into()],
            ref_table: "Tenant".into(),
            ref_columns: vec!["Tenant_ID".into()],
            on_delete_cascade: true,
        });
    }
    db.create_table(q).unwrap();
    // Few tenants, many referencing rows: the referencing-side scan is
    // the dominant cost, as in the paper's 142x panel.
    let tenants = (scale.rows / 20).max(10);
    for i in 0..tenants {
        db.insert("Tenant", vec![Value::Int(i as i64), Value::text(format!("Z{}", i % 10))])
            .unwrap();
    }
    for i in 0..scale.rows {
        db.insert(
            "Questionnaire",
            vec![
                Value::Int(i as i64),
                Value::Int((i % tenants) as i64),
                Value::text(format!("Q{i}")),
            ],
        )
        .unwrap();
    }
    if index_fk_col {
        db.table_mut("Questionnaire")
            .unwrap()
            .create_index("idx_q_tenant", &["Tenant_ID"], false)
            .unwrap();
    }
    db
}

/// 8d/8e/8f — the three No-Foreign-Key panels.
fn foreign_key_panels(scale: Fig8Scale, runs: usize, t: &mut Timings) {
    let no_fk = fk_database(scale, false, false);
    let with_fk = fk_database(scale, true, false);
    let with_fk_idx = fk_database(scale, true, true);

    // 8d: UPDATE re-pointing a questionnaire at another tenant. With the
    // FK, validation probes the Tenant PK index — cheap either way. Each
    // run assigns a different (valid) tenant so no cloning is needed.
    let mut no_fk_d = no_fk.clone();
    let mut with_fk_d = with_fk.clone();
    let mut tick_a = 0i64;
    let mut tick_b = 0i64;
    t.measure(
        "Fig 8d  Foreign Key: Update (AP = no FK)",
        runs,
        || {
            tick_a += 1;
            std::hint::black_box(
                no_fk_d
                    .update_where(
                        "Questionnaire",
                        &PExpr::col_eq(0, Value::Int(17)),
                        &[(1, Value::Int(tick_a % 3))],
                    )
                    .unwrap(),
            )
        },
        || {
            tick_b += 1;
            std::hint::black_box(
                with_fk_d
                    .update_where(
                        "Questionnaire",
                        &PExpr::col_eq(0, Value::Int(17)),
                        &[(1, Value::Int(tick_b % 3))],
                    )
                    .unwrap(),
            )
        },
    );

    // 8e: SELECT joining the two tables — identical plan either way.
    let join = |db: &Database| {
        let q = db.table("Questionnaire").unwrap();
        let te = db.table("Tenant").unwrap();
        hash_join(q, 1, te, 0).len()
    };
    t.measure(
        "Fig 8e  Foreign Key: Select (AP = no FK)",
        runs,
        || std::hint::black_box(join(&no_fk)),
        || std::hint::black_box(join(&with_fk)),
    );

    // 8f: the paper: "An index explicitly constructed by the user
    // accelerates the UPDATE operation by 142x". Updating questionnaires
    // of one tenant requires locating them by Tenant_ID — a full scan
    // without the index, a probe with it. Both sides then pay the same
    // per-row update cost.
    let mut scan_side = with_fk.clone();
    let mut probe_side = with_fk_idx.clone();
    let mut tick_f_a = 0i64;
    let mut tick_f_b = 0i64;
    fn update_tenant_rows(db: &mut Database, tenant: i64, tag: i64, use_index: bool) -> usize {
        let q = db.table("Questionnaire").unwrap();
        let rids: Vec<RowId> = if use_index {
            q.index("idx_q_tenant")
                .unwrap()
                .lookup_value(&Value::Int(tenant))
                .to_vec()
        } else {
            q.scan()
                .filter(|(_, r)| r[1] == Value::Int(tenant))
                .map(|(rid, _)| rid)
                .collect()
        };
        let n = rids.len();
        let q = db.table_mut("Questionnaire").unwrap();
        for rid in rids {
            let mut row = q.get(rid).unwrap().clone();
            row[2] = Value::text(format!("renamed-{tag}"));
            q.update_row(rid, row).unwrap();
        }
        n
    }
    t.measure(
        "Fig 8f  Foreign Key: Update with Index (referencing-side probe)",
        runs,
        || {
            tick_f_a += 1;
            std::hint::black_box(update_tenant_rows(&mut scan_side, 5, tick_f_a, false))
        },
        || {
            tick_f_b += 1;
            std::hint::black_box(update_tenant_rows(&mut probe_side, 5, tick_f_b, true))
        },
    );
}

fn enum_databases(scale: Fig8Scale) -> (Database, Database) {
    // AP variant: Users.Role is a CHECK-IN constrained string.
    let mut ap = Database::new();
    ap.create_table(
        TableSchema::new("User")
            .column(Column::new("User_ID", DataType::Int).not_null())
            .column(Column::new("Role", DataType::Text))
            .primary_key(&["User_ID"])
            .check(Check::InList {
                name: "User_Role_Check".into(),
                column: "Role".into(),
                values: vec![Value::text("R1"), Value::text("R2"), Value::text("R3")],
            }),
    )
    .unwrap();
    for i in 0..scale.rows {
        ap.insert("User", vec![Value::Int(i as i64), Value::text(format!("R{}", i % 3 + 1))])
            .unwrap();
    }
    // Fixed variant: Role lookup table, integer FK in User (Fig 5).
    let mut fixed = Database::new();
    fixed
        .create_table(
            TableSchema::new("Role")
                .column(Column::new("Role_ID", DataType::Int).not_null())
                .column(Column::new("Role_Name", DataType::Text).not_null())
                .primary_key(&["Role_ID"]),
        )
        .unwrap();
    for r in 1..=3i64 {
        fixed
            .insert("Role", vec![Value::Int(r), Value::text(format!("R{r}"))])
            .unwrap();
    }
    fixed
        .create_table(
            TableSchema::new("User")
                .column(Column::new("User_ID", DataType::Int).not_null())
                .column(Column::new("Role", DataType::Int))
                .primary_key(&["User_ID"])
                .foreign_key(ForeignKey {
                    name: "fk_user_role".into(),
                    columns: vec!["Role".into()],
                    ref_table: "Role".into(),
                    ref_columns: vec!["Role_ID".into()],
                    on_delete_cascade: false,
                }),
        )
        .unwrap();
    for i in 0..scale.rows {
        fixed
            .insert("User", vec![Value::Int(i as i64), Value::Int(i as i64 % 3 + 1)])
            .unwrap();
    }
    // The lookup-table design indexes the FK column so referential
    // maintenance (does any user still hold role X?) is a probe.
    fixed
        .table_mut("User")
        .unwrap()
        .create_index("idx_user_role", &["Role"], false)
        .unwrap();
    (ap, fixed)
}

/// 8g/8h/8i — the three Enumerated Types panels.
fn enumerated_types_panels(scale: Fig8Scale, runs: usize, t: &mut Timings) {
    let (ap, fixed) = enum_databases(scale);

    // 8g: rename R2 ↔ R5 (alternating, so state is restored every second
    // run). AP: drop the CHECK, rewrite every matching row, re-add the
    // CHECK (full-table validation). Fixed: one-row UPDATE on the lookup
    // table.
    let mut ap_g = ap.clone();
    let mut fixed_g = fixed.clone();
    let mut odd_g_ap = false;
    let mut odd_g_fx = false;
    t.measure(
        "Fig 8g  Enumerated Types: Update (rename R2→R5)",
        runs,
        || {
            odd_g_ap = !odd_g_ap;
            let (from, to) = if odd_g_ap { ("R2", "R5") } else { ("R5", "R2") };
            let table = ap_g.table_mut("User").unwrap();
            table.drop_check("User_Role_Check");
            ap_g.update_where(
                "User",
                &PExpr::col_eq(1, Value::text(from)),
                &[(1, Value::text(to))],
            )
            .unwrap();
            let table = ap_g.table_mut("User").unwrap();
            table
                .add_check(Check::InList {
                    name: "User_Role_Check".into(),
                    column: "Role".into(),
                    values: vec![Value::text("R1"), Value::text(to), Value::text("R3")],
                })
                .unwrap();
            std::hint::black_box(ap_g.table("User").unwrap().len())
        },
        || {
            odd_g_fx = !odd_g_fx;
            let (from, to) = if odd_g_fx { ("R2", "R5") } else { ("R5", "R2") };
            let n = fixed_g
                .update_where(
                    "Role",
                    &PExpr::col_eq(1, Value::text(from)),
                    &[(1, Value::text(to))],
                )
                .unwrap();
            std::hint::black_box(n)
        },
    );

    // 8h: admit / retire the role value R4 (alternating). AP: drop +
    // re-add the CHECK with the extended list (re-validating the whole
    // table). Fixed: INSERT / DELETE one lookup row.
    let mut ap_h = ap.clone();
    let mut fixed_h = fixed.clone();
    let mut odd_h_ap = false;
    let mut odd_h_fx = false;
    t.measure(
        "Fig 8h  Enumerated Types: Insert (new value R4)",
        runs,
        || {
            odd_h_ap = !odd_h_ap;
            let mut values =
                vec![Value::text("R1"), Value::text("R2"), Value::text("R3")];
            if odd_h_ap {
                values.push(Value::text("R4"));
            }
            let table = ap_h.table_mut("User").unwrap();
            table.drop_check("User_Role_Check");
            table
                .add_check(Check::InList {
                    name: "User_Role_Check".into(),
                    column: "Role".into(),
                    values,
                })
                .unwrap();
            std::hint::black_box(table.len())
        },
        || {
            odd_h_fx = !odd_h_fx;
            if odd_h_fx {
                fixed_h.insert("Role", vec![Value::Int(4), Value::text("R4")]).unwrap();
            } else {
                fixed_h
                    .delete_where("Role", &PExpr::col_eq(0, Value::Int(4)))
                    .unwrap();
            }
            std::hint::black_box(fixed_h.table("Role").unwrap().len())
        },
    );

    // 8i: select users holding role R2 — a scan either way (the fixed
    // variant resolves the role id first, then scans).
    t.measure(
        "Fig 8i  Enumerated Types: Select (users with R2)",
        runs,
        || {
            let users = ap.table("User").unwrap();
            std::hint::black_box(seq_scan_count(users, &PExpr::col_eq(1, Value::text("R2"))))
        },
        || {
            let roles = fixed.table("Role").unwrap();
            let rid = roles
                .scan()
                .find(|(_, r)| r[1] == Value::text("R2"))
                .map(|(_, r)| r[0].clone())
                .unwrap();
            let users = fixed.table("User").unwrap();
            std::hint::black_box(seq_scan_count(users, &PExpr::col_eq(1, rid)))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_panels_run() {
        let t = run(Fig8Scale::tiny(), 1);
        assert_eq!(t.comparisons.len(), 9);
    }

    #[test]
    fn shapes_match_the_paper() {
        let _serial = crate::harness::TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Thresholds are directional, not absolute: container hardware
        // measures the 8f index win at ~3x where the paper's machine saw
        // ~18x, and true-parity panels can wander to ~3x under CI noise.
        let t = run(Fig8Scale { rows: 20_000, seed: 11 }, 5);
        let by_label = |needle: &str| {
            t.comparisons
                .iter()
                .find(|c| c.label.contains(needle))
                .unwrap_or_else(|| panic!("{needle} missing"))
        };
        // 8a: redundant indexes slow the UPDATE.
        assert!(by_label("8a").speedup() > 1.5, "8a {:.2}", by_label("8a").speedup());
        // 8b: the index helps the grouped aggregate.
        assert!(by_label("8b").speedup() > 1.05, "8b {:.2}", by_label("8b").speedup());
        // 8d/8e: not prominent (within 2× either way).
        for p in ["8d", "8e"] {
            let s = by_label(p).speedup();
            assert!((0.25..4.0).contains(&s), "{p} should be ≈1x, got {s:.2}");
        }
        // 8f: the referencing-side index is a massive win.
        assert!(by_label("8f").speedup() > 1.8, "8f {:.2}", by_label("8f").speedup());
        // 8g/8h: constraint surgery vs lookup-table DML is a massive win.
        assert!(by_label("8g").speedup() > 20.0, "8g {:.2}", by_label("8g").speedup());
        assert!(by_label("8h").speedup() > 3.0, "8h {:.2}", by_label("8h").speedup());
        // 8i: ≈1×.
        let s = by_label("8i").speedup();
        assert!((0.25..4.0).contains(&s), "8i ≈1x, got {s:.2}");
    }
}
