//! Allocation observability: a counting global allocator.
//!
//! Enabled with the `count-allocs` feature, this wraps [`std::alloc::System`]
//! and counts every allocation (and reallocation) with a relaxed atomic.
//! The bench harness samples the counter around measured regions to emit
//! `allocs_per_stmt` columns next to the MB/s numbers — the arena/interner
//! work is a heap-traffic reduction first and a wall-clock win second, so
//! the benches record both.
//!
//! With the feature off, [`alloc_count`] always returns 0 and
//! [`allocs_per_stmt`] returns `None`; nothing is installed and the system
//! allocator is untouched (counting costs one relaxed atomic increment per
//! allocation, which is noise for the parse path but still opt-in).

#[cfg(feature = "count-allocs")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Counts allocations, delegates everything to [`System`].
    struct CountingAlloc;

    // SAFETY: pure delegation to `System`; the counter has no effect on
    // the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A realloc is new heap traffic (a grow usually moves), so it
            // counts: Vec-growth churn is exactly what the arena removes.
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub fn alloc_count() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    pub const COUNTING: bool = true;
}

#[cfg(not(feature = "count-allocs"))]
mod imp {
    pub fn alloc_count() -> u64 {
        0
    }

    pub const COUNTING: bool = false;
}

/// Total heap allocations (including reallocations) since process start.
/// Always 0 without the `count-allocs` feature.
pub fn alloc_count() -> u64 {
    imp::alloc_count()
}

/// Whether allocation counting is compiled in.
pub const COUNTING: bool = imp::COUNTING;

/// Allocations per statement across a measured region, or `None` when
/// counting is compiled out (so JSON rows can omit the column rather than
/// report a misleading 0).
pub fn allocs_per_stmt(before: u64, after: u64, statements: usize) -> Option<f64> {
    if !COUNTING || statements == 0 {
        return None;
    }
    Some((after - before) as f64 / statements as f64)
}
