//! Minimal, dependency-free benchmark harness.
//!
//! The container this workspace builds in has no registry access, so the
//! benches cannot use Criterion. This module provides the small subset the
//! experiment benches need: warmup, timed iteration until a wall-clock
//! budget, and a batched mode that excludes per-iteration setup from the
//! timed region. Results print in a `name ... ns/iter` format and can be
//! collected programmatically for JSON emission.

use std::hint::black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serialises timing-sensitive tests: Rust runs a binary's `#[test]`s on
/// parallel threads, and concurrent micro-benchmarks skew each other's
/// wall-clock ratios. Tests that assert speedups should hold this lock
/// for their timed region.
pub static TIMING_LOCK: Mutex<()> = Mutex::new(());

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Iterations in the timed region.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
}

impl BenchResult {
    /// Iterations per second implied by the measurement.
    pub fn per_sec(&self) -> f64 {
        if self.ns_per_iter == 0.0 {
            0.0
        } else {
            1e9 / self.ns_per_iter
        }
    }
}

/// Wall-clock budget for the timed region of each benchmark.
const BUDGET: Duration = Duration::from_millis(300);
/// Minimum iterations regardless of budget.
const MIN_ITERS: u64 = 5;

/// Run `f` repeatedly until the time budget elapses (after one warmup
/// call), print and return the measurement.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> BenchResult {
    black_box(f()); // warmup
    let mut iters = 0u64;
    let start = Instant::now();
    let mut elapsed;
    loop {
        black_box(f());
        iters += 1;
        elapsed = start.elapsed();
        if elapsed >= BUDGET && iters >= MIN_ITERS {
            break;
        }
    }
    finish(name, iters, elapsed)
}

/// Like [`bench`], but re-creates the input with `setup` before every
/// iteration and excludes that setup time from the measurement — the
/// equivalent of Criterion's `iter_batched` for mutating benchmarks.
pub fn bench_batched<S, T>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> T,
) -> BenchResult {
    black_box(f(setup())); // warmup
    let mut iters = 0u64;
    let mut timed = Duration::ZERO;
    loop {
        let input = setup();
        let t0 = Instant::now();
        black_box(f(input));
        timed += t0.elapsed();
        iters += 1;
        if timed >= BUDGET && iters >= MIN_ITERS {
            break;
        }
    }
    finish(name, iters, timed)
}

fn finish(name: &str, iters: u64, elapsed: Duration) -> BenchResult {
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    let r = BenchResult { name: name.to_string(), iters, ns_per_iter: ns };
    println!("{:<44} {:>14.0} ns/iter   ({} iters)", r.name, r.ns_per_iter, r.iters);
    r
}

/// Print a group header, mirroring Criterion's benchmark groups.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

/// Summary of a repeated wall-clock measurement. The experiments report
/// the **minimum** (noise-robust on a preemptible host: steal only ever
/// adds time) but also carry the median and the spread so the host noise
/// the README warns about is measured per row instead of folklore.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Fastest observation, microseconds.
    pub min_micros: u128,
    /// Median observation, microseconds.
    pub median_micros: u128,
    /// Slowest observation, microseconds.
    pub max_micros: u128,
}

impl Sample {
    /// Relative spread of the observations: `(max - min) / min`, as a
    /// percentage. ~0 on a quiet host; tens of percent under steal.
    pub fn spread_pct(&self) -> f64 {
        if self.min_micros == 0 {
            0.0
        } else {
            (self.max_micros - self.min_micros) as f64 * 100.0 / self.min_micros as f64
        }
    }
}

/// Time `f` `reps` times and summarise the observations.
pub fn sample_of<T>(reps: usize, mut f: impl FnMut() -> T) -> Sample {
    assert!(reps > 0);
    let mut obs: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_micros()
        })
        .collect();
    obs.sort_unstable();
    Sample {
        min_micros: obs[0],
        median_micros: obs[obs.len() / 2],
        max_micros: obs[obs.len() - 1],
    }
}
