//! `expdriver` — regenerate every table and figure of the SQLCheck paper.
//!
//! ```text
//! expdriver all            # everything (default scales)
//! expdriver fig3           # Fig 3a–c   MVA task timings
//! expdriver fig7           # Fig 6/7    ranking model + Example 6
//! expdriver fig8           # Fig 8a–i   per-AP timings
//! expdriver table2         # Table 2    sqlcheck vs dbdeo accuracy
//! expdriver table3         # Table 3    AP distributions (GitHub + study)
//! expdriver table4         # Table 4/7  Django applications
//! expdriver table5         # Table 5/6  Kaggle databases
//! expdriver table8         # Table 8    sqlcheck vs DETA features
//! expdriver user-study     # §8.3       acceptance statistics
//! expdriver throughput     # batch detection engine vs sequential path
//! expdriver e2e            # parse-once front-end + incremental cache
//! expdriver incremental    # warm re-check sweep: edit rates × shapes + DDL edit
//! expdriver incremental-gate # CI gate: warm 1%-edit ≤ 0.35× cold pipeline
//! expdriver phases         # per-phase timing of the three-phase pipeline
//! expdriver split          # fused streaming splitter vs legacy two-pass
//! expdriver scaling        # speedup-vs-threads curves (plain/trigger/skewed)
//! expdriver corpus         # acceptance matrix: parse coverage on real corpora
//! expdriver splitfile FILE # split configurations over a real dump (mmap'd)
//! ```
//!
//! `--quick` shrinks scales for a fast smoke run. `--threads N` pins the
//! worker count of the parallel configurations; `--threads 0` (and the
//! default) auto-detects via `available_parallelism`.

use sqlcheck_bench::experiments::*;
use sqlcheck_workload::github::CorpusConfig;
use sqlcheck_workload::globaleaks::Scale;
use sqlcheck_workload::user_study::StudyConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `--threads 0` means auto-detect, same as omitting the flag: the
    // thread planners treat `None` as `available_parallelism`.
    let threads: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|t| t.parse().ok())
        .filter(|&t: &usize| t != 0);
    let what = args
        .iter()
        .enumerate()
        .find(|(i, a)| !(a.starts_with("--") || *i > 0 && args[i - 1] == "--threads"))
        .map(|(_, a)| a.as_str())
        .unwrap_or("all");

    if what == "incremental-gate" {
        // The CI ceiling on the delta-based warm re-check: the 1%-edit
        // warm recheck of a 100k-statement workload must come in at or
        // under 0.35× the cold pipeline, byte-identical to a cold check
        // of the edited script. Pipeline + warm legs only — the legacy
        // leg costs ~20x the pipeline and adds nothing to the ratio.
        section("Incremental gate — warm 1%-edit re-check vs cold pipeline");
        let n = if quick { 2_000 } else { 100_000 };
        let r = e2e::run_gate("plain", n, 100, 10, 0xE2E0, threads);
        print!("{}", e2e::render(std::slice::from_ref(&r)));
        print!("{}", e2e::render_warm_phases(std::slice::from_ref(&r)));
        assert!(r.identical, "warm session output diverged from a cold check of the edited script");
        assert_eq!(r.fallbacks, 0, "the 1%-edit set must stay on the incremental path");
        // Timing ratio only at full scale: at smoke scale both sides are
        // sub-millisecond and the ratio is noise.
        if !quick {
            assert!(
                r.warm_vs_pipeline() <= 0.35,
                "warm re-check at {:.3}x of the cold pipeline exceeds the 0.35 ceiling \
                 (warm {}us vs pipeline {}us)",
                r.warm_vs_pipeline(),
                r.warm_micros,
                r.pipeline_micros
            );
            println!(
                "gate ok: warm {}us = {:.3}x of pipeline {}us (ceiling 0.35)",
                r.warm_micros,
                r.warm_vs_pipeline(),
                r.pipeline_micros
            );
        }
        return;
    }

    if what == "splitfile" {
        let path = args
            .iter()
            .enumerate()
            .find(|(i, a)| {
                !(a.starts_with("--") || a.as_str() == "splitfile" || *i > 0 && args[i - 1] == "--threads")
            })
            .map(|(_, a)| a.as_str());
        let Some(path) = path else {
            eprintln!("expdriver splitfile: missing FILE argument");
            std::process::exit(2);
        };
        // Memory-mapped on Unix: the splitter reads the page cache
        // directly, so dump size is bounded by address space, not RAM.
        let script = match sqlcheck::input::read_script(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("expdriver splitfile: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        section("Split — external script (fused vs legacy, byte-identity gated)");
        println!(
            "{} bytes from {path} ({})",
            script.len(),
            if script.is_mapped() { "memory-mapped" } else { "buffered read" },
        );
        let rows = vec![split::run_script(&script, threads)];
        print!("{}", split::render(&rows));
        return;
    }

    let run_all = what == "all";
    if run_all || what == "fig3" {
        section("Figure 3 — Multi-Valued Attribute AP (GlobaLeaks tasks)");
        let scale = if quick {
            Scale { users: 2_000, tenants: 200, memberships: 2, seed: 0x61EA }
        } else {
            Scale::default()
        };
        let t = fig3::run(scale, 5);
        println!("{}", t.report());
        println!("(paper: 636x / 256x / 193x on PostgreSQL with 10M rows)");
    }
    if run_all || what == "fig7" {
        section("Figures 6 & 7 — ranking model (Example 6)");
        print!("{}", fig7::render_example6());
    }
    if run_all || what == "fig8" {
        section("Figure 8 — per-AP performance impact");
        let scale = if quick {
            fig8::Fig8Scale { rows: 5_000, seed: 0xF18 }
        } else {
            fig8::Fig8Scale::default()
        };
        let t = fig8::run(scale, if quick { 2 } else { 5 });
        println!("{}", t.report());
        println!(
            "(paper: 8a ~10x, 8b ~1.3x, 8c index LOSES, 8d/8e ~1x, 8f 142x, 8g >1000x, 8h >100x, 8i ~1x)"
        );
    }
    let table2_result = if run_all || what == "table2" || what == "table3" {
        let cfg = if quick {
            CorpusConfig { repositories: 60, statements_per_repo: 60, seed: 0x9178B }
        } else {
            CorpusConfig { repositories: 400, statements_per_repo: 124, seed: 0x9178B }
        };
        Some(table2::run(cfg))
    } else {
        None
    };
    if run_all || what == "table2" {
        section("Table 2 — detection of anti-patterns (sqlcheck vs dbdeo)");
        print!("{}", table2::render(table2_result.as_ref().unwrap()));
    }
    if run_all || what == "table3" {
        section("Table 3 — AP distribution: GitHub corpus (D vs S)");
        print!("{}", table2::render_histogram(table2_result.as_ref().unwrap()));
        section("Table 3 — AP distribution: user study (D vs S)");
        let cfg = if quick {
            StudyConfig { participants: 8, total_statements: 320, seed: 0xB1CE }
        } else {
            StudyConfig::default()
        };
        let dist = table345::user_study_distribution(cfg);
        print!("{}", table345::render_user_study_distribution(&dist));
    }
    if run_all || what == "table4" {
        section("Table 4 / Table 7 — Django web applications");
        print!("{}", table345::render_django(&table345::django_rows()));
    }
    if run_all || what == "table5" {
        section("Table 5 / Table 6 — Kaggle databases (data analysis only)");
        print!("{}", table345::render_kaggle(&table345::kaggle_rows()));
    }
    if run_all || what == "table8" {
        section("Table 8 — sqlcheck vs Microsoft DETA");
        print!("{}", fig7::render_table8());
    }
    if run_all || what == "throughput" {
        section("Throughput — batch detection engine vs sequential path");
        let sizes: &[usize] = if quick { &[1_000, 10_000] } else { &[1_000, 10_000, 100_000] };
        let rows = throughput::run(sizes, 100, 0xBA7C4, threads);
        print!("{}", throughput::render(&rows));
        let json = throughput::to_json(&rows);
        let path = "BENCH_throughput.json";
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    if run_all || what == "e2e" {
        section("E2E — parse-once front-end + incremental cache vs legacy front-end");
        let sizes: &[usize] = if quick { &[2_000] } else { &[10_000, 100_000] };
        // 1% of statements edited for the warm re-check.
        let rows = e2e::run(sizes, 100, 10, 0xE2E0, threads);
        print!("{}", e2e::render(&rows));
        write_e2e_json(&rows);
    }
    if run_all || what == "incremental" {
        section("Incremental — warm re-check sweep: edit fraction × workload shape");
        let (n, rates, shapes): (usize, &[usize], &[&str]) = if quick {
            (2_000, &[10, 100], &["plain", "trigger"])
        } else {
            // 0.1% / 1% / 10% edits across every workload shape — the
            // O(edits) claim as a measured curve, not one point.
            (100_000, &[1, 10, 100], &["plain", "trigger", "skewed"])
        };
        let rows = e2e::run_sweep(n, 100, rates, shapes, 0xE2E0, threads);
        print!("{}", e2e::render(&rows));
        print!("{}", e2e::render_warm_phases(&rows));
        check_identity(&rows);
        for r in &rows {
            assert_eq!(
                r.fallbacks, 0,
                "{} at {}permille: warm session fell back to a full rebuild",
                r.workload, r.edit_permille
            );
        }
        // `BENCH_e2e.json` is the e2e experiment's artifact; when both
        // experiments run (`all`), keep the e2e rows rather than letting
        // the sweep clobber them.
        if !run_all {
            write_e2e_json(&rows);
        }
        // Full-scale ceiling (also gated standalone by `incremental-gate`):
        // warm 1%-edit re-check ≤ 0.35× the cold pipeline on the plain row.
        if !quick {
            let g = rows
                .iter()
                .find(|r| r.workload == "plain" && r.edit_permille == 10)
                .expect("the sweep includes the plain 1% row");
            assert!(
                g.warm_vs_pipeline() <= 0.35,
                "warm re-check at {:.3}x of the cold pipeline exceeds the 0.35 ceiling",
                g.warm_vs_pipeline()
            );
        }
        // Column-granular invalidation: a DDL edit to one table must keep
        // every cache entry that does not read the edited column.
        let ddl = e2e::run_ddl_edit(if quick { 2_000 } else { 20_000 }, 10, 0xDD1, threads);
        print!("{}", e2e::render_ddl_edit(&ddl));
        assert!(ddl.identical, "DDL-edit warm re-check diverged from cold check");
        assert!(ddl.hits > 0, "column-granular invalidation kept no entries across a DDL edit");
    }
    if run_all || what == "phases" {
        section("Phases — per-phase timing of the three-phase batch pipeline");
        let sizes: &[usize] = if quick { &[1_000] } else { &[10_000, 100_000] };
        let rows = phases::run(sizes, 64, 0x9A5E5, threads);
        print!("{}", phases::render(&rows));
        for r in &rows {
            assert!(
                r.identical,
                "{} statements: batch three-phase output diverged from sequential",
                r.statements
            );
        }
        // `BENCH_throughput.json` doubles as the phases artifact when the
        // experiment runs standalone; `all` keeps the throughput rows.
        if !run_all {
            let path = "BENCH_throughput.json";
            match std::fs::write(path, phases::to_json(&rows)) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
    }
    if run_all || what == "split" {
        section("Split — fused streaming splitter vs legacy two-pass reference");
        let sizes: &[usize] = if quick { &[2_000] } else { &[10_000, 100_000] };
        let rows = split::run(sizes, 100, 0x5117, threads);
        print!("{}", split::render(&rows));
        // `run` asserts the three configurations agree before timing;
        // reaching this point means the byte-identity gate passed.
        let path = "BENCH_split.json";
        match std::fs::write(path, split::to_json(&rows)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    if run_all || what == "scaling" {
        section("Scaling — speedup vs threads (plain / trigger / skewed workloads)");
        let (n, templates) = if quick { (2_000, 50) } else { (100_000, 100) };
        let rows = scaling::run(n, templates, 0x5CA1E0, threads);
        print!("{}", scaling::render(&rows));
        // `run` asserts byte-identity at every point before returning;
        // re-assert on the rows so the artifact can never record a
        // divergence even if the panic path changes.
        for r in &rows {
            for p in &r.points {
                assert!(
                    p.identical,
                    "{} at {} thread(s): output diverged from the sequential reference",
                    r.workload, p.requested
                );
            }
        }
        // Speedup is only a meaningful expectation when the host has
        // cores to scale onto; the identity gate above holds regardless.
        if let Some(hw) = rows.first().map(|r| r.hw_threads) {
            if hw >= 4 {
                for r in &rows {
                    if let Some(p) = r.at(4) {
                        assert!(
                            p.speedup_vs_1 >= 1.5,
                            "{}: expected scaling at 4 threads on a {}-core host, got {:.2}x",
                            r.workload,
                            hw,
                            p.speedup_vs_1
                        );
                    }
                }
            } else {
                println!(
                    "(host has {hw} core(s): speedup expectations skipped; \
                     byte-identity asserted at every point)"
                );
            }
        }
        let path = "BENCH_scaling.json";
        match std::fs::write(path, scaling::to_json(&rows)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    if run_all || what == "corpus" {
        section("Corpus — acceptance matrix: parse coverage + degradation by corpus");
        let rows = corpus::run(quick, threads);
        print!("{}", corpus::render(&rows));
        // CI gate: per-corpus parse-coverage floors and zero isolated rule
        // failures; panics (non-zero exit) on violation.
        corpus::assert_floors(&rows);
        let path = "BENCH_corpus.json";
        match std::fs::write(path, corpus::to_json(&rows)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    if run_all || what == "user-study" {
        section("§8.3 — user study acceptance statistics");
        let cfg = if quick {
            StudyConfig { participants: 8, total_statements: 320, seed: 0xB1CE }
        } else {
            StudyConfig::default()
        };
        print!("{}", table345::render_user_study_stats(&table345::user_study_stats(cfg)));
    }
}

fn section(title: &str) {
    println!("\n=== {title} ===");
}

// Byte-identity is the pipeline's correctness contract; CI runs the
// quick scales specifically to catch a divergence, so fail loudly.
fn check_identity(rows: &[e2e::E2eRow]) {
    for r in rows {
        assert!(
            r.identical,
            "{} statements / {} edited: pipeline or warm output diverged from legacy",
            r.statements, r.edited
        );
    }
}

fn write_e2e_json(rows: &[e2e::E2eRow]) {
    check_identity(rows);
    let path = "BENCH_e2e.json";
    match std::fs::write(path, e2e::to_json(rows)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
