//! Quick probe: allocations per unique-statement parse, by stage.
use sqlcheck_bench::alloc_count::alloc_count;
use sqlcheck_parser::{annotate, parse_one};

fn main() {
    let stmts = [
        "SELECT name, email FROM Users WHERE id = 42 AND status = 'active'",
        "INSERT INTO Orders (id, user_id, total) VALUES (1, 2, 9.99)",
        "UPDATE Accounts SET balance = balance - 100 WHERE owner_id = 7",
        "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(30) NOT NULL, FOREIGN KEY (name) REFERENCES u(n))",
        "SELECT a.x, b.y FROM a JOIN b ON a.id = b.a_id WHERE a.x LIKE '%q%' AND b.y IN (1,2,3) ORDER BY a.x DESC LIMIT 10",
    ];
    // warm up lazy tables
    for s in &stmts {
        let _ = parse_one(s);
    }
    for s in &stmts {
        let b0 = alloc_count();
        let toks = sqlcheck_parser::lexer::tokenize(s);
        let b1 = alloc_count();
        let p = parse_one(s);
        let b2 = alloc_count();
        let ann = annotate(&p.stmt, &p.arena);
        let b3 = alloc_count();
        println!(
            "lex {:3}  parse {:3}  annotate {:3}  ({} toks) {}",
            b1 - b0,
            b2 - b1,
            b3 - b2,
            toks.len(),
            &s[..s.len().min(50)]
        );
        std::hint::black_box((p, ann, toks));
    }
}
