//! The anti-pattern catalog (Table 1 of the paper).
//!
//! 26 catalogued anti-patterns in four categories, plus *Readable
//! Password*, which is not in Table 1 but appears in the paper's Table 3
//! (sqlcheck detects it in the user study); we carry it as a 27th kind and
//! note the discrepancy in `EXPERIMENTS.md`.

use std::fmt;

/// The four AP categories of §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Violations of logical design principles.
    LogicalDesign,
    /// Inefficient physical implementation of the logical design.
    PhysicalDesign,
    /// Bad practices in query formulation.
    Query,
    /// Detected from the data itself (requires database access).
    Data,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::LogicalDesign => "Logical Design",
            Category::PhysicalDesign => "Physical Design",
            Category::Query => "Query",
            Category::Data => "Data",
        };
        f.write_str(s)
    }
}

/// Which of the paper's five metrics an AP affects (the ✓ columns in
/// Table 1): Performance, Maintainability, Data Amplification, Data
/// Integrity, Accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricImpact {
    /// Performance (P).
    pub performance: bool,
    /// Maintainability (M).
    pub maintainability: bool,
    /// Data amplification (DA): `Some(true)` = fixing *increases* footprint
    /// (↑), `Some(false)` = fixing decreases it (↓), `None` = no effect.
    pub data_amplification: Option<bool>,
    /// Data integrity (DI).
    pub data_integrity: bool,
    /// Accuracy (A).
    pub accuracy: bool,
}

/// All anti-pattern kinds known to sqlcheck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AntiPatternKind {
    // -- Logical design ----------------------------------------------------
    /// Storing a list of values in a delimiter-separated string (1NF
    /// violation).
    MultiValuedAttribute,
    /// Table without a primary key.
    NoPrimaryKey,
    /// Missing referential integrity constraints.
    NoForeignKey,
    /// A generic `id` primary key column on every table.
    GenericPrimaryKey,
    /// Application logic hard-coded in table metadata (e.g. numbered
    /// column families `tag1, tag2, tag3`).
    DataInMetadata,
    /// Self-referencing foreign key used to model hierarchies.
    AdjacencyList,
    /// Table whose column count crosses a threshold.
    GodTable,
    // -- Physical design ---------------------------------------------------
    /// Fractional data stored in binary floating point.
    RoundingErrors,
    /// ENUM types / CHECK-IN lists constraining a column's domain.
    EnumeratedTypes,
    /// File paths stored instead of content.
    ExternalDataStorage,
    /// Too many infrequently used indexes.
    IndexOveruse,
    /// Missing performance-critical indexes.
    IndexUnderuse,
    /// Multiple tables matching `<TableName>_N`.
    CloneTable,
    // -- Query ---------------------------------------------------------- --
    /// `SELECT *`.
    ColumnWildcard,
    /// `||` concatenation over nullable columns.
    ConcatenateNulls,
    /// `ORDER BY RAND()`.
    OrderingByRand,
    /// Pattern matching with leading wildcards / regular expressions.
    PatternMatching,
    /// INSERT without an explicit column list.
    ImplicitColumns,
    /// DISTINCT used to mask JOIN-induced duplicates.
    DistinctJoin,
    /// Join count crosses a threshold.
    TooManyJoins,
    /// Plain-text password storage (Table 3 extra).
    ReadablePassword,
    // -- Data ----------------------------------------------------------- --
    /// Date-time columns without timezone.
    MissingTimezone,
    /// Data does not conform to the declared type.
    IncorrectDataType,
    /// Value duplication across rows (denormalisation).
    DenormalizedTable,
    /// Derived columns (e.g. age from date of birth).
    InformationDuplication,
    /// Column that is all NULL or a single constant.
    RedundantColumn,
    /// Bounded-domain column without a domain constraint.
    NoDomainConstraint,
}

impl AntiPatternKind {
    /// Every kind, in Table 1 order (Readable Password appended).
    pub const ALL: [AntiPatternKind; 27] = [
        AntiPatternKind::MultiValuedAttribute,
        AntiPatternKind::NoPrimaryKey,
        AntiPatternKind::NoForeignKey,
        AntiPatternKind::GenericPrimaryKey,
        AntiPatternKind::DataInMetadata,
        AntiPatternKind::AdjacencyList,
        AntiPatternKind::GodTable,
        AntiPatternKind::RoundingErrors,
        AntiPatternKind::EnumeratedTypes,
        AntiPatternKind::ExternalDataStorage,
        AntiPatternKind::IndexOveruse,
        AntiPatternKind::IndexUnderuse,
        AntiPatternKind::CloneTable,
        AntiPatternKind::ColumnWildcard,
        AntiPatternKind::ConcatenateNulls,
        AntiPatternKind::OrderingByRand,
        AntiPatternKind::PatternMatching,
        AntiPatternKind::ImplicitColumns,
        AntiPatternKind::DistinctJoin,
        AntiPatternKind::TooManyJoins,
        AntiPatternKind::ReadablePassword,
        AntiPatternKind::MissingTimezone,
        AntiPatternKind::IncorrectDataType,
        AntiPatternKind::DenormalizedTable,
        AntiPatternKind::InformationDuplication,
        AntiPatternKind::RedundantColumn,
        AntiPatternKind::NoDomainConstraint,
    ];

    /// The AP's category.
    pub fn category(&self) -> Category {
        use AntiPatternKind::*;
        match self {
            MultiValuedAttribute | NoPrimaryKey | NoForeignKey | GenericPrimaryKey
            | DataInMetadata | AdjacencyList | GodTable => Category::LogicalDesign,
            RoundingErrors | EnumeratedTypes | ExternalDataStorage | IndexOveruse
            | IndexUnderuse | CloneTable => Category::PhysicalDesign,
            ColumnWildcard | ConcatenateNulls | OrderingByRand | PatternMatching
            | ImplicitColumns | DistinctJoin | TooManyJoins | ReadablePassword => Category::Query,
            MissingTimezone | IncorrectDataType | DenormalizedTable | InformationDuplication
            | RedundantColumn | NoDomainConstraint => Category::Data,
        }
    }

    /// Human-readable name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        use AntiPatternKind::*;
        match self {
            MultiValuedAttribute => "Multi-Valued Attribute",
            NoPrimaryKey => "No Primary Key",
            NoForeignKey => "No Foreign Key",
            GenericPrimaryKey => "Generic Primary Key",
            DataInMetadata => "Data in Metadata",
            AdjacencyList => "Adjacency List",
            GodTable => "God Table",
            RoundingErrors => "Rounding Errors",
            EnumeratedTypes => "Enumerated Types",
            ExternalDataStorage => "External Data Storage",
            IndexOveruse => "Index Overuse",
            IndexUnderuse => "Index Underuse",
            CloneTable => "Clone Table",
            ColumnWildcard => "Column Wildcard Usage",
            ConcatenateNulls => "Concatenate Nulls",
            OrderingByRand => "Ordering by Rand",
            PatternMatching => "Pattern Matching",
            ImplicitColumns => "Implicit Columns",
            DistinctJoin => "Distinct and Join",
            TooManyJoins => "Too many Joins",
            ReadablePassword => "Readable Password",
            MissingTimezone => "Missing Timezone",
            IncorrectDataType => "Incorrect Data Type",
            DenormalizedTable => "Denormalized Table",
            InformationDuplication => "Information Duplication",
            RedundantColumn => "Redundant Column",
            NoDomainConstraint => "No Domain Constraint",
        }
    }

    /// Table 1's ✓ marks for this AP.
    pub fn metric_impact(&self) -> MetricImpact {
        use AntiPatternKind::*;
        let mi = |p, m, da: Option<bool>, di, a| MetricImpact {
            performance: p,
            maintainability: m,
            data_amplification: da,
            data_integrity: di,
            accuracy: a,
        };
        match self {
            MultiValuedAttribute => mi(true, true, Some(false), true, true),
            NoPrimaryKey => mi(true, true, Some(true), true, false),
            NoForeignKey => mi(true, true, None, true, false),
            GenericPrimaryKey => mi(false, true, None, false, false),
            DataInMetadata => mi(true, true, Some(false), true, true),
            AdjacencyList => mi(true, false, None, false, false),
            GodTable => mi(true, true, None, false, false),
            RoundingErrors => mi(false, false, None, false, true),
            EnumeratedTypes => mi(true, true, Some(false), false, false),
            ExternalDataStorage => mi(false, true, None, true, true),
            IndexOveruse => mi(true, true, Some(false), false, false),
            IndexUnderuse => mi(true, true, Some(true), false, false),
            CloneTable => mi(true, true, None, true, true),
            ColumnWildcard => mi(true, false, None, false, true),
            ConcatenateNulls => mi(false, false, None, false, true),
            OrderingByRand => mi(true, false, None, false, false),
            PatternMatching => mi(true, false, None, false, false),
            ImplicitColumns => mi(false, true, None, true, false),
            DistinctJoin => mi(true, true, None, false, false),
            TooManyJoins => mi(true, false, None, false, false),
            ReadablePassword => mi(false, false, None, true, false),
            MissingTimezone => mi(false, false, None, false, true),
            IncorrectDataType => mi(true, false, Some(false), false, false),
            DenormalizedTable => mi(true, false, Some(false), false, false),
            InformationDuplication => mi(false, true, None, true, true),
            RedundantColumn => mi(false, false, Some(false), false, false),
            NoDomainConstraint => mi(false, true, Some(false), true, false),
        }
    }

    /// Whether detecting this AP requires database (data) access.
    pub fn requires_data(&self) -> bool {
        self.category() == Category::Data
    }

    /// The 11 AP kinds the dbdeo baseline supports (per Table 2/3).
    pub fn dbdeo_supported(&self) -> bool {
        use AntiPatternKind::*;
        matches!(
            self,
            NoPrimaryKey
                | DataInMetadata
                | EnumeratedTypes
                | IndexUnderuse
                | GodTable
                | CloneTable
                | RoundingErrors
                | MultiValuedAttribute
                | PatternMatching
                | AdjacencyList
                | IndexOveruse
        )
    }
}

impl fmt::Display for AntiPatternKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_27_kinds() {
        assert_eq!(AntiPatternKind::ALL.len(), 27);
        // 26 from Table 1 + Readable Password
        let non_extra = AntiPatternKind::ALL
            .iter()
            .filter(|k| **k != AntiPatternKind::ReadablePassword)
            .count();
        assert_eq!(non_extra, 26);
    }

    #[test]
    fn category_counts_match_table1() {
        let count = |c: Category| {
            AntiPatternKind::ALL.iter().filter(|k| k.category() == c).count()
        };
        assert_eq!(count(Category::LogicalDesign), 7);
        assert_eq!(count(Category::PhysicalDesign), 6);
        assert_eq!(count(Category::Query), 8); // 7 + Readable Password
        assert_eq!(count(Category::Data), 6);
    }

    #[test]
    fn dbdeo_supports_exactly_11() {
        let n = AntiPatternKind::ALL.iter().filter(|k| k.dbdeo_supported()).count();
        assert_eq!(n, 11);
    }

    #[test]
    fn data_aps_require_data() {
        assert!(AntiPatternKind::MissingTimezone.requires_data());
        assert!(!AntiPatternKind::ColumnWildcard.requires_data());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = AntiPatternKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 27);
    }

    #[test]
    fn table1_spot_checks() {
        // Multi-Valued Attribute: P ✓ M ✓ DA ↓ DI ✓ A ✓
        let m = AntiPatternKind::MultiValuedAttribute.metric_impact();
        assert!(m.performance && m.maintainability && m.data_integrity && m.accuracy);
        assert_eq!(m.data_amplification, Some(false));
        // No Primary Key: DA ↑
        assert_eq!(
            AntiPatternKind::NoPrimaryKey.metric_impact().data_amplification,
            Some(true)
        );
        // Rounding Errors: only accuracy
        let r = AntiPatternKind::RoundingErrors.metric_impact();
        assert!(r.accuracy && !r.performance && !r.maintainability && !r.data_integrity);
    }
}
