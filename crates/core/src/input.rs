//! Script input — memory-mapped where the platform allows it.
//!
//! The CLI and the experiment driver both feed whole SQL dump files into
//! the splitter. Reading a multi-GB dump with `read_to_string` doubles
//! peak memory (kernel page cache + the userspace copy) and serialises
//! start-up behind the copy. On Unix, [`read_script`] instead `mmap`s the
//! file read-only and hands the splitter a `&str` view of the page cache
//! itself — zero copies, demand-paged, so the front door streams dumps
//! bigger than RAM.
//!
//! The mapping is done with direct `mmap(2)`/`munmap(2)` declarations
//! (the workspace builds without a registry, so no `libc`/`memmap2`
//! dependency). Fallbacks keep the function total:
//!
//! * empty files and non-Unix targets use a plain buffered read;
//! * a file that fails to map (exotic filesystems, `/proc` pseudo-files
//!   whose reported size is 0) falls back to `read_to_string`;
//! * invalid UTF-8 is an error either way — the splitter's contract is
//!   `&str`, and a lossy copy would silently shift every byte span.

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;

/// A whole script, either mapped from disk or owned in memory. Derefs to
/// `str`, so call sites pass it wherever a `&str` script is expected.
#[derive(Debug)]
pub enum ScriptInput {
    /// Memory-mapped, validated UTF-8 (Unix only).
    #[cfg(unix)]
    Mapped(Mmap),
    /// Heap-owned fallback (stdin, empty files, non-Unix, map failure).
    Owned(String),
}

impl ScriptInput {
    /// View the script text.
    pub fn as_str(&self) -> &str {
        match self {
            #[cfg(unix)]
            ScriptInput::Mapped(m) => m.as_str(),
            ScriptInput::Owned(s) => s,
        }
    }

    /// Whether this input is a zero-copy mapping (used by `--stats`
    /// output and tests; always `false` off Unix).
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            ScriptInput::Mapped(_) => true,
            ScriptInput::Owned(_) => false,
        }
    }
}

impl Deref for ScriptInput {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for ScriptInput {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// Read the script at `path`, memory-mapping it where possible.
///
/// Returns an error if the file cannot be opened/read or is not valid
/// UTF-8 (span-addressed diagnostics require byte-exact text, so lossy
/// decoding is not an option).
pub fn read_script(path: &str) -> io::Result<ScriptInput> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    #[cfg(unix)]
    {
        // mmap of length 0 is EINVAL; tiny files gain nothing either.
        if len > 0 {
            if let Some(m) = Mmap::map(&file, len as usize) {
                std::str::from_utf8(m.as_bytes()).map_err(invalid_utf8)?;
                return Ok(ScriptInput::Mapped(m));
            }
        }
    }
    let mut buf = String::with_capacity(len as usize);
    file.read_to_string(&mut buf)?;
    Ok(ScriptInput::Owned(buf))
}

/// Read all of stdin as an owned script.
pub fn read_stdin() -> io::Result<ScriptInput> {
    let mut buf = String::new();
    io::stdin().read_to_string(&mut buf)?;
    Ok(ScriptInput::Owned(buf))
}

fn invalid_utf8(e: std::str::Utf8Error) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("script is not valid UTF-8: {e}"))
}

/// A read-only, private memory mapping of a whole file.
#[cfg(unix)]
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE — immutable shared
// reads, no interior mutability.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
impl Mmap {
    /// Map `len` bytes of `file` read-only. `None` on any mmap failure —
    /// callers fall back to a buffered read.
    fn map(file: &File, len: usize) -> Option<Mmap> {
        use std::os::unix::io::AsRawFd;

        const PROT_READ: i32 = 1;
        const MAP_PRIVATE: i32 = 2;

        extern "C" {
            fn mmap(
                addr: *mut std::ffi::c_void,
                len: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                offset: i64,
            ) -> *mut std::ffi::c_void;
        }

        // SAFETY: a fresh anonymous-address, read-only, private file
        // mapping; the fd stays open only for the duration of the call
        // (the mapping survives the fd per POSIX). Failure is reported
        // as MAP_FAILED (-1), checked below.
        let ptr = unsafe {
            mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
        };
        if ptr as isize == -1 || ptr.is_null() {
            return None;
        }
        Some(Mmap { ptr, len })
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, held until Drop.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// The mapped text. Callers only construct `Mmap` through
    /// [`read_script`], which validates UTF-8 up front.
    pub fn as_str(&self) -> &str {
        // SAFETY: validated as UTF-8 at construction in `read_script`.
        unsafe { std::str::from_utf8_unchecked(self.as_bytes()) }
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        extern "C" {
            fn munmap(addr: *mut std::ffi::c_void, len: usize) -> i32;
        }
        // SAFETY: `ptr`/`len` are exactly what mmap returned; unmapping
        // at drop ends the borrow of the pages (no &self outlives self).
        unsafe {
            munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sqlcheck_input_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_a_file_and_round_trips_bytes() {
        let path = temp_path("basic.sql");
        let text = "SELECT * FROM t;\nINSERT INTO t VALUES (1, 'x');\n";
        std::fs::File::create(&path).unwrap().write_all(text.as_bytes()).unwrap();
        let s = read_script(path.to_str().unwrap()).unwrap();
        assert_eq!(s.as_str(), text);
        if cfg!(unix) {
            assert!(s.is_mapped(), "non-empty file on unix should map");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_owned_and_empty() {
        let path = temp_path("empty.sql");
        std::fs::File::create(&path).unwrap();
        let s = read_script(path.to_str().unwrap()).unwrap();
        assert_eq!(s.as_str(), "");
        assert!(!s.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_utf8_is_an_error_not_a_lossy_copy() {
        let path = temp_path("bad.sql");
        std::fs::File::create(&path).unwrap().write_all(&[0x53, 0x45, 0xFF, 0xFE]).unwrap();
        let err = read_script(path.to_str().unwrap()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(read_script("/nonexistent/definitely/missing.sql").is_err());
    }

    #[test]
    fn mapped_input_feeds_the_splitter() {
        let path = temp_path("split.sql");
        let text = "SELECT 1; SELECT 'a;b'; CREATE TRIGGER tr BEFORE INSERT ON t \
                    FOR EACH ROW BEGIN UPDATE u SET a = 1; END;";
        std::fs::File::create(&path).unwrap().write_all(text.as_bytes()).unwrap();
        let s = read_script(path.to_str().unwrap()).unwrap();
        let stmts = sqlcheck_parser::split_stream(&s);
        assert_eq!(stmts.len(), 3, "compound body must stay one statement");
        std::fs::remove_file(&path).ok();
    }
}
