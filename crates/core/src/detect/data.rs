//! Data-analysis detection rules (§4.2, Algorithm 3).
//!
//! These rules read the sampled column profiles in the data context. They
//! both *detect* the Data-category APs of Table 1 and *strengthen* query
//! detections (the MVA data rule "will correctly flag this column as
//! suffering from the MVA AP even if the query rules are unable to detect
//! it").

use crate::anti_pattern::AntiPatternKind;
use crate::context::{ColumnProfile, Context, DataProfile, TableProfile};
use crate::detect::intra::{address_like, external_storage_column, looks_like_token_list};
use crate::detect::DetectionConfig;
use crate::report::{Detection, DetectionSource, Locus};
use sqlcheck_minidb::value::{DataType, Value};

/// Run every data rule over every profiled table (the sequential path).
pub fn detect(data: &DataProfile, ctx: &Context, cfg: &DetectionConfig) -> Vec<Detection> {
    let mut out = Vec::new();
    for table in data.tables() {
        detect_table_into(table, ctx, cfg, &mut out);
    }
    out
}

/// Run every data rule over **one** profiled table — the batch engine's
/// phase slice. Tables are independent under these rules, so appending
/// each table's output in `data.tables()` order reproduces the sequential
/// result byte for byte.
pub(crate) fn detect_table(
    table: &TableProfile,
    ctx: &Context,
    cfg: &DetectionConfig,
) -> Vec<Detection> {
    let mut out = Vec::new();
    detect_table_into(table, ctx, cfg, &mut out);
    out
}

fn detect_table_into(
    table: &TableProfile,
    ctx: &Context,
    cfg: &DetectionConfig,
    out: &mut Vec<Detection>,
) {
    if table.primary_key.is_empty() {
        out.push(col_detection(
            AntiPatternKind::NoPrimaryKey,
            table,
            None,
            format!("table '{}' has no primary key", table.name),
        ));
    } else if table.primary_key.len() == 1 && table.primary_key[0].eq_ignore_ascii_case("id") {
        out.push(col_detection(
            AntiPatternKind::GenericPrimaryKey,
            table,
            None,
            format!("table '{}' uses a generic 'id' primary key", table.name),
        ));
    }
    for col in &table.columns {
        multi_valued_attribute(table, col, cfg, out);
        incorrect_data_type(table, col, cfg, out);
        missing_timezone(table, col, out);
        redundant_column(table, col, cfg, out);
        enumerated_types(table, col, cfg, out);
        denormalized_table(table, col, cfg, out);
        no_domain_constraint(table, col, cfg, out);
        external_data_storage(table, col, cfg, out);
        rounding_errors(table, col, out);
    }
    information_duplication(table, out);
    data_in_metadata(table, out);
    let _ = ctx;
}

/// Data in Metadata (schema shape observed on the live database):
/// numbered column families like `tag1, tag2, tag3`.
fn data_in_metadata(table: &TableProfile, out: &mut Vec<Detection>) {
    use std::collections::BTreeMap;
    let mut stems: BTreeMap<String, usize> = BTreeMap::new();
    for col in &table.columns {
        let stripped = col.name.trim_end_matches(|c: char| c.is_ascii_digit());
        if stripped.len() < col.name.len() && !stripped.is_empty() {
            *stems
                .entry(stripped.trim_end_matches('_').to_ascii_lowercase())
                .or_default() += 1;
        }
    }
    for (stem, n) in stems {
        if n >= 2 {
            out.push(Detection {
                kind: AntiPatternKind::DataInMetadata,
                locus: Locus::Table { table: table.name.clone() },
                message: format!(
                    "table '{}' encodes data in {n} numbered '{stem}N' columns",
                    table.name
                ).into(),
                source: DetectionSource::DataAnalysis,
                span: None,
            });
        }
    }
}

fn col_detection(
    kind: AntiPatternKind,
    table: &TableProfile,
    col: Option<&str>,
    message: String,
) -> Detection {
    Detection {
        kind,
        locus: match col {
            Some(c) => Locus::Column { table: table.name.clone(), column: c.to_string() },
            None => Locus::Table { table: table.name.clone() },
        },
        message: message.into(),
        source: DetectionSource::DataAnalysis,
        span: None,
    }
}

/// Multi-Valued Attribute: a textual, non-key column whose sampled values
/// are mostly delimiter-separated token lists. Address-like columns are
/// excluded (the paper's stated false-positive source).
fn multi_valued_attribute(
    table: &TableProfile,
    col: &ColumnProfile,
    cfg: &DetectionConfig,
    out: &mut Vec<Detection>,
) {
    if col.dtype != DataType::Text || address_like(&col.name) {
        return;
    }
    if table.primary_key.iter().any(|k| k.eq_ignore_ascii_case(&col.name)) {
        return;
    }
    if table.row_count < cfg.data.min_rows {
        return;
    }
    let sample = &col.stats.sample;
    if sample.is_empty() {
        return;
    }
    let listy = sample
        .iter()
        .filter(|v| v.as_str().map(looks_like_token_list).unwrap_or(false))
        .count();
    let fraction = listy as f64 / sample.len() as f64;
    if fraction >= cfg.data.mva_fraction {
        out.push(col_detection(
            AntiPatternKind::MultiValuedAttribute,
            table,
            Some(&col.name),
            format!(
                "{:.0}% of sampled '{}' values are delimiter-separated lists",
                fraction * 100.0,
                col.name
            ),
        ));
    }
}

/// Incorrect Data Type: a TEXT column whose values overwhelmingly parse as
/// numbers.
fn incorrect_data_type(
    table: &TableProfile,
    col: &ColumnProfile,
    cfg: &DetectionConfig,
    out: &mut Vec<Detection>,
) {
    if col.dtype != DataType::Text || table.row_count < cfg.data.min_rows {
        return;
    }
    let sample = &col.stats.sample;
    if sample.is_empty() {
        return;
    }
    let numeric = sample
        .iter()
        .filter(|v| {
            v.as_str()
                .map(|s| {
                    let t = s.trim();
                    !t.is_empty() && (t.parse::<i64>().is_ok() || t.parse::<f64>().is_ok())
                })
                .unwrap_or(false)
        })
        .count();
    let fraction = numeric as f64 / sample.len() as f64;
    if fraction >= cfg.data.wrong_type_fraction {
        out.push(col_detection(
            AntiPatternKind::IncorrectDataType,
            table,
            Some(&col.name),
            format!(
                "{:.0}% of sampled '{}' values are numeric but the column is TEXT",
                fraction * 100.0,
                col.name
            ),
        ));
    }
}

/// Missing Timezone: a timestamp column declared without timezone.
fn missing_timezone(table: &TableProfile, col: &ColumnProfile, out: &mut Vec<Detection>) {
    if col.dtype == DataType::Timestamp && !col.with_timezone {
        out.push(col_detection(
            AntiPatternKind::MissingTimezone,
            table,
            Some(&col.name),
            format!("date-time column '{}' stores no timezone", col.name),
        ));
    }
}

/// Redundant Column: all NULL or a single constant value.
fn redundant_column(
    table: &TableProfile,
    col: &ColumnProfile,
    cfg: &DetectionConfig,
    out: &mut Vec<Detection>,
) {
    if table.row_count < cfg.data.min_rows {
        return;
    }
    if col.stats.null_count == col.stats.row_count {
        out.push(col_detection(
            AntiPatternKind::RedundantColumn,
            table,
            Some(&col.name),
            format!("column '{}' is entirely NULL", col.name),
        ));
    } else if col.stats.is_constant() {
        out.push(col_detection(
            AntiPatternKind::RedundantColumn,
            table,
            Some(&col.name),
            format!(
                "column '{}' holds a single constant value ({})",
                col.name,
                col.stats.min.as_ref().map(|v| v.to_string()).unwrap_or_default()
            ),
        ));
    }
}

/// Enumerated Types (Example 4): the ratio of distinct values to tuples is
/// below the configured threshold and the distinct set is small — whether
/// or not a CHECK constraint already encodes it.
fn enumerated_types(
    table: &TableProfile,
    col: &ColumnProfile,
    cfg: &DetectionConfig,
    out: &mut Vec<Detection>,
) {
    if col.dtype != DataType::Text || table.row_count < cfg.data.min_rows {
        return;
    }
    if col.stats.is_constant() {
        return; // RedundantColumn's territory
    }
    let constrained =
        table.checked_columns.iter().any(|c| c.eq_ignore_ascii_case(&col.name));
    let ratio = col.stats.distinct_ratio();
    let enum_like = col.stats.distinct_count >= 2
        && col.stats.distinct_count <= cfg.data.enum_max_distinct
        && ratio <= cfg.data.enum_distinct_ratio;
    if constrained || enum_like {
        out.push(col_detection(
            AntiPatternKind::EnumeratedTypes,
            table,
            Some(&col.name),
            if constrained {
                format!("CHECK constraint pins '{}' to a fixed value set", col.name)
            } else {
                format!(
                    "'{}' has {} distinct values over {} rows (ratio {:.4}) — an implicit enum",
                    col.name, col.stats.distinct_count, table.row_count, ratio
                )
            },
        ));
    }
}

/// Denormalized Table: a textual column with many repeated values that is
/// clearly not an enum (too many distinct values for that).
fn denormalized_table(
    table: &TableProfile,
    col: &ColumnProfile,
    cfg: &DetectionConfig,
    out: &mut Vec<Detection>,
) {
    if col.dtype != DataType::Text || table.row_count < cfg.data.min_rows {
        return;
    }
    // A declared FK means the repeated values ARE the normalisation.
    if table.foreign_key_columns.iter().any(|c| c.eq_ignore_ascii_case(&col.name)) {
        return;
    }
    let ratio = col.stats.distinct_ratio();
    if col.stats.distinct_count > cfg.data.enum_max_distinct && ratio <= 0.1 {
        out.push(col_detection(
            AntiPatternKind::DenormalizedTable,
            table,
            Some(&col.name),
            format!(
                "'{}' repeats {} distinct values across {} rows — candidates for a lookup table",
                col.name, col.stats.distinct_count, table.row_count
            ),
        ));
    }
}

/// No Domain Constraint: an integer column whose observed values live in a
/// small bounded range (ratings, scores) with no CHECK protecting it.
fn no_domain_constraint(
    table: &TableProfile,
    col: &ColumnProfile,
    cfg: &DetectionConfig,
    out: &mut Vec<Detection>,
) {
    if col.dtype != DataType::Int || table.row_count < cfg.data.min_rows {
        return;
    }
    if table.checked_columns.iter().any(|c| c.eq_ignore_ascii_case(&col.name)) {
        return;
    }
    if table.primary_key.iter().any(|k| k.eq_ignore_ascii_case(&col.name)) {
        return;
    }
    // A foreign key already constrains the domain to the referenced set.
    if table.foreign_key_columns.iter().any(|c| c.eq_ignore_ascii_case(&col.name)) {
        return;
    }
    let (Some(Value::Int(min)), Some(Value::Int(max))) = (&col.stats.min, &col.stats.max)
    else {
        return;
    };
    let bounded = *min >= 0 && *max <= 10 && (*max - *min) >= 1;
    let domain_name = {
        let n = col.name.to_ascii_lowercase();
        ["rating", "score", "stars", "grade", "level", "rank", "priority"]
            .iter()
            .any(|k| n.contains(k))
    };
    if bounded && (domain_name || col.stats.distinct_count <= 11) {
        out.push(col_detection(
            AntiPatternKind::NoDomainConstraint,
            table,
            Some(&col.name),
            format!(
                "'{}' values span [{min}, {max}] but no CHECK constraint enforces the domain",
                col.name
            ),
        ));
    }
}

/// External Data Storage: path-named textual column whose sampled values
/// look like filesystem paths or URLs.
fn external_data_storage(
    table: &TableProfile,
    col: &ColumnProfile,
    cfg: &DetectionConfig,
    out: &mut Vec<Detection>,
) {
    if col.dtype != DataType::Text || table.row_count < cfg.data.min_rows {
        return;
    }
    let named = external_storage_column(&col.name);
    let sample = &col.stats.sample;
    if sample.is_empty() {
        return;
    }
    let pathy = sample
        .iter()
        .filter(|v| {
            v.as_str()
                .map(|s| {
                    s.starts_with('/')
                        || s.starts_with("http://")
                        || s.starts_with("https://")
                        || s.contains(":\\")
                })
                .unwrap_or(false)
        })
        .count();
    if named && pathy as f64 / sample.len() as f64 >= 0.5 {
        out.push(col_detection(
            AntiPatternKind::ExternalDataStorage,
            table,
            Some(&col.name),
            format!("'{}' stores file paths/URLs instead of content", col.name),
        ));
    }
}

/// Rounding Errors: FLOAT columns observed in the live schema.
fn rounding_errors(table: &TableProfile, col: &ColumnProfile, out: &mut Vec<Detection>) {
    if col.dtype == DataType::Float {
        out.push(col_detection(
            AntiPatternKind::RoundingErrors,
            table,
            Some(&col.name),
            format!("'{}' stores fractional data in binary floating point", col.name),
        ));
    }
}

/// Information Duplication: column pairs where one is derived from the
/// other. Detected via (a) derivation-suggestive name pairs (`age` next to
/// a birth-date column, `total`/`sum` next to parts) and (b) statistically
/// identical columns (same distinct/null counts and min/max).
fn information_duplication(table: &TableProfile, out: &mut Vec<Detection>) {
    let lower: Vec<String> =
        table.columns.iter().map(|c| c.name.to_ascii_lowercase()).collect();
    // (a) name pairs
    let has = |pred: &dyn Fn(&str) -> bool| lower.iter().any(|n| pred(n));
    let age = lower.iter().find(|n| *n == "age" || n.ends_with("_age"));
    if let Some(age_col) = age {
        if has(&|n| n.contains("birth") || n.contains("dob")) {
            out.push(col_detection(
                AntiPatternKind::InformationDuplication,
                table,
                Some(age_col),
                format!("'{age_col}' duplicates information derivable from the birth-date column"),
            ));
        }
    }
    // (b) statistically identical column pairs
    for i in 0..table.columns.len() {
        for j in (i + 1)..table.columns.len() {
            let (a, b) = (&table.columns[i], &table.columns[j]);
            if a.dtype != b.dtype || a.stats.row_count < 20 {
                continue;
            }
            let same = a.stats.distinct_count == b.stats.distinct_count
                && a.stats.null_count == b.stats.null_count
                && a.stats.min == b.stats.min
                && a.stats.max == b.stats.max
                && a.stats.distinct_count > 1
                && a.stats.sample == b.stats.sample;
            if same {
                out.push(col_detection(
                    AntiPatternKind::InformationDuplication,
                    table,
                    Some(&b.name),
                    format!("'{}' appears to duplicate '{}'", b.name, a.name),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ContextBuilder, DataAnalysisConfig};
    use crate::detect::Detector;
    use sqlcheck_minidb::prelude::*;

    fn analyze(db: Database) -> crate::report::Report {
        let ctx = ContextBuilder::new()
            .with_database(db, DataAnalysisConfig::default())
            .build();
        Detector::default().detect(&ctx)
    }

    fn text_table(name: &str, col: &str, values: Vec<String>) -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(name)
                .column(Column::new("pk", DataType::Int).not_null())
                .column(Column::new(col, DataType::Text))
                .primary_key(&["pk"]),
        )
        .unwrap();
        for (i, v) in values.into_iter().enumerate() {
            db.insert(name, vec![Value::Int(i as i64), Value::text(v)]).unwrap();
        }
        db
    }

    #[test]
    fn mva_data_rule_fires_on_token_lists() {
        let vals = (0..40).map(|i| format!("U{i},U{}", i + 1)).collect();
        let r = analyze(text_table("Tenants", "User_IDs", vals));
        assert!(r.count(AntiPatternKind::MultiValuedAttribute) >= 1);
    }

    #[test]
    fn mva_data_rule_skips_addresses() {
        let vals = (0..40).map(|i| format!("{i} Main St, Springfield, IL")).collect();
        let r = analyze(text_table("Users", "address", vals));
        assert_eq!(r.count(AntiPatternKind::MultiValuedAttribute), 0);
    }

    #[test]
    fn incorrect_data_type_numeric_text() {
        let vals = (0..40).map(|i| format!("{}", i * 3)).collect();
        let r = analyze(text_table("T", "amount", vals));
        assert_eq!(r.count(AntiPatternKind::IncorrectDataType), 1);
    }

    #[test]
    fn missing_timezone_flagged() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("ev")
                .column(Column::new("id", DataType::Int).not_null())
                .column(Column::new("at", DataType::Timestamp))
                .column(Column::new("at_tz", DataType::Timestamp).with_timezone())
                .primary_key(&["id"]),
        )
        .unwrap();
        db.insert("ev", vec![Value::Int(1), Value::Timestamp(0), Value::Timestamp(0)])
            .unwrap();
        let r = analyze(db);
        let tz: Vec<_> = r
            .detections
            .iter()
            .filter(|d| d.kind == AntiPatternKind::MissingTimezone)
            .collect();
        assert_eq!(tz.len(), 1);
        assert!(tz[0].message.contains("'at'"));
    }

    #[test]
    fn redundant_column_constant_and_all_null() {
        let vals = vec!["en-us".to_string(); 30];
        let r = analyze(text_table("T", "locale", vals));
        assert_eq!(r.count(AntiPatternKind::RedundantColumn), 1);

        let mut db = Database::new();
        db.create_table(
            TableSchema::new("n")
                .column(Column::new("id", DataType::Int).not_null())
                .column(Column::new("unused", DataType::Text))
                .primary_key(&["id"]),
        )
        .unwrap();
        for i in 0..30 {
            db.insert("n", vec![Value::Int(i), Value::Null]).unwrap();
        }
        let r = analyze(db);
        assert_eq!(r.count(AntiPatternKind::RedundantColumn), 1);
    }

    #[test]
    fn enumerated_types_low_cardinality() {
        let vals = (0..60).map(|i| format!("R{}", i % 3)).collect();
        let r = analyze(text_table("U", "role", vals));
        assert!(r.count(AntiPatternKind::EnumeratedTypes) >= 1);
    }

    #[test]
    fn denormalized_table_many_repeats() {
        // 40 distinct cities over 2000 rows: ratio 0.02, distinct > 16.
        let vals = (0..2000).map(|i| format!("city_{}", i % 40)).collect();
        let r = analyze(text_table("O", "city", vals));
        assert!(r.count(AntiPatternKind::DenormalizedTable) >= 1);
    }

    #[test]
    fn no_domain_constraint_rating() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("review")
                .column(Column::new("id", DataType::Int).not_null())
                .column(Column::new("rating", DataType::Int))
                .primary_key(&["id"]),
        )
        .unwrap();
        for i in 0..50 {
            db.insert("review", vec![Value::Int(i), Value::Int(1 + i % 5)]).unwrap();
        }
        let r = analyze(db);
        assert_eq!(r.count(AntiPatternKind::NoDomainConstraint), 1);
    }

    #[test]
    fn domain_constraint_present_suppresses() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("review")
                .column(Column::new("id", DataType::Int).not_null())
                .column(Column::new("rating", DataType::Int))
                .primary_key(&["id"])
                .check(Check::Range {
                    name: "r".into(),
                    column: "rating".into(),
                    min: Value::Int(1),
                    max: Value::Int(5),
                }),
        )
        .unwrap();
        for i in 0..50 {
            db.insert("review", vec![Value::Int(i), Value::Int(1 + i % 5)]).unwrap();
        }
        let r = analyze(db);
        assert_eq!(r.count(AntiPatternKind::NoDomainConstraint), 0);
    }

    #[test]
    fn external_data_storage_paths() {
        let vals = (0..30).map(|i| format!("/var/uploads/photo_{i}.jpg")).collect();
        let r = analyze(text_table("P", "photo_path", vals));
        assert!(r.count(AntiPatternKind::ExternalDataStorage) >= 1);
    }

    #[test]
    fn information_duplication_age_and_dob() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new("person")
                .column(Column::new("id", DataType::Int).not_null())
                .column(Column::new("birth_date", DataType::Timestamp))
                .column(Column::new("age", DataType::Int))
                .primary_key(&["id"]),
        )
        .unwrap();
        for i in 0..25 {
            db.insert(
                "person",
                vec![Value::Int(i), Value::Timestamp(i * 1000), Value::Int(30 + i % 3)],
            )
            .unwrap();
        }
        let r = analyze(db);
        assert!(r.count(AntiPatternKind::InformationDuplication) >= 1);
    }

    #[test]
    fn small_tables_do_not_trigger_distribution_rules() {
        let vals = vec!["a,b".to_string(); 3]; // below min_rows
        let r = analyze(text_table("tiny", "vals", vals));
        assert_eq!(r.count(AntiPatternKind::MultiValuedAttribute), 0);
    }
}
