//! Fingerprint-keyed incremental detection cache, sharded for
//! concurrency.
//!
//! Re-checking a workload after small edits should only pay for the
//! statements whose text actually changed — in the spirit of update-aware
//! incremental view maintenance (Berkholz et al.). The cache maps a
//! statement's literal-sensitive 128-bit content hash
//! (`AnalyzedStatement::text_hash`) to the intra-query detections of that
//! text, stored in **canonical form** (statement loci zeroed, spans
//! statement-relative) so a hit can be fanned out to any occurrence index
//! on any later call.
//!
//! ## Sharding
//!
//! Entries are distributed over `N` **lock-striped shards** by content
//! hash. Every shard carries its own `RwLock`-protected map + FIFO queue
//! and its own atomic hit/miss/eviction counters, so concurrent
//! `check_workload` calls from many sessions sharing one cache (via
//! [`SqlCheck::with_shared_cache`]) contend per shard, not on one
//! structure — and the read-mostly path (lookups) takes **shared** locks
//! only, never an exclusive one. Which shard a key lands on is invisible
//! to callers: hits, misses, and invalidation-driven evictions are
//! per-key decisions, so their totals are identical for 1 shard and for
//! N (property-tested). Only *capacity* eviction is approximate under
//! sharding: the capacity is enforced per shard (`⌈capacity / N⌉` each),
//! so a pathologically skewed key distribution can evict slightly before
//! a single global FIFO would have.
//!
//! ## Validity guard
//!
//! Intra-query rules read the statement itself plus — in contextual mode
//! — the schema catalog (for false-positive suppression). They never read
//! the workload profile or the data profile, so a cached result is valid
//! exactly as long as the detection config and the schema *of the tables
//! the statement touches* are unchanged. The guard therefore has two
//! tiers:
//!
//! * a **config epoch** — a hash of `(DetectionConfig, has-data)`; a
//!   mismatch flushes every shard (a config switch can change any rule's
//!   decision);
//! * **per-table schema versions** — a content digest per catalog table
//!   (definition + its indexes, from
//!   [`SchemaCatalog::table_digests`](crate::context::SchemaCatalog::table_digests)).
//!   Each entry records which tables its statement references; a DDL edit
//!   invalidates **only the entries depending on a changed table**, and a
//!   content-identical schema (e.g. a no-op catalog reload) invalidates
//!   nothing, keeping the cache warm.
//!
//! The epoch check itself is read-mostly too: when the incoming epoch
//! matches the stored one — every warm re-check — the guard takes a
//! shared lock and returns without touching any shard.
//!
//! Inter-query and data-analysis phases always run fresh and are never
//! cached.
//!
//! Eviction is FIFO under the per-shard entry capacity: workload
//! re-checks touch keys in script order, so first-in is a reasonable
//! proxy for least-likely-to-recur, and FIFO keeps the hot path
//! allocation-free.
//!
//! [`SqlCheck::with_shared_cache`]: crate::SqlCheck::with_shared_cache

use crate::hashutil::Prehashed;
use crate::report::Detection;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default entry capacity: comfortably holds the unique texts of a
/// 100k-statement workload with room for churn.
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// Default shard count: enough lock striping that a handful of
/// concurrent sessions rarely collide, small enough that per-shard
/// FIFO capacity stays meaningful.
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// Smallest per-shard FIFO capacity worth striping for; requested shard
/// counts are clamped so each shard holds at least this many entries.
const MIN_SHARD_CAPACITY: usize = 64;

/// Cumulative counters of one [`IncrementalCache`], aggregated across
/// shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that missed (and were then populated).
    pub misses: u64,
    /// Entries dropped — capacity evictions, config flushes, and
    /// per-table dependency invalidations.
    pub evictions: u64,
}

/// One cached analysis result with its schema dependencies.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// Canonical intra-query detections for the statement text.
    detections: Arc<Vec<Detection>>,
    /// Lowercased names of every table the statement references (tables
    /// in FROM/JOIN/DML/DDL position plus column qualifiers, which may
    /// resolve to tables). The entry is invalid as soon as any of these
    /// tables' schema digests change.
    deps: Arc<[String]>,
}

/// The lock-protected interior of one shard.
#[derive(Debug, Clone, Default)]
struct ShardState {
    map: HashMap<u128, CacheEntry, Prehashed>,
    /// Insertion order, for FIFO eviction.
    queue: VecDeque<u128>,
}

/// One lock stripe: its entries plus its share of the counters. The
/// counters are atomics so the hit path never needs the write lock.
#[derive(Debug, Default)]
struct Shard {
    state: RwLock<ShardState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The validity guard shared by all shards.
#[derive(Debug, Clone, Default)]
struct EpochState {
    /// Config epoch the stored entries are valid under; `None` until
    /// first use.
    config_epoch: Option<u64>,
    /// Per-table schema digests the stored entries were analysed under.
    table_versions: BTreeMap<String, u64>,
}

/// Detection-result cache shared across [`check_workload`] calls — and,
/// behind an [`Arc`], across concurrent sessions: every method takes
/// `&self`, lookups only ever acquire shared locks, and writes contend
/// per shard.
///
/// [`check_workload`]: crate::SqlCheck::check_workload
#[derive(Debug)]
pub struct IncrementalCache {
    capacity: usize,
    shard_capacity: usize,
    shards: Box<[Shard]>,
    epoch: RwLock<EpochState>,
}

impl Default for IncrementalCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl Clone for IncrementalCache {
    /// Deep copy: entries, FIFO order, counters, and epoch. Takes each
    /// shard's read lock in turn, so cloning a cache that is concurrently
    /// written produces *some* consistent-per-shard snapshot.
    fn clone(&self) -> Self {
        let shards: Vec<Shard> = self
            .shards
            .iter()
            .map(|s| Shard {
                state: RwLock::new(read_lock(&s.state).clone()),
                hits: AtomicU64::new(s.hits.load(Ordering::Relaxed)),
                misses: AtomicU64::new(s.misses.load(Ordering::Relaxed)),
                evictions: AtomicU64::new(s.evictions.load(Ordering::Relaxed)),
            })
            .collect();
        IncrementalCache {
            capacity: self.capacity,
            shard_capacity: self.shard_capacity,
            shards: shards.into_boxed_slice(),
            epoch: RwLock::new(read_lock(&self.epoch).clone()),
        }
    }
}

/// Acquire a read lock, recovering from poisoning (a panicked worker
/// cannot corrupt the map structurally — every mutation completes or the
/// entry simply stays absent).
fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Acquire a write lock, recovering from poisoning.
fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

impl IncrementalCache {
    /// An empty cache bounded to `capacity` entries (min 1), striped over
    /// [`DEFAULT_CACHE_SHARDS`] shards.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_CACHE_SHARDS)
    }

    /// An empty cache striped over `shards` lock shards (min 1). The
    /// capacity is enforced per shard at `⌈capacity / shards⌉` entries,
    /// so the total never exceeds `capacity + shards − 1`. The shard
    /// count is clamped so every shard holds at least
    /// [`MIN_SHARD_CAPACITY`] entries — striping a tiny cache would turn
    /// its FIFO bound into per-key roulette for no concurrency win.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let n = shards.max(1).min(capacity.div_ceil(MIN_SHARD_CAPACITY).max(1));
        IncrementalCache {
            capacity,
            shard_capacity: capacity.div_ceil(n),
            shards: (0..n).map(|_| Shard::default()).collect(),
            epoch: RwLock::new(EpochState::default()),
        }
    }

    /// The shard a content hash lands on. The 64-bit fold is pushed
    /// through a splitmix64 finalizer before the remainder: the shard
    /// index must stay uniform even for structured hashes, and must not
    /// correlate with the bits [`Prehashed`] feeds the in-shard map
    /// (identical low bits would cluster every shard's map buckets).
    fn shard_of(&self, text_hash: u128) -> &Shard {
        let mut x = (text_hash >> 64) as u64 ^ (text_hash as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        &self.shards[(x % self.shards.len() as u64) as usize]
    }

    /// Align the cache to the current validity guard. A config-epoch
    /// change flushes every shard (any rule may now decide differently
    /// for the same text). A schema change is handled per table: only
    /// entries depending on a table whose digest changed (including
    /// tables that appeared or vanished) are dropped — both counted as
    /// evictions. A content-identical guard — every warm re-check — takes
    /// a shared lock and touches nothing.
    pub(crate) fn ensure_epoch(
        &self,
        config_epoch: u64,
        table_versions: BTreeMap<String, u64>,
    ) {
        {
            let e = read_lock(&self.epoch);
            if e.config_epoch == Some(config_epoch) && e.table_versions == table_versions {
                return;
            }
        }
        // Holding the epoch write lock across the shard sweep makes the
        // guard transition atomic with respect to other `ensure_epoch`
        // callers (concurrent sessions checking under the same config and
        // schema all take the shared-lock fast path above).
        let mut e = write_lock(&self.epoch);
        if e.config_epoch != Some(config_epoch) {
            for shard in self.shards.iter() {
                let mut st = write_lock(&shard.state);
                shard.evictions.fetch_add(st.map.len() as u64, Ordering::Relaxed);
                st.map.clear();
                st.queue.clear();
            }
            e.config_epoch = Some(config_epoch);
            e.table_versions = table_versions;
            return;
        }
        if e.table_versions == table_versions {
            return; // another session already aligned the guard
        }
        // Symmetric diff: a table changed, appeared, or vanished.
        let changed: Vec<&String> = e
            .table_versions
            .iter()
            .filter(|(k, v)| table_versions.get(*k) != Some(v))
            .map(|(k, _)| k)
            .chain(table_versions.keys().filter(|k| !e.table_versions.contains_key(*k)))
            .collect();
        for shard in self.shards.iter() {
            let mut st = write_lock(&shard.state);
            let before = st.map.len();
            st.map.retain(|_, entry| !entry.deps.iter().any(|d| changed.contains(&d)));
            if st.map.len() < before {
                shard.evictions.fetch_add((before - st.map.len()) as u64, Ordering::Relaxed);
                // Purge invalidated keys from the FIFO queue too: a later
                // re-insert of the same text would otherwise enqueue a
                // duplicate key, and the stale front copy would make the
                // capacity loop evict the freshly re-inserted entry as if
                // it were the oldest.
                let ShardState { map, queue } = &mut *st;
                queue.retain(|k| map.contains_key(k));
            }
        }
        drop(changed);
        e.table_versions = table_versions;
    }

    /// Look up the canonical detections for a statement text. Counts a
    /// hit or a miss. Takes the shard's **read** lock only — concurrent
    /// lookups (the warm-path bulk of every re-check) never serialize.
    pub(crate) fn get(&self, text_hash: u128) -> Option<Arc<Vec<Detection>>> {
        let shard = self.shard_of(text_hash);
        let st = read_lock(&shard.state);
        match st.map.get(&text_hash) {
            Some(e) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.detections))
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert canonical detections for a statement text together with the
    /// set of tables they depend on, evicting FIFO past the shard
    /// capacity.
    pub(crate) fn insert(
        &self,
        text_hash: u128,
        detections: Arc<Vec<Detection>>,
        deps: Arc<[String]>,
    ) {
        let shard = self.shard_of(text_hash);
        let mut st = write_lock(&shard.state);
        if st.map.insert(text_hash, CacheEntry { detections, deps }).is_none() {
            st.queue.push_back(text_hash);
        }
        while st.map.len() > self.shard_capacity {
            let Some(oldest) = st.queue.pop_front() else { break };
            if st.map.remove(&oldest).is_some() {
                shard.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Cumulative hit/miss/eviction counters, summed across shards.
    pub fn counters(&self) -> CacheCounters {
        let mut c = CacheCounters::default();
        for s in self.shards.iter() {
            c.hits += s.hits.load(Ordering::Relaxed);
            c.misses += s.misses.load(Ordering::Relaxed);
            c.evictions += s.evictions.load(Ordering::Relaxed);
        }
        c
    }

    /// Entries currently cached, summed across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_lock(&s.state).map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| read_lock(&s.state).map.is_empty())
    }

    /// Total entry capacity (enforced per shard, see
    /// [`IncrementalCache::with_shards`]).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{DetectionSource, Locus};

    fn det() -> Detection {
        Detection {
            kind: crate::anti_pattern::AntiPatternKind::ColumnWildcard,
            locus: Locus::Statement { index: 0 },
            message: "m".into(),
            source: DetectionSource::IntraQuery,
            span: None,
        }
    }

    fn deps(tables: &[&str]) -> Arc<[String]> {
        tables.iter().map(|t| t.to_string()).collect()
    }

    fn versions(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn hit_miss_counters() {
        let c = IncrementalCache::new(4);
        c.ensure_epoch(1, BTreeMap::new());
        assert!(c.get(10).is_none());
        c.insert(10, Arc::new(vec![det()]), deps(&["t"]));
        assert!(c.get(10).is_some());
        assert_eq!(c.counters(), CacheCounters { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn config_epoch_change_flushes_everything() {
        let c = IncrementalCache::new(4);
        c.ensure_epoch(1, BTreeMap::new());
        c.insert(10, Arc::new(vec![]), deps(&["a"]));
        c.insert(11, Arc::new(vec![]), deps(&["b"]));
        c.ensure_epoch(2, BTreeMap::new());
        assert!(c.is_empty());
        assert_eq!(c.counters().evictions, 2);
        // Same epoch again: no further flush.
        c.insert(12, Arc::new(vec![]), deps(&[]));
        c.ensure_epoch(2, BTreeMap::new());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn table_change_invalidates_only_dependents() {
        let c = IncrementalCache::new(8);
        c.ensure_epoch(1, versions(&[("a", 100), ("b", 200)]));
        c.insert(1, Arc::new(vec![]), deps(&["a"]));
        c.insert(2, Arc::new(vec![]), deps(&["b"]));
        c.insert(3, Arc::new(vec![]), deps(&["a", "b"]));
        c.insert(4, Arc::new(vec![]), deps(&[]));
        // Table `a` changes; `b` does not.
        c.ensure_epoch(1, versions(&[("a", 101), ("b", 200)]));
        assert!(c.get(1).is_none(), "entry on changed table dropped");
        assert!(c.get(3).is_none(), "entry touching the changed table dropped");
        assert!(c.get(2).is_some(), "entry on unchanged table survives");
        assert!(c.get(4).is_some(), "schema-independent entry survives");
        assert_eq!(c.counters().evictions, 2);
    }

    #[test]
    fn appearing_and_vanishing_tables_invalidate_dependents() {
        let c = IncrementalCache::new(8);
        c.ensure_epoch(1, versions(&[("a", 1)]));
        c.insert(1, Arc::new(vec![]), deps(&["a"]));
        c.insert(2, Arc::new(vec![]), deps(&["phantom"]));
        // `phantom` appears (a statement referenced it before it existed):
        // the suppression decision for entry 2 may now differ.
        c.ensure_epoch(1, versions(&[("a", 1), ("phantom", 7)]));
        assert!(c.get(2).is_none(), "entry on newly created table dropped");
        assert!(c.get(1).is_some());
        // `a` vanishes.
        c.ensure_epoch(1, versions(&[("phantom", 7)]));
        assert!(c.get(1).is_none(), "entry on dropped table dropped");
    }

    #[test]
    fn identical_versions_keep_cache_warm() {
        let c = IncrementalCache::new(8);
        let v = versions(&[("a", 1), ("b", 2)]);
        c.ensure_epoch(1, v.clone());
        c.insert(1, Arc::new(vec![det()]), deps(&["a", "b"]));
        // Re-attaching a content-identical catalog is a no-op.
        c.ensure_epoch(1, v);
        assert_eq!(c.len(), 1);
        assert_eq!(c.counters().evictions, 0);
        assert!(c.get(1).is_some());
    }

    #[test]
    fn reinsert_after_invalidation_does_not_poison_fifo_order() {
        // One shard so FIFO age is global and the scenario deterministic.
        let c = IncrementalCache::with_shards(2, 1);
        c.ensure_epoch(1, versions(&[("a", 1)]));
        c.insert(10, Arc::new(vec![]), deps(&["a"]));
        c.insert(20, Arc::new(vec![]), deps(&[]));
        // `a` changes: entry 10 is invalidated (queue must drop its key).
        c.ensure_epoch(1, versions(&[("a", 2)]));
        assert!(c.get(10).is_none());
        // Re-insert 10, then push past capacity with 30: the genuinely
        // oldest entry (20) must be the one evicted — not the freshly
        // re-inserted 10 via a stale duplicate queue key.
        c.insert(10, Arc::new(vec![det()]), deps(&["a"]));
        c.insert(30, Arc::new(vec![]), deps(&[]));
        assert_eq!(c.len(), 2);
        assert!(c.get(10).is_some(), "re-inserted entry survives");
        assert!(c.get(30).is_some());
        assert!(c.get(20).is_none(), "oldest entry evicted");
    }

    #[test]
    fn fifo_eviction_bounds_size() {
        let c = IncrementalCache::with_shards(2, 1);
        c.ensure_epoch(1, BTreeMap::new());
        c.insert(1, Arc::new(vec![]), deps(&[]));
        c.insert(2, Arc::new(vec![]), deps(&[]));
        c.insert(3, Arc::new(vec![]), deps(&[]));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none(), "oldest entry evicted");
        assert!(c.get(3).is_some());
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn shard_count_does_not_change_per_key_semantics() {
        // The same operation sequence against 1-shard and N-shard caches
        // (ample capacity) must produce identical hit/miss/eviction
        // totals and identical surviving keys.
        let run = |shards: usize| {
            let c = IncrementalCache::with_shards(1024, shards);
            c.ensure_epoch(7, versions(&[("a", 1), ("b", 2)]));
            for k in 0..64u128 {
                assert!(c.get(k).is_none());
                let dep: &[&str] = if k % 3 == 0 { &["a"] } else { &["b"] };
                c.insert(k, Arc::new(vec![det()]), deps(dep));
            }
            for k in 0..64u128 {
                assert!(c.get(k).is_some());
            }
            // Invalidate table `a`: exactly the k % 3 == 0 entries drop.
            c.ensure_epoch(7, versions(&[("a", 9), ("b", 2)]));
            for k in 0..64u128 {
                assert_eq!(c.get(k).is_some(), k % 3 != 0, "key {k}");
            }
            (c.counters(), c.len())
        };
        let (c1, l1) = run(1);
        for n in [2, 3, 16, 64] {
            assert_eq!(run(n), (c1, l1), "{n} shards must match 1 shard");
        }
    }

    #[test]
    fn concurrent_reads_and_writes_are_safe() {
        let c = IncrementalCache::new(4096);
        c.ensure_epoch(1, BTreeMap::new());
        for k in 0..256u128 {
            c.insert(k, Arc::new(vec![det()]), deps(&["t"]));
        }
        std::thread::scope(|s| {
            for t in 0..4u128 {
                let c = &c;
                s.spawn(move || {
                    for round in 0..50u128 {
                        for k in 0..256u128 {
                            let _ = c.get(k);
                        }
                        c.insert(1000 + t * 100 + round, Arc::new(vec![]), deps(&[]));
                    }
                });
            }
        });
        let counters = c.counters();
        assert_eq!(counters.hits, 4 * 50 * 256, "every pre-inserted key hits");
        assert_eq!(c.len(), 256 + 4 * 50);
    }
}
