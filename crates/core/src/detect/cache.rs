//! Fingerprint-keyed incremental detection cache, sharded for
//! concurrency.
//!
//! Re-checking a workload after small edits should only pay for the
//! statements whose text actually changed — in the spirit of update-aware
//! incremental view maintenance (Berkholz et al.). The cache maps a
//! statement's literal-sensitive 128-bit content hash
//! (`AnalyzedStatement::text_hash`) to the intra-query detections of that
//! text, stored in **canonical form** (statement loci zeroed, spans
//! statement-relative) so a hit can be fanned out to any occurrence index
//! on any later call.
//!
//! ## Sharding
//!
//! Entries are distributed over `N` **lock-striped shards** by content
//! hash. Every shard carries its own `RwLock`-protected map + FIFO queue
//! and its own atomic hit/miss/eviction counters, so concurrent
//! `check_workload` calls from many sessions sharing one cache (via
//! [`SqlCheck::with_shared_cache`]) contend per shard, not on one
//! structure — and the read-mostly path (lookups) takes **shared** locks
//! only, never an exclusive one. Which shard a key lands on is invisible
//! to callers: hits, misses, and invalidation-driven evictions are
//! per-key decisions, so their totals are identical for 1 shard and for
//! N (property-tested). Only *capacity* eviction is approximate under
//! sharding: the capacity is enforced per shard (`⌈capacity / N⌉` each),
//! so a pathologically skewed key distribution can evict slightly before
//! a single global FIFO would have.
//!
//! ## Validity guard
//!
//! Intra-query rules read the statement itself plus — in contextual mode
//! — the schema catalog (for false-positive suppression). They never read
//! the workload profile or the data profile, so a cached result is valid
//! exactly as long as the detection config and the schema *that the
//! statement actually consulted* are unchanged. The guard has two tiers:
//!
//! * a **config epoch** — a hash of `(DetectionConfig, has-data)`; a
//!   mismatch flushes every shard (a config switch can change any rule's
//!   decision);
//! * **schema versions at three granularities** — from
//!   [`SchemaCatalog::versions`](crate::context::SchemaCatalog::versions):
//!   a whole-table digest, a *core* digest (name, primary/foreign keys,
//!   checks — everything except the column list and indexes), and a
//!   per-column digest (the column's definition plus any index that
//!   mentions it). Each entry records a [`DepSet`]: **whole-table** deps
//!   (DDL statements), **core** deps (every table a plain statement
//!   references — covers primary-key and table-presence reads), and
//!   **column** deps (the specific `(table, column)` pairs its rules may
//!   look up). A DDL edit then evicts only what it can affect: `ALTER
//!   TABLE t ADD COLUMN c` changes `t`'s whole-table digest and creates a
//!   `(t, c)` column digest, but leaves `t`'s core and the other columns'
//!   digests unchanged — so a `SELECT a FROM t` entry stays warm while a
//!   `CREATE TABLE t …` entry (whole-table dep) and any statement that
//!   referenced the phantom column `c` are dropped. Evictions are
//!   classified: triggered by a whole-table dep
//!   ([`CacheCounters::table_evictions`]) vs by a core/column dep
//!   ([`CacheCounters::column_evictions`]).
//!
//! The epoch check itself is read-mostly too: when the incoming guard
//! matches the stored one — every warm re-check — it takes a shared lock
//! and returns without touching any shard.
//!
//! ## Unit memo (inter-query and data-analysis phases)
//!
//! Beyond per-statement intra entries, the cache memoizes whole
//! **detection units**: each `inter::RULES` rule and each per-table data
//! unit. A unit is keyed by `(kind, id)` and guarded by a caller-computed
//! **input digest** — a hash of exactly the inputs that unit reads
//! (join-edge set, relevant schema digests, per-column usage fields, data
//! profile digests). [`IncrementalCache::unit_get`] returns the stored
//! detections only when the digest matches, so an edit that leaves a
//! rule's inputs byte-identical replays its detections without running
//! it, and `run_units_weighted` schedules only the dirty units. The memo
//! is flushed with the shards on a config-epoch change; schema and data
//! changes need no sweep because the digest comparison self-validates.
//!
//! Eviction is FIFO under the per-shard entry capacity: workload
//! re-checks touch keys in script order, so first-in is a reasonable
//! proxy for least-likely-to-recur, and FIFO keeps the hot path
//! allocation-free.
//!
//! [`SqlCheck::with_shared_cache`]: crate::SqlCheck::with_shared_cache

use crate::context::SchemaVersions;
use crate::hashutil::Prehashed;
use crate::report::Detection;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default entry capacity: comfortably holds the unique texts of a
/// 100k-statement workload with room for churn.
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// Default shard count: enough lock striping that a handful of
/// concurrent sessions rarely collide, small enough that per-shard
/// FIFO capacity stays meaningful.
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// Smallest per-shard FIFO capacity worth striping for; requested shard
/// counts are clamped so each shard holds at least this many entries.
const MIN_SHARD_CAPACITY: usize = 64;

/// Unit-memo kind tag for inter-query rule units (`id` = rule index).
pub(crate) const UNIT_INTER: u8 = 0;

/// Unit-memo kind tag for per-table data-analysis units (`id` = fnv1a of
/// the lowercased table name).
pub(crate) const UNIT_DATA: u8 = 1;

/// Units the memo holds before it is wholesale cleared — a backstop
/// against unbounded growth across many schemas; real workloads hold
/// `inter::RULES.len() + table count` entries.
const UNIT_MEMO_CAPACITY: usize = 16_384;

/// Cumulative counters of one [`IncrementalCache`], aggregated across
/// shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that missed (and were then populated).
    pub misses: u64,
    /// Entries dropped — capacity evictions, config flushes, and
    /// schema-dependency invalidations.
    pub evictions: u64,
    /// Subset of `evictions` triggered by a **whole-table** dependency
    /// whose table digest changed.
    pub table_evictions: u64,
    /// Subset of `evictions` triggered by a **core or column**
    /// dependency — the column-granular tier; everything the old
    /// table-granularity guard would have dropped but this one kept is
    /// visible as the gap between dependents-of-a-changed-table and
    /// this counter.
    pub column_evictions: u64,
    /// Inter-query rule units replayed from the memo (input digest
    /// unchanged).
    pub inter_units_reused: u64,
    /// Inter-query rule units recomputed (memo miss or digest change).
    pub inter_units_recomputed: u64,
    /// Per-table data-analysis units replayed from the memo.
    pub data_units_reused: u64,
    /// Per-table data-analysis units recomputed.
    pub data_units_recomputed: u64,
}

/// The schema surface one cached intra entry depends on, at three
/// granularities. Names are lowercased; slices are sorted and deduped.
///
/// Safety contract: an entry must record a **whole-table** dep for any
/// table whose full definition its rules may read (DDL statements), a
/// **core** dep for every table whose presence / primary key / foreign
/// keys / checks may be consulted, and a **column** dep for every
/// `(table, column)` whose definition (type, NOT NULL, indexes) may be
/// consulted. Column deps are additionally guarded by their table's core
/// digest inside [`IncrementalCache::ensure_epoch`], so a table that
/// appears or vanishes always invalidates its column dependents even if
/// the entry recorded no core dep for it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepSet {
    /// Whole-table dependencies: invalid when the table's full digest
    /// ([`SchemaVersions::tables`]) changes.
    pub tables: Box<[String]>,
    /// Core dependencies: invalid when the table's core digest
    /// ([`SchemaVersions::cores`]) changes — including the table
    /// appearing or vanishing.
    pub cores: Box<[String]>,
    /// Column dependencies: invalid when the `(table, column)` digest
    /// ([`SchemaVersions::columns`]) changes — or the table's core does.
    pub columns: Box<[(String, String)]>,
}

impl DepSet {
    /// True when the entry depends on no schema object at all.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.cores.is_empty() && self.columns.is_empty()
    }
}

/// One cached analysis result with its schema dependencies.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// Canonical intra-query detections for the statement text.
    detections: Arc<Vec<Detection>>,
    /// Schema objects the statement's rules may have consulted.
    deps: Arc<DepSet>,
}

/// The lock-protected interior of one shard.
#[derive(Debug, Clone, Default)]
struct ShardState {
    map: HashMap<u128, CacheEntry, Prehashed>,
    /// Insertion order, for FIFO eviction.
    queue: VecDeque<u128>,
}

/// One lock stripe: its entries plus its share of the counters. The
/// counters are atomics so the hit path never needs the write lock.
#[derive(Debug, Default)]
struct Shard {
    state: RwLock<ShardState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    table_evictions: AtomicU64,
    column_evictions: AtomicU64,
}

/// The validity guard shared by all shards.
#[derive(Debug, Clone, Default)]
struct EpochState {
    /// Config epoch the stored entries are valid under; `None` until
    /// first use.
    config_epoch: Option<u64>,
    /// Schema versions the stored entries were analysed under.
    versions: SchemaVersions,
}

/// One memoized detection unit: the input digest it was computed under
/// plus its detections (pre-dedup, loci already final — inter/data units
/// never use statement loci, so replay is occurrence-independent).
#[derive(Debug, Clone)]
struct UnitEntry {
    digest: u64,
    detections: Arc<Vec<Detection>>,
}

/// The unit memo plus its counters.
#[derive(Debug, Default)]
struct UnitMemo {
    map: RwLock<HashMap<(u8, u64), UnitEntry>>,
    inter_reused: AtomicU64,
    inter_recomputed: AtomicU64,
    data_reused: AtomicU64,
    data_recomputed: AtomicU64,
}

/// Detection-result cache shared across [`check_workload`] calls — and,
/// behind an [`Arc`], across concurrent sessions: every method takes
/// `&self`, lookups only ever acquire shared locks, and writes contend
/// per shard.
///
/// [`check_workload`]: crate::SqlCheck::check_workload
#[derive(Debug)]
pub struct IncrementalCache {
    capacity: usize,
    shard_capacity: usize,
    shards: Box<[Shard]>,
    epoch: RwLock<EpochState>,
    units: UnitMemo,
}

impl Default for IncrementalCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl Clone for IncrementalCache {
    /// Deep copy: entries, FIFO order, counters, epoch, and unit memo.
    /// Takes each shard's read lock in turn, so cloning a cache that is
    /// concurrently written produces *some* consistent-per-shard
    /// snapshot.
    fn clone(&self) -> Self {
        let shards: Vec<Shard> = self
            .shards
            .iter()
            .map(|s| Shard {
                state: RwLock::new(read_lock(&s.state).clone()),
                hits: AtomicU64::new(s.hits.load(Ordering::Relaxed)),
                misses: AtomicU64::new(s.misses.load(Ordering::Relaxed)),
                evictions: AtomicU64::new(s.evictions.load(Ordering::Relaxed)),
                table_evictions: AtomicU64::new(s.table_evictions.load(Ordering::Relaxed)),
                column_evictions: AtomicU64::new(s.column_evictions.load(Ordering::Relaxed)),
            })
            .collect();
        IncrementalCache {
            capacity: self.capacity,
            shard_capacity: self.shard_capacity,
            shards: shards.into_boxed_slice(),
            epoch: RwLock::new(read_lock(&self.epoch).clone()),
            units: UnitMemo {
                map: RwLock::new(read_lock(&self.units.map).clone()),
                inter_reused: AtomicU64::new(self.units.inter_reused.load(Ordering::Relaxed)),
                inter_recomputed: AtomicU64::new(
                    self.units.inter_recomputed.load(Ordering::Relaxed),
                ),
                data_reused: AtomicU64::new(self.units.data_reused.load(Ordering::Relaxed)),
                data_recomputed: AtomicU64::new(
                    self.units.data_recomputed.load(Ordering::Relaxed),
                ),
            },
        }
    }
}

/// Acquire a read lock, recovering from poisoning (a panicked worker
/// cannot corrupt the map structurally — every mutation completes or the
/// entry simply stays absent).
fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Acquire a write lock, recovering from poisoning.
fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Keys whose digest differs between two version maps — changed,
/// appeared, or vanished.
fn changed_keys<'a, K: Ord + std::hash::Hash>(
    old: &'a std::collections::BTreeMap<K, u64>,
    new: &'a std::collections::BTreeMap<K, u64>,
) -> HashSet<&'a K> {
    old.iter()
        .filter(|(k, v)| new.get(*k) != Some(v))
        .map(|(k, _)| k)
        .chain(new.keys().filter(|k| !old.contains_key(*k)))
        .collect()
}

impl IncrementalCache {
    /// An empty cache bounded to `capacity` entries (min 1), striped over
    /// [`DEFAULT_CACHE_SHARDS`] shards.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_CACHE_SHARDS)
    }

    /// An empty cache striped over `shards` lock shards (min 1). The
    /// capacity is enforced per shard at `⌈capacity / shards⌉` entries,
    /// so the total never exceeds `capacity + shards − 1`. The shard
    /// count is clamped so every shard holds at least
    /// [`MIN_SHARD_CAPACITY`] entries — striping a tiny cache would turn
    /// its FIFO bound into per-key roulette for no concurrency win.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let n = shards.max(1).min(capacity.div_ceil(MIN_SHARD_CAPACITY).max(1));
        IncrementalCache {
            capacity,
            shard_capacity: capacity.div_ceil(n),
            shards: (0..n).map(|_| Shard::default()).collect(),
            epoch: RwLock::new(EpochState::default()),
            units: UnitMemo::default(),
        }
    }

    /// The shard a content hash lands on. The 64-bit fold is pushed
    /// through a splitmix64 finalizer before the remainder: the shard
    /// index must stay uniform even for structured hashes, and must not
    /// correlate with the bits [`Prehashed`] feeds the in-shard map
    /// (identical low bits would cluster every shard's map buckets).
    fn shard_of(&self, text_hash: u128) -> &Shard {
        let mut x = (text_hash >> 64) as u64 ^ (text_hash as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        &self.shards[(x % self.shards.len() as u64) as usize]
    }

    /// Align the cache to the current validity guard. A config-epoch
    /// change flushes every shard and the unit memo (any rule may now
    /// decide differently for the same inputs). A schema change is
    /// handled per dependency: an entry is dropped only when one of its
    /// recorded deps' digests changed — a whole-table dep against the
    /// table digest, a core dep against the core digest, a column dep
    /// against the `(table, column)` digest *or* its table's core (so
    /// appearing/vanishing tables always invalidate their column
    /// dependents). Each drop is counted as an eviction and classified
    /// as table- or column-triggered. A content-identical guard — every
    /// warm re-check — takes a shared lock and touches nothing.
    pub(crate) fn ensure_epoch(&self, config_epoch: u64, versions: &SchemaVersions) {
        {
            let e = read_lock(&self.epoch);
            if e.config_epoch == Some(config_epoch) && e.versions == *versions {
                return;
            }
        }
        // Holding the epoch write lock across the shard sweep makes the
        // guard transition atomic with respect to other `ensure_epoch`
        // callers (concurrent sessions checking under the same config and
        // schema all take the shared-lock fast path above).
        let mut e = write_lock(&self.epoch);
        if e.config_epoch != Some(config_epoch) {
            for shard in self.shards.iter() {
                let mut st = write_lock(&shard.state);
                shard.evictions.fetch_add(st.map.len() as u64, Ordering::Relaxed);
                st.map.clear();
                st.queue.clear();
            }
            write_lock(&self.units.map).clear();
            e.config_epoch = Some(config_epoch);
            e.versions = versions.clone();
            return;
        }
        if e.versions == *versions {
            return; // another session already aligned the guard
        }
        let tables = changed_keys(&e.versions.tables, &versions.tables);
        let cores = changed_keys(&e.versions.cores, &versions.cores);
        let columns = changed_keys(&e.versions.columns, &versions.columns);
        for shard in self.shards.iter() {
            let mut st = write_lock(&shard.state);
            let before = st.map.len();
            let mut by_table = 0u64;
            let mut by_column = 0u64;
            st.map.retain(|_, entry| {
                if entry.deps.tables.iter().any(|t| tables.contains(t)) {
                    by_table += 1;
                    return false;
                }
                let col_hit = entry.deps.cores.iter().any(|t| cores.contains(t))
                    || entry.deps.columns.iter().any(|tc| {
                        columns.contains(tc) || cores.contains(&tc.0)
                    });
                if col_hit {
                    by_column += 1;
                    return false;
                }
                true
            });
            if st.map.len() < before {
                shard.evictions.fetch_add((before - st.map.len()) as u64, Ordering::Relaxed);
                shard.table_evictions.fetch_add(by_table, Ordering::Relaxed);
                shard.column_evictions.fetch_add(by_column, Ordering::Relaxed);
                // Purge invalidated keys from the FIFO queue too: a later
                // re-insert of the same text would otherwise enqueue a
                // duplicate key, and the stale front copy would make the
                // capacity loop evict the freshly re-inserted entry as if
                // it were the oldest.
                let ShardState { map, queue } = &mut *st;
                queue.retain(|k| map.contains_key(k));
            }
        }
        e.versions = versions.clone();
    }

    /// Look up the canonical detections for a statement text. Counts a
    /// hit or a miss. Takes the shard's **read** lock only — concurrent
    /// lookups (the warm-path bulk of every re-check) never serialize.
    pub(crate) fn get(&self, text_hash: u128) -> Option<Arc<Vec<Detection>>> {
        let shard = self.shard_of(text_hash);
        let st = read_lock(&shard.state);
        match st.map.get(&text_hash) {
            Some(e) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.detections))
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert canonical detections for a statement text together with the
    /// schema objects they depend on, evicting FIFO past the shard
    /// capacity.
    pub(crate) fn insert(
        &self,
        text_hash: u128,
        detections: Arc<Vec<Detection>>,
        deps: Arc<DepSet>,
    ) {
        let shard = self.shard_of(text_hash);
        let mut st = write_lock(&shard.state);
        if st.map.insert(text_hash, CacheEntry { detections, deps }).is_none() {
            st.queue.push_back(text_hash);
        }
        while st.map.len() > self.shard_capacity {
            let Some(oldest) = st.queue.pop_front() else { break };
            if st.map.remove(&oldest).is_some() {
                shard.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Look up a memoized detection unit. Returns the stored detections
    /// only when the caller's input `digest` matches the one the unit was
    /// computed under; counts reuse vs recompute per unit kind either
    /// way (a `None` means the caller is about to recompute).
    pub(crate) fn unit_get(&self, kind: u8, id: u64, digest: u64) -> Option<Arc<Vec<Detection>>> {
        let hit = {
            let map = read_lock(&self.units.map);
            map.get(&(kind, id)).filter(|e| e.digest == digest).map(|e| Arc::clone(&e.detections))
        };
        let (reused, recomputed) = match kind {
            UNIT_INTER => (&self.units.inter_reused, &self.units.inter_recomputed),
            _ => (&self.units.data_reused, &self.units.data_recomputed),
        };
        if hit.is_some() { reused } else { recomputed }.fetch_add(1, Ordering::Relaxed);
        hit
    }

    /// Store a detection unit's result under its input digest, replacing
    /// any previous entry for the same `(kind, id)`.
    pub(crate) fn unit_put(&self, kind: u8, id: u64, digest: u64, detections: Arc<Vec<Detection>>) {
        let mut map = write_lock(&self.units.map);
        if map.len() >= UNIT_MEMO_CAPACITY && !map.contains_key(&(kind, id)) {
            map.clear();
        }
        map.insert((kind, id), UnitEntry { digest, detections });
    }

    /// Cumulative counters, summed across shards.
    pub fn counters(&self) -> CacheCounters {
        let mut c = CacheCounters::default();
        for s in self.shards.iter() {
            c.hits += s.hits.load(Ordering::Relaxed);
            c.misses += s.misses.load(Ordering::Relaxed);
            c.evictions += s.evictions.load(Ordering::Relaxed);
            c.table_evictions += s.table_evictions.load(Ordering::Relaxed);
            c.column_evictions += s.column_evictions.load(Ordering::Relaxed);
        }
        c.inter_units_reused = self.units.inter_reused.load(Ordering::Relaxed);
        c.inter_units_recomputed = self.units.inter_recomputed.load(Ordering::Relaxed);
        c.data_units_reused = self.units.data_reused.load(Ordering::Relaxed);
        c.data_units_recomputed = self.units.data_recomputed.load(Ordering::Relaxed);
        c
    }

    /// Entries currently cached, summed across shards (intra entries
    /// only; the unit memo is bounded separately).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_lock(&s.state).map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| read_lock(&s.state).map.is_empty())
    }

    /// Total entry capacity (enforced per shard, see
    /// [`IncrementalCache::with_shards`]).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{DetectionSource, Locus};
    use std::collections::BTreeMap;

    fn det() -> Detection {
        Detection {
            kind: crate::anti_pattern::AntiPatternKind::ColumnWildcard,
            locus: Locus::Statement { index: 0 },
            message: "m".into(),
            source: DetectionSource::IntraQuery,
            span: None,
        }
    }

    /// Whole-table deps only (the pre-column-granularity shape).
    fn deps(tables: &[&str]) -> Arc<DepSet> {
        Arc::new(DepSet {
            tables: tables.iter().map(|t| t.to_string()).collect(),
            ..DepSet::default()
        })
    }

    fn col_deps(cores: &[&str], columns: &[(&str, &str)]) -> Arc<DepSet> {
        Arc::new(DepSet {
            tables: Box::default(),
            cores: cores.iter().map(|t| t.to_string()).collect(),
            columns: columns.iter().map(|(t, c)| (t.to_string(), c.to_string())).collect(),
        })
    }

    /// Versions where table/core/column digests all mirror one per-table
    /// value — good enough for whole-table-dep tests.
    fn versions(pairs: &[(&str, u64)]) -> SchemaVersions {
        SchemaVersions {
            tables: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            cores: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            columns: BTreeMap::new(),
        }
    }

    fn empty() -> SchemaVersions {
        SchemaVersions::default()
    }

    #[test]
    fn hit_miss_counters() {
        let c = IncrementalCache::new(4);
        c.ensure_epoch(1, &empty());
        assert!(c.get(10).is_none());
        c.insert(10, Arc::new(vec![det()]), deps(&["t"]));
        assert!(c.get(10).is_some());
        let counters = c.counters();
        assert_eq!((counters.hits, counters.misses, counters.evictions), (1, 1, 0));
    }

    #[test]
    fn config_epoch_change_flushes_everything() {
        let c = IncrementalCache::new(4);
        c.ensure_epoch(1, &empty());
        c.insert(10, Arc::new(vec![]), deps(&["a"]));
        c.insert(11, Arc::new(vec![]), deps(&["b"]));
        c.unit_put(UNIT_INTER, 0, 99, Arc::new(vec![det()]));
        c.ensure_epoch(2, &empty());
        assert!(c.is_empty());
        assert_eq!(c.counters().evictions, 2);
        assert!(c.unit_get(UNIT_INTER, 0, 99).is_none(), "unit memo flushed with config");
        // Same epoch again: no further flush.
        c.insert(12, Arc::new(vec![]), deps(&[]));
        c.ensure_epoch(2, &empty());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn table_change_invalidates_only_dependents() {
        let c = IncrementalCache::new(8);
        c.ensure_epoch(1, &versions(&[("a", 100), ("b", 200)]));
        c.insert(1, Arc::new(vec![]), deps(&["a"]));
        c.insert(2, Arc::new(vec![]), deps(&["b"]));
        c.insert(3, Arc::new(vec![]), deps(&["a", "b"]));
        c.insert(4, Arc::new(vec![]), deps(&[]));
        // Table `a` changes; `b` does not.
        c.ensure_epoch(1, &versions(&[("a", 101), ("b", 200)]));
        assert!(c.get(1).is_none(), "entry on changed table dropped");
        assert!(c.get(3).is_none(), "entry touching the changed table dropped");
        assert!(c.get(2).is_some(), "entry on unchanged table survives");
        assert!(c.get(4).is_some(), "schema-independent entry survives");
        let counters = c.counters();
        assert_eq!(counters.evictions, 2);
        assert_eq!(counters.table_evictions, 2);
        assert_eq!(counters.column_evictions, 0);
    }

    #[test]
    fn column_dep_survives_sibling_column_change() {
        let c = IncrementalCache::new(8);
        let mut v = versions(&[("t", 1)]);
        v.columns.insert(("t".into(), "a".into()), 10);
        v.columns.insert(("t".into(), "b".into()), 20);
        c.ensure_epoch(1, &v);
        c.insert(1, Arc::new(vec![]), col_deps(&["t"], &[("t", "a")]));
        c.insert(2, Arc::new(vec![]), col_deps(&["t"], &[("t", "b")]));
        c.insert(3, Arc::new(vec![]), deps(&["t"])); // whole-table dep
        // Column `b` changes (e.g. its type, or an index now covers it);
        // the whole-table digest changes with it, the core does not.
        let mut v2 = v.clone();
        v2.tables.insert("t".into(), 2);
        v2.columns.insert(("t".into(), "b".into()), 21);
        c.ensure_epoch(1, &v2);
        assert!(c.get(1).is_some(), "dep on untouched column survives");
        assert!(c.get(2).is_none(), "dep on changed column dropped");
        assert!(c.get(3).is_none(), "whole-table dep dropped");
        let counters = c.counters();
        assert_eq!(counters.table_evictions, 1);
        assert_eq!(counters.column_evictions, 1);
    }

    #[test]
    fn add_column_keeps_entries_on_other_columns() {
        // The headline win: ALTER TABLE t ADD COLUMN changes the table
        // digest and creates a new column digest, but core + existing
        // columns are untouched — only whole-table deps and deps on the
        // (previously phantom) new column fall out.
        let c = IncrementalCache::new(8);
        let mut v = versions(&[("t", 1)]);
        v.columns.insert(("t".into(), "a".into()), 10);
        c.ensure_epoch(1, &v);
        c.insert(1, Arc::new(vec![]), col_deps(&["t"], &[("t", "a")]));
        c.insert(2, Arc::new(vec![]), col_deps(&["t"], &[("t", "c")])); // phantom column
        c.insert(3, Arc::new(vec![]), deps(&["t"]));
        let mut v2 = v.clone();
        v2.tables.insert("t".into(), 2);
        v2.columns.insert(("t".into(), "c".into()), 30); // the new column appears
        c.ensure_epoch(1, &v2);
        assert!(c.get(1).is_some(), "existing-column dep survives ADD COLUMN");
        assert!(c.get(2).is_none(), "phantom-column dep dropped when the column appears");
        assert!(c.get(3).is_none(), "whole-table dep dropped");
    }

    #[test]
    fn core_change_evicts_core_and_column_dependents() {
        // ADD CONSTRAINT PRIMARY KEY: core changes, column digests may
        // not — both core deps and column deps on that table must go
        // (primary-key reads hide behind any column lookup's table).
        let c = IncrementalCache::new(8);
        let mut v = versions(&[("t", 1), ("u", 5)]);
        v.columns.insert(("t".into(), "a".into()), 10);
        v.columns.insert(("u".into(), "x".into()), 50);
        c.ensure_epoch(1, &v);
        c.insert(1, Arc::new(vec![]), col_deps(&["t"], &[("t", "a")]));
        c.insert(2, Arc::new(vec![]), col_deps(&[], &[("t", "a")])); // column dep only
        c.insert(3, Arc::new(vec![]), col_deps(&["u"], &[("u", "x")]));
        let mut v2 = v.clone();
        v2.tables.insert("t".into(), 2);
        v2.cores.insert("t".into(), 9);
        c.ensure_epoch(1, &v2);
        assert!(c.get(1).is_none(), "core dep dropped on core change");
        assert!(c.get(2).is_none(), "column dep guarded by its table's core");
        assert!(c.get(3).is_some(), "other table untouched");
        assert_eq!(c.counters().column_evictions, 2);
    }

    #[test]
    fn appearing_and_vanishing_tables_invalidate_dependents() {
        let c = IncrementalCache::new(8);
        c.ensure_epoch(1, &versions(&[("a", 1)]));
        c.insert(1, Arc::new(vec![]), deps(&["a"]));
        c.insert(2, Arc::new(vec![]), deps(&["phantom"]));
        c.insert(3, Arc::new(vec![]), col_deps(&[], &[("phantom", "c")]));
        // `phantom` appears (a statement referenced it before it existed):
        // the suppression decision for entries 2 and 3 may now differ.
        c.ensure_epoch(1, &versions(&[("a", 1), ("phantom", 7)]));
        assert!(c.get(2).is_none(), "entry on newly created table dropped");
        assert!(c.get(3).is_none(), "column dep on newly created table dropped");
        assert!(c.get(1).is_some());
        // `a` vanishes.
        c.ensure_epoch(1, &versions(&[("phantom", 7)]));
        assert!(c.get(1).is_none(), "entry on dropped table dropped");
    }

    #[test]
    fn identical_versions_keep_cache_warm() {
        let c = IncrementalCache::new(8);
        let v = versions(&[("a", 1), ("b", 2)]);
        c.ensure_epoch(1, &v);
        c.insert(1, Arc::new(vec![det()]), deps(&["a", "b"]));
        // Re-attaching a content-identical catalog is a no-op.
        c.ensure_epoch(1, &v);
        assert_eq!(c.len(), 1);
        assert_eq!(c.counters().evictions, 0);
        assert!(c.get(1).is_some());
    }

    #[test]
    fn unit_memo_validates_digest() {
        let c = IncrementalCache::new(8);
        c.ensure_epoch(1, &empty());
        assert!(c.unit_get(UNIT_INTER, 2, 7).is_none(), "cold memo misses");
        c.unit_put(UNIT_INTER, 2, 7, Arc::new(vec![det()]));
        assert_eq!(c.unit_get(UNIT_INTER, 2, 7).map(|v| v.len()), Some(1));
        assert!(c.unit_get(UNIT_INTER, 2, 8).is_none(), "digest change misses");
        assert!(c.unit_get(UNIT_INTER, 3, 7).is_none(), "other unit misses");
        c.unit_put(UNIT_DATA, 11, 5, Arc::new(vec![]));
        assert!(c.unit_get(UNIT_DATA, 11, 5).is_some());
        let counters = c.counters();
        assert_eq!(counters.inter_units_reused, 1);
        assert_eq!(counters.inter_units_recomputed, 3);
        assert_eq!(counters.data_units_reused, 1);
        assert_eq!(counters.data_units_recomputed, 0);
    }

    #[test]
    fn unit_put_replaces_stale_digest() {
        let c = IncrementalCache::new(8);
        c.ensure_epoch(1, &empty());
        c.unit_put(UNIT_DATA, 1, 10, Arc::new(vec![det()]));
        c.unit_put(UNIT_DATA, 1, 11, Arc::new(vec![]));
        assert!(c.unit_get(UNIT_DATA, 1, 10).is_none(), "old digest gone");
        assert_eq!(c.unit_get(UNIT_DATA, 1, 11).map(|v| v.len()), Some(0));
    }

    #[test]
    fn reinsert_after_invalidation_does_not_poison_fifo_order() {
        // One shard so FIFO age is global and the scenario deterministic.
        let c = IncrementalCache::with_shards(2, 1);
        c.ensure_epoch(1, &versions(&[("a", 1)]));
        c.insert(10, Arc::new(vec![]), deps(&["a"]));
        c.insert(20, Arc::new(vec![]), deps(&[]));
        // `a` changes: entry 10 is invalidated (queue must drop its key).
        c.ensure_epoch(1, &versions(&[("a", 2)]));
        assert!(c.get(10).is_none());
        // Re-insert 10, then push past capacity with 30: the genuinely
        // oldest entry (20) must be the one evicted — not the freshly
        // re-inserted 10 via a stale duplicate queue key.
        c.insert(10, Arc::new(vec![det()]), deps(&["a"]));
        c.insert(30, Arc::new(vec![]), deps(&[]));
        assert_eq!(c.len(), 2);
        assert!(c.get(10).is_some(), "re-inserted entry survives");
        assert!(c.get(30).is_some());
        assert!(c.get(20).is_none(), "oldest entry evicted");
    }

    #[test]
    fn fifo_eviction_bounds_size() {
        let c = IncrementalCache::with_shards(2, 1);
        c.ensure_epoch(1, &empty());
        c.insert(1, Arc::new(vec![]), deps(&[]));
        c.insert(2, Arc::new(vec![]), deps(&[]));
        c.insert(3, Arc::new(vec![]), deps(&[]));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none(), "oldest entry evicted");
        assert!(c.get(3).is_some());
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn shard_count_does_not_change_per_key_semantics() {
        // The same operation sequence against 1-shard and N-shard caches
        // (ample capacity) must produce identical hit/miss/eviction
        // totals and identical surviving keys.
        let run = |shards: usize| {
            let c = IncrementalCache::with_shards(1024, shards);
            c.ensure_epoch(7, &versions(&[("a", 1), ("b", 2)]));
            for k in 0..64u128 {
                assert!(c.get(k).is_none());
                let dep: &[&str] = if k % 3 == 0 { &["a"] } else { &["b"] };
                c.insert(k, Arc::new(vec![det()]), deps(dep));
            }
            for k in 0..64u128 {
                assert!(c.get(k).is_some());
            }
            // Invalidate table `a`: exactly the k % 3 == 0 entries drop.
            c.ensure_epoch(7, &versions(&[("a", 9), ("b", 2)]));
            for k in 0..64u128 {
                assert_eq!(c.get(k).is_some(), k % 3 != 0, "key {k}");
            }
            (c.counters(), c.len())
        };
        let (c1, l1) = run(1);
        for n in [2, 3, 16, 64] {
            assert_eq!(run(n), (c1, l1), "{n} shards must match 1 shard");
        }
    }

    #[test]
    fn concurrent_reads_and_writes_are_safe() {
        let c = IncrementalCache::new(4096);
        c.ensure_epoch(1, &empty());
        for k in 0..256u128 {
            c.insert(k, Arc::new(vec![det()]), deps(&["t"]));
        }
        std::thread::scope(|s| {
            for t in 0..4u128 {
                let c = &c;
                s.spawn(move || {
                    for round in 0..50u128 {
                        for k in 0..256u128 {
                            let _ = c.get(k);
                        }
                        c.insert(1000 + t * 100 + round, Arc::new(vec![]), deps(&[]));
                        c.unit_put(UNIT_INTER, t as u64, round as u64, Arc::new(vec![]));
                        let _ = c.unit_get(UNIT_INTER, t as u64, round as u64);
                    }
                });
            }
        });
        let counters = c.counters();
        assert_eq!(counters.hits, 4 * 50 * 256, "every pre-inserted key hits");
        assert_eq!(c.len(), 256 + 4 * 50);
    }
}
