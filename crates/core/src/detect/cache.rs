//! Fingerprint-keyed incremental detection cache.
//!
//! Re-checking a workload after small edits should only pay for the
//! statements whose text actually changed — in the spirit of update-aware
//! incremental view maintenance (Berkholz et al.). The cache maps a
//! statement's literal-sensitive 128-bit content hash
//! (`AnalyzedStatement::text_hash`) to the intra-query detections of that
//! text, stored in **canonical form** (statement loci zeroed) so a hit
//! can be fanned out to any occurrence index on any later call.
//!
//! ## Validity guard
//!
//! Intra-query rules read the statement itself plus — in contextual mode
//! — the schema catalog (for false-positive suppression). They never read
//! the workload profile or the data profile, so a cached result is valid
//! exactly as long as the detection config and the schema the statement
//! was analysed under are unchanged. The cache therefore carries an
//! *epoch*: a hash of `(DetectionConfig, SchemaCatalog, has-data)`. A
//! lookup under a different epoch flushes the whole cache (counted as
//! evictions) — conservative, but never wrong. Inter-query and
//! data-analysis phases always run fresh and are never cached.
//!
//! Eviction is FIFO under a fixed entry capacity: workload re-checks
//! touch keys in script order, so first-in is a reasonable proxy for
//! least-likely-to-recur, and FIFO keeps the hot path allocation-free.

use crate::hashutil::Prehashed;
use crate::report::Detection;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Default entry capacity: comfortably holds the unique texts of a
/// 100k-statement workload with room for churn.
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// Cumulative counters of one [`IncrementalCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that missed (and were then populated).
    pub misses: u64,
    /// Entries dropped — capacity evictions plus epoch flushes.
    pub evictions: u64,
}

/// Detection-result cache shared across [`check_workload`] calls.
///
/// [`check_workload`]: crate::SqlCheck::check_workload
#[derive(Debug, Clone)]
pub struct IncrementalCache {
    capacity: usize,
    /// Epoch the stored entries are valid under; `None` until first use.
    epoch: Option<u64>,
    map: HashMap<u128, Arc<Vec<Detection>>, Prehashed>,
    /// Insertion order, for FIFO eviction.
    queue: VecDeque<u128>,
    counters: CacheCounters,
}

impl Default for IncrementalCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl IncrementalCache {
    /// An empty cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        IncrementalCache {
            capacity: capacity.max(1),
            epoch: None,
            map: HashMap::with_hasher(Prehashed::default()),
            queue: VecDeque::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Align the cache to `epoch` (config + schema hash). A change
    /// flushes every entry — counted as evictions — because contextual
    /// intra-query rules may now decide differently for the same text.
    pub(crate) fn ensure_epoch(&mut self, epoch: u64) {
        if self.epoch != Some(epoch) {
            self.counters.evictions += self.map.len() as u64;
            self.map.clear();
            self.queue.clear();
            self.epoch = Some(epoch);
        }
    }

    /// Look up the canonical detections for a statement text. Counts a
    /// hit or a miss.
    pub(crate) fn get(&mut self, text_hash: u128) -> Option<Arc<Vec<Detection>>> {
        match self.map.get(&text_hash) {
            Some(v) => {
                self.counters.hits += 1;
                Some(Arc::clone(v))
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Insert canonical detections for a statement text, evicting FIFO
    /// past capacity.
    pub(crate) fn insert(&mut self, text_hash: u128, detections: Arc<Vec<Detection>>) {
        if self.map.insert(text_hash, detections).is_none() {
            self.queue.push_back(text_hash);
        }
        while self.map.len() > self.capacity {
            let Some(oldest) = self.queue.pop_front() else { break };
            if self.map.remove(&oldest).is_some() {
                self.counters.evictions += 1;
            }
        }
    }

    /// Cumulative hit/miss/eviction counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{DetectionSource, Locus};

    fn det() -> Detection {
        Detection {
            kind: crate::anti_pattern::AntiPatternKind::ColumnWildcard,
            locus: Locus::Statement { index: 0 },
            message: "m".into(),
            source: DetectionSource::IntraQuery,
        }
    }

    #[test]
    fn hit_miss_counters() {
        let mut c = IncrementalCache::new(4);
        c.ensure_epoch(1);
        assert!(c.get(10).is_none());
        c.insert(10, Arc::new(vec![det()]));
        assert!(c.get(10).is_some());
        assert_eq!(c.counters(), CacheCounters { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn epoch_change_flushes() {
        let mut c = IncrementalCache::new(4);
        c.ensure_epoch(1);
        c.insert(10, Arc::new(vec![]));
        c.insert(11, Arc::new(vec![]));
        c.ensure_epoch(2);
        assert!(c.is_empty());
        assert_eq!(c.counters().evictions, 2);
        // Same epoch again: no further flush.
        c.insert(12, Arc::new(vec![]));
        c.ensure_epoch(2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fifo_eviction_bounds_size() {
        let mut c = IncrementalCache::new(2);
        c.ensure_epoch(1);
        c.insert(1, Arc::new(vec![]));
        c.insert(2, Arc::new(vec![]));
        c.insert(3, Arc::new(vec![]));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none(), "oldest entry evicted");
        assert!(c.get(3).is_some());
        assert_eq!(c.counters().evictions, 1);
    }
}
