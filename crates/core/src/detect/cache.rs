//! Fingerprint-keyed incremental detection cache.
//!
//! Re-checking a workload after small edits should only pay for the
//! statements whose text actually changed — in the spirit of update-aware
//! incremental view maintenance (Berkholz et al.). The cache maps a
//! statement's literal-sensitive 128-bit content hash
//! (`AnalyzedStatement::text_hash`) to the intra-query detections of that
//! text, stored in **canonical form** (statement loci zeroed, spans
//! cleared) so a hit can be fanned out to any occurrence index on any
//! later call.
//!
//! ## Validity guard
//!
//! Intra-query rules read the statement itself plus — in contextual mode
//! — the schema catalog (for false-positive suppression). They never read
//! the workload profile or the data profile, so a cached result is valid
//! exactly as long as the detection config and the schema *of the tables
//! the statement touches* are unchanged. The guard therefore has two
//! tiers:
//!
//! * a **config epoch** — a hash of `(DetectionConfig, has-data)`; a
//!   mismatch flushes the whole cache (a config switch can change any
//!   rule's decision);
//! * **per-table schema versions** — a content digest per catalog table
//!   (definition + its indexes, from
//!   [`SchemaCatalog::table_digests`](crate::context::SchemaCatalog::table_digests)).
//!   Each entry records which tables its statement references; a DDL edit
//!   invalidates **only the entries depending on a changed table**, and a
//!   content-identical schema (e.g. a no-op catalog reload) invalidates
//!   nothing, keeping the cache warm.
//!
//! Inter-query and data-analysis phases always run fresh and are never
//! cached.
//!
//! Eviction is FIFO under a fixed entry capacity: workload re-checks
//! touch keys in script order, so first-in is a reasonable proxy for
//! least-likely-to-recur, and FIFO keeps the hot path allocation-free.

use crate::hashutil::Prehashed;
use crate::report::Detection;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Default entry capacity: comfortably holds the unique texts of a
/// 100k-statement workload with room for churn.
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// Cumulative counters of one [`IncrementalCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that missed (and were then populated).
    pub misses: u64,
    /// Entries dropped — capacity evictions, config flushes, and
    /// per-table dependency invalidations.
    pub evictions: u64,
}

/// One cached analysis result with its schema dependencies.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// Canonical intra-query detections for the statement text.
    detections: Arc<Vec<Detection>>,
    /// Lowercased names of every table the statement references (tables
    /// in FROM/JOIN/DML/DDL position plus column qualifiers, which may
    /// resolve to tables). The entry is invalid as soon as any of these
    /// tables' schema digests change.
    deps: Arc<[String]>,
}

/// Detection-result cache shared across [`check_workload`] calls.
///
/// [`check_workload`]: crate::SqlCheck::check_workload
#[derive(Debug, Clone)]
pub struct IncrementalCache {
    capacity: usize,
    /// Config epoch the stored entries are valid under; `None` until
    /// first use.
    config_epoch: Option<u64>,
    /// Per-table schema digests the stored entries were analysed under.
    table_versions: BTreeMap<String, u64>,
    map: HashMap<u128, CacheEntry, Prehashed>,
    /// Insertion order, for FIFO eviction.
    queue: VecDeque<u128>,
    counters: CacheCounters,
}

impl Default for IncrementalCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl IncrementalCache {
    /// An empty cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        IncrementalCache {
            capacity: capacity.max(1),
            config_epoch: None,
            table_versions: BTreeMap::new(),
            map: HashMap::with_hasher(Prehashed::default()),
            queue: VecDeque::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Align the cache to the current validity guard. A config-epoch
    /// change flushes every entry (any rule may now decide differently
    /// for the same text). A schema change is handled per table: only
    /// entries depending on a table whose digest changed (including
    /// tables that appeared or vanished) are dropped — both counted as
    /// evictions. A content-identical schema invalidates nothing.
    pub(crate) fn ensure_epoch(
        &mut self,
        config_epoch: u64,
        table_versions: BTreeMap<String, u64>,
    ) {
        if self.config_epoch != Some(config_epoch) {
            self.counters.evictions += self.map.len() as u64;
            self.map.clear();
            self.queue.clear();
            self.config_epoch = Some(config_epoch);
            self.table_versions = table_versions;
            return;
        }
        if self.table_versions == table_versions {
            return;
        }
        // Symmetric diff: a table changed, appeared, or vanished.
        let changed: Vec<&String> = self
            .table_versions
            .iter()
            .filter(|(k, v)| table_versions.get(*k) != Some(v))
            .map(|(k, _)| k)
            .chain(table_versions.keys().filter(|k| !self.table_versions.contains_key(*k)))
            .collect();
        let before = self.map.len();
        self.map.retain(|_, e| !e.deps.iter().any(|d| changed.contains(&d)));
        if self.map.len() < before {
            self.counters.evictions += (before - self.map.len()) as u64;
            // Purge invalidated keys from the FIFO queue too: a later
            // re-insert of the same text would otherwise enqueue a
            // duplicate key, and the stale front copy would make the
            // capacity loop evict the freshly re-inserted entry as if it
            // were the oldest.
            let map = &self.map;
            self.queue.retain(|k| map.contains_key(k));
        }
        self.table_versions = table_versions;
    }

    /// Look up the canonical detections for a statement text. Counts a
    /// hit or a miss.
    pub(crate) fn get(&mut self, text_hash: u128) -> Option<Arc<Vec<Detection>>> {
        match self.map.get(&text_hash) {
            Some(e) => {
                self.counters.hits += 1;
                Some(Arc::clone(&e.detections))
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Insert canonical detections for a statement text together with the
    /// set of tables they depend on, evicting FIFO past capacity.
    pub(crate) fn insert(
        &mut self,
        text_hash: u128,
        detections: Arc<Vec<Detection>>,
        deps: Arc<[String]>,
    ) {
        if self.map.insert(text_hash, CacheEntry { detections, deps }).is_none() {
            self.queue.push_back(text_hash);
        }
        while self.map.len() > self.capacity {
            let Some(oldest) = self.queue.pop_front() else { break };
            if self.map.remove(&oldest).is_some() {
                self.counters.evictions += 1;
            }
        }
    }

    /// Cumulative hit/miss/eviction counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{DetectionSource, Locus};

    fn det() -> Detection {
        Detection {
            kind: crate::anti_pattern::AntiPatternKind::ColumnWildcard,
            locus: Locus::Statement { index: 0 },
            message: "m".into(),
            source: DetectionSource::IntraQuery,
            span: None,
        }
    }

    fn deps(tables: &[&str]) -> Arc<[String]> {
        tables.iter().map(|t| t.to_string()).collect()
    }

    fn versions(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn hit_miss_counters() {
        let mut c = IncrementalCache::new(4);
        c.ensure_epoch(1, BTreeMap::new());
        assert!(c.get(10).is_none());
        c.insert(10, Arc::new(vec![det()]), deps(&["t"]));
        assert!(c.get(10).is_some());
        assert_eq!(c.counters(), CacheCounters { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn config_epoch_change_flushes_everything() {
        let mut c = IncrementalCache::new(4);
        c.ensure_epoch(1, BTreeMap::new());
        c.insert(10, Arc::new(vec![]), deps(&["a"]));
        c.insert(11, Arc::new(vec![]), deps(&["b"]));
        c.ensure_epoch(2, BTreeMap::new());
        assert!(c.is_empty());
        assert_eq!(c.counters().evictions, 2);
        // Same epoch again: no further flush.
        c.insert(12, Arc::new(vec![]), deps(&[]));
        c.ensure_epoch(2, BTreeMap::new());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn table_change_invalidates_only_dependents() {
        let mut c = IncrementalCache::new(8);
        c.ensure_epoch(1, versions(&[("a", 100), ("b", 200)]));
        c.insert(1, Arc::new(vec![]), deps(&["a"]));
        c.insert(2, Arc::new(vec![]), deps(&["b"]));
        c.insert(3, Arc::new(vec![]), deps(&["a", "b"]));
        c.insert(4, Arc::new(vec![]), deps(&[]));
        // Table `a` changes; `b` does not.
        c.ensure_epoch(1, versions(&[("a", 101), ("b", 200)]));
        assert!(c.get(1).is_none(), "entry on changed table dropped");
        assert!(c.get(3).is_none(), "entry touching the changed table dropped");
        assert!(c.get(2).is_some(), "entry on unchanged table survives");
        assert!(c.get(4).is_some(), "schema-independent entry survives");
        assert_eq!(c.counters().evictions, 2);
    }

    #[test]
    fn appearing_and_vanishing_tables_invalidate_dependents() {
        let mut c = IncrementalCache::new(8);
        c.ensure_epoch(1, versions(&[("a", 1)]));
        c.insert(1, Arc::new(vec![]), deps(&["a"]));
        c.insert(2, Arc::new(vec![]), deps(&["phantom"]));
        // `phantom` appears (a statement referenced it before it existed):
        // the suppression decision for entry 2 may now differ.
        c.ensure_epoch(1, versions(&[("a", 1), ("phantom", 7)]));
        assert!(c.get(2).is_none(), "entry on newly created table dropped");
        assert!(c.get(1).is_some());
        // `a` vanishes.
        c.ensure_epoch(1, versions(&[("phantom", 7)]));
        assert!(c.get(1).is_none(), "entry on dropped table dropped");
    }

    #[test]
    fn identical_versions_keep_cache_warm() {
        let mut c = IncrementalCache::new(8);
        let v = versions(&[("a", 1), ("b", 2)]);
        c.ensure_epoch(1, v.clone());
        c.insert(1, Arc::new(vec![det()]), deps(&["a", "b"]));
        // Re-attaching a content-identical catalog is a no-op.
        c.ensure_epoch(1, v);
        assert_eq!(c.len(), 1);
        assert_eq!(c.counters().evictions, 0);
        assert!(c.get(1).is_some());
    }

    #[test]
    fn reinsert_after_invalidation_does_not_poison_fifo_order() {
        let mut c = IncrementalCache::new(2);
        c.ensure_epoch(1, versions(&[("a", 1)]));
        c.insert(10, Arc::new(vec![]), deps(&["a"]));
        c.insert(20, Arc::new(vec![]), deps(&[]));
        // `a` changes: entry 10 is invalidated (queue must drop its key).
        c.ensure_epoch(1, versions(&[("a", 2)]));
        assert!(c.get(10).is_none());
        // Re-insert 10, then push past capacity with 30: the genuinely
        // oldest entry (20) must be the one evicted — not the freshly
        // re-inserted 10 via a stale duplicate queue key.
        c.insert(10, Arc::new(vec![det()]), deps(&["a"]));
        c.insert(30, Arc::new(vec![]), deps(&[]));
        assert_eq!(c.len(), 2);
        assert!(c.get(10).is_some(), "re-inserted entry survives");
        assert!(c.get(30).is_some());
        assert!(c.get(20).is_none(), "oldest entry evicted");
    }

    #[test]
    fn fifo_eviction_bounds_size() {
        let mut c = IncrementalCache::new(2);
        c.ensure_epoch(1, BTreeMap::new());
        c.insert(1, Arc::new(vec![]), deps(&[]));
        c.insert(2, Arc::new(vec![]), deps(&[]));
        c.insert(3, Arc::new(vec![]), deps(&[]));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none(), "oldest entry evicted");
        assert!(c.get(3).is_some());
        assert_eq!(c.counters().evictions, 1);
    }
}
