//! Inter-query detection rules (§4.1 ❷).
//!
//! These rules need the whole application context: the join graph, the
//! schema catalog, the workload profile, and (when present) data profiles.
//! They detect the APs no single statement can reveal — No Foreign Key,
//! Index Overuse/Underuse (Example 5), Clone Table — and apply the
//! paper's false-positive eliminators (e.g. the low-cardinality index
//! refinement of Fig 8c).

use crate::anti_pattern::AntiPatternKind;
use crate::context::Context;
use crate::detect::DetectionConfig;
use crate::report::{Detection, DetectionSource, Locus};

/// One inter-query rule, as a unit the batch engine can schedule on its
/// worker pool. All rules share this signature so the phase can be
/// sliced; appending each unit's output in [`RULES`] order reproduces the
/// sequential result byte for byte.
pub(crate) type InterRule = fn(&Context, &DetectionConfig, &mut Vec<Detection>);

/// The inter-query rules in their canonical output order.
pub(crate) const RULES: &[InterRule] =
    &[no_foreign_key, index_underuse, index_overuse, clone_table];

/// Run all inter-query rules (the sequential path).
pub fn detect(ctx: &Context, cfg: &DetectionConfig) -> Vec<Detection> {
    let mut out = Vec::new();
    for rule in RULES {
        rule(ctx, cfg, &mut out);
    }
    out
}

/// Run the `unit`-th rule alone (the batch engine's phase slice).
pub(crate) fn detect_unit(unit: usize, ctx: &Context, cfg: &DetectionConfig) -> Vec<Detection> {
    let mut out = Vec::new();
    RULES[unit](ctx, cfg, &mut out);
    out
}

/// No Foreign Key (Example 3): the workload joins two tables on columns
/// with no declared FK between them, and one side is a primary key — the
/// classic unenforced one-to-many relationship.
fn no_foreign_key(ctx: &Context, _cfg: &DetectionConfig, out: &mut Vec<Detection>) {
    for edge in ctx.workload.join_edges.keys() {
        let (lt, lc) = (&edge.left.0, &edge.left.1);
        let (rt, rc) = (&edge.right.0, &edge.right.1);
        if lt == rt {
            continue; // self joins handled by AdjacencyList
        }
        let (Some(lti), Some(rti)) = (ctx.schema.table(lt), ctx.schema.table(rt)) else {
            continue; // tables unknown — cannot decide with confidence
        };
        let left_is_pk =
            lti.primary_key.len() == 1 && lti.primary_key[0].eq_ignore_ascii_case(lc);
        let right_is_pk =
            rti.primary_key.len() == 1 && rti.primary_key[0].eq_ignore_ascii_case(rc);
        if !(left_is_pk || right_is_pk) {
            continue;
        }
        if ctx.schema.fk_between(lt, lc, rt, rc) {
            continue;
        }
        // The referencing side is the non-PK side.
        let (ref_table, ref_col, target) =
            if left_is_pk { (rt, rc, lt) } else { (lt, lc, rt) };
        out.push(Detection {
            kind: AntiPatternKind::NoForeignKey,
            locus: Locus::Column { table: ref_table.clone(), column: ref_col.clone() },
            message: format!(
                "queries join {ref_table}.{ref_col} to {target}'s primary key but no foreign key is declared"
            ).into(),
            source: DetectionSource::InterQuery,
            span: None,
        });
    }
}

/// Index Underuse: a column carries equality/group-by traffic on a known
/// table with no index whose leading column matches. The data-analysis
/// refinement suppresses low-cardinality columns, where an index scan is
/// *slower* than a sequential scan (Fig 8c).
fn index_underuse(ctx: &Context, cfg: &DetectionConfig, out: &mut Vec<Detection>) {
    for (table, column, usage) in ctx.workload.iter_usage() {
        if usage.eq_predicates == 0 && usage.group_by == 0 {
            continue;
        }
        let Some(_tinfo) = ctx.schema.table(table) else { continue };
        if ctx.schema.has_index_on(table, column) {
            continue;
        }
        // Data refinement: low-cardinality columns don't benefit.
        if let Some(data) = &ctx.data {
            if let Some(tp) = data.table(table) {
                if let Some(cp) = tp.column(column) {
                    if tp.row_count >= cfg.data.min_rows
                        && cp.stats.distinct_ratio() < cfg.data.low_cardinality_ratio
                    {
                        continue; // index would be slower than a scan
                    }
                }
            }
        }
        out.push(Detection {
            kind: AntiPatternKind::IndexUnderuse,
            locus: Locus::Column { table: table.to_string(), column: column.to_string() },
            message: format!(
                "{} equality predicate(s) and {} GROUP BY use(s) on {table}.{column}, which has no index",
                usage.eq_predicates, usage.group_by
            ).into(),
            source: DetectionSource::InterQuery,
            span: None,
        });
    }
}

/// Index Overuse (Example 5): an index is flagged when the workload never
/// touches its leading column, or when it is a strict prefix of another
/// index (the composite already serves its queries).
fn index_overuse(ctx: &Context, _cfg: &DetectionConfig, out: &mut Vec<Detection>) {
    let indexes = &ctx.schema.indexes;
    for (i, idx) in indexes.iter().enumerate() {
        let leading = match idx.columns.first() {
            Some(c) => c,
            None => continue,
        };
        let used = ctx
            .workload
            .usage(&idx.table, leading)
            .map(|u| u.reads() > 0)
            .unwrap_or(false);
        let shadowed = indexes.iter().enumerate().any(|(j, other)| {
            i != j
                && other.table.eq_ignore_ascii_case(&idx.table)
                && other.columns.len() > idx.columns.len()
                && other
                    .columns
                    .iter()
                    .zip(&idx.columns)
                    .all(|(a, b)| a.eq_ignore_ascii_case(b))
        });
        if !used || shadowed {
            let reason = if shadowed {
                format!(
                    "index '{}' is a prefix of a wider composite index on {}",
                    idx.name, idx.table
                )
            } else {
                format!(
                    "index '{}' on {}({}) is never used by the workload but taxes every write",
                    idx.name,
                    idx.table,
                    idx.columns.join(", ")
                )
            };
            out.push(Detection {
                kind: AntiPatternKind::IndexOveruse,
                locus: Locus::Index { index: idx.name.to_string() },
                message: reason.into(),
                source: DetectionSource::InterQuery,
                span: None,
            });
        }
    }
}

/// Clone Table: several tables named `<stem>_N` / `<stem>N`.
fn clone_table(ctx: &Context, _cfg: &DetectionConfig, out: &mut Vec<Detection>) {
    use std::collections::BTreeMap;
    let mut stems: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for t in ctx.schema.tables() {
        let stripped = t.name.trim_end_matches(|c: char| c.is_ascii_digit());
        if stripped.len() < t.name.len() && !stripped.is_empty() {
            let stem = stripped.trim_end_matches('_').to_ascii_lowercase();
            if !stem.is_empty() {
                stems.entry(stem).or_default().push(t.name.to_string());
            }
        }
    }
    for (stem, tables) in stems {
        if tables.len() >= 2 {
            // One detection per member table so fixes and reports anchor
            // at the concrete object (and statement-level comparisons can
            // attribute them).
            for table in &tables {
                out.push(Detection {
                    kind: AntiPatternKind::CloneTable,
                    locus: Locus::Table { table: table.clone() },
                    message: format!(
                        "table '{table}' is one of {} clones of the '{stem}_N' pattern ({})",
                        tables.len(),
                        tables.join(", ")
                    ).into(),
                    source: DetectionSource::InterQuery,
                    span: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextBuilder;
    use crate::detect::Detector;

    fn kinds(sql: &str) -> Vec<AntiPatternKind> {
        let ctx = ContextBuilder::new().add_script(sql).build();
        Detector::default().detect(&ctx).kinds()
    }

    #[test]
    fn no_foreign_key_from_paper_example3() {
        // Example 3: Tenant / Questionnaire joined without an FK.
        let sql = "CREATE TABLE Tenant (Tenant_ID INTEGER PRIMARY KEY, \
                     Zone_ID VARCHAR(30) NOT NULL, Active BOOLEAN);\
                   CREATE TABLE Questionnaire (Questionnaire_ID INTEGER PRIMARY KEY, \
                     Tenant_ID INTEGER, Name VARCHAR(30), Editable BOOLEAN);\
                   SELECT q.Name, q.Editable, t.Active FROM Questionnaire q \
                     JOIN Tenant t ON t.Tenant_ID = q.Tenant_ID WHERE q.Editable = true;";
        assert!(kinds(sql).contains(&AntiPatternKind::NoForeignKey));
    }

    #[test]
    fn fk_declared_suppresses_detection() {
        let sql = "CREATE TABLE Tenant (Tenant_ID INTEGER PRIMARY KEY);\
                   CREATE TABLE Q (Q_ID INTEGER PRIMARY KEY, \
                     Tenant_ID INTEGER REFERENCES Tenant(Tenant_ID));\
                   SELECT * FROM Q JOIN Tenant t ON t.Tenant_ID = Q.Tenant_ID;";
        assert!(!kinds(sql).contains(&AntiPatternKind::NoForeignKey));
    }

    #[test]
    fn index_underuse_on_hot_predicate() {
        let sql = "CREATE TABLE t (id INT PRIMARY KEY, zone TEXT);\
                   SELECT * FROM t WHERE zone = 'Z1';\
                   SELECT * FROM t WHERE zone = 'Z2';";
        assert!(kinds(sql).contains(&AntiPatternKind::IndexUnderuse));
        let with_index = format!("{sql} CREATE INDEX iz ON t (zone);");
        assert!(!kinds(&with_index).contains(&AntiPatternKind::IndexUnderuse));
    }

    #[test]
    fn pk_predicate_is_not_underuse() {
        let sql = "CREATE TABLE t (id INT PRIMARY KEY);\
                   SELECT * FROM t WHERE id = 5;";
        assert!(!kinds(sql).contains(&AntiPatternKind::IndexUnderuse));
    }

    #[test]
    fn index_overuse_unused_index() {
        let sql = "CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT);\
                   CREATE INDEX ia ON t (a);\
                   SELECT * FROM t WHERE id = 1;";
        assert!(kinds(sql).contains(&AntiPatternKind::IndexOveruse));
    }

    #[test]
    fn index_overuse_prefix_shadowing_from_example5() {
        // Example 5 workload 1: composite (Zone_ID, Active) makes the
        // single-column Zone_ID index redundant.
        let sql = "CREATE TABLE Tenant (Tenant_ID INT PRIMARY KEY, Zone_ID TEXT, Active BOOLEAN);\
                   CREATE INDEX idx_zone_actv ON Tenant (Zone_ID, Active);\
                   CREATE INDEX idx_zone ON Tenant (Zone_ID);\
                   SELECT Tenant_ID FROM Tenant WHERE Zone_ID = 'Z1' AND Active = 'True';";
        let ctx = ContextBuilder::new().add_script(sql).build();
        let report = Detector::default().detect(&ctx);
        let overused: Vec<_> = report
            .detections
            .iter()
            .filter(|d| d.kind == AntiPatternKind::IndexOveruse)
            .collect();
        assert!(
            overused.iter().any(|d| matches!(&d.locus, Locus::Index { index } if index == "idx_zone")),
            "prefix index idx_zone flagged: {overused:?}"
        );
        assert!(
            !overused
                .iter()
                .any(|d| matches!(&d.locus, Locus::Index { index } if index == "idx_zone_actv")),
            "the composite is used and not shadowed"
        );
    }

    #[test]
    fn used_index_not_flagged() {
        let sql = "CREATE TABLE t (id INT PRIMARY KEY, a INT);\
                   CREATE INDEX ia ON t (a);\
                   SELECT * FROM t WHERE a = 5;";
        assert!(!kinds(sql).contains(&AntiPatternKind::IndexOveruse));
    }

    #[test]
    fn clone_tables_detected() {
        let sql = "CREATE TABLE sales_2019 (id INT PRIMARY KEY);\
                   CREATE TABLE sales_2020 (id INT PRIMARY KEY);\
                   CREATE TABLE sales_2021 (id INT PRIMARY KEY);";
        assert!(kinds(sql).contains(&AntiPatternKind::CloneTable));
        assert!(!kinds("CREATE TABLE sales (id INT PRIMARY KEY)")
            .contains(&AntiPatternKind::CloneTable));
    }
}
