//! Batched, parallel detection over large workloads (template dedup).
//!
//! Production logs contain millions of statements drawn from a few
//! hundred templates. The batch engine exploits that redundancy:
//!
//! 1. **Grouping** — statements are grouped by their template
//!    [fingerprint](sqlcheck_parser::fingerprint) and, within a template,
//!    by exact statement text. Intra-query rules run **once per unique
//!    text** and the results fan back out to every occurrence with
//!    corrected loci. The exact-text key (rather than the fingerprint
//!    alone) is what makes the fan-out byte-identical to the sequential
//!    path: several rules inspect literal *values* (leading-wildcard
//!    `LIKE`, token-list `INSERT`s), so two statements sharing a template
//!    can still differ in their detections.
//! 2. **Parallelism** — all three detection phases run on one scoped
//!    worker-thread pool (behind the `parallel` cargo feature). The
//!    intra-query phase slices into per-unique-text units, the
//!    inter-query phase into per-rule units, and the data-analysis phase
//!    into per-table units. Units carry a **cost estimate** (statement
//!    bytes × occurrence count for intra, table row count for data) and
//!    workers pull them largest-first from a shared cursor
//!    ([`schedule::run_units_weighted`]) — cost-aware self-scheduling, so
//!    a skewed workload (one giant trigger body, one hot template) no
//!    longer serializes behind whichever worker round-robin happened to
//!    hand the big unit. Workers report `(position, result)` pairs, so
//!    every merge is deterministic regardless of scheduling.
//! 3. **Deterministic merge** — intra detections are re-emitted in
//!    statement order, inter-query units in rule order, data units in
//!    table order — exactly the orders the sequential [`Detector::detect`]
//!    produces — followed by the same `(kind, locus)` dedup.
//!    `detect_batch` therefore returns the *same detections in the same
//!    order* as the sequential path, for any input.

use crate::context::{Context, SchemaVersions, TableProfile};
use crate::detect::cache::{DepSet, IncrementalCache, UNIT_DATA, UNIT_INTER};
use crate::detect::schedule::{self, run_units_weighted};
use crate::detect::{attach_spans, data, dedup, inter, intra, Detector};
use crate::hashutil::Prehashed;
use crate::report::{Detection, Locus, Report};
use sqlcheck_parser::annotate::Annotations;
use sqlcheck_parser::ast::Statement;
use sqlcheck_parser::diag::{DiagKind, Diagnostic, Limits};
use sqlcheck_parser::Dialect;
use sqlcheck_parser::fingerprint::fnv1a;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Options for [`Detector::detect_batch`].
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Run intra-query detection across worker threads. Ignored (always
    /// sequential) when the `parallel` cargo feature is disabled.
    pub parallel: bool,
    /// Worker-thread count; `None` uses the machine's available
    /// parallelism.
    pub threads: Option<usize>,
    /// Per-statement resource budgets, forwarded to the front-end by
    /// [`check_workload`](crate::SqlCheck::check_workload); over-budget
    /// statements degrade to `Other` with an `OverLimit` diagnostic.
    pub limits: Limits,
    /// The dialect the front door applies, forwarded to the front-end by
    /// [`check_workload`](crate::SqlCheck::check_workload).
    /// [`Dialect::Generic`] is byte-identical to the pre-dialect
    /// behaviour.
    pub dialect: Dialect,
    /// Auto-detect the dialect from script contents when `dialect` is
    /// [`Dialect::Generic`] (see
    /// [`FrontendOptions::detect_dialect`](crate::FrontendOptions)).
    pub detect_dialect: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            parallel: cfg!(feature = "parallel"),
            threads: None,
            limits: Limits::default(),
            dialect: Dialect::Generic,
            detect_dialect: false,
        }
    }
}

impl BatchOptions {
    /// Force the sequential (but still deduplicating) batch path.
    pub fn sequential() -> Self {
        BatchOptions { parallel: false, ..BatchOptions::default() }
    }
}

/// Instrumentation of one [`Detector::detect_batch`] run.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Statements in the workload.
    pub statements: usize,
    /// Distinct template fingerprints (literal-insensitive).
    pub unique_templates: usize,
    /// Distinct exact statement texts — the number of intra-query rule
    /// executions actually performed.
    pub unique_texts: usize,
    /// Statements whose intra-query results were reused from an earlier
    /// identical statement (`statements - unique_texts`).
    pub cache_hits: usize,
    /// Worker threads used for the intra-query phase (1 = sequential) —
    /// the *effective* count after clamping to unit count and hardware.
    pub threads: usize,
    /// Worker threads the caller asked for: 0 when the caller left the
    /// count to auto-detection (`BatchOptions::threads == None`).
    pub requested_threads: usize,
    /// Cumulative wall-clock busy micros per worker, summed across every
    /// scheduled phase (intra, inter, data), indexed by worker id. The
    /// max/min spread shows scheduling skew directly — see
    /// [`BatchStats::worker_busy_max`] / [`BatchStats::worker_busy_min`].
    pub worker_busy_micros: Vec<u128>,
    /// Wall-clock microseconds spent grouping statements.
    pub group_micros: u128,
    /// Wall-clock microseconds spent in the intra-query phase.
    pub intra_micros: u128,
    /// Wall-clock microseconds spent fanning results out to occurrences.
    pub fanout_micros: u128,
    /// Wall-clock microseconds spent in the inter-query phase (per-rule
    /// units on the worker pool; 0 in intra-only mode). Explicitly
    /// measured — no longer the implicit `total − group − intra − fanout`
    /// residual.
    pub inter_micros: u128,
    /// Wall-clock microseconds spent in the data-analysis phase
    /// (per-table units on the worker pool; 0 without a database).
    pub data_micros: u128,
    /// Wall-clock microseconds for the whole batch detection.
    pub total_micros: u128,
    /// Front-end: microseconds in the fused split pass — lexing,
    /// splitting, content hashing, template fingerprinting, and dedup
    /// grouping in one streaming pass (0 when the caller did not attach
    /// [`FrontendStats`]).
    ///
    /// [`FrontendStats`]: crate::context::FrontendStats
    pub split_micros: u128,
    /// Front-end: microseconds materialising token streams for unique
    /// statement texts at intake (no longer lumped into `split_micros`).
    pub materialize_micros: u128,
    /// Front-end: microseconds in dedup intake bookkeeping — mapping
    /// script-local unique slots onto builder slots and recording
    /// occurrences. Previously mis-attributed to `split_micros`, which
    /// made warm re-checks (where the cache short-circuits
    /// materialization but intake still walks every occurrence) look
    /// like they were paying for cold splitting.
    pub intake_micros: u128,
    /// Front-end: microseconds grouping texts + parsing unique statements.
    pub parse_micros: u128,
    /// Front-end: microseconds annotating unique statements.
    pub annotate_micros: u128,
    /// Front-end: microseconds folding schema/workload/data context.
    pub context_micros: u128,
    /// Incremental cache: unique texts whose intra-query detections were
    /// reused from a previous `check_workload` call (0 without a cache).
    pub incremental_hits: usize,
    /// Incremental cache: unique texts analysed fresh this call.
    pub incremental_misses: usize,
    /// Incremental cache: entries dropped this call (capacity evictions
    /// plus config/schema-change flushes).
    pub incremental_evictions: usize,
    /// Incremental cache: evictions this call triggered by a
    /// **whole-table** schema dependency (DDL statements, wildcard
    /// reads).
    pub table_evictions: usize,
    /// Incremental cache: evictions this call triggered by a **core or
    /// column** dependency — the column-granular tier that lets a DDL
    /// edit to one column keep entries on its siblings warm.
    pub column_evictions: usize,
    /// Inter-query rule units replayed from the unit memo this call
    /// (input digest unchanged; 0 without a cache).
    pub inter_units_reused: usize,
    /// Inter-query rule units actually run this call.
    pub inter_units_recomputed: usize,
    /// Per-table data-analysis units replayed from the unit memo this
    /// call.
    pub data_units_reused: usize,
    /// Per-table data-analysis units actually run this call.
    pub data_units_recomputed: usize,
    /// Warm re-check ([`CheckSession::recheck`]): microseconds applying
    /// the edit set — splicing texts, re-splitting edited statements,
    /// parsing/annotating new unique texts. 0 on cold checks.
    ///
    /// [`CheckSession::recheck`]: crate::session::CheckSession::recheck
    pub warm_edit_micros: u128,
    /// Warm re-check: microseconds delta-maintaining the retained
    /// context — workload aggregate retract ⊕ insert, schema refold on
    /// DDL edits, dirty-slot discovery. 0 on cold checks.
    pub warm_profile_micros: u128,
    /// Warm re-check: microseconds patching the retained report —
    /// recomputing dirty statements' detections and rebuilding the
    /// per-statement detection slices. 0 on cold checks.
    pub warm_patch_micros: u128,
    /// Warm re-check: microseconds in the shared tail — memoized
    /// inter/data units, registry rules, ranking, fixes. 0 on cold
    /// checks.
    pub warm_finalize_micros: u128,
    /// Warm re-check: statements whose intra-query detections were
    /// recomputed or re-fetched this re-check (the edit set plus, after a
    /// DDL edit, every occurrence of a column-evicted unique text). 0 on
    /// cold checks.
    pub warm_dirty_statements: usize,
    /// Unique statement texts whose parse degraded to `Statement::Other`
    /// (structural shape lost; detection power reduced).
    pub degraded_uniques: usize,
    /// Statements (occurrence-weighted) whose parse degraded to
    /// `Statement::Other`.
    pub degraded_statements: usize,
    /// Diagnostics per kind, indexed per [`DiagKind::index`]: parse-time
    /// diagnostics counted once per unique text, script-level events, and
    /// detection-phase rule failures.
    pub diag_counts: [usize; DiagKind::COUNT],
    /// Detection-rule units that panicked and were isolated (their
    /// output dropped, everything else unaffected).
    pub rule_failures: usize,
}

impl BatchStats {
    /// Fold front-end instrumentation into this record (the batch engine
    /// itself only sees an already-built context).
    pub fn absorb_frontend(&mut self, fe: &crate::context::FrontendStats) {
        self.split_micros = fe.split_micros;
        self.materialize_micros = fe.materialize_micros;
        self.intake_micros = fe.intake_micros;
        self.parse_micros = fe.parse_micros;
        self.annotate_micros = fe.annotate_micros;
        self.context_micros = fe.context_micros;
    }

    /// Busiest worker's cumulative busy micros (0 when nothing ran).
    pub fn worker_busy_max(&self) -> u128 {
        self.worker_busy_micros.iter().copied().max().unwrap_or(0)
    }

    /// Least-busy worker's cumulative busy micros (0 when nothing ran).
    pub fn worker_busy_min(&self) -> u128 {
        self.worker_busy_micros.iter().copied().min().unwrap_or(0)
    }

    /// Fraction of statements whose parse kept structural shape
    /// (`1.0` = every statement shaped; an empty workload counts as
    /// fully covered).
    pub fn parse_coverage(&self) -> f64 {
        if self.statements == 0 {
            1.0
        } else {
            1.0 - self.degraded_statements as f64 / self.statements as f64
        }
    }
}

/// A [`Report`] plus the batch instrumentation that produced it.
#[derive(Debug)]
pub struct BatchReport {
    /// The detection report (identical to the sequential path's).
    pub report: Report,
    /// Instrumentation.
    pub stats: BatchStats,
    /// Detection-phase degradation events — [`DiagKind::RuleFailed`]
    /// entries for isolated rule-unit panics. Parse-time diagnostics
    /// live on the context's statements, not here.
    pub diagnostics: Vec<Diagnostic>,
}

/// One group of statements sharing an exact text (and hence a template).
struct Group {
    /// Representative statement index (the first occurrence).
    rep: usize,
    /// All statement indexes with this text, ascending.
    occurrences: Vec<usize>,
}

/// Intra-query results for one group this run: freshly computed (loci
/// carry the representative's index), or replayed from the incremental
/// cache (canonical form, statement loci zeroed).
enum GroupResult {
    Fresh(Vec<Detection>),
    Cached(Arc<Vec<Detection>>),
}

impl Detector {
    /// Batched detection: like [`Detector::detect`], but runs intra-query
    /// rules once per unique statement text (grouped under template
    /// fingerprints) and optionally in parallel. The returned report is
    /// byte-identical to the sequential path, in the same order.
    pub fn detect_batch(&self, ctx: &Context, opts: &BatchOptions) -> BatchReport {
        self.detect_batch_with(ctx, opts, None)
    }

    /// [`Detector::detect_batch`] with an optional [`IncrementalCache`]:
    /// unique texts whose intra-query detections are cached (under the
    /// current config + schema epoch) are replayed instead of re-analysed,
    /// so re-checking an edited workload only pays for changed statements.
    /// Output stays byte-identical to the sequential path either way.
    pub fn detect_batch_with(
        &self,
        ctx: &Context,
        opts: &BatchOptions,
        cache: Option<&IncrementalCache>,
    ) -> BatchReport {
        let t_start = Instant::now();
        let t_group = Instant::now();
        let use_context = !self.cfg.intra_only;

        // Phase 1: group statements by their precomputed 128-bit content
        // hash (literal-sensitive, span-insensitive — computed once at
        // context-build time). Equal content implies equal fingerprints,
        // so the content partition refines the template partition; the
        // template fingerprint is only computed once per representative.
        // 128 bits are treated as collision-free, the same assumption
        // content-addressed systems make.
        let mut groups: Vec<Group> = Vec::new();
        let mut by_hash: HashMap<u128, usize, Prehashed> = HashMap::with_capacity_and_hasher(
            ctx.statements.len().min(1024),
            Prehashed::default(),
        );
        let mut templates: HashSet<u64> = HashSet::new();
        for (idx, stmt) in ctx.statements.iter().enumerate() {
            match by_hash.entry(stmt.text_hash) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    groups[*e.get()].occurrences.push(idx);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    templates.insert(stmt.template_hash);
                    v.insert(groups.len());
                    groups.push(Group { rep: idx, occurrences: vec![idx] });
                }
            }
        }

        let group_micros = t_group.elapsed().as_micros();

        // Degradation accounting: parse diagnostics counted once per
        // unique text (plus script-level events), and shaped-vs-degraded
        // statement counts for the parse-coverage ratio. A statement is
        // degraded when its unique text parsed to `Other` while carrying
        // real content (a leading keyword).
        let mut diag_counts = [0usize; DiagKind::COUNT];
        let mut degraded_uniques = 0usize;
        let mut degraded_statements = 0usize;
        for g in &groups {
            let s = &ctx.statements[g.rep];
            for d in s.diags.iter() {
                diag_counts[d.kind.index()] += 1;
            }
            if matches!(&s.parsed.stmt, Statement::Other(o) if !o.leading_keyword.is_empty()) {
                degraded_uniques += 1;
                degraded_statements += g.occurrences.len();
            }
        }
        for d in &ctx.diagnostics {
            diag_counts[d.kind.index()] += 1;
        }
        let mut diagnostics: Vec<Diagnostic> = Vec::new();

        // Phase 2: intra-query rules, once per group — consulting the
        // incremental cache first when one is attached. Cached entries are
        // only valid under the current (config, schema) epoch; a mismatch
        // flushes the cache before any lookup.
        let t_intra = Instant::now();
        let counters_before = cache.map(|c| c.counters());
        let versions = cache.map(|_| ctx.schema.versions());
        if let (Some(c), Some(v)) = (cache, &versions) {
            c.ensure_epoch(self.config_epoch(ctx), v);
        }
        let mut results: Vec<Option<GroupResult>> = Vec::with_capacity(groups.len());
        let mut misses: Vec<usize> = Vec::new();
        match cache {
            Some(c) => {
                for (gi, g) in groups.iter().enumerate() {
                    match c.get(ctx.statements[g.rep].text_hash) {
                        Some(hit) => results.push(Some(GroupResult::Cached(hit))),
                        None => {
                            results.push(None);
                            misses.push(gi);
                        }
                    }
                }
            }
            None => {
                results.resize_with(groups.len(), || None);
                misses.extend(0..groups.len());
            }
        }

        let run_group =
            |g: &Group| intra::detect_statement(g.rep, &ctx.statements[g.rep], ctx, &self.cfg, use_context);
        let threads = self.plan_threads(opts, misses.len());
        // Intra cost estimate: statement bytes × occurrence count. Bytes
        // track per-text rule cost (token count, body sub-statements of a
        // giant trigger); the occurrence multiplier biases hot templates
        // to the front so their results are ready when fan-out starts.
        let intra_cost = |pos: usize| {
            let g = &groups[misses[pos]];
            let s = &ctx.statements[g.rep];
            ((s.span.end - s.span.start).max(16) as u64)
                .saturating_mul(g.occurrences.len() as u64)
        };
        let mut worker_busy_micros: Vec<u128> = Vec::new();
        let intra_run =
            run_units_weighted(misses.len(), threads, intra_cost, &|pos| run_group(&groups[misses[pos]]));
        schedule::fold_worker_micros(&mut worker_busy_micros, &intra_run.worker_micros);
        for (&gi, out) in misses.iter().zip(intra_run.results) {
            let dets = match out {
                Ok(dets) => dets,
                Err(p) => {
                    // A panicking intra unit degrades to "no detections
                    // for this group" — never cached, so a later run
                    // (e.g. with the faulty rule fixed) re-analyses it.
                    diagnostics.push(
                        Diagnostic::new(
                            DiagKind::RuleFailed,
                            format!("intra-query unit panicked: {}", p.message),
                        )
                        .at(groups[gi].rep),
                    );
                    results[gi] = Some(GroupResult::Fresh(Vec::new()));
                    continue;
                }
            };
            if let Some(c) = cache {
                // Canonicalize before storing: statement loci are zeroed
                // so the entry replays correctly at any occurrence index
                // on any later call. Spans at this stage are statement-
                // relative (body sub-statement ranges) and therefore
                // already occurrence-independent — they are kept as-is.
                // Each entry records the schema objects its statement's
                // rules may consult — whole tables for DDL, cores +
                // specific columns for plain statements — for
                // column-granular invalidation across DDL edits.
                let canonical: Vec<Detection> = dets
                    .iter()
                    .map(|d| {
                        let mut d = d.clone();
                        if let Locus::Statement { index } = &mut d.locus {
                            *index = 0;
                        }
                        d
                    })
                    .collect();
                let rep = &ctx.statements[groups[gi].rep];
                c.insert(
                    rep.text_hash,
                    Arc::new(canonical),
                    Arc::new(entry_deps(&rep.parsed.stmt, &rep.ann)),
                );
            }
            results[gi] = Some(GroupResult::Fresh(dets));
        }
        let intra_micros = t_intra.elapsed().as_micros();

        let t_fanout = Instant::now();
        // Phase 3: deterministic fan-out in statement order. Fresh
        // singleton groups move their detections (loci already correct);
        // everything else clones per occurrence with the statement locus
        // rewritten to the occurrence index.
        let mut group_of = vec![0usize; ctx.statements.len()];
        for (gi, g) in groups.iter().enumerate() {
            for &i in &g.occurrences {
                group_of[i] = gi;
            }
        }
        let mut report = Report::default();
        let total: usize = groups
            .iter()
            .enumerate()
            .map(|(gi, g)| {
                let n = match &results[gi] {
                    Some(GroupResult::Fresh(v)) => v.len(),
                    Some(GroupResult::Cached(v)) => v.len(),
                    None => 0,
                };
                g.occurrences.len() * n
            })
            .sum();
        report.detections.reserve_exact(total);
        for (idx, &gi) in group_of.iter().enumerate() {
            let singleton = groups[gi].occurrences.len() == 1;
            let source: &[Detection] = match results[gi].as_mut().expect("all groups resolved") {
                GroupResult::Fresh(v) => {
                    if singleton {
                        report.detections.append(v);
                        continue;
                    }
                    v
                }
                GroupResult::Cached(v) => v,
            };
            for d in source {
                let mut d = d.clone();
                if let Locus::Statement { index } = &mut d.locus {
                    *index = idx;
                }
                report.detections.push(d);
            }
        }

        let fanout_micros = t_fanout.elapsed().as_micros();

        // Phase 4: inter-query rules, one unit per rule on the same
        // scoped worker pool — memoized when a cache is attached: each
        // unit is keyed by a digest of exactly the inputs it reads
        // ([`inter_unit_digests`]), so an edit that leaves a rule's
        // inputs byte-identical replays its detections and only dirty
        // units are scheduled. Units merge in rule order either way —
        // exactly the order `inter::detect` appends in the sequential
        // path.
        let t_inter = Instant::now();
        if use_context {
            let units = inter::RULES.len();
            let mut unit_out: Vec<Option<Arc<Vec<Detection>>>> = vec![None; units];
            let mut dirty: Vec<usize> = Vec::new();
            let digests = match (cache, &versions) {
                (Some(c), Some(v)) => {
                    let digests = inter_unit_digests(ctx, v);
                    for (u, &digest) in digests.iter().enumerate() {
                        match c.unit_get(UNIT_INTER, u as u64, digest) {
                            Some(hit) => unit_out[u] = Some(hit),
                            None => dirty.push(u),
                        }
                    }
                    digests
                }
                _ => {
                    dirty.extend(0..units);
                    [0; 4]
                }
            };
            let inter_threads = self.plan_threads(opts, dirty.len());
            // Every inter-query rule scans the whole workload, so the
            // estimate is uniform — LPT degrades to in-order
            // self-scheduling, which is exactly right here.
            let inter_run = run_units_weighted(dirty.len(), inter_threads, |_| 1, &|i| {
                inter::detect_unit(dirty[i], ctx, &self.cfg)
            });
            schedule::fold_worker_micros(&mut worker_busy_micros, &inter_run.worker_micros);
            for (&u, out) in dirty.iter().zip(inter_run.results) {
                match out {
                    Ok(dets) => {
                        let dets = Arc::new(dets);
                        if let Some(c) = cache {
                            // Panicked units are never memoized (no Ok),
                            // so a later run with the fault fixed re-runs
                            // them.
                            c.unit_put(UNIT_INTER, u as u64, digests[u], Arc::clone(&dets));
                        }
                        unit_out[u] = Some(dets);
                    }
                    Err(p) => diagnostics.push(Diagnostic::new(
                        DiagKind::RuleFailed,
                        format!("inter-query rule unit {u} panicked: {}", p.message),
                    )),
                }
            }
            for dets in unit_out.iter().flatten() {
                report.detections.extend(dets.iter().cloned());
            }
        }
        let inter_micros = t_inter.elapsed().as_micros();

        // Phase 5: data analysis, one unit per profiled table on the
        // pool — memoized per table when a cache is attached: a table's
        // unit reads only its own `TableProfile` (plus config, covered
        // by the epoch), so its digest is the profile content and an
        // unchanged profile replays. Tables are independent under the
        // data rules; merging in `data.tables()` order matches the
        // sequential path.
        let t_data = Instant::now();
        if let Some(data) = &ctx.data {
            let tables: Vec<&TableProfile> = data.tables().collect();
            let mut unit_out: Vec<Option<Arc<Vec<Detection>>>> = vec![None; tables.len()];
            let mut dirty: Vec<usize> = Vec::new();
            let keys: Vec<(u64, u64)> = match cache {
                Some(c) => tables
                    .iter()
                    .enumerate()
                    .map(|(u, tp)| {
                        let (id, digest) = data_unit_key(tp);
                        match c.unit_get(UNIT_DATA, id, digest) {
                            Some(hit) => unit_out[u] = Some(hit),
                            None => dirty.push(u),
                        }
                        (id, digest)
                    })
                    .collect(),
                None => {
                    dirty.extend(0..tables.len());
                    Vec::new()
                }
            };
            let data_threads = self.plan_threads(opts, dirty.len());
            // Data-rule cost scales with sampled rows per table.
            let data_run = run_units_weighted(
                dirty.len(),
                data_threads,
                |i| tables[dirty[i]].row_count.max(1) as u64,
                &|i| data::detect_table(tables[dirty[i]], ctx, &self.cfg),
            );
            schedule::fold_worker_micros(&mut worker_busy_micros, &data_run.worker_micros);
            for (&u, out) in dirty.iter().zip(data_run.results) {
                match out {
                    Ok(dets) => {
                        let dets = Arc::new(dets);
                        if let Some(c) = cache {
                            let (id, digest) = keys[u];
                            c.unit_put(UNIT_DATA, id, digest, Arc::clone(&dets));
                        }
                        unit_out[u] = Some(dets);
                    }
                    Err(p) => diagnostics.push(Diagnostic::new(
                        DiagKind::RuleFailed,
                        format!(
                            "data-analysis unit for table '{}' panicked: {}",
                            tables[u].name, p.message
                        ),
                    )),
                }
            }
            for dets in unit_out.iter().flatten() {
                report.detections.extend(dets.iter().cloned());
            }
        }
        let data_micros = t_data.elapsed().as_micros();

        // The shared (kind, locus) dedup, then per-occurrence source
        // spans — both identical to the sequential path's final steps.
        dedup(&mut report.detections);
        attach_spans(&mut report.detections, ctx);

        let rule_failures = diagnostics.len();
        diag_counts[DiagKind::RuleFailed.index()] += rule_failures;
        let mut stats = BatchStats {
            statements: ctx.statements.len(),
            unique_templates: templates.len(),
            unique_texts: groups.len(),
            cache_hits: ctx.statements.len() - groups.len(),
            threads,
            requested_threads: opts.threads.unwrap_or(0),
            worker_busy_micros,
            group_micros,
            intra_micros,
            fanout_micros,
            inter_micros,
            data_micros,
            total_micros: t_start.elapsed().as_micros(),
            degraded_uniques,
            degraded_statements,
            diag_counts,
            rule_failures,
            ..BatchStats::default()
        };
        if let (Some(before), Some(c)) = (counters_before, cache) {
            let after = c.counters();
            stats.incremental_hits = (after.hits - before.hits) as usize;
            stats.incremental_misses = (after.misses - before.misses) as usize;
            stats.incremental_evictions = (after.evictions - before.evictions) as usize;
            stats.table_evictions = (after.table_evictions - before.table_evictions) as usize;
            stats.column_evictions = (after.column_evictions - before.column_evictions) as usize;
            stats.inter_units_reused =
                (after.inter_units_reused - before.inter_units_reused) as usize;
            stats.inter_units_recomputed =
                (after.inter_units_recomputed - before.inter_units_recomputed) as usize;
            stats.data_units_reused = (after.data_units_reused - before.data_units_reused) as usize;
            stats.data_units_recomputed =
                (after.data_units_recomputed - before.data_units_recomputed) as usize;
        }
        BatchReport { report, stats, diagnostics }
    }

    /// Hash of the *non-schema* inputs a cached intra-query result
    /// depends on besides the statement text: the detection config, plus
    /// data-context presence for good measure. Schema validity is tracked
    /// separately — per table — via
    /// [`SchemaCatalog::table_digests`](crate::context::SchemaCatalog::table_digests),
    /// so a DDL edit to one table no longer flushes entries that only
    /// depend on others. Debug formatting is a deterministic canonical
    /// encoding within one process — exactly the lifetime of an
    /// [`IncrementalCache`].
    pub(crate) fn config_epoch(&self, ctx: &Context) -> u64 {
        let encoded = format!(
            "{:?}|{}|{}|{:?}",
            self.cfg,
            ctx.data.is_some(),
            ctx.limits_epoch,
            ctx.dialect
        );
        sqlcheck_parser::fingerprint::fnv1a(encoded.as_bytes())
    }

    /// Decide the intra-phase worker count for this run.
    pub(crate) fn plan_threads(&self, opts: &BatchOptions, groups: usize) -> usize {
        if !cfg!(feature = "parallel") || !opts.parallel || groups < 2 {
            return 1;
        }
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        opts.threads.unwrap_or(hw).clamp(1, groups)
    }
}

/// The schema surface one statement's intra-query rules may consult, as
/// a column-granular [`DepSet`].
///
/// The base table set is every table the statement references
/// (FROM/JOIN/DML/DDL, subqueries and trigger/routine bodies included)
/// **plus** every column qualifier: qualifiers are usually aliases, but
/// an unresolvable qualifier is looked up in the catalog as a table name
/// by the contextual rules, so it is a (conservative) dependency too.
///
/// * **DDL statements** record whole-table deps on the base set — their
///   rules inspect full definitions, and DDL is rare enough that finer
///   tracking buys nothing.
/// * **Everything else** records a *core* dep per base table (covers the
///   primary-key, foreign-key, and table-presence reads of
///   `joins_on_unique_keys` / `has_primary_key` suppression) plus a
///   *column* dep for every `(base table × referenced column)` pair.
///   The cross product is what makes alias resolution safe without
///   re-running it: whichever base table a qualifier actually resolves
///   to, that `(table, column)` pair is recorded. The result: `ALTER
///   TABLE t ADD COLUMN c` no longer evicts entries that only touch
///   `t.a` — the gap this closes over the old whole-table `deps`.
pub(crate) fn entry_deps(stmt: &Statement, ann: &Annotations) -> DepSet {
    let mut base: BTreeSet<String> = BTreeSet::new();
    for t in &ann.tables {
        base.insert(t.to_ascii_lowercase());
    }
    for c in &ann.columns {
        if let Some(q) = &c.qualifier {
            base.insert(q.to_ascii_lowercase());
        }
    }
    for p in &ann.predicates {
        if let Some(q) = &p.qualifier {
            base.insert(q.to_ascii_lowercase());
        }
    }
    for j in &ann.join_conditions {
        if let Some(q) = &j.left.0 {
            base.insert(q.to_ascii_lowercase());
        }
        if let Some((Some(q), _)) = &j.right {
            base.insert(q.to_ascii_lowercase());
        }
    }
    if matches!(
        stmt,
        Statement::CreateTable(_)
            | Statement::CreateIndex(_)
            | Statement::AlterTable(_)
            | Statement::Drop(_)
    ) {
        return DepSet { tables: base.into_iter().collect(), ..DepSet::default() };
    }
    let mut cols: BTreeSet<String> = BTreeSet::new();
    for c in &ann.columns {
        cols.insert(c.column.to_ascii_lowercase());
    }
    for p in &ann.predicates {
        cols.insert(p.column.to_ascii_lowercase());
    }
    for j in &ann.join_conditions {
        cols.insert(j.left.1.to_ascii_lowercase());
        if let Some((_, rc)) = &j.right {
            cols.insert(rc.to_ascii_lowercase());
        }
    }
    let columns: Vec<(String, String)> = base
        .iter()
        .flat_map(|t| cols.iter().map(move |c| (t.clone(), c.clone())))
        .collect();
    DepSet {
        tables: Box::default(),
        cores: base.into_iter().collect(),
        columns: columns.into(),
    }
}

/// Input digests for the four inter-query rule units, in
/// [`inter::RULES`] order. Each digest folds **exactly** the inputs its
/// rule reads — established by inspection of `inter.rs` and locked in by
/// the byte-identity property suites — so a workload edit that leaves a
/// rule's inputs unchanged leaves its digest unchanged and the unit
/// replays from the memo:
///
/// 0. `no_foreign_key`: the join-edge **key set** (multiplicities are
///    never read) + each edge table's core digest (presence, primary
///    key, declared FKs).
/// 1. `index_underuse`: per usage entry passing the `eq_predicates > 0
///    || group_by > 0` gate: the counts it prints, its table's full
///    digest (covers `has_index_on`: indexes + PK), and the data-profile
///    fields the low-cardinality refinement reads. Entries failing the
///    gate contribute nothing — so pure count drift on cold columns
///    (e.g. more `ORDER BY` traffic) keeps the unit clean.
/// 2. `index_overuse`: every index definition in catalog order plus the
///    **boolean** "leading column has reads" — count-only changes on an
///    already-read column keep the digest stable.
/// 3. `clone_table`: the catalog's table names, nothing else.
///
/// The detection config and data-analysis config are covered by the
/// cache's config epoch, not folded here.
pub(crate) fn inter_unit_digests(ctx: &Context, versions: &SchemaVersions) -> [u64; 4] {
    let mut s = String::new();

    // Unit 0 — no_foreign_key.
    let mut edge_tables: BTreeSet<&str> = BTreeSet::new();
    for edge in ctx.workload.join_edges.keys() {
        let _ = write!(s, "{edge:?};");
        edge_tables.insert(&edge.left.0);
        edge_tables.insert(&edge.right.0);
    }
    for t in edge_tables {
        let _ = write!(s, "{t}={:?};", versions.cores.get(t));
    }
    let d0 = fnv1a(s.as_bytes());

    // Unit 1 — index_underuse.
    s.clear();
    for (t, c, u) in ctx.workload.iter_usage() {
        if u.eq_predicates == 0 && u.group_by == 0 {
            continue;
        }
        let _ = write!(
            s,
            "{t}.{c}:{}:{}|{:?}|",
            u.eq_predicates,
            u.group_by,
            versions.tables.get(t)
        );
        if let Some(data) = &ctx.data {
            match data.table(t) {
                Some(tp) => {
                    let _ = write!(s, "r{}", tp.row_count);
                    if let Some(cp) = tp.column(c) {
                        let _ = write!(s, "{:?}", cp.stats);
                    }
                }
                None => s.push('-'),
            }
        }
        s.push(';');
    }
    let d1 = fnv1a(s.as_bytes());

    // Unit 2 — index_overuse.
    s.clear();
    for idx in &ctx.schema.indexes {
        let used = idx.columns.first().map(|leading| {
            ctx.workload.usage(&idx.table, leading).map(|u| u.reads() > 0).unwrap_or(false)
        });
        let _ = write!(s, "{idx:?}:{used:?};");
    }
    let d2 = fnv1a(s.as_bytes());

    // Unit 3 — clone_table.
    s.clear();
    for t in ctx.schema.tables() {
        let _ = write!(s, "{};", t.name);
    }
    let d3 = fnv1a(s.as_bytes());

    [d0, d1, d2, d3]
}

/// Memo key for one per-table data-analysis unit: a stable id (hash of
/// the lowercased table name) plus an input digest over the full
/// `TableProfile` content — the only input `data::detect_table` reads
/// besides the config (covered by the cache's epoch).
pub(crate) fn data_unit_key(tp: &TableProfile) -> (u64, u64) {
    let id = fnv1a(tp.name.to_ascii_lowercase().as_bytes());
    let digest = fnv1a(format!("{tp:?}").as_bytes());
    (id, digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextBuilder;

    fn detections_debug(r: &Report) -> Vec<String> {
        r.detections.iter().map(|d| format!("{d:?}")).collect()
    }

    fn script_with_duplicates() -> String {
        let mut s = String::from(
            "CREATE TABLE t (a INT, price FLOAT);\
             CREATE TABLE u (id INT PRIMARY KEY, user_ids TEXT);\n",
        );
        for i in 0..40 {
            s.push_str("SELECT * FROM t WHERE a = 1;\n");
            s.push_str(&format!("SELECT * FROM t WHERE a = {i};\n"));
            s.push_str("SELECT * FROM u WHERE user_ids LIKE '%U1%';\n");
            s.push_str("INSERT INTO t VALUES (1, 2.5);\n");
        }
        s
    }

    #[test]
    fn batch_matches_sequential_byte_for_byte() {
        let ctx = ContextBuilder::new().add_script(&script_with_duplicates()).build();
        let det = Detector::default();
        let seq = det.detect(&ctx);
        for opts in [BatchOptions::sequential(), BatchOptions::default()] {
            let batch = det.detect_batch(&ctx, &opts);
            assert_eq!(
                detections_debug(&seq),
                detections_debug(&batch.report),
                "batch (parallel={}) must equal sequential",
                opts.parallel
            );
        }
    }

    #[test]
    fn stats_reflect_dedup() {
        let ctx = ContextBuilder::new().add_script(&script_with_duplicates()).build();
        let b = Detector::default().detect_batch(&ctx, &BatchOptions::default());
        assert_eq!(b.stats.statements, ctx.len());
        assert!(b.stats.unique_texts < b.stats.statements, "duplicates must dedup");
        // The `a = {i}` family shares one template across 40 literals.
        assert!(b.stats.unique_templates < b.stats.unique_texts);
        assert_eq!(b.stats.cache_hits, b.stats.statements - b.stats.unique_texts);
    }

    #[test]
    fn literal_sensitive_rules_survive_template_sharing() {
        // Same template, different literal shape: only the leading-wildcard
        // variant is a Pattern Matching AP. The exact-text cache must keep
        // them apart.
        let sql = "SELECT a FROM t WHERE a LIKE '%x%';\
                   SELECT a FROM t WHERE a LIKE 'x%';";
        let ctx = ContextBuilder::new().add_script(sql).build();
        let det = Detector::default();
        let seq = det.detect(&ctx);
        let batch = det.detect_batch(&ctx, &BatchOptions::default());
        assert_eq!(detections_debug(&seq), detections_debug(&batch.report));
        use crate::anti_pattern::AntiPatternKind;
        assert_eq!(batch.report.count(AntiPatternKind::PatternMatching), 1);
    }

    #[test]
    fn empty_and_single_statement_workloads() {
        for sql in ["", "SELECT * FROM t"] {
            let ctx = ContextBuilder::new().add_script(sql).build();
            let det = Detector::default();
            let seq = det.detect(&ctx);
            let batch = det.detect_batch(&ctx, &BatchOptions::default());
            assert_eq!(detections_debug(&seq), detections_debug(&batch.report));
        }
    }

    #[test]
    fn explicit_thread_count_is_honoured() {
        let ctx = ContextBuilder::new().add_script(&script_with_duplicates()).build();
        let opts = BatchOptions { parallel: true, threads: Some(2), ..BatchOptions::default() };
        let b = Detector::default().detect_batch(&ctx, &opts);
        if cfg!(feature = "parallel") {
            assert_eq!(b.stats.threads, 2);
        } else {
            assert_eq!(b.stats.threads, 1);
        }
    }
}
