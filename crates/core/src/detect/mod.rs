//! `ap-detect`: the anti-pattern detection engine (Algorithms 1–3).
//!
//! Detection runs in three phases, mirroring §4:
//!
//! 1. **Intra-query** ([`intra`]): rules applied to each statement in
//!    isolation. High recall, lower precision.
//! 2. **Inter-query** ([`inter`]): rules that need the application context
//!    (schema + workload) — both to detect APs no single statement reveals
//!    (No Foreign Key, Index Over/Underuse, Clone Table) and to *suppress*
//!    intra-query false positives (e.g. a `CREATE TABLE` without a PK that
//!    a later `ALTER TABLE` fixes).
//! 3. **Data analysis** ([`data`]): rules over sampled column profiles,
//!    when a database is attached.

pub mod batch;
pub mod cache;
pub mod data;
pub mod inter;
pub mod intra;
pub(crate) mod schedule;

pub use batch::{BatchOptions, BatchReport, BatchStats};
pub use cache::{CacheCounters, IncrementalCache, DEFAULT_CACHE_CAPACITY, DEFAULT_CACHE_SHARDS};

use crate::context::{Context, DataAnalysisConfig};
use crate::report::{Detection, Locus, Report};
use std::collections::HashSet;

/// Detector configuration (thresholds are the paper's defaults where it
/// names one; Table 1 mentions the God Table threshold of 10).
#[derive(Debug, Clone)]
pub struct DetectionConfig {
    /// Run only intra-query rules (the paper's first evaluation
    /// configuration in §8.1).
    pub intra_only: bool,
    /// Column-count threshold for the God Table AP.
    pub god_table_columns: usize,
    /// Join-count threshold for the Too Many Joins AP.
    pub too_many_joins: usize,
    /// Data-analysis thresholds.
    pub data: DataAnalysisConfig,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            intra_only: false,
            god_table_columns: 10,
            too_many_joins: 5,
            data: DataAnalysisConfig::default(),
        }
    }
}

impl DetectionConfig {
    /// The paper's intra-only configuration.
    pub fn intra_only() -> Self {
        DetectionConfig { intra_only: true, ..Default::default() }
    }
}

/// The detection engine.
#[derive(Debug, Clone, Default)]
pub struct Detector {
    /// Configuration.
    pub cfg: DetectionConfig,
}

impl Detector {
    /// Detector with a custom configuration.
    pub fn new(cfg: DetectionConfig) -> Self {
        Detector { cfg }
    }

    /// Run all applicable phases over the context and return the merged,
    /// de-duplicated report.
    pub fn detect(&self, ctx: &Context) -> Report {
        let mut report = Report::default();
        let use_context = !self.cfg.intra_only;

        for (idx, stmt) in ctx.statements.iter().enumerate() {
            report
                .detections
                .extend(intra::detect_statement(idx, stmt, ctx, &self.cfg, use_context));
        }
        if use_context {
            report.detections.extend(inter::detect(ctx, &self.cfg));
        }
        if let Some(data) = &ctx.data {
            report.detections.extend(data::detect(data, ctx, &self.cfg));
        }
        dedup(&mut report.detections);
        attach_spans(&mut report.detections, ctx);
        report
    }
}

/// Stamp every statement-locus detection with the source span of **its
/// own** statement occurrence. Runs as the final step of both the
/// sequential and the batch path, after fan-out and dedup: duplicate
/// texts share one analysis result, but each fanned-out detection's locus
/// index is per-occurrence, so the span lookup lands on the right copy.
///
/// Before this step a detection's span, when present, is **relative to
/// its statement's start** (a body sub-statement of compound DDL);
/// relative spans are occurrence-independent, so they survive fan-out and
/// the incremental cache unchanged, and are rebased here onto the
/// occurrence's absolute source range. An absent span means the
/// detection covers the whole statement.
pub(crate) fn attach_spans(detections: &mut [Detection], ctx: &Context) {
    for d in detections {
        if let Locus::Statement { index } = d.locus {
            d.span = ctx.statements.get(index).map(|s| match d.span {
                Some(rel) => {
                    crate::report::Span::new(s.span.start + rel.start, s.span.start + rel.end)
                }
                None => s.span,
            });
        }
    }
}

/// Fill missing spans on externally-produced detections (custom
/// registry rules) with their statement occurrence's span. Unlike
/// [`attach_spans`], a span such a rule set itself is treated as
/// **absolute** and left untouched — the statement-relative convention
/// is internal to the intra-query body fan-out.
pub(crate) fn attach_default_spans(detections: &mut [Detection], ctx: &Context) {
    for d in detections {
        if d.span.is_none() {
            if let Locus::Statement { index } = d.locus {
                d.span = ctx.statements.get(index).map(|s| s.span);
            }
        }
    }
}

/// Drop later detections that duplicate an earlier `(kind, locus, span)`
/// triple — the same AP found by several phases is reported once,
/// crediting the earliest (most specific) phase. The (still relative)
/// span participates so that the same AP kind at two different body
/// sub-statements of one compound statement is reported per
/// sub-statement, not collapsed. Runs in O(n) via a hash set (the old
/// `Vec::contains` scan was quadratic and dominated large workloads).
pub(crate) fn dedup(detections: &mut Vec<Detection>) {
    let mut seen: HashSet<(
        crate::anti_pattern::AntiPatternKind,
        Locus,
        Option<crate::report::Span>,
    )> = HashSet::with_capacity(detections.len());
    detections.retain(|d| seen.insert((d.kind, d.locus.clone(), d.span)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anti_pattern::AntiPatternKind;
    use crate::context::ContextBuilder;

    fn run(sql: &str) -> Report {
        let ctx = ContextBuilder::new().add_script(sql).build();
        Detector::default().detect(&ctx)
    }

    fn run_intra(sql: &str) -> Report {
        let ctx = ContextBuilder::new().add_script(sql).build();
        Detector::new(DetectionConfig::intra_only()).detect(&ctx)
    }

    #[test]
    fn end_to_end_detects_multiple_kinds() {
        let r = run(
            "CREATE TABLE t (a INT, b FLOAT);\
             INSERT INTO t VALUES (1, 2.5);\
             SELECT * FROM t ORDER BY RAND();",
        );
        assert!(r.count(AntiPatternKind::NoPrimaryKey) >= 1);
        assert!(r.count(AntiPatternKind::RoundingErrors) >= 1);
        assert!(r.count(AntiPatternKind::ImplicitColumns) >= 1);
        assert!(r.count(AntiPatternKind::ColumnWildcard) >= 1);
        assert!(r.count(AntiPatternKind::OrderingByRand) >= 1);
    }

    #[test]
    fn inter_query_suppresses_no_pk_false_positive() {
        let sql = "CREATE TABLE t (a INT);\
                   ALTER TABLE t ADD CONSTRAINT pk PRIMARY KEY (a);";
        let intra = run_intra(sql);
        let full = run(sql);
        assert_eq!(intra.count(AntiPatternKind::NoPrimaryKey), 1, "intra-only FP");
        assert_eq!(full.count(AntiPatternKind::NoPrimaryKey), 0, "context eliminates FP");
    }

    #[test]
    fn dedup_keeps_single_detection_per_locus() {
        // God Table detected intra; ensure no duplicate from other phases.
        let cols: Vec<String> = (0..12).map(|i| format!("c{i} INT")).collect();
        let sql = format!("CREATE TABLE wide ({})", cols.join(", "));
        let r = run(&sql);
        assert_eq!(r.count(AntiPatternKind::GodTable), 1);
    }
}
