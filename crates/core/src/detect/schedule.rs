//! Cost-aware work scheduling for the batch detection worker pool.
//!
//! The round-robin runner the batch engine started with assigned unit
//! `i` to worker `i % threads` up front. That is perfectly balanced only
//! when every unit costs the same — and real workloads are skewed: one
//! giant trigger body among thousands of small statements, one hot
//! template carrying most of the occurrences. Under round-robin the
//! worker that drew the giant unit finishes last while the others idle,
//! and adding cores stops helping.
//!
//! This module replaces that with **self-scheduling over an LPT order**
//! (Longest Processing Time first — the classic greedy makespan
//! heuristic):
//!
//! 1. Unit indexes are sorted by a caller-supplied **cost estimate**,
//!    descending (stable, so equal-cost units keep their natural order).
//! 2. Workers pull the next unpulled unit from a shared atomic cursor —
//!    a single-queue work-stealing discipline: no worker idles while
//!    units remain, and the most expensive units start first, so the
//!    tail of the schedule is made of the cheapest work.
//! 3. Every worker reports `(position, result)` pairs; the merge
//!    reassembles results **in unit order**, so output is deterministic
//!    and byte-identical to a sequential run regardless of how the pull
//!    order interleaved.
//!
//! **Panic isolation**: each unit executes under
//! `catch_unwind(AssertUnwindSafe(...))`, so one panicking rule unit
//! yields an [`UnitPanic`] for that unit alone — every other unit's
//! result is unaffected, no worker join is ever `.expect`ed, and the
//! deterministic merge is preserved. The sequential stand-in applies the
//! same guard, so parallel and sequential runs fail identically.
//!
//! Each worker also records its wall-clock **busy time**, so scheduling
//! skew is observable (max vs min worker micros in `BatchStats`) rather
//! than inferred from end-to-end timings.

use std::time::Instant;

/// A unit whose execution panicked: the payload message, for the
/// `RuleFailed` diagnostic the caller emits.
#[derive(Debug, Clone)]
pub(crate) struct UnitPanic {
    /// Panic payload rendered as text (`&str`/`String` payloads pass
    /// through; anything else becomes a placeholder).
    pub message: String,
}

/// The results of one scheduled phase plus per-worker instrumentation.
pub(crate) struct UnitRun<T> {
    /// Per-unit results, in unit order (index `i` holds the guarded
    /// outcome of `f(i)`).
    pub results: Vec<Result<T, UnitPanic>>,
    /// Wall-clock busy micros per worker, indexed by worker id. A
    /// sequential run reports one entry. Workers that never pulled a
    /// unit report (close to) zero.
    pub worker_micros: Vec<u128>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one unit under the panic guard.
fn guarded<T, F>(f: &F, pos: usize) -> Result<T, UnitPanic>
where
    F: Fn(usize) -> T,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(pos)))
        .map_err(|p| UnitPanic { message: panic_message(p.as_ref()) })
}

/// Run `f(0..n)` across `threads` scoped workers using cost-aware
/// self-scheduling: units are pulled largest-estimated-cost first from a
/// shared cursor. `cost_of(i)` is the caller's relative cost estimate for
/// unit `i` — any monotone proxy works (bytes, rows, occurrence counts);
/// only the ordering matters. Results come back in unit order, so every
/// merge built on top is deterministic regardless of scheduling. A
/// panicking unit surfaces as `Err(UnitPanic)` at its slot; all other
/// slots are unaffected.
#[cfg(feature = "parallel")]
pub(crate) fn run_units_weighted<T, F>(
    n: usize,
    threads: usize,
    cost_of: impl Fn(usize) -> u64,
    f: &F,
) -> UnitRun<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    if threads <= 1 || n < 2 {
        let t = Instant::now();
        let results: Vec<_> = (0..n).map(|i| guarded(f, i)).collect();
        return UnitRun { results, worker_micros: vec![t.elapsed().as_micros()] };
    }

    // LPT order: most expensive units first. Stable sort keeps the
    // natural order among equal estimates, which also makes a uniform
    // cost function degrade to plain in-order self-scheduling.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cost_of(i)));

    let cursor = AtomicUsize::new(0);
    let mut worker_micros: Vec<u128> = Vec::with_capacity(threads);
    let mut results: Vec<Option<Result<T, UnitPanic>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let order = &order;
        let cursor = &cursor;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let t = Instant::now();
                    let mut out: Vec<(usize, Result<T, UnitPanic>)> = Vec::new();
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= n {
                            break;
                        }
                        let pos = order[k];
                        out.push((pos, guarded(f, pos)));
                    }
                    (out, t.elapsed().as_micros())
                })
            })
            .collect();
        for h in handles {
            // The per-unit guard means workers only die on truly
            // unrecoverable events (a panic inside a panic payload's
            // drop). Even then: record the worker as lost and let the
            // merge mark its units failed — never `.expect` the join.
            match h.join() {
                Ok((part, micros)) => {
                    worker_micros.push(micros);
                    for (pos, out) in part {
                        results[pos] = Some(out);
                    }
                }
                Err(_) => worker_micros.push(0),
            }
        }
    });

    UnitRun {
        results: results
            .into_iter()
            .map(|o| {
                o.unwrap_or_else(|| {
                    Err(UnitPanic { message: "detection worker terminated".to_string() })
                })
            })
            .collect(),
        worker_micros,
    }
}

/// Sequential stand-in when the `parallel` feature is disabled (the
/// thread planners never return > 1 in that configuration). The panic
/// guard applies identically, so degraded behaviour matches the
/// threaded build.
#[cfg(not(feature = "parallel"))]
pub(crate) fn run_units_weighted<T, F>(
    n: usize,
    _threads: usize,
    _cost_of: impl Fn(usize) -> u64,
    f: &F,
) -> UnitRun<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let t = Instant::now();
    let results: Vec<_> = (0..n).map(|i| guarded(f, i)).collect();
    UnitRun { results, worker_micros: vec![t.elapsed().as_micros()] }
}

/// Fold one phase's per-worker busy times into a cumulative per-worker
/// ledger (element-wise sum, extending with new workers as needed). The
/// ledger spans all scheduled phases of one batch run, so `--stats` can
/// report max/min worker busy time for the whole detection.
pub(crate) fn fold_worker_micros(ledger: &mut Vec<u128>, phase: &[u128]) {
    if ledger.len() < phase.len() {
        ledger.resize(phase.len(), 0);
    }
    for (acc, &b) in ledger.iter_mut().zip(phase) {
        *acc += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_results<T>(run: UnitRun<T>) -> Vec<T> {
        run.results.into_iter().map(|r| r.expect("unit must not panic")).collect()
    }

    #[test]
    fn results_come_back_in_unit_order() {
        for threads in [1, 2, 3, 8] {
            let run = run_units_weighted(10, threads, |i| (10 - i) as u64, &|i| i * 3);
            assert!(!run.worker_micros.is_empty());
            assert_eq!(ok_results(run), (0..10).map(|i| i * 3).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn skewed_costs_do_not_change_output() {
        // One giant unit (index 7) plus uniform small ones: LPT pulls it
        // first, but the merged output must stay in unit order.
        let cost = |i: usize| if i == 7 { 1_000_000 } else { 1 };
        for threads in [1, 2, 4] {
            let run = run_units_weighted(20, threads, cost, &|i| format!("u{i}"));
            let want: Vec<String> = (0..20).map(|i| format!("u{i}")).collect();
            assert_eq!(ok_results(run), want, "{threads} threads");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let run = run_units_weighted(0, 4, |_| 1, &|i| i);
        assert!(run.results.is_empty());
        let run = run_units_weighted(1, 4, |_| 1, &|i| i + 100);
        assert_eq!(ok_results(run), vec![100]);
    }

    #[test]
    fn panicking_unit_is_isolated() {
        // Quiet the default hook while panics are expected.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1, 2, 4] {
            let run = run_units_weighted(8, threads, |_| 1, &|i| {
                if i == 3 {
                    panic!("injected fault at unit {i}");
                }
                i * 2
            });
            assert_eq!(run.results.len(), 8, "{threads} threads");
            for (i, r) in run.results.iter().enumerate() {
                if i == 3 {
                    let e = r.as_ref().expect_err("unit 3 must fail");
                    assert!(e.message.contains("injected fault"), "{}", e.message);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2, "{threads} threads, unit {i}");
                }
            }
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn worker_ledger_folds_elementwise() {
        let mut ledger = vec![5, 5];
        fold_worker_micros(&mut ledger, &[1, 2, 3]);
        assert_eq!(ledger, vec![6, 7, 3]);
        fold_worker_micros(&mut ledger, &[]);
        assert_eq!(ledger, vec![6, 7, 3]);
    }
}
